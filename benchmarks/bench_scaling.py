"""Scaled serving — the shared schedule store vs instance churn.

The horizontal tier's operational claim (docs/scaling.md) is that the
schedule-store service *outlives the instances*: a ``serve`` process
restarted behind the router comes back warm, because it pulls the
fleet's accumulated validity-rectangle entries at startup, while a
private store dies with its process.  This bench measures exactly
that story on live subprocess fleets: run a 48-point grid, rolling-
restart every serve member (the router and store service stay up),
and run the grid again.  ``1x-private`` and ``4x-private`` pay the
full solve bill twice; ``4x-shared`` pays it once and serves the
recovery wave from the service (``reused`` rows).  The headline
number is the **recovery speedup**: the post-restart wave on the
shared fleet vs the same wave on the single private instance.  (Total
times for both waves are recorded too, but cold-wave throughput is
hardware-dependent — N solver processes only beat one where there are
N cores to run them, while the store's recovery win holds even on the
single-core worker this bench must pass on.)  The bench requires the
recovery speedup, requires the recovery wave to be mostly store hits,
and requires every served point to stay power-valid.  Numbers land in
``BENCH_scaling.json`` for CI artifact upload and trending.
"""

import json
import os
import re
import subprocess
import sys
import threading
import time

from _bench_utils import write_artifact
from repro.engine import (BatchRunner, RemoteBackend, RunnerConfig,
                          SweepSpec)
from repro.scheduling import SchedulerOptions
from repro.serving import ServingClient, StoreClient
from repro.workloads import RandomWorkloadConfig, random_problem

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir))
GRID_TASKS = 28
#: Distinct workloads, each swept over a small (P_max, P_min) grid.
#: Validity rectangles never transfer across problems, so the fresh
#: solve bill per wave scales with the problem count — which is what
#: the shared store saves across the restart.
PROBLEMS = 12
GRID_BUDGET_FACTORS = (1.2, 1.6)
GRID_LEVEL_FACTORS = (0.18, 0.08)
SEED = 2001
SHARDS = 8
_BANNER = re.compile(r"listening on (http://[\d.:]+)")


def _spawn(*argv):
    """A ``repro-schedule`` subprocess; returns ``(proc, url)`` once
    its listening banner appears.  Remaining stdout is drained by a
    daemon thread so the pipe never backs the server up."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") \
        + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *argv],
        cwd=REPO_ROOT, env=env, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True)
    deadline = time.monotonic() + 30.0
    while True:
        assert time.monotonic() < deadline, f"{argv[0]} never came up"
        line = proc.stdout.readline()
        assert line, f"{argv[0]} exited early (rc={proc.poll()})"
        match = _BANNER.search(line)
        if match:
            threading.Thread(target=proc.stdout.read,
                             daemon=True).start()
            return proc, match.group(1)


def _stop(proc):
    proc.terminate()
    try:
        proc.wait(10)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(10)


class Fleet:
    """A live subprocess fleet: optional store service, N serve
    members, one router in front.  All reuse runs under the paper's
    wider ``valid`` policy — the store's operational value, which is
    what this bench prices, not bit-parity (tests/test_scaling.py
    pins that under ``identical``)."""

    def __init__(self, instances, shared_store):
        self.instances = instances
        self.shared_store = shared_store
        self.store_proc = None
        self.store_url = None
        self.members = []  # [(proc, url)]
        self.router_proc = None
        self.router_url = None

    def _member_argv(self, port):
        argv = ["serve", "--port", str(port), "--reuse-schedules",
                "--reuse-policy", "valid"]
        if self.store_url:
            argv += ["--store-url", self.store_url]
        return argv

    def __enter__(self):
        try:
            if self.shared_store:
                self.store_proc, self.store_url = _spawn(
                    "store-serve", "--port", "0",
                    "--reuse-policy", "valid")
            for _ in range(self.instances):
                self.members.append(_spawn(*self._member_argv(0)))
            self.router_proc, self.router_url = _spawn(
                "router", "--port", "0",
                "--members", ",".join(u for _p, u in self.members))
            self.wait_healthy()
        except BaseException:
            self.__exit__(None, None, None)
            raise
        return self

    def __exit__(self, *_exc):
        if self.router_proc is not None:
            _stop(self.router_proc)
        for proc, _url in self.members:
            _stop(proc)
        if self.store_proc is not None:
            _stop(self.store_proc)

    def wait_healthy(self):
        client = ServingClient(self.router_url)
        deadline = time.monotonic() + 30.0
        while True:
            doc = client.healthz()
            if doc["members"] == self.instances \
                    and doc["healthy"] == self.instances:
                return
            assert time.monotonic() < deadline, \
                f"fleet never became healthy: {doc}"
            time.sleep(0.2)

    def restart_members(self):
        """Rolling restart: replace every serve member with a fresh
        process on the same port (the router's member list is fixed at
        startup).  Private stores and result caches die here; the
        store service, if any, survives."""
        for proc, _url in self.members:
            _stop(proc)
        time.sleep(0.2)
        ports = [url.rsplit(":", 1)[1] for _proc, url in self.members]
        self.members = [_spawn(*self._member_argv(port))
                        for port in ports]
        self.wait_healthy()


def _fleet_workload():
    """One job list: PROBLEMS distinct workloads x a 2x2 power grid."""
    jobs = []
    for index in range(PROBLEMS):
        problem = random_problem(100 + index, RandomWorkloadConfig(
            tasks=GRID_TASKS, resources=4, layers=5))
        base = problem.p_max
        budgets = [round(base * f, 2) for f in GRID_BUDGET_FACTORS]
        levels = [round(base * f, 2) for f in GRID_LEVEL_FACTORS]
        jobs.extend(SweepSpec.grid(
            problem, budgets, levels,
            options=SchedulerOptions(seed=SEED)).jobs())
    return jobs


def _run_wave(router_url, jobs):
    runner = BatchRunner(
        RunnerConfig(reuse_schedules=True, retries=2),
        backend=RemoteBackend([router_url], shards=SHARDS))
    t0 = time.perf_counter()
    results = runner.run(jobs)
    wall_s = time.perf_counter() - t0
    assert all(r.ok for r in results)
    # Whether solved fresh or served from a validity rectangle, every
    # point must respect its own power budget.
    for r in results:
        if r.value.feasible:
            assert r.value.peak_power <= r.value.p_max + 1e-9, r.value
    reused = sum(1 for r in results
                 if r.stats.get("reuse", {}).get("hit"))
    return wall_s, reused, len(results)


def _run_scenario(instances, shared_store, jobs):
    with Fleet(instances, shared_store) as fleet:
        wave1_s, reused1, n1 = _run_wave(fleet.router_url, jobs)
        t0 = time.perf_counter()
        fleet.restart_members()
        restart_s = time.perf_counter() - t0
        wave2_s, reused2, n2 = _run_wave(fleet.router_url, jobs)
        assert n1 == n2 == 48
        scenario = {
            "instances": instances,
            "shared_store": shared_store,
            "wave1_s": round(wave1_s, 4),
            "wave2_s": round(wave2_s, 4),
            "total_s": round(wave1_s + wave2_s, 4),
            "restart_s": round(restart_s, 4),
            "wave1_reused": reused1,
            "wave2_reused": reused2,
        }
        if shared_store:
            scenario["store_counters"] = StoreClient(
                fleet.store_url).snapshot()["store"]["counters"]
    return scenario


def test_shared_store_survives_instance_churn(artifact_dir):
    """4x-shared beats 1x-private across a rolling restart."""
    jobs = _fleet_workload()

    scenarios = {}
    for name, instances, shared in (("1x-private", 1, False),
                                    ("4x-private", 4, False),
                                    ("4x-shared", 4, True)):
        scenarios[name] = _run_scenario(instances, shared, jobs)

    # The restarted private fleets come back cold: their second wave
    # re-solves, reusing at most what the wave itself accumulates.
    # The shared fleet's members pull the service snapshot at startup
    # and serve the second wave mostly as store hits.
    shared = scenarios["4x-shared"]
    assert shared["wave2_reused"] >= 24, shared
    assert shared["store_counters"]["entries"] >= 1, shared
    assert shared["wave2_reused"] > \
        scenarios["1x-private"]["wave2_reused"], scenarios
    assert shared["wave2_reused"] > \
        scenarios["4x-private"]["wave2_reused"], scenarios

    speedup = scenarios["1x-private"]["wave2_s"] / shared["wave2_s"]
    doc = {
        "bench": "scaling",
        "grid_points": 48,
        "problems": PROBLEMS,
        "tasks": GRID_TASKS,
        "shards": SHARDS,
        "scenarios": scenarios,
        "speedup_shared4_vs_private1": round(speedup, 2),
        "speedup_shared4_vs_private4": round(
            scenarios["4x-private"]["wave2_s"] / shared["wave2_s"],
            2),
        "total_speedup_shared4_vs_private1": round(
            scenarios["1x-private"]["total_s"] / shared["total_s"],
            2),
    }
    write_artifact(artifact_dir, "BENCH_scaling.json",
                   json.dumps(doc, indent=2, sort_keys=True) + "\n")
    assert speedup >= 1.2, (
        f"expected the shared-store fleet to recover from the "
        f"restart faster than one private instance, got "
        f"{speedup:.2f}x ({scenarios['1x-private']['wave2_s']:.2f}s "
        f"vs {shared['wave2_s']:.2f}s)")
