"""Heuristic vs exhaustive optimum on small instances.

Section 5.3 concedes that cost-optimal scheduling "will increase the
complexity of computation to an exponential order of tasks" and settles
for heuristics.  This bench measures what the heuristics give up: on
random instances small enough for branch-and-bound, compare the
pipeline's finish time and energy cost against the provable optimum,
and report how often the (incomplete) max-power heuristic fails on
instances the exhaustive search proves feasible.
"""

import pytest

from _bench_utils import write_artifact
from repro.analysis import format_table
from repro.errors import InfeasibleError, SchedulingFailure
from repro.scheduling import (OptimalScheduler, PowerAwareScheduler,
                              SchedulerOptions)
from repro.workloads import RandomWorkloadConfig, random_problem

SMALL = RandomWorkloadConfig(tasks=5, resources=2, layers=2,
                             duration_range=(2, 4), tightness=0.8)
SEEDS = tuple(range(500, 512))
MAX_NODES = 1_500_000

FAST = SchedulerOptions(max_power_restarts=1, min_power_scans=2,
                        max_spike_attempts=500, seed=7)


@pytest.fixture(scope="module")
def gap_rows():
    rows = []
    for seed in SEEDS:
        problem = random_problem(seed, SMALL)
        try:
            exact = OptimalScheduler(objective="lexicographic",
                                     max_nodes=MAX_NODES).solve(problem)
        except InfeasibleError:
            rows.append({"seed": seed, "status": "infeasible"})
            continue
        except SchedulingFailure:
            rows.append({"seed": seed, "status": "search-budget"})
            continue
        if not exact.extra["proven"]:
            rows.append({"seed": seed, "status": "unproven",
                         "opt_tau_s": exact.finish_time})
            continue
        try:
            heuristic = PowerAwareScheduler(FAST).solve(problem)
        except SchedulingFailure:
            rows.append({"seed": seed, "status": "heuristic-failed",
                         "opt_tau_s": exact.finish_time})
            continue
        rows.append({
            "seed": seed, "status": "ok",
            "opt_tau_s": exact.finish_time,
            "heur_tau_s": heuristic.finish_time,
            "tau_gap_pct": round(
                100.0 * (heuristic.finish_time - exact.finish_time)
                / max(exact.finish_time, 1), 1),
            "opt_Ec_J": round(exact.energy_cost, 1),
            "heur_Ec_J": round(heuristic.energy_cost, 1),
        })
    return rows


def test_heuristic_never_beats_optimum(gap_rows):
    """Only rows whose optimum was *proved* participate (the search is
    budgeted; an exhausted budget yields an incumbent, not a proof)."""
    for row in gap_rows:
        if row["status"] == "ok":
            assert row["heur_tau_s"] >= row["opt_tau_s"]


def test_most_instances_are_proven(gap_rows):
    proven = [r for r in gap_rows if r["status"] in ("ok", "infeasible",
                                                     "heuristic-failed")]
    assert len(proven) >= len(gap_rows) // 2


def test_heuristic_usually_close(gap_rows):
    """Mean makespan gap stays modest (the paper's 'perform well')."""
    gaps = [row["tau_gap_pct"] for row in gap_rows
            if row["status"] == "ok"]
    assert gaps, "no comparable instances"
    assert sum(gaps) / len(gaps) <= 25.0


def test_failure_rate_is_low(gap_rows):
    """The incomplete heuristic may fail on feasible instances — but
    rarely (the paper's caveat, quantified)."""
    feasible = [r for r in gap_rows if r["status"] != "infeasible"]
    failed = [r for r in feasible if r["status"] == "heuristic-failed"]
    assert len(failed) <= len(feasible) // 3


def test_gap_artifact(gap_rows, artifact_dir):
    write_artifact(artifact_dir, "optimal_gap.txt",
                   format_table(gap_rows,
                                title="Heuristic vs exhaustive optimum"))


def test_bench_exhaustive_small(benchmark):
    problem = random_problem(SEEDS[0], SMALL)

    def run():
        try:
            return OptimalScheduler(max_nodes=MAX_NODES).solve(problem)
        except (InfeasibleError, SchedulingFailure):
            return None

    benchmark.pedantic(run, rounds=1, iterations=1)
