"""Battery-jitter ablation — quantifying the min-power motivation.

Section 2 motivates the min power constraint partly by battery health:
"Another motivation is to control the jitter in the system-level power
curve to improve battery usage."  The paper never quantifies this; we
do, with the rate-capacity battery model: run the same workload's
schedule with and without the min-power stage against a battery whose
efficiency drops above its rated output, and compare the *charge*
consumed for the same delivered energy.
"""

import pytest

from _bench_utils import write_artifact
from repro.analysis import format_table
from repro.core.metrics import power_jitter
from repro.power import ConstantSolar, PowerSystem, RateCapacityBattery
from repro.scheduling import (MaxPowerScheduler, MinPowerScheduler,
                              SchedulerOptions)
from repro.workloads import random_problem

SEEDS = (701, 702, 703)
OPTS = SchedulerOptions(max_power_restarts=1, seed=5)


def _charge_used(profile, p_min: float) -> float:
    battery = RateCapacityBattery(capacity=1e9, max_power=1e6,
                                  rated_power=max(p_min * 0.25, 1.0),
                                  alpha=1.0)
    system = PowerSystem(ConstantSolar(p_min), battery)
    system.absorb(profile)
    return battery.used


@pytest.fixture(scope="module")
def jitter_rows():
    rows = []
    for seed in SEEDS:
        problem = random_problem(seed)
        base = MaxPowerScheduler(OPTS).solve(problem)
        improved = MinPowerScheduler(OPTS).improve(problem, base)
        base_std, _ = power_jitter(base.profile)
        improved_std, _ = power_jitter(improved.profile)
        rows.append({
            "seed": seed,
            "std_before_W": round(base_std, 2),
            "std_after_W": round(improved_std, 2),
            "charge_before_J": round(_charge_used(base.profile,
                                                  problem.p_min), 1),
            "charge_after_J": round(_charge_used(improved.profile,
                                                 problem.p_min), 1),
        })
    return rows


def test_min_power_stage_never_raises_charge(jitter_rows):
    """Gap filling flattens the curve, so the rate-capacity battery
    never pays more charge after the min-power stage."""
    for row in jitter_rows:
        assert row["charge_after_J"] <= row["charge_before_J"] + 0.5


def test_jitter_artifact(jitter_rows, artifact_dir):
    write_artifact(artifact_dir, "battery_jitter.txt",
                   format_table(jitter_rows,
                                title="Min-power stage vs battery "
                                      "charge (rate-capacity model)"))


def test_bench_min_power_stage(benchmark):
    problem = random_problem(SEEDS[0])
    base = MaxPowerScheduler(OPTS).solve(problem)

    def run():
        return MinPowerScheduler(OPTS).improve(problem, base)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.metrics.spikes == 0
