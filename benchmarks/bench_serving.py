"""Solve server — batched served throughput vs a cold request loop.

The serving layer's reason to exist is that clients share state: one
``POST /v1/sweep`` rides a single engine batch whose result cache and
validity-range schedule store (paper Section 5.3) eliminate most
pipeline solves, while a cold client looping ``POST /v1/solve`` once
per point pays connection + admission + dispatch for every point and
reuses nothing.  This bench serves the same 48-point grid both ways
through live servers and requires the batched path to be >= 2x the
cold loop while every served point stays power-valid; the numbers land in
``BENCH_serving.json`` for CI artifact upload and trending.
"""

import asyncio
import json
import threading
import time

from _bench_utils import write_artifact
from repro.serving import ServingClient, ServingConfig, SolveServer
from repro.workloads import RandomWorkloadConfig, random_problem

GRID_TASKS = 28
GRID_BUDGET_FACTORS = (0.85, 0.95, 1.05, 1.15, 1.3, 1.5, 1.75, 2.0)
GRID_LEVEL_FACTORS = (0.3, 0.26, 0.22, 0.18, 0.12, 0.06)


class _LiveServer:
    """A SolveServer on a background event loop (bench-local copy of
    the tests' fixture — benchmarks stay importable on their own)."""

    def __init__(self, config):
        self.config = config
        self.server = None

    async def _main(self, ready):
        self.server = SolveServer(self.config)
        await self.server.start()
        self._stop = asyncio.Event()
        ready.set()
        await self._stop.wait()
        await self.server.shutdown()

    def __enter__(self):
        ready = threading.Event()

        def run():
            self._loop = asyncio.new_event_loop()
            asyncio.set_event_loop(self._loop)
            self._loop.run_until_complete(self._main(ready))
            self._loop.close()

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()
        assert ready.wait(10)
        self.client = ServingClient(
            f"http://127.0.0.1:{self.server.port}")
        return self

    def __exit__(self, *_exc):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(30)


def _grid():
    problem = random_problem(11, RandomWorkloadConfig(
        tasks=GRID_TASKS, resources=4, layers=5))
    base = problem.p_max
    budgets = [round(base * f, 2) for f in GRID_BUDGET_FACTORS]
    levels = [round(base * f, 2) for f in GRID_LEVEL_FACTORS]
    # Tightest-floor row first: a schedule solved at a high P_min covers
    # every looser point after it (its validity rectangle
    # [peak, inf) x (-inf, floor] — paper Section 5.3), which is the
    # sweep order an operator would pick for a store-backed server.
    points = [(pm, pn) for pn in levels for pm in budgets]
    assert len(points) == 48
    assert len(set(points)) == 48, "grid points must be distinct"
    return problem, points


def _strip_reuse_flags(point):
    return {key: value for key, value in point.items()
            if key not in ("cached", "reused")}


def _endpoint_latencies(snapshot):
    """Per-endpoint p50/p99 from ``serving.latency.*.seconds``
    histograms — the served-latency numbers the ROADMAP asked this
    bench to report alongside throughput."""
    prefix, suffix = "serving.latency.", ".seconds"
    table = {}
    for name, summary in snapshot.items():
        if not name.startswith(prefix) or not name.endswith(suffix):
            continue
        endpoint = name[len(prefix):-len(suffix)]
        table[endpoint] = {
            "count": summary.get("count", 0),
            "p50_ms": round(1000.0 * summary.get("p50", 0.0), 3),
            "p99_ms": round(1000.0 * summary.get("p99", 0.0), 3),
        }
    return table


def test_batched_serving_throughput(artifact_dir):
    """One batched sweep >= 2x a cold per-request loop, same points."""
    problem, points = _grid()

    # Cold path: 48 sequential /v1/solve requests, immediate dispatch,
    # no schedule reuse, every point distinct so the result cache never
    # helps across requests.
    cold_config = ServingConfig(port=0, max_wait_ms=0.0)
    with _LiveServer(cold_config) as cold:
        t0 = time.perf_counter()
        cold_points = []
        for p_max, p_min in points:
            response = cold.client.solve(problem, p_max=p_max,
                                         p_min=p_min)
            cold_points.extend(response["points"])
        cold_s = time.perf_counter() - t0
        cold_batches = cold.server.batcher.batches
    assert len(cold_points) == 48
    assert sum(1 for p in cold_points if p.get("cached")) == 0

    # Batched path: the same grid as ONE sweep on a store-enabled
    # server — intra-batch validity-rectangle reuse (Section 5.3)
    # plus amortized admission/dispatch.
    warm_config = ServingConfig(port=0, reuse_schedules=True,
                                reuse_policy="valid")
    with _LiveServer(warm_config) as warm:
        t0 = time.perf_counter()
        ack = warm.client.sweep(problem, points=points)
        final = warm.client.wait(ack["job"])
        batched_s = time.perf_counter() - t0
        reused = final["reused"]
        # Second submission of the same grid: fully warm, served from
        # the result cache without touching the pipeline at all.
        t0 = time.perf_counter()
        again = warm.client.wait(
            warm.client.sweep(problem, points=points)["job"])
        cached_s = time.perf_counter() - t0
        endpoint_latency = _endpoint_latencies(
            warm.server.metrics.snapshot())

    assert final["status"] == "done"
    # Reused points carry a schedule that is power-valid for their
    # rectangle but not re-optimized, so only freshly solved points are
    # bit-identical to the cold loop; reused ones must stay power-valid.
    assert len(final["points"]) == 48
    for served, cold_point in zip(final["points"], cold_points):
        if served.get("reused"):
            assert served["feasible"]
            assert served["peak_power"] <= served["p_max"] + 1e-9
        else:
            assert _strip_reuse_flags(served) \
                == _strip_reuse_flags(cold_point)
    assert reused > 0, "store must serve some covered points"
    assert again["cached"] == 48

    speedup = cold_s / batched_s
    doc = {
        "bench": "serving_throughput",
        "grid_points": len(points),
        "tasks": GRID_TASKS,
        "cold_loop_s": round(cold_s, 4),
        "cold_batches": cold_batches,
        "batched_sweep_s": round(batched_s, 4),
        "store_reused_points": reused,
        "speedup": round(speedup, 2),
        "cached_resweep_s": round(cached_s, 4),
        "cached_resweep_speedup": round(cold_s / cached_s, 2),
        "endpoint_latency": endpoint_latency,
    }
    assert "v1.sweep" in endpoint_latency
    assert endpoint_latency["v1.sweep"]["count"] >= 2
    write_artifact(artifact_dir, "BENCH_serving.json",
                   json.dumps(doc, indent=2, sort_keys=True) + "\n")
    assert speedup >= 2.0, (
        f"expected batched serving >= 2x the cold loop, got "
        f"{speedup:.2f}x ({cold_s:.2f}s vs {batched_s:.2f}s)")
