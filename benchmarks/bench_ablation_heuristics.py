"""Ablations — measuring the heuristic knobs Section 5 motivates.

The paper argues for (but does not individually quantify) several
heuristic choices: slack-based victim ordering, duration-bounded delay
distances, multi-scan gap filling with varied scan orders and slot
rules.  This bench runs the pipeline under the named presets from
``repro.scheduling.heuristics`` on a fixed instance pool and reports
quality (finish time, energy cost, utilization) and robustness per
preset — plus our two extensions (compaction, serial fallback) toggled
off to show what they contribute.
"""

import pytest

from _bench_utils import write_artifact
from repro.analysis import (compare_schedulers, format_table,
                            summarize_outcomes)
from repro.mission import MarsRover, SolarCase
from repro.scheduling import (PowerAwareScheduler, SchedulerOptions,
                              preset, preset_names)
from repro.workloads import fork_join, random_problem

POOL_SEEDS = (300, 301, 302, 303)


def _pool():
    problems = [random_problem(seed) for seed in POOL_SEEDS]
    problems.append(fork_join(width=5, power=3.0, p_max=9.0, p_min=5.0))
    return problems


@pytest.fixture(scope="module")
def ablation_rows():
    schedulers = {}
    for name in preset_names():
        options = preset(name)
        options.max_power_restarts = 1  # isolate each knob
        schedulers[name] = (lambda opts: (
            lambda problem: PowerAwareScheduler(opts).solve(problem)
        ))(options)
    for extension, options in (
            ("no-compaction", SchedulerOptions(compaction=False,
                                               max_power_restarts=1)),
            ("no-serial-fallback", SchedulerOptions(
                serial_fallback=False, max_power_restarts=1)),
            ("multi-start-4", SchedulerOptions(max_power_restarts=4))):
        schedulers[extension] = (lambda opts: (
            lambda problem: PowerAwareScheduler(opts).solve(problem)
        ))(options)
    outcomes = compare_schedulers(schedulers, _pool())
    return summarize_outcomes(outcomes)


def test_ablation_table(ablation_rows, artifact_dir):
    write_artifact(artifact_dir, "ablation_heuristics.txt",
                   format_table(ablation_rows,
                                title="Heuristic ablations"))
    names = {row["scheduler"] for row in ablation_rows}
    assert "paper" in names and "random-selection" in names


def test_paper_heuristics_competitive(ablation_rows):
    """The full paper configuration should solve at least as many
    instances as any single-knob ablation."""
    by_name = {row["scheduler"]: row for row in ablation_rows}
    solved = {name: int(row["solved"].split("/")[0])
              for name, row in by_name.items()}
    assert solved["paper"] >= max(
        solved["random-selection"], solved["single-scan"])


def test_multi_scan_improves_utilization(ablation_rows):
    """Multi-configuration gap filling should not lose to a single
    forward scan on mean utilization."""
    by_name = {row["scheduler"]: row for row in ablation_rows}
    if "mean_rho_pct" in by_name["paper"] \
            and "mean_rho_pct" in by_name["single-scan"]:
        assert by_name["paper"]["mean_rho_pct"] \
            >= by_name["single-scan"]["mean_rho_pct"] - 1e-6


def test_compaction_contribution_on_rover(artifact_dir):
    """Worst-case rover with and without the compaction/serial
    extensions: the raw Fig. 4 heuristic strands idle time."""
    rows = []
    for label, options in (
            ("paper+extensions", SchedulerOptions()),
            # the raw heuristic needs its original generous attempt
            # budget to converge at all on this instance
            ("raw-fig4", SchedulerOptions(compaction=False,
                                          serial_fallback=False,
                                          max_power_restarts=1,
                                          max_spike_attempts=20_000))):
        rover = MarsRover(options=options)
        result = rover.power_aware_result(SolarCase.WORST)
        rows.append({"config": label, "tau_s": result.finish_time,
                     "Ec_J": round(result.energy_cost, 1),
                     "rho_pct": round(100 * result.utilization, 1)})
    write_artifact(artifact_dir, "ablation_rover_worst.txt",
                   format_table(rows, title="Worst-case extensions"))
    assert rows[0]["tau_s"] <= rows[1]["tau_s"]


def test_bench_paper_preset(benchmark):
    problem = fork_join(width=5, power=3.0, p_max=9.0, p_min=5.0)
    options = preset("paper")

    def run():
        return PowerAwareScheduler(options).solve(problem)

    result = benchmark(run)
    assert result.metrics.spikes == 0
