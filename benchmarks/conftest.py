"""Shared benchmark fixtures and artifact plumbing.

Every benchmark regenerates one of the paper's tables or figures: it
*times* the scheduling work with pytest-benchmark, *asserts* the shape
the paper reports, and *writes* the regenerated table/figure under
``benchmarks/artifacts/`` (tables as .txt, figures as .svg) so
EXPERIMENTS.md can reference concrete outputs.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from _bench_utils import ARTIFACT_DIR  # noqa: F401  (re-exported)
from repro.mission import MarsRover
from repro.scheduling import SchedulerOptions


@pytest.fixture(scope="session")
def artifact_dir() -> str:
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    return ARTIFACT_DIR


@pytest.fixture(scope="session")
def rover() -> MarsRover:
    """One shared rover (JPL serial starts cache warm across benches)."""
    return MarsRover.standard()


@pytest.fixture(scope="session")
def paper_options() -> SchedulerOptions:
    """The canonical heuristic configuration."""
    return SchedulerOptions()
