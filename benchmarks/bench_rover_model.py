"""Tables 1 & 2 — the rover model's static data, validated and timed.

The "experiment" here is model reconstruction: the constraint graph
built from Tables 1-2 must carry exactly the published durations,
windows, and power levels, and must produce the packed 75 s serial
schedule the mission actually flew.  The benchmark times graph
construction and the serial baseline.
"""

from _bench_utils import write_artifact
from repro.analysis import format_table
from repro.mission import BATTERY_MAX_POWER, POWER_TABLE, SolarCase


def test_table1_timing_constraints(rover, artifact_dir):
    graph = rover.iteration_graph(SolarCase.TYPICAL)
    rows = []
    for kind, duration in (("hazard", 10), ("steer", 5),
                           ("drive", 10), ("heat", 5)):
        tasks = [t for t in graph.tasks() if t.meta.get("kind") == kind]
        assert all(t.duration == duration for t in tasks)
        rows.append({"operation": kind, "count": len(tasks),
                     "duration_s": duration})
    # Table 1 windows
    assert graph.separation("heat_s1", "steer_1") == 5
    assert graph.separation("steer_1", "heat_s1") == -50
    assert graph.separation("hazard_1", "steer_1") == 10
    assert graph.separation("steer_1", "drive_1") == 5
    assert graph.separation("drive_1", "hazard_2") == 10
    write_artifact(artifact_dir, "table1_constraints.txt",
                   format_table(rows, title="Table 1 (reconstructed)"))


def test_table2_power_levels(artifact_dir):
    rows = []
    for case in SolarCase:
        powers = POWER_TABLE[case]
        rows.append({"case": case.value, "solar_W": powers.solar,
                     "cpu_W": powers.cpu, "heat_W": powers.heating,
                     "drive_W": powers.driving,
                     "steer_W": powers.steering,
                     "hazard_W": powers.hazard})
    assert BATTERY_MAX_POWER == 10.0
    assert rows[0]["solar_W"] == 14.9
    assert rows[2]["drive_W"] == 13.8
    write_artifact(artifact_dir, "table2_power.txt",
                   format_table(rows, title="Table 2 (verbatim)"))


def test_bench_graph_construction(benchmark, rover):
    graph = benchmark(rover.iteration_graph, SolarCase.TYPICAL)
    assert len(graph) == 11


def test_bench_serial_baseline(benchmark, rover):
    """The hand-crafted flight schedule: packed 75 s, always valid."""
    result = benchmark.pedantic(
        rover.jpl_result, args=(SolarCase.WORST,), rounds=3,
        iterations=1)
    assert result.finish_time == 75
    assert result.metrics.spikes == 0
