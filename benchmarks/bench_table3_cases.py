"""Table 3 — performance and energy cost of the schedules, per case.

Regenerates the paper's central comparison: JPL's fixed serial schedule
vs the power-aware schedules across the three solar cases, reporting
energy cost ``Ec``, utilization ``rho`` and finish time ``tau``.

Paper reference values::

    solar   JPL:  Ec    rho   tau   PA:  Ec            rho   tau
    14.9          0     60%   75         79.5/6(2nd)   81%   50
    12.0          55    91%   75         147           94%   60
     9.0          388   100%  75         388           100%  75

The JPL column must match *exactly* (it validates the model); the
power-aware column must match on finish time and on the worst case, and
be close elsewhere (the heuristics differ in unpublished details).
"""

import pytest

from _bench_utils import write_artifact
from repro.analysis import format_table
from repro.mission import POWER_TABLE, MarsRover, SolarCase

PAPER = {
    SolarCase.BEST: {"jpl": (0.0, 60, 75), "pa": (79.5, 81, 50)},
    SolarCase.TYPICAL: {"jpl": (55.0, 91, 75), "pa": (147.0, 94, 60)},
    SolarCase.WORST: {"jpl": (388.0, 100, 75), "pa": (388.0, 100, 75)},
}


@pytest.fixture(scope="module")
def table3(rover):
    rows = []
    for case in SolarCase:
        jpl = rover.jpl_result(case)
        pa = rover.power_aware_result(case)
        rows.append({"case": case.value,
                     "P_min_W": POWER_TABLE[case].solar,
                     "jpl_Ec_J": round(jpl.energy_cost, 1),
                     "jpl_rho_pct": round(100 * jpl.utilization, 1),
                     "jpl_tau_s": jpl.finish_time,
                     "pa_Ec_J": round(pa.energy_cost, 1),
                     "pa_rho_pct": round(100 * pa.utilization, 1),
                     "pa_tau_s": pa.finish_time})
    return rows


def test_table3_jpl_column_exact(table3):
    for row, case in zip(table3, SolarCase):
        ec, rho, tau = PAPER[case]["jpl"]
        assert row["jpl_Ec_J"] == pytest.approx(ec, abs=0.5)
        assert row["jpl_rho_pct"] == pytest.approx(rho, abs=1.0)
        assert row["jpl_tau_s"] == tau


def test_table3_power_aware_finish_times(table3):
    """tau = 50 / 60 / 75 s: 50 % and 25 % speedups, worst unchanged."""
    assert [row["pa_tau_s"] for row in table3] == [50, 60, 75]


def test_table3_power_aware_costs_shape(table3):
    """Costs track the paper: identical in the worst case, near the
    published values elsewhere (within 15 %)."""
    for row, case in zip(table3, SolarCase):
        ec, rho, _ = PAPER[case]["pa"]
        if case is SolarCase.WORST:
            assert row["pa_Ec_J"] == pytest.approx(ec, abs=0.5)
            assert row["pa_rho_pct"] == pytest.approx(100.0, abs=0.1)
        else:
            assert row["pa_Ec_J"] == pytest.approx(ec, rel=0.15)


def test_table3_artifact(table3, artifact_dir):
    write_artifact(artifact_dir, "table3_cases.txt",
                   format_table(table3,
                                title="Table 3: JPL vs power-aware"))


def test_bench_table3_regeneration(benchmark, paper_options):
    """Time regenerating the whole table from scratch."""

    def regenerate():
        rover = MarsRover(options=paper_options)
        return [(rover.jpl_result(case).energy_cost,
                 rover.power_aware_result(case).finish_time)
                for case in SolarCase]

    rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert len(rows) == 3
