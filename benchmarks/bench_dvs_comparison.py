"""DVS vs power-aware — Section 2's related-work argument, measured.

The paper argues that variable-voltage CPU schedulers (a) "are CPU
schedulers that minimize CPU power, whereas our power managers control
subsystems", and (b) "do not handle constraints on power".  This bench
runs both schedulers on two workload families:

* **pure-CPU with slack** — DVS's home turf: it slows jobs quadratically
  cheaper; the power-aware scheduler (which cannot slow a task) pays
  full energy.  DVS should win on energy here, and does.
* **system-level** — an uncontrollable subsystem load shares the bus:
  DVS lays its CPU plan on top obliviously and breaks the budget; the
  power-aware scheduler slides the CPU work around the load.

Both halves of the comparison are honest: the paper's approach is not
"better at everything", it solves a different (system-level,
hard-budget) problem.
"""

import pytest

from _bench_utils import write_artifact
from repro import ConstraintGraph, SchedulingProblem
from repro.analysis import format_table
from repro.scheduling import dvs_schedule, schedule
from repro.scheduling.dvs import CPU_RESOURCE


def pure_cpu_problem(slack_factor: int) -> SchedulingProblem:
    """Four 5 s / 6 W CPU jobs; deadlines stretched by slack_factor."""
    g = ConstraintGraph(f"cpu-slack-{slack_factor}")
    clock = 0
    for i in range(4):
        name = f"j{i}"
        g.new_task(name, duration=5, power=6.0, resource=CPU_RESOURCE)
        clock += 5 * slack_factor
        g.add_finish_deadline(name, clock)
    return SchedulingProblem(g, p_max=20.0)


def system_problem() -> SchedulingProblem:
    g = ConstraintGraph("system-bus")
    g.new_task("heater", duration=10, power=8.0, resource="heater")
    g.add_start_deadline("heater", 0)
    g.new_task("filter", duration=6, power=6.0, resource=CPU_RESOURCE)
    g.add_finish_deadline("filter", 22)
    return SchedulingProblem(g, p_max=8.5)


@pytest.fixture(scope="module")
def energy_rows():
    rows = []
    for slack in (1, 2, 4, 8):
        problem = pure_cpu_problem(slack)
        dvs = dvs_schedule(problem)
        pa = schedule(problem)
        rows.append({
            "deadline_slack": f"{slack}x",
            "dvs_energy_J": round(dvs.metrics.total_energy, 1),
            "pa_energy_J": round(pa.metrics.total_energy, 1),
            "dvs_freqs": "/".join(
                f"{f:g}" for f in sorted(
                    dvs.extra["frequencies"].values())),
        })
    return rows


def test_dvs_energy_advantage_grows_with_slack(energy_rows):
    savings = [row["pa_energy_J"] - row["dvs_energy_J"]
               for row in energy_rows]
    assert savings[0] <= savings[-1]
    assert savings[-1] > 0  # with 8x slack DVS clearly wins on energy


def test_power_aware_energy_is_slack_invariant(energy_rows):
    """A scheduler that cannot slow tasks pays the same energy no
    matter how loose the deadlines are."""
    values = {row["pa_energy_J"] for row in energy_rows}
    assert len(values) == 1


def test_system_budget_only_power_aware_holds():
    problem = system_problem()
    dvs = dvs_schedule(problem)
    pa = schedule(problem)
    assert dvs.metrics.spikes >= 1
    assert pa.metrics.spikes == 0


def test_dvs_artifact(energy_rows, artifact_dir):
    problem = system_problem()
    dvs = dvs_schedule(problem)
    pa = schedule(problem)
    footer = (f"\nsystem-level budget (8.5 W): DVS spikes="
              f"{dvs.metrics.spikes}, power-aware spikes="
              f"{pa.metrics.spikes}")
    write_artifact(artifact_dir, "dvs_comparison.txt",
                   format_table(energy_rows,
                                title="Pure-CPU energy: DVS vs "
                                      "power-aware") + footer)


def test_bench_dvs(benchmark):
    problem = pure_cpu_problem(4)
    result = benchmark(lambda: dvs_schedule(problem))
    assert result.stage == "dvs"
