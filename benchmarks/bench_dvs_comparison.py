"""DVS vs power-aware — Section 2's related-work argument, measured.

The paper argues that variable-voltage CPU schedulers (a) "are CPU
schedulers that minimize CPU power, whereas our power managers control
subsystems", and (b) "do not handle constraints on power".  This bench
runs both schedulers on two workload families:

* **pure-CPU with slack** — DVS's home turf: it slows jobs quadratically
  cheaper; the power-aware scheduler (which cannot slow a task) pays
  full energy.  DVS should win on energy here, and does.
* **system-level** — an uncontrollable subsystem load shares the bus:
  DVS lays its CPU plan on top obliviously and breaks the budget; the
  power-aware scheduler slides the CPU work around the load.

Both halves of the comparison are honest: the paper's approach is not
"better at everything", it solves a different (system-level,
hard-budget) problem.

The third act (``BENCH_dvfs.json``) composes the two: DVFS operating
points as a *problem axis* (DESIGN.md section 5f).  On the rover
workload we tighten ``P_max`` until the static screen
(``feasible_power_check``) *proves* that no delay-only schedule can
exist — a drive step alone exceeds the budget — and show that
frequency selection (`repro.scheduling.freq_select`) still meets it by
slowing the offending tasks instead of delaying them.  The DVS
baseline is scored on the same scenarios for honesty: it rejects the
rover graph outright (inter-task constraints, non-CPU resources), and
that inapplicability is recorded as data, not skipped.
"""

import json

import pytest

from _bench_utils import write_artifact
from repro import ConstraintGraph, SchedulingFailure, SchedulingProblem
from repro.analysis import format_table
from repro.core import DEFAULT_LADDER, attach_ladder
from repro.mission import MarsRover, SolarCase
from repro.scheduling import dvs_schedule, schedule
from repro.scheduling.dvs import CPU_RESOURCE
from repro.scheduling.freq_select import FreqSelectScheduler


def pure_cpu_problem(slack_factor: int) -> SchedulingProblem:
    """Four 5 s / 6 W CPU jobs; deadlines stretched by slack_factor."""
    g = ConstraintGraph(f"cpu-slack-{slack_factor}")
    clock = 0
    for i in range(4):
        name = f"j{i}"
        g.new_task(name, duration=5, power=6.0, resource=CPU_RESOURCE)
        clock += 5 * slack_factor
        g.add_finish_deadline(name, clock)
    return SchedulingProblem(g, p_max=20.0)


def system_problem() -> SchedulingProblem:
    g = ConstraintGraph("system-bus")
    g.new_task("heater", duration=10, power=8.0, resource="heater")
    g.add_start_deadline("heater", 0)
    g.new_task("filter", duration=6, power=6.0, resource=CPU_RESOURCE)
    g.add_finish_deadline("filter", 22)
    return SchedulingProblem(g, p_max=8.5)


@pytest.fixture(scope="module")
def energy_rows():
    rows = []
    for slack in (1, 2, 4, 8):
        problem = pure_cpu_problem(slack)
        dvs = dvs_schedule(problem)
        pa = schedule(problem)
        rows.append({
            "deadline_slack": f"{slack}x",
            "dvs_energy_J": round(dvs.metrics.total_energy, 1),
            "pa_energy_J": round(pa.metrics.total_energy, 1),
            "dvs_freqs": "/".join(
                f"{f:g}" for f in sorted(
                    dvs.extra["frequencies"].values())),
        })
    return rows


def test_dvs_energy_advantage_grows_with_slack(energy_rows):
    savings = [row["pa_energy_J"] - row["dvs_energy_J"]
               for row in energy_rows]
    assert savings[0] <= savings[-1]
    assert savings[-1] > 0  # with 8x slack DVS clearly wins on energy


def test_power_aware_energy_is_slack_invariant(energy_rows):
    """A scheduler that cannot slow tasks pays the same energy no
    matter how loose the deadlines are."""
    values = {row["pa_energy_J"] for row in energy_rows}
    assert len(values) == 1


def test_system_budget_only_power_aware_holds():
    problem = system_problem()
    dvs = dvs_schedule(problem)
    pa = schedule(problem)
    assert dvs.metrics.spikes >= 1
    assert pa.metrics.spikes == 0


def test_dvs_artifact(energy_rows, artifact_dir):
    problem = system_problem()
    dvs = dvs_schedule(problem)
    pa = schedule(problem)
    footer = (f"\nsystem-level budget (8.5 W): DVS spikes="
              f"{dvs.metrics.spikes}, power-aware spikes="
              f"{pa.metrics.spikes}")
    write_artifact(artifact_dir, "dvs_comparison.txt",
                   format_table(energy_rows,
                                title="Pure-CPU energy: DVS vs "
                                      "power-aware") + footer)


def test_bench_dvs(benchmark):
    problem = pure_cpu_problem(4)
    result = benchmark(lambda: dvs_schedule(problem))
    assert result.stage == "dvs"


# ----------------------------------------------------------------------
# BENCH_dvfs.json: delay-only vs delay+slowdown vs DVS on the rover
# ----------------------------------------------------------------------

_DVFS_BUDGETS = (19.0, 17.0, 16.0)
_DVFS_EVAL_BUDGET = 96


def rover_problem(p_max: float) -> SchedulingProblem:
    """One rover mission iteration (worst-case solar) under ``p_max``.

    ``steps_per_iteration=1`` keeps the frequency-selection search in
    benchmark territory (seconds, not minutes) while preserving the
    structure that matters: the drive step whose power alone breaks
    the tightened budgets."""
    rover = MarsRover(steps_per_iteration=1)
    return rover.problem(SolarCase.WORST).with_power_constraints(
        p_max=p_max, p_min=0.0)


def _delay_only_row(problem: SchedulingProblem) -> dict:
    violations = problem.feasible_power_check()
    row = {"feasible": False, "provably_infeasible": bool(violations),
           "screen_violations": violations}
    try:
        result = schedule(problem)
    except SchedulingFailure as exc:
        row["error"] = str(exc)
        return row
    row.update(feasible=True,
               finish_time_s=result.metrics.finish_time,
               energy_J=round(result.metrics.total_energy, 3),
               peak_W=round(result.metrics.peak_power, 3))
    return row


def _dvfs_row(problem: SchedulingProblem) -> dict:
    laddered = attach_ladder(problem, DEFAULT_LADDER)
    try:
        result = FreqSelectScheduler(
            eval_budget=_DVFS_EVAL_BUDGET).solve(laddered)
    except SchedulingFailure as exc:
        return {"feasible": False, "error": str(exc)}
    dvfs = result.extra["dvfs"]
    slowed = {name: point["freq"]
              for name, point in dvfs["assignment"].items()
              if point["freq"] < 1.0 or point["cores"] > 1}
    return {"feasible": True,
            "finish_time_s": result.metrics.finish_time,
            "energy_J": round(result.metrics.total_energy, 3),
            "peak_W": round(result.metrics.peak_power, 3),
            "energy_ideal_J": dvfs["energy_ideal_J"],
            "energy_rounded_J": dvfs["energy_rounded_J"],
            "evaluations": dvfs["evaluations"],
            "slowed": slowed}


def _dvs_row(problem: SchedulingProblem) -> dict:
    try:
        result = dvs_schedule(problem)
    except SchedulingFailure as exc:
        return {"applicable": False, "reason": str(exc)}
    return {"applicable": True,
            "energy_J": round(result.metrics.total_energy, 3),
            "spikes": result.metrics.spikes}


@pytest.fixture(scope="module")
def dvfs_scenarios():
    scenarios = []
    for p_max in _DVFS_BUDGETS:
        problem = rover_problem(p_max)
        scenarios.append({
            "p_max_W": p_max,
            "workload": problem.name,
            "delay_only": _delay_only_row(problem),
            "delay_plus_slowdown": _dvfs_row(problem),
            "dvs_baseline": _dvs_row(problem),
        })
    return scenarios


def test_dvfs_rescues_provably_infeasible_budget(dvfs_scenarios):
    """The acceptance headline: at least one rover scenario where the
    static screen proves delay-only scheduling infeasible and the
    composed delay+slowdown scheduler meets the budget anyway."""
    rescued = [s for s in dvfs_scenarios
               if s["delay_only"]["provably_infeasible"]
               and s["delay_plus_slowdown"]["feasible"]]
    assert rescued, "no scenario was rescued by frequency selection"
    for scenario in rescued:
        assert not scenario["delay_only"]["feasible"]
        assert scenario["delay_plus_slowdown"]["peak_W"] \
            <= scenario["p_max_W"] + 1e-9
        assert scenario["delay_plus_slowdown"]["slowed"], \
            "rescue must involve an actual slowdown"


def test_dvfs_native_budget_stays_feasible_both_ways(dvfs_scenarios):
    native = dvfs_scenarios[0]
    assert not native["delay_only"]["provably_infeasible"]
    assert native["delay_only"]["feasible"]
    assert native["delay_plus_slowdown"]["feasible"]


def test_dvs_baseline_rejects_the_rover_graph(dvfs_scenarios):
    """Honest inapplicability: the Section-2 baseline cannot express
    the rover's inter-task constraints or non-CPU resources."""
    for scenario in dvfs_scenarios:
        assert scenario["dvs_baseline"]["applicable"] is False
        assert scenario["dvs_baseline"]["reason"]


def test_dvfs_artifact(dvfs_scenarios, artifact_dir):
    doc = {
        "bench": "dvfs_composition",
        "workload": ("mars-rover worst-case iteration "
                     "(steps_per_iteration=1)"),
        "ladder": list(DEFAULT_LADDER),
        "eval_budget": _DVFS_EVAL_BUDGET,
        "scenarios": dvfs_scenarios,
    }
    write_artifact(artifact_dir, "BENCH_dvfs.json",
                   json.dumps(doc, indent=2, sort_keys=True))
