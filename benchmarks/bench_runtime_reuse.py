"""Runtime schedule reuse — Section 5.3's adaptability claim, measured.

"The same schedule can be directly applied to all cases with a range
of constraints ... without recomputing a schedule for each case.  This
feature makes our statically computed power-aware schedules adaptable
to a runtime scheduler."

This bench drifts the environment through a full day of solar levels
and counts how often the runtime table *reuses* a stored schedule vs
recomputing: the reuse rate is the claim, quantified.  It also checks
the validity-range logic end to end: every selected schedule must be
power-valid under the environment it was selected for.
"""

import pytest

from _bench_utils import write_artifact
from repro.analysis import format_table
from repro.mission import POWER_TABLE, MarsRover, SolarCase
from repro.scheduling import RuntimeScheduler, SchedulerOptions

FAST = SchedulerOptions(max_power_restarts=1, min_power_scans=2,
                        max_spike_attempts=1000, seed=7)

#: A day of solar drift: fine-grained levels between the paper's cases.
SOLAR_DRIFT = [9.0, 9.5, 10.0, 10.5, 11.0, 11.5, 12.0, 12.5, 13.0,
               13.5, 14.0, 14.5, 14.9, 14.5, 14.0, 13.0, 12.0, 11.0,
               10.0, 9.5, 9.0]


def _case_for(p_min: float) -> SolarCase:
    return min(POWER_TABLE,
               key=lambda c: abs(POWER_TABLE[c].solar - p_min))


def _factory(rover):
    def factory(p_max: float, p_min: float):
        problem = rover.problem(_case_for(p_min))
        return problem.with_power_constraints(p_max=p_max, p_min=p_min)
    return factory


def _reprofile(rover):
    """Rebuild an entry's profile with the *target* case's powers —
    the rover draws more as temperature falls, so a schedule's stored
    profile only certifies the conditions it was planned for."""
    from repro.core import PowerProfile, Schedule

    def reprofile(entry, p_max, p_min):
        case = _case_for(p_min)
        problem = rover.problem(case)
        schedule = Schedule(problem.graph, entry.schedule.as_dict())
        return PowerProfile.from_schedule(schedule,
                                          baseline=problem.baseline)
    return reprofile


@pytest.fixture(scope="module")
def drift_outcome():
    rover = MarsRover(options=FAST)
    runtime = RuntimeScheduler(_factory(rover), FAST,
                               reprofile=_reprofile(rover))
    # the paper's deployment: statically compute one schedule per
    # anticipated case, then let the runtime select
    for case in SolarCase:
        solar = POWER_TABLE[case].solar
        runtime.precompute(p_max=solar + 10.0, p_min=solar,
                           label=case.value)
    selections = []
    for solar in SOLAR_DRIFT:
        entry = runtime.schedule_for(p_max=solar + 10.0, p_min=solar)
        selections.append((solar, entry))
    return runtime, selections


def test_reuse_dominates_recompute(drift_outcome):
    runtime, selections = drift_outcome
    assert runtime.misses == 0  # precomputed table covers the day
    assert runtime.hits == len(SOLAR_DRIFT)


def test_selection_tracks_the_sun(drift_outcome):
    """Under abundant sun the fast best-case schedule is selected; as
    the budget shrinks the runtime falls back case by case."""
    _, selections = drift_outcome
    chosen_at = {solar: entry.label for solar, entry in selections}
    assert chosen_at[14.9] == "best"
    assert chosen_at[9.0] == "worst"
    assert len({label for label in chosen_at.values()}) >= 2


def test_every_selection_is_valid_for_its_environment(drift_outcome):
    _, selections = drift_outcome
    for solar, entry in selections:
        assert entry.min_p_max <= solar + 10.0 + 1e-9


def test_table_stays_small(drift_outcome):
    """A handful of stored schedules covers the whole day."""
    runtime, _ = drift_outcome
    assert len(runtime.table) <= 5


def test_reuse_artifact(drift_outcome, artifact_dir):
    runtime, selections = drift_outcome
    rows = [{"solar_W": solar, "selected": entry.label,
             "valid_down_to_Pmax_W": round(entry.min_p_max, 1)}
            for solar, entry in selections]
    footer = (f"\n{runtime.hits} reuses / {runtime.misses} recomputes "
              f"over {len(SOLAR_DRIFT)} environment changes; "
              f"table size {len(runtime.table)}")
    write_artifact(artifact_dir, "runtime_reuse.txt",
                   format_table(rows, title="Runtime schedule reuse "
                                            "across a day of drift")
                   + footer)


def test_bench_selection_cost(benchmark, drift_outcome):
    """Selection from a warm table must be effectively free."""
    runtime, _ = drift_outcome
    entry = benchmark(lambda: runtime.schedule_for(22.0, 12.0))
    assert entry is not None
