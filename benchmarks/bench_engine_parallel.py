"""Batch engine — parallel grid exploration vs the serial sweep loop.

The paper's purpose is "to enable the exploration of many more points
in the design space"; this bench quantifies how far the batch engine
(:mod:`repro.engine`) pushes that: a ``sweep_p_max`` × ``sweep_p_min``
grid solved through a 4-worker :class:`BatchRunner` with the canonical
problem-hash cache must beat the plain serial loop by at least 2x while
returning bit-identical sweep points, and its JSON run trace must carry
the per-stage solver timings and cache hit/miss counters the
observability layer promises.

The grid is deliberately redundancy-rich: every ``P_min`` level sits at
or above most budgets, so the clamp ``p_min = min(level, budget)``
collapses whole grid rows onto single design points — exactly the
duplicate work the solve-result cache exists to eliminate.
"""

import json
import os
import time

from _bench_utils import write_artifact
from repro.analysis import format_table, sweep_grid
from repro.engine import BatchRunner, RunnerConfig
from repro.workloads import RandomWorkloadConfig, random_problem

GRID_TASKS = 28
BUDGET_FACTORS = (0.7, 0.8, 0.9, 1.0, 1.1)
LEVEL_FACTORS = (1.1, 1.2, 1.3, 1.4)
WORKERS = 4


def _grid_problem():
    return random_problem(11, RandomWorkloadConfig(
        tasks=GRID_TASKS, resources=4, layers=5))


def _grid(problem):
    base = problem.p_max
    budgets = [round(base * f, 2) for f in BUDGET_FACTORS]
    levels = [round(base * f, 2) for f in LEVEL_FACTORS]
    return budgets, levels


def test_parallel_grid_speedup_and_identity(artifact_dir):
    """4-worker cached grid >= 2x faster than serial, same results."""
    problem = _grid_problem()
    budgets, levels = _grid(problem)
    assert len(budgets) * len(levels) >= 16

    t0 = time.perf_counter()
    serial = sweep_grid(problem, budgets, levels)
    serial_s = time.perf_counter() - t0

    trace_path = os.path.join(artifact_dir, "engine_grid_trace.json")
    runner = BatchRunner(RunnerConfig(workers=WORKERS,
                                      trace_path=trace_path))
    t0 = time.perf_counter()
    parallel = sweep_grid(problem, budgets, levels, runner=runner)
    parallel_s = time.perf_counter() - t0

    assert parallel == serial, \
        "parallel grid must be bit-identical to the serial loop"
    speedup = serial_s / parallel_s
    assert speedup >= 2.0, (
        f"expected >= 2x over serial, got {speedup:.2f}x "
        f"({serial_s:.2f}s vs {parallel_s:.2f}s)")

    trace = runner.last_trace
    run = trace.run
    assert run["unique_solved"] < len(serial), \
        "clamped grid must dedup onto fewer unique solves"
    rows = [{"path": "serial loop", "points": len(serial),
             "unique_solves": len(serial), "wall_s": round(serial_s, 2)},
            {"path": f"BatchRunner x{WORKERS} + cache",
             "points": len(parallel),
             "unique_solves": run["unique_solved"],
             "wall_s": round(parallel_s, 2)}]
    write_artifact(artifact_dir, "engine_parallel_grid.txt",
                   format_table(rows,
                                title=f"== {len(serial)}-point grid: "
                                      f"speedup {speedup:.2f}x =="))


def test_trace_carries_timings_and_cache_counters(artifact_dir):
    """The emitted JSON trace is the observability contract."""
    problem = _grid_problem()
    budgets, levels = _grid(problem)
    trace_path = os.path.join(artifact_dir, "engine_grid_trace.json")
    runner = BatchRunner(RunnerConfig(workers=0, trace_path=trace_path))
    sweep_grid(problem, budgets, levels, runner=runner)

    with open(trace_path, encoding="utf-8") as handle:
        doc = json.load(handle)
    assert doc["format"] == "repro-trace"
    assert {"timing", "max_power", "min_power"} <= \
        set(doc["stage_seconds"])
    assert all(seconds >= 0 for seconds in doc["stage_seconds"].values())
    assert doc["cache"]["hits"] > 0 and doc["cache"]["misses"] > 0
    counters = doc["counters"]
    assert counters["longest_path_runs"] > 0
    assert counters["lp_full_runs"] > 0
    assert len(doc["jobs"]) == len(budgets) * len(levels)
    solved = [job for job in doc["jobs"] if not job["cached"]]
    assert all(job["stage_seconds"] for job in solved)


def test_instrumentation_overhead_json(artifact_dir):
    """Machine-readable bench: serial vs parallel wall clock plus the
    instrumentation on/off overhead on a 20-point grid, written as
    ``BENCH_engine.json`` for CI artifact upload and trending.

    The <5% disabled-overhead budget is recorded rather than asserted
    hard (CI runners jitter); the assertion allows generous slack while
    the JSON keeps the honest number.
    """
    problem = _grid_problem()
    budgets, levels = _grid(problem)
    grid_points = len(budgets) * len(levels)
    assert grid_points == 20

    def timed(workers, instrument):
        runner = BatchRunner(RunnerConfig(workers=workers,
                                          instrument=instrument))
        t0 = time.perf_counter()
        points = sweep_grid(problem, budgets, levels, runner=runner)
        return time.perf_counter() - t0, points

    # Warm up interpreter/import state so the first measurement is not
    # charged for module loading.
    timed(0, False)

    # The disabled path is a single attribute check per potential span;
    # repeated runs bound its cost by run-to-run jitter (the two best
    # repeats of identical code differ only by noise + guard cost).
    disabled_runs = sorted(timed(0, False)[0] for _ in range(5))
    serial_s = disabled_runs[0]
    disabled_overhead_pct = \
        100.0 * (disabled_runs[1] - serial_s) / serial_s
    instrumented_s, instrumented = timed(0, True)
    parallel_s, parallel = timed(WORKERS, False)
    serial = timed(0, False)[1]
    assert instrumented == serial and parallel == serial

    enabled_overhead_pct = 100.0 * (instrumented_s - serial_s) / serial_s
    doc = {
        "bench": "engine_parallel_grid",
        "grid_points": grid_points,
        "tasks": GRID_TASKS,
        "workers": WORKERS,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 2),
        "instrument_disabled_overhead_pct":
            round(disabled_overhead_pct, 2),
        "instrument_disabled_budget_pct": 5.0,
        "instrumented_serial_s": round(instrumented_s, 4),
        "instrument_enabled_overhead_pct":
            round(enabled_overhead_pct, 2),
    }
    write_artifact(artifact_dir, "BENCH_engine.json",
                   json.dumps(doc, indent=2, sort_keys=True) + "\n")
    assert disabled_overhead_pct < 5.0 \
        or disabled_runs[1] - serial_s < 0.05, (
        f"instrumentation-disabled path exceeds the 5% budget: "
        f"{disabled_runs[1]:.3f}s vs {serial_s:.3f}s "
        f"({disabled_overhead_pct:.1f}%)")


def test_schedule_reuse_speedup_json(artifact_dir):
    """Validity-range reuse: strictly fewer solves, identical points.

    A dense ``(P_max, P_min)`` grid deliberately placed around the
    timing schedule's validity rectangle (Section 5.3): the store must
    serve every in-rectangle point without a pipeline solve, the served
    points must equal the no-reuse run bit for bit, and the wall-clock
    win is recorded as ``BENCH_reuse.json`` (plus a ``schedule_reuse``
    section merged into ``BENCH_engine.json`` when that exists) for CI
    artifact upload and trending.
    """
    from repro.engine import SolveJob
    from repro.scheduling import SchedulerOptions, TimingScheduler

    problem = _grid_problem()
    options = SchedulerOptions()
    timing = TimingScheduler(options).solve(problem)
    peak, floor = timing.profile.peak(), timing.profile.floor()
    # 8x6 grid, ~2/3 of it inside the certified rectangle
    budgets = sorted({round(peak * f, 2)
                      for f in (0.9, 0.95, 1.0, 1.05, 1.15, 1.3,
                                1.6, 2.0)})
    levels = sorted({round(floor * f, 2)
                     for f in (0.2, 0.45, 0.7, 0.9, 1.0, 1.3)})
    jobs = [SolveJob(problem=problem.with_power_constraints(pm, pn),
                     options=options)
            for pm in budgets for pn in levels]

    def timed(reuse):
        runner = BatchRunner(RunnerConfig(reuse_schedules=reuse))
        t0 = time.perf_counter()
        points = runner.run_values(jobs)
        return time.perf_counter() - t0, points, runner

    timed(False)  # warm imports so neither side pays them
    plain_s, plain, _ = timed(False)
    reuse_s, reused, runner = timed(True)

    assert reused == plain  # bit-for-bit identical sweep points
    reuse = runner.last_trace.reuse
    assert reuse["range_hits"] > 0
    assert reuse["solved"] < len(jobs)  # strictly fewer solves

    doc = {
        "bench": "engine_schedule_reuse",
        "grid_points": len(jobs),
        "tasks": GRID_TASKS,
        "policy": reuse["policy"],
        "range_hits": reuse["range_hits"],
        "solved": reuse["solved"],
        "stored_schedules": reuse["entries"],
        "no_reuse_s": round(plain_s, 4),
        "reuse_s": round(reuse_s, 4),
        "speedup": round(plain_s / reuse_s, 2),
    }
    write_artifact(artifact_dir, "BENCH_reuse.json",
                   json.dumps(doc, indent=2, sort_keys=True) + "\n")
    engine_json = os.path.join(artifact_dir, "BENCH_engine.json")
    if os.path.exists(engine_json):
        with open(engine_json, encoding="utf-8") as handle:
            engine_doc = json.load(handle)
        engine_doc["schedule_reuse"] = doc
        write_artifact(artifact_dir, "BENCH_engine.json",
                       json.dumps(engine_doc, indent=2,
                                  sort_keys=True) + "\n")


def test_bench_parallel_grid(benchmark):
    """Median wall time of the cached 4-worker grid (for trending)."""
    problem = _grid_problem()
    budgets, levels = _grid(problem)

    def run():
        runner = BatchRunner(RunnerConfig(workers=WORKERS))
        return sweep_grid(problem, budgets, levels, runner=runner)

    points = benchmark.pedantic(run, rounds=2, iterations=1)
    assert all(point.feasible for point in points)
