"""Execution resilience — what runtime jitter costs each dispatcher.

The paper computes static schedules; flight software must execute them
under duration jitter.  This bench quantifies the trade the execution
layer exposes:

* the **static** (time-triggered) dispatcher replays the plan exactly;
  under jitter it accumulates violations (resource collisions, budget
  spikes) — brittleness measured as violations per run;
* the **self-timed** dispatcher never violates, paying instead with
  finish-time slip — elasticity measured as slip per run.

Swept over jitter fractions on the rover's typical-case schedule,
averaged across seeds.
"""

import pytest

from _bench_utils import write_artifact
from repro.analysis import format_table
from repro.execution import ScheduleExecutor, UniformJitter
from repro.mission import SolarCase

FRACTIONS = (0.0, 0.1, 0.2, 0.4)
SEEDS = tuple(range(8))


@pytest.fixture(scope="module")
def resilience_rows(rover):
    problem = rover.problem(SolarCase.TYPICAL)
    plan = rover.power_aware_result(SolarCase.TYPICAL)
    rows = []
    for fraction in FRACTIONS:
        violations = 0
        slips = 0
        aborted = 0
        for seed in SEEDS:
            jitter = UniformJitter(fraction, seed=seed)
            static = ScheduleExecutor(problem, plan.schedule,
                                      durations=jitter,
                                      policy="static").run()
            violations += len(static.trace.violations())
            timed = ScheduleExecutor(problem, plan.schedule,
                                     durations=jitter,
                                     policy="self_timed").run()
            aborted += int(not timed.ok)
            slips += max(timed.finished_at - plan.finish_time, 0)
        rows.append({
            "jitter_pct": round(100 * fraction),
            "static_violations_per_run": round(violations / len(SEEDS),
                                               2),
            "self_timed_slip_s_per_run": round(slips / len(SEEDS), 2),
            "self_timed_failures": aborted,
        })
    return rows


def test_nominal_execution_is_clean(resilience_rows):
    nominal = resilience_rows[0]
    assert nominal["static_violations_per_run"] == 0
    assert nominal["self_timed_slip_s_per_run"] == 0


def test_static_brittleness_grows_with_jitter(resilience_rows):
    violations = [row["static_violations_per_run"]
                  for row in resilience_rows]
    assert violations[-1] > 0
    assert violations == sorted(violations)


def test_self_timed_never_fails(resilience_rows):
    for row in resilience_rows:
        assert row["self_timed_failures"] == 0


def test_self_timed_pays_in_time_not_safety(resilience_rows):
    heavy = resilience_rows[-1]
    assert heavy["self_timed_slip_s_per_run"] >= 0
    # elasticity instead of violations: slip exists where static breaks
    if heavy["static_violations_per_run"] > 0:
        assert heavy["self_timed_slip_s_per_run"] >= 0


def test_resilience_artifact(resilience_rows, artifact_dir):
    write_artifact(artifact_dir, "execution_resilience.txt",
                   format_table(resilience_rows,
                                title="Dispatcher resilience to "
                                      "duration jitter (rover typical "
                                      "case)"))


def test_bench_self_timed_run(benchmark, rover):
    problem = rover.problem(SolarCase.TYPICAL)
    plan = rover.power_aware_result(SolarCase.TYPICAL)
    jitter = UniformJitter(0.2, seed=1)

    def run():
        return ScheduleExecutor(problem, plan.schedule,
                                durations=jitter,
                                policy="self_timed").run()

    result = benchmark(run)
    assert not result.aborted
