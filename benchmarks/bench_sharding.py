"""Sharded sweeps — subprocess shard fan-out vs the serial sweep loop.

The ROADMAP's sharded-mission-sweeps item made concrete, in two parts:

* **Speedup.**  A 14x14 (P_max, P_min) grid fanned over 4 subprocess
  shards (:class:`SubprocessShardBackend`) with the validity-range
  schedule store must beat the plain serial sweep loop by at least 2x
  wall clock.  The grid's P_min band sits below the schedules' power
  floors, so stored schedules cover wide validity rectangles — the
  regime the store (paper Section 5.3) was built for — and each shard
  serves most of its tile from a handful of solves.

* **Locality.**  On a grid whose P_min band *straddles* the floors
  (reuse works between neighbors but not across the whole plane), the
  planner's ``tile`` strategy must win more range hits — and re-derive
  fewer duplicate schedules across shards — than dealing the same jobs
  ``round_robin``.  Contiguous power-plane tiles are exactly the
  neighborhoods validity rectangles cover; dealt shards solve the same
  points redundantly.

Everything here is deterministic (seeded workload, deterministic
partitions and solver), so the counter comparisons are exact, not
statistical.  Writes ``BENCH_sharding.json`` for CI artifact upload
and trending.
"""

import json
import time

from _bench_utils import write_artifact
from repro.analysis import format_table, sweep_grid
from repro.engine import (BatchRunner, RunnerConfig,
                          SubprocessShardBackend, SweepSpec)
from repro.workloads import RandomWorkloadConfig, random_problem

GRID_TASKS = 28
GRID_SIDE = 14
SHARDS = 4


def _problem():
    return random_problem(11, RandomWorkloadConfig(
        tasks=GRID_TASKS, resources=4, layers=5))


def _budgets(problem):
    base = problem.p_max
    return [round(base * (0.70 + 0.05 * index), 2)
            for index in range(GRID_SIDE)]


# P_min bands relative to the workload's schedule power floors (~3.2 W):
# REUSE_DENSE sits below them (wide validity rectangles, the speedup
# regime); FLOOR_STRADDLE crosses them (local-only reuse, the regime
# that separates tile from round_robin).
REUSE_DENSE_LEVELS = [round(0.5 + 0.28 * index, 2)
                      for index in range(GRID_SIDE)]
FLOOR_STRADDLE_LEVELS = [round(0.8 + 0.45 * index, 2)
                         for index in range(GRID_SIDE)]


def _sharded_run(jobs, strategy):
    runner = BatchRunner(
        RunnerConfig(reuse_schedules=True, reuse_policy="valid"),
        backend=SubprocessShardBackend(shards=SHARDS,
                                       strategy=strategy))
    t0 = time.perf_counter()
    results = runner.run(jobs)
    elapsed = time.perf_counter() - t0
    assert runner.last_mode == "shards"
    return results, elapsed, dict(runner.last_trace.reuse)


def test_sharded_grid_speedup_and_locality(artifact_dir):
    """4 subprocess shards >= 2x serial; tile beats round_robin."""
    problem = _problem()
    budgets = _budgets(problem)
    jobs = SweepSpec.grid(problem, budgets, REUSE_DENSE_LEVELS).jobs()
    assert len(jobs) == GRID_SIDE * GRID_SIDE

    t0 = time.perf_counter()
    serial = sweep_grid(problem, budgets, REUSE_DENSE_LEVELS)
    serial_s = time.perf_counter() - t0

    results, sharded_s, reuse = _sharded_run(jobs, "tile")
    # the "valid" reuse policy may serve a covering schedule instead of
    # re-solving, so exact metrics can differ point to point — but the
    # feasibility frontier (the paper's Fig. 1 shape) must be identical
    assert [r.value.feasible for r in results] == \
        [point.feasible for point in serial]
    assert all(r.ok for r in results)
    speedup = serial_s / sharded_s
    assert speedup >= 2.0, (
        f"expected >= 2x over the serial sweep loop, got "
        f"{speedup:.2f}x ({serial_s:.2f}s vs {sharded_s:.2f}s)")

    # locality: same budgets, floor-straddling P_min band
    straddle = SweepSpec.grid(problem, budgets,
                              FLOOR_STRADDLE_LEVELS).jobs()
    locality = {}
    for strategy in ("tile", "round_robin"):
        _results, elapsed, doc = _sharded_run(straddle, strategy)
        locality[strategy] = {"wall_s": round(elapsed, 3),
                              "range_hits": doc["range_hits"],
                              "solved": doc["solved"],
                              "deduped": doc["deduped"]}
    tile, dealt = locality["tile"], locality["round_robin"]
    assert tile["range_hits"] > dealt["range_hits"], (
        "contiguous power-plane tiles must land more range hits than "
        f"round-robin dealing, got {locality}")
    assert tile["solved"] < dealt["solved"], (
        f"tiling must need fewer fresh solves, got {locality}")
    assert tile["deduped"] < dealt["deduped"], (
        "dealt shards must re-derive more duplicate schedules, "
        f"got {locality}")

    doc = {
        "bench": "sharding",
        "grid": {"points": len(jobs), "side": GRID_SIDE,
                 "tasks": GRID_TASKS},
        "shards": SHARDS,
        "speedup": {
            "serial_s": round(serial_s, 3),
            "sharded_s": round(sharded_s, 3),
            "speedup": round(speedup, 2),
            "range_hits": reuse["range_hits"],
            "solved": reuse["solved"],
        },
        "locality": locality,
    }
    write_artifact(artifact_dir, "BENCH_sharding.json",
                   json.dumps(doc, indent=2, sort_keys=True))
    rows = [{"path": "serial sweep loop",
             "wall_s": round(serial_s, 2), "range_hits": "-",
             "solved": len(serial)},
            {"path": f"{SHARDS} shards (tile, reuse-dense)",
             "wall_s": round(sharded_s, 2),
             "range_hits": reuse["range_hits"],
             "solved": reuse["solved"]},
            {"path": f"{SHARDS} shards (tile, floor-straddle)",
             "wall_s": tile["wall_s"],
             "range_hits": tile["range_hits"],
             "solved": tile["solved"]},
            {"path": f"{SHARDS} shards (round_robin, floor-straddle)",
             "wall_s": dealt["wall_s"],
             "range_hits": dealt["range_hits"],
             "solved": dealt["solved"]}]
    write_artifact(artifact_dir, "sharding_speedup.txt",
                   format_table(rows,
                                title=f"== {len(jobs)}-point grid: "
                                      f"{speedup:.2f}x at {SHARDS} "
                                      f"shards =="))
