"""Core micro-benchmarks: the primitives every scheduler move pays for.

The pipeline's cost is dominated by three primitives — longest-path
solves, profile construction, and graph checkpoint/rollback — so their
costs are tracked here as first-class benchmarks.  The incremental
longest-path cache (distances only grow under edge additions) is the
headline: the cached solve after one edge addition must be far cheaper
than the cold Bellman–Ford.
"""

import pytest

from repro.core.longest_path import longest_paths
from repro.core.profile import PowerProfile
from repro.core.task import ANCHOR_NAME
from repro.scheduling import SchedulerOptions
from repro.scheduling.timing import TimingScheduler, asap_schedule
from repro.workloads import RandomWorkloadConfig, random_problem

CONFIG = RandomWorkloadConfig(tasks=60, resources=8, layers=8)


@pytest.fixture(scope="module")
def serialized_graph():
    problem = random_problem(4000, CONFIG)
    graph = problem.fresh_graph()
    TimingScheduler(SchedulerOptions()).schedule_graph(graph)
    return graph


def test_bench_longest_path_cold(benchmark, serialized_graph):
    def cold():
        graph = serialized_graph.copy()   # fresh: no cache attached
        return longest_paths(graph)

    result = benchmark(cold)
    assert result.distance


def test_bench_longest_path_incremental(benchmark, serialized_graph):
    """One edge addition then a solve: the cached fast path."""
    graph = serialized_graph.copy()
    longest_paths(graph)  # warm the cache
    names = graph.task_names()
    state = {"i": 0}

    def incremental():
        name = names[state["i"] % len(names)]
        state["i"] += 1
        token = graph.checkpoint()
        graph.add_edge(ANCHOR_NAME, name, 1 + state["i"] % 3,
                       tag="delay")
        result = longest_paths(graph)
        graph.rollback(token)
        longest_paths(graph)  # re-warm after the rollback
        return result

    result = benchmark(incremental)
    assert result.distance


def test_bench_profile_construction(benchmark, serialized_graph):
    schedule = asap_schedule(serialized_graph)

    def build():
        return PowerProfile.from_schedule(schedule, baseline=1.0)

    profile = benchmark(build)
    assert profile.horizon > 0


def test_bench_checkpoint_rollback(benchmark, serialized_graph):
    graph = serialized_graph.copy()
    names = graph.task_names()

    def churn():
        token = graph.checkpoint()
        for i, name in enumerate(names[:16]):
            graph.add_edge(ANCHOR_NAME, name, 5 + i, tag="delay")
        graph.rollback(token)
        return graph.edge_count()

    benchmark(churn)


def test_bench_slack_table(benchmark, serialized_graph):
    from repro.core.slack import slack_table

    schedule = asap_schedule(serialized_graph)
    table = benchmark(lambda: slack_table(schedule))
    assert len(table) == len(serialized_graph)
