"""Core-solver bench: warm-started re-solves vs cold single solves.

The array/kernel core is certified bit-identical to the reference
oracle by the differential suite, so its entire value is speed.  This
bench times the longest-path *primitive* on the two headline workloads
(the paper's Fig. 1 example and the 14x14-grid random workload) under
the two query patterns every scheduler run is made of:

* ``resolve_after_rollback`` — checkpoint, tighten, roll back, query:
  the backtracking inner loop of the timing/serial schedulers.  Cold,
  every post-rollback query is a full Bellman–Ford; warm, the journal
  state memo restores the fixpoint outright.
* ``fresh_copy_solve`` — copy the problem graph and query: how every
  neighboring sweep point starts.  Cold, each copy pays a full solve;
  warm, the cross-copy pool re-serves the memoized fixpoint.

"Cold" is the seed configuration (oracle kernel, warm re-solves off);
"warm" is the shipped default (``RunnerConfig()``: auto kernel, warm
re-solve ON).  Answers are asserted bit-identical query by query, the
headline single-solve speedup is asserted >= 10x, and whole-sweep
walls plus answer-ladder counters land in ``BENCH_core.json`` for CI
artifact upload and trending.
"""

import json
import time

from _bench_utils import write_artifact
from repro.analysis import sweep_grid
from repro.core import kernel as core_kernel
from repro.core.longest_path import (longest_paths, lp_counter_snapshot,
                                     lp_counters_delta)
from repro.core.task import ANCHOR_NAME
from repro.engine import BatchRunner, RunnerConfig
from repro.examples_data import fig1_problem
from repro.scheduling import SchedulerOptions
from repro.scheduling.timing import TimingScheduler
from repro.workloads import RandomWorkloadConfig, random_problem

QUERIES = 240
GRID_SIDE = 14
SPEEDUP_FLOOR = 10.0


def _grid_problem():
    return random_problem(11, RandomWorkloadConfig(
        tasks=28, resources=4, layers=5))


def _grid(problem):
    budgets = [round(problem.p_max * (0.70 + 0.05 * index), 2)
               for index in range(GRID_SIDE)]
    levels = [round(0.5 + 0.28 * index, 2)
              for index in range(GRID_SIDE)]
    return budgets, levels


def _serialized(problem):
    graph = problem.fresh_graph()
    TimingScheduler(SchedulerOptions()).schedule_graph(graph)
    return graph


def _configured(kernel, warm):
    previous = (core_kernel.set_kernel(kernel),
                core_kernel.set_warm(warm))
    core_kernel.clear_warm_pool()
    return previous


def _restore(previous):
    core_kernel.set_kernel(previous[0])
    core_kernel.set_warm(previous[1])
    core_kernel.clear_warm_pool()


def _resolve_after_rollback(graph, kernel, warm):
    """Mean per-query solver seconds for the backtrack pattern.

    Only the ``longest_paths`` call is on the clock — the
    checkpoint/tighten/rollback churn costs the same under either
    configuration and would otherwise drown the tiny Fig. 1 instance
    in mutation overhead.
    """
    names = graph.task_names()
    previous = _configured(kernel, warm)
    try:
        longest_paths(graph)  # settle this configuration's ladder
        answers = []
        elapsed = 0.0
        for index in range(QUERIES):
            name = names[index % len(names)]
            token = graph.checkpoint()
            graph.add_edge(ANCHOR_NAME, name, 1 + index % 7,
                           tag="delay")
            graph.rollback(token)
            t0 = time.perf_counter()
            result = longest_paths(graph)
            elapsed += time.perf_counter() - t0
            answers.append(dict(result.distance))
    finally:
        _restore(previous)
    return elapsed / QUERIES, answers


def _fresh_copy_solve(graph, kernel, warm):
    """Mean per-copy solve seconds — the sweep-point start cost.

    Copies are pre-built so ``ConstraintGraph.copy`` stays off the
    clock; the metric is the solve a neighboring sweep point pays.
    """
    previous = _configured(kernel, warm)
    try:
        longest_paths(graph)  # first copy seeds the cross-copy pool
        copies = [graph.copy() for _ in range(QUERIES)]
        answers = []
        elapsed = 0.0
        for copy in copies:
            t0 = time.perf_counter()
            result = longest_paths(copy)
            elapsed += time.perf_counter() - t0
            answers.append(dict(result.distance))
    finally:
        _restore(previous)
    return elapsed / QUERIES, answers


def _sweep(problem, budgets, levels, kernel, warm):
    snapshot = lp_counter_snapshot()
    runner = BatchRunner(RunnerConfig(core_kernel=kernel,
                                      warm_start=warm,
                                      use_cache=False))
    t0 = time.perf_counter()
    points = sweep_grid(problem, budgets, levels, runner=runner)
    wall = time.perf_counter() - t0
    signature = [(point.p_max, point.p_min, point.feasible,
                  point.energy_cost, point.peak_power)
                 for point in points]
    counters = {key: value
                for key, value in lp_counters_delta(snapshot).items()
                if value}
    return wall, signature, counters


def _workload_doc(name, problem):
    graph = _serialized(problem)
    cold_rb, cold_rb_ans = _resolve_after_rollback(graph.copy(),
                                                   "oracle", False)
    warm_rb, warm_rb_ans = _resolve_after_rollback(graph.copy(),
                                                   "auto", True)
    assert cold_rb_ans == warm_rb_ans, \
        f"{name}: warm rollback re-solve diverged from the oracle"

    cold_cp, cold_cp_ans = _fresh_copy_solve(graph, "oracle", False)
    warm_cp, warm_cp_ans = _fresh_copy_solve(graph, "auto", True)
    assert cold_cp_ans == warm_cp_ans, \
        f"{name}: warm sweep-point solve diverged from the oracle"

    budgets, levels = _grid(problem)
    base_wall, base_sig, base_counters = _sweep(problem, budgets,
                                                levels, "oracle", False)
    fast_wall, fast_sig, fast_counters = _sweep(problem, budgets,
                                                levels, "auto", True)
    assert base_sig == fast_sig, \
        f"{name}: fast-path sweep grid diverged from the oracle sweep"

    return {
        "tasks": len(problem.graph),
        "resolve_after_rollback": {
            "cold_us": round(cold_rb * 1e6, 2),
            "warm_us": round(warm_rb * 1e6, 2),
            "speedup": round(cold_rb / warm_rb, 2),
        },
        "fresh_copy_solve": {
            "cold_us": round(cold_cp * 1e6, 2),
            "warm_us": round(warm_cp * 1e6, 2),
            "speedup": round(cold_cp / warm_cp, 2),
        },
        "sweep_grid": {
            "side": GRID_SIDE,
            "baseline_s": round(base_wall, 3),
            "default_s": round(fast_wall, 3),
            "ratio": round(base_wall / fast_wall, 2),
            "identical": base_sig == fast_sig,
            "baseline_counters": base_counters,
            "default_counters": fast_counters,
        },
    }


def test_single_solve_speedup_json(artifact_dir):
    """>=10x warm single-solve on Fig. 1 and the 14x14 grid workload,
    bit-identical answers, sweeps no slower — all under the shipped
    default configuration (warm re-solve ON)."""
    workloads = {
        "fig1": _workload_doc("fig1", fig1_problem()),
        "grid14x14": _workload_doc("grid14x14", _grid_problem()),
    }
    # Headline: time-weighted over both grids' query streams — the
    # cost of answering every benchmarked solver query cold versus
    # through the warm ladder.  Time-weighting is what a sweep
    # experiences: solver seconds concentrate on the larger instances.
    cold_total = sum(w["resolve_after_rollback"]["cold_us"]
                     for w in workloads.values())
    warm_total = sum(w["resolve_after_rollback"]["warm_us"]
                     for w in workloads.values())
    headline = round(cold_total / warm_total, 2)
    doc = {
        "bench": "core_kernel_single_solve",
        "queries": QUERIES,
        "numpy_available": core_kernel.HAVE_NUMPY,
        "defaults": {"core_kernel": RunnerConfig().core_kernel,
                     "warm_start": RunnerConfig().warm_start},
        "speedup_floor": SPEEDUP_FLOOR,
        "single_solve_speedup": headline,
        "workloads": workloads,
    }
    write_artifact(artifact_dir, "BENCH_core.json",
                   json.dumps(doc, indent=2, sort_keys=True) + "\n")

    assert doc["defaults"]["warm_start"] is True
    assert headline >= SPEEDUP_FLOOR, (
        f"single-solve speedup {headline:.1f}x is below the "
        f"{SPEEDUP_FLOOR:.0f}x floor ({doc['workloads']})")
    for name, work in workloads.items():
        # every workload must win individually (the tiny Fig. 1
        # instance bottoms out near the fixed cost of a dict restore,
        # so its floor is lower than the headline's)
        assert work["resolve_after_rollback"]["speedup"] >= 2.0, \
            f"{name}: {work['resolve_after_rollback']}"
        # the cross-copy pool must also beat cold starts, and the
        # whole-sweep wall (dominated by non-solver Python) must at
        # least hold parity with generous CI jitter slack
        assert work["fresh_copy_solve"]["speedup"] >= 2.0, \
            f"{name}: {work['fresh_copy_solve']}"
        assert work["sweep_grid"]["ratio"] >= 0.7, \
            f"{name}: {work['sweep_grid']}"
