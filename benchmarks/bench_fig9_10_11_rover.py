"""Figs. 9, 10, 11 — the rover's power-aware schedules per solar case.

Regenerates the three power-view figures: the parallel best-case
schedule (with the two inserted pre-warm heating tasks, Fig. 9), the
partially-parallel typical case (Fig. 10), and the fully-serial worst
case (Fig. 11).  Asserts the structural claims the paper makes about
each and times the per-case pipeline.
"""

import pytest

from _bench_utils import write_artifact
from repro.gantt import chart_result, render_chart, write_svg
from repro.mission import POWER_TABLE, MarsRover, SolarCase


@pytest.fixture(scope="module")
def results(rover):
    return {case: rover.power_aware_result(case) for case in SolarCase}


def _emit(artifact_dir, name, result, title):
    chart = chart_result(result, title=title)
    write_artifact(artifact_dir, f"{name}.txt", render_chart(chart))
    write_svg(chart, f"{artifact_dir}/{name}.svg")


def test_fig9_best_case(rover, artifact_dir):
    """Best case: unrolled, two inserted heating tasks, overlapping
    operations, 50 s per iteration."""
    result = rover.unrolled_result(SolarCase.BEST, iterations=2,
                                   prewarm=True)
    names = result.schedule.as_dict()
    assert "i1_prewarm_s1" in names and "i1_prewarm_s2" in names
    assert result.metrics.spikes == 0
    _emit(artifact_dir, "fig9_best_case", result,
          "Fig. 9 - best case (unrolled, prewarm)")


def test_fig10_typical_case(results, artifact_dir):
    """Typical case: some parallelism survives; 60 s, 147 J."""
    result = results[SolarCase.TYPICAL]
    assert result.finish_time == 60
    # parallel operations exist: peak above any single task + CPU
    powers = POWER_TABLE[SolarCase.TYPICAL]
    assert result.metrics.peak_power > powers.cpu + powers.driving
    _emit(artifact_dir, "fig10_typical_case", result,
          "Fig. 10 - typical case")


def test_fig11_worst_case(results, artifact_dir):
    """Worst case: tight budget forces full serialization (75 s)."""
    result = results[SolarCase.WORST]
    assert result.finish_time == 75
    # never more than one power-drawing task at a time
    for t in range(result.finish_time):
        active = result.schedule.active_tasks(t)
        assert len(active) <= 1
    _emit(artifact_dir, "fig11_worst_case", result,
          "Fig. 11 - worst case (serialized)")


@pytest.mark.parametrize("case", list(SolarCase))
def test_bench_rover_case(benchmark, case, paper_options):
    """Time the full pipeline per solar case (fresh rover each round
    so no schedule caches are reused)."""

    def run():
        return MarsRover(options=paper_options).power_aware_result(case)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.metrics.spikes == 0
