"""Idle-shutdown policies — related-work family #1, measured.

Section 2's first critique targets timeout/predictive shutdown
managers: useful, but "they do not control their workload; instead,
they make the best effort to minimize power consumption by treating the
workload as a given".  This bench runs the classic policies *on top of*
both the JPL-serial and the power-aware rover schedules (with plausible
idle draws for the subsystems) and shows:

* shutdown managers do recover idle energy (timeout < always-on, the
  oracle bounds both) — the related work's real contribution;
* they are orthogonal to scheduling: they change no start time, buy no
  speed, and their savings compose with the scheduler's — the paper's
  point that workload-shaping is a different lever.
"""

import pytest

from _bench_utils import write_artifact
from repro.analysis import format_table
from repro.mission import SolarCase
from repro.power import (AlwaysOn, OracleShutdown, TimeoutShutdown,
                         idle_energy_report)

#: Plausible idle draws for the rover's subsystems (watts).  The paper
#: gives no idle figures; these are small relative to Table 2's active
#: powers and exist to make the policy comparison non-degenerate.
IDLE_POWERS = {
    "hazard": 1.5,
    "steering": 0.8,
    "driving": 0.8,
    "heater_s1": 0.3,
    "heater_s2": 0.3,
    "heater_w1": 0.3,
    "heater_w2": 0.3,
    "heater_w3": 0.3,
}

POLICIES = (AlwaysOn(),
            TimeoutShutdown(timeout=5, wake_energy=3.0),
            TimeoutShutdown(timeout=15, wake_energy=3.0),
            OracleShutdown(wake_energy=3.0))


@pytest.fixture(scope="module")
def shutdown_rows(rover):
    schedules = {
        "jpl-serial": rover.jpl_result(SolarCase.TYPICAL).schedule,
        "power-aware": rover.power_aware_result(
            SolarCase.TYPICAL).schedule,
    }
    rows = []
    for label, schedule in schedules.items():
        for policy in POLICIES:
            report = idle_energy_report(schedule, policy, IDLE_POWERS)
            rows.append({"schedule": label, "policy": policy.name,
                         "idle_energy_J": round(report["total"], 1),
                         "tau_s": schedule.makespan})
    return rows


def test_shutdown_recovers_idle_energy(shutdown_rows):
    by_key = {(r["schedule"], r["policy"]): r for r in shutdown_rows}
    for label in ("jpl-serial", "power-aware"):
        on = by_key[(label, "always-on")]["idle_energy_J"]
        t5 = by_key[(label, "timeout-5")]["idle_energy_J"]
        oracle = by_key[(label, "oracle")]["idle_energy_J"]
        assert oracle <= t5 <= on
        assert oracle < on  # the gaps are long enough to matter


def test_shutdown_buys_no_speed(shutdown_rows):
    """The workload is a given: every policy reports the same tau."""
    for label in ("jpl-serial", "power-aware"):
        taus = {r["tau_s"] for r in shutdown_rows
                if r["schedule"] == label}
        assert len(taus) == 1


def test_savings_compose_with_scheduling(shutdown_rows):
    """The power-aware schedule is 15 s shorter AND still benefits
    from shutdown — the levers are orthogonal, as the paper argues."""
    by_key = {(r["schedule"], r["policy"]): r for r in shutdown_rows}
    pa_on = by_key[("power-aware", "always-on")]["idle_energy_J"]
    pa_oracle = by_key[("power-aware", "oracle")]["idle_energy_J"]
    assert pa_oracle < pa_on
    assert by_key[("power-aware", "oracle")]["tau_s"] \
        < by_key[("jpl-serial", "oracle")]["tau_s"]


def test_shutdown_artifact(shutdown_rows, artifact_dir):
    write_artifact(artifact_dir, "shutdown_policies.txt",
                   format_table(shutdown_rows,
                                title="Idle-shutdown policies on the "
                                      "rover (typical case)"))


def test_bench_idle_report(benchmark, rover):
    schedule = rover.jpl_result(SolarCase.TYPICAL).schedule
    policy = TimeoutShutdown(timeout=5, wake_energy=3.0)
    report = benchmark(
        lambda: idle_energy_report(schedule, policy, IDLE_POWERS))
    assert report["total"] > 0
