"""Online session bench: incremental suffix re-solves vs cold re-solves.

The value proposition of :mod:`repro.online` is that a live mission
does *not* pay a full offline solve per arrival: the committed prefix
is frozen, the suffix re-solve works on a graph copy that carries the
kernel's warm-start journal, and consecutive solves of the growing
mission hit the warm pool.  This bench puts a number on that claim
with the repository's headline online workload — a 50-arrival stream
cut from the unrolled Mars-rover mission (typical solar case, five
iterations) with clock advances interleaved every 10 arrivals, so a
realistic committed prefix accretes as the mission runs.

Three measurements land in ``BENCH_online.json``:

* ``incremental`` — per-arrival wall time of the live session
  (``MissionSession.apply`` on each arrival command, warm re-solve ON,
  history frozen by the advance cadence);
* ``cold_full_resolve`` — what an engine without the online layer
  would pay: after each arrival, a cold full ``MinPowerScheduler``
  solve of the entire accumulated problem (warm pool cleared every
  time, nothing frozen);
* ``warm_hit`` — the settled-mission re-solve: quiescing the finished
  session again warm vs cold, the pure warm-pool hit with the graph no
  longer changing.

Correctness rides along: the stream must admit all 50 arrivals, and a
no-advance replay of the same stream must quiesce *bit-identical* to
the offline solve of the accumulated problem (the quiescence theorem,
here checked on the bench workload itself).
"""

import json
import time

from _bench_utils import write_artifact
from repro.core import kernel as core_kernel
from repro.mission import MarsRover
from repro.mission.rover import SolarCase
from repro.online import (MissionSession, SessionConfig,
                          arrivals_from_problem)
from repro.scheduling import SchedulerOptions
from repro.scheduling.min_power import MinPowerScheduler

ARRIVALS = 50
ROVER_ITERATIONS = 5
ADVANCE_EVERY = 10   # arrivals between clock advances
ADVANCE_STEP = 20    # ticks per advance
SPEEDUP_FLOOR = 1.3  # observed ~2.0x; generous CI jitter slack
WARM_HIT_FLOOR = 1.1  # observed ~1.4x


def _mission_stream():
    """The bench workload: 50 rover arrivals + advance cadence.

    A prefix of an ``arrivals_from_problem`` stream is self-consistent
    (each arrival only references already-arrived tasks), so cutting
    the 55-task unrolled mission at 50 needs no repair.
    """
    rover = MarsRover.standard()
    problem = rover.problem(
        SolarCase.TYPICAL,
        graph=rover.unrolled_graph(SolarCase.TYPICAL,
                                   iterations=ROVER_ITERATIONS))
    arrivals = arrivals_from_problem(problem, quiesce=False)[:ARRIVALS]
    commands = []
    for index, arrival in enumerate(arrivals):
        commands.append(arrival)
        if index % ADVANCE_EVERY == ADVANCE_EVERY - 1:
            commands.append({
                "event": "advance",
                "to": (index // ADVANCE_EVERY + 1) * ADVANCE_STEP})
    return problem, arrivals, commands


def _session(problem, name):
    return MissionSession(SessionConfig(
        p_max=problem.p_max, p_min=problem.p_min,
        baseline=problem.baseline, options=SchedulerOptions(),
        name=name))


def _configured(warm):
    previous = core_kernel.set_warm(warm)
    core_kernel.clear_warm_pool()
    return previous


def _restore(previous):
    core_kernel.set_warm(previous)
    core_kernel.clear_warm_pool()


def _quiescence_check(problem, arrivals):
    """The quiescence theorem on the bench workload: all arrivals up
    front, no advances -> bit-identical to the offline solve."""
    previous = _configured(True)
    try:
        session = _session(problem, "quiescence-probe")
        for arrival in arrivals:
            session.apply(arrival)
        assert not session.rejected, session.rejected
        online = session.quiesce()
        offline = MinPowerScheduler(SchedulerOptions()).solve(
            session.problem())
    finally:
        _restore(previous)
    assert online.schedule.as_dict() == offline.schedule.as_dict(), \
        "quiesced session diverged from the offline solve"
    assert online.energy_cost == offline.energy_cost
    assert online.metrics.peak_power == offline.metrics.peak_power
    return online


def _timed_incremental(problem, commands):
    """Per-arrival seconds for the live session (frozen prefix, warm
    re-solve ON); advances run off the clock."""
    previous = _configured(True)
    try:
        session = _session(problem, "incremental")
        times = []
        for command in commands:
            if command["event"] == "arrival":
                t0 = time.perf_counter()
                session.apply(command)
                times.append(time.perf_counter() - t0)
            else:
                session.apply(command)
        assert not session.rejected, (
            f"advance cadence must keep every arrival admissible, "
            f"rejected {session.rejected}")
        assert len(session.admitted) == ARRIVALS
        warm_hit = _warm_hit(session)
    finally:
        _restore(previous)
    return session, times, warm_hit


def _warm_hit(session):
    """Settled-mission re-solve: repeated quiesce warm vs cold."""
    warm = None
    for _ in range(3):  # last repeat is a pure warm-pool hit
        t0 = time.perf_counter()
        session.quiesce()
        warm = time.perf_counter() - t0
    previous = _configured(False)
    try:
        t0 = time.perf_counter()
        session.quiesce()
        cold = time.perf_counter() - t0
    finally:
        _restore(previous)
    return {"warm_ms": round(warm * 1e3, 2),
            "cold_ms": round(cold * 1e3, 2),
            "speedup": round(cold / warm, 2)}


def _timed_cold_full(problem, arrivals, expected):
    """Per-arrival seconds for the no-online-layer strawman: a cold
    full solve of the whole accumulated problem after each arrival.

    The accumulating session itself runs off the clock (it is only the
    graph builder here); the timed work is the cold offline solve an
    engine without incremental sessions would repeat from scratch.
    """
    builder = _session(problem, "cold-builder")
    scheduler = MinPowerScheduler(SchedulerOptions())
    previous = _configured(False)
    try:
        times = []
        final = None
        for arrival in arrivals:
            builder.apply(arrival)
            core_kernel.clear_warm_pool()
            t0 = time.perf_counter()
            final = scheduler.solve(builder.problem())
            times.append(time.perf_counter() - t0)
    finally:
        _restore(previous)
    assert final.schedule.as_dict() == expected.schedule.as_dict(), \
        "cold comparator solved a different mission"
    return times


def _stats(times):
    return {"total_s": round(sum(times), 3),
            "mean_ms": round(sum(times) / len(times) * 1e3, 2),
            "max_ms": round(max(times) * 1e3, 2)}


def test_incremental_session_speedup_json(artifact_dir):
    """Live-session arrivals beat cold full re-solves >= 1.3x on the
    50-arrival rover stream, the settled-mission warm hit >= 1.1x, and
    the no-advance replay is bit-identical to the offline solve."""
    problem, arrivals, commands = _mission_stream()
    quiesced = _quiescence_check(problem, arrivals)
    session, warm_times, warm_hit = _timed_incremental(problem,
                                                       commands)
    cold_times = _timed_cold_full(problem, arrivals, quiesced)

    speedup = round(sum(cold_times) / sum(warm_times), 2)
    doc = {
        "bench": "online_incremental_session",
        "workload": {
            "mission": "rover-typical-unrolled",
            "iterations": ROVER_ITERATIONS,
            "arrivals": ARRIVALS,
            "advance_every": ADVANCE_EVERY,
            "advance_step": ADVANCE_STEP,
        },
        "numpy_available": core_kernel.HAVE_NUMPY,
        "admitted": len(session.admitted),
        "rejected": len(session.rejected),
        "committed": len(session.committed),
        "incremental": _stats(warm_times),
        "cold_full_resolve": _stats(cold_times),
        "per_arrival_speedup": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "warm_hit": dict(warm_hit, floor=WARM_HIT_FLOOR),
        "quiescence_identical": True,
    }
    write_artifact(artifact_dir, "BENCH_online.json",
                   json.dumps(doc, indent=2, sort_keys=True) + "\n")

    assert doc["committed"] > 0, \
        "the cadence froze nothing -- the bench is not incremental"
    assert speedup >= SPEEDUP_FLOOR, (
        f"incremental arrivals only {speedup:.2f}x over cold full "
        f"re-solves (floor {SPEEDUP_FLOOR}x): {doc}")
    assert warm_hit["speedup"] >= WARM_HIT_FLOOR, (
        f"settled-mission warm hit only {warm_hit['speedup']:.2f}x "
        f"(floor {WARM_HIT_FLOOR}x): {warm_hit}")
