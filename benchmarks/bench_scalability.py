"""Scalability — scheduler runtime and success rate vs problem size.

The paper reports no scaling data ("in practice, our heuristics perform
well"); this bench quantifies that claim on synthetic layered-DAG
workloads: wall-clock per pipeline run and the fraction of instances
solved, as the task count grows.
"""

import pytest

from _bench_utils import write_artifact
from repro.analysis import format_table
from repro.errors import ReproError, SchedulingFailure
from repro.scheduling import PowerAwareScheduler, SchedulerOptions
from repro.workloads import RandomWorkloadConfig, random_problem

FAST = SchedulerOptions(max_power_restarts=1, min_power_scans=2,
                        max_spike_attempts=1000, seed=7)

SIZES = (10, 20, 40, 80)


def _config(tasks: int) -> RandomWorkloadConfig:
    return RandomWorkloadConfig(tasks=tasks,
                                resources=max(3, tasks // 5),
                                layers=max(2, tasks // 6),
                                tightness=0.8)


@pytest.mark.parametrize("tasks", SIZES)
def test_bench_pipeline_scaling(benchmark, tasks):
    """Median pipeline time on a representative instance per size."""
    problem = random_problem(1000 + tasks, _config(tasks))

    def run():
        try:
            return PowerAwareScheduler(FAST).solve(problem)
        except SchedulingFailure:
            return None

    benchmark.pedantic(run, rounds=2, iterations=1)


def test_success_rate_table(artifact_dir):
    """Success rate and quality-vs-lower-bound over 8 seeds per size.

    The exhaustive oracle cannot reach these sizes; the analytic
    makespan lower bound (critical path / resource load / energy over
    headroom) calibrates the pipeline instead.
    """
    from repro.analysis import lower_bound

    rows = []
    for tasks in SIZES:
        solved = 0
        total = 8
        gaps = []
        for seed in range(total):
            problem = random_problem(2000 + 37 * tasks + seed,
                                     _config(tasks))
            try:
                result = PowerAwareScheduler(FAST).solve(problem)
                assert result.metrics.spikes == 0
                solved += 1
                bound = lower_bound(problem)
                if bound > 0:
                    gaps.append(100.0 * (result.finish_time - bound)
                                / bound)
            except (SchedulingFailure, ReproError):
                pass
        row = {"tasks": tasks, "solved": f"{solved}/{total}"}
        if gaps:
            row["mean_gap_to_LB_pct"] = round(sum(gaps) / len(gaps), 1)
            row["max_gap_to_LB_pct"] = round(max(gaps), 1)
        rows.append(row)
        assert solved >= total // 2, \
            f"heuristics should solve most {tasks}-task instances"
    write_artifact(artifact_dir, "scalability_success.txt",
                   format_table(rows,
                                title="Pipeline success rate and gap "
                                      "to the makespan lower bound"))
