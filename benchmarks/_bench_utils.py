"""Helpers shared by the benchmark files."""

from __future__ import annotations

import os

ARTIFACT_DIR = os.path.join(os.path.dirname(__file__), "artifacts")


def write_artifact(directory: str, name: str, content: str) -> str:
    """Write a regenerated table/figure under benchmarks/artifacts/."""
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content if content.endswith("\n")
                     else content + "\n")
    return path
