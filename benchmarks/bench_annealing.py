"""Annealing polish — what revisiting task orders buys.

Section 5.3 notes that exploring "all valid partial orderings" is
exponential and settles for a few heuristic scans.  The annealing
improver samples that order space stochastically from a valid start.
This bench measures the polish on three starts:

* the pipeline's own output (is the constructive result already at a
  local optimum?),
* the serial baseline (can local search recover the parallelism the
  pipeline builds constructively?),
* random synthetic instances (does polish help where heuristics
  wobble?).
"""

import pytest

from _bench_utils import write_artifact
from repro.analysis import format_table
from repro.errors import SchedulingFailure
from repro.mission import MarsRover, SolarCase
from repro.scheduling import (AnnealingImprover, SchedulerOptions,
                              schedule, serial_schedule)
from repro.workloads import random_problem

FAST = SchedulerOptions(max_power_restarts=1, min_power_scans=2,
                        max_spike_attempts=500, seed=7)
SA = AnnealingImprover(iterations=4000, seed=11)


@pytest.fixture(scope="module")
def polish_rows():
    rows = []
    rover = MarsRover(options=FAST)
    cases = [("rover-typical", rover.problem(SolarCase.TYPICAL))]
    for seed in (900, 901, 902):
        cases.append((f"random-{seed}", random_problem(seed)))
    for label, problem in cases:
        try:
            pipe = schedule(problem, FAST)
        except SchedulingFailure:
            continue
        polished = SA.improve(problem, pipe.schedule)
        row = {"problem": label,
               "pipe_tau_s": pipe.finish_time,
               "pipe_Ec_J": round(pipe.energy_cost, 1),
               "sa_tau_s": polished.finish_time,
               "sa_Ec_J": round(polished.energy_cost, 1)}
        try:
            serial = serial_schedule(problem, FAST)
            from_serial = SA.improve(problem, serial.schedule)
            row["serial_tau_s"] = serial.finish_time
            row["sa_from_serial_tau_s"] = from_serial.finish_time
        except SchedulingFailure:
            pass
        rows.append(row)
    return rows


def test_polish_never_hurts(polish_rows):
    for row in polish_rows:
        assert (row["sa_tau_s"], row["sa_Ec_J"]) \
            <= (row["pipe_tau_s"], row["pipe_Ec_J"] + 1e-6)


def test_annealing_recovers_parallelism_from_serial(polish_rows):
    """Started from the fully-serial schedule, local search should
    close most of the gap to the constructive pipeline."""
    rows = [row for row in polish_rows
            if "sa_from_serial_tau_s" in row]
    assert rows
    for row in rows:
        assert row["sa_from_serial_tau_s"] < row["serial_tau_s"] \
            or row["serial_tau_s"] == row["pipe_tau_s"]


def test_annealing_artifact(polish_rows, artifact_dir):
    write_artifact(artifact_dir, "annealing_polish.txt",
                   format_table(polish_rows,
                                title="Annealing polish vs the "
                                      "pipeline"))


def test_bench_annealing_iterations(benchmark):
    problem = random_problem(900)
    base = schedule(problem, FAST)
    improver = AnnealingImprover(iterations=1500, seed=11)

    def run():
        return improver.improve(problem, base.schedule)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.metrics.spikes == 0
