"""Mission lifetime vs battery capacity — the intro's motivation, run.

The paper motivates power-awareness with "the life-time of its mission
is limited by the amount of remaining battery energy", but Table 4
fixes the mission length (48 steps) rather than the battery.  This
bench inverts the question: *given a battery, how far does each policy
get?*  Both policies run until the battery dies under the decaying
solar trace (9 W forever after 1200 s).

The result is a genuine crossover, worth knowing before choosing a
policy:

* with a **small** battery, JPL's frugal serial schedule travels
  farther — power-aware spends battery buying speed it then cannot
  afford (measured: 32 vs 28 steps at 500 J);
* with a **generous** battery, power-aware wins decisively — the extra
  ground covered while solar power is free dominates (62 vs 54 steps
  at 5 kJ).
"""

import pytest

from _bench_utils import write_artifact
from repro.analysis import format_table
from repro.mission import (AdaptivePolicy, JPLPolicy,
                           MissionSimulator, PowerAwarePolicy,
                           paper_mission_environment)

CAPACITIES = (250, 500, 1000, 2000, 3000, 5000, 8000)
_BIG_TARGET = 500  # effectively "until the battery dies"


@pytest.fixture(scope="module")
def lifetime_rows(rover):
    jpl_policy = JPLPolicy(rover)
    pa_policy = PowerAwarePolicy(rover)
    adaptive_policy = AdaptivePolicy(rover, reserve=1_000.0)
    rows = []
    for capacity in CAPACITIES:
        jpl = MissionSimulator(paper_mission_environment(capacity),
                               jpl_policy, _BIG_TARGET).run()
        pa = MissionSimulator(paper_mission_environment(capacity),
                              pa_policy, _BIG_TARGET).run()
        adaptive = MissionSimulator(
            paper_mission_environment(capacity), adaptive_policy,
            _BIG_TARGET).run()
        rows.append({"capacity_J": capacity,
                     "jpl_steps": jpl.total_steps,
                     "pa_steps": pa.total_steps,
                     "adaptive_steps": adaptive.total_steps,
                     "jpl_time_s": round(jpl.total_time),
                     "pa_time_s": round(pa.total_time)})
    return rows


def test_adaptive_policy_dominates_both(lifetime_rows):
    """Closing the loop on battery state removes the crossover: the
    hybrid matches the better pure policy at every capacity (and beats
    both where neither regime dominates)."""
    for row in lifetime_rows:
        assert row["adaptive_steps"] >= max(row["jpl_steps"],
                                            row["pa_steps"])


def test_power_aware_wins_with_generous_battery(lifetime_rows):
    for row in lifetime_rows:
        if row["capacity_J"] >= 2000:
            assert row["pa_steps"] > row["jpl_steps"]


def test_frugal_baseline_wins_when_battery_binds(lifetime_rows):
    """The crossover: at small capacities the serial schedule's lower
    burn rate covers more ground before the battery dies."""
    small = [row for row in lifetime_rows if row["capacity_J"] <= 500]
    assert any(row["jpl_steps"] >= row["pa_steps"] for row in small)


def test_lifetime_monotone_in_capacity(lifetime_rows):
    for key in ("jpl_steps", "pa_steps"):
        values = [row[key] for row in lifetime_rows]
        assert values == sorted(values)


def test_lifetime_artifact(lifetime_rows, artifact_dir):
    write_artifact(artifact_dir, "mission_lifetime.txt",
                   format_table(lifetime_rows,
                                title="Mission lifetime vs battery "
                                      "capacity (steps before "
                                      "depletion)"))


def test_bench_lifetime_sweep(benchmark, rover):
    policy = PowerAwarePolicy(rover)

    def run():
        return MissionSimulator(paper_mission_environment(2000),
                                policy, _BIG_TARGET).run()

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert report.battery_depleted
