"""Table 4 — the 48-step mission under decaying solar power.

Regenerates the paper's end-to-end comparison: the JPL fixed serial
schedule covers 16 steps per 600 s phase and finishes in 1800 s with
most of its battery cost in the worst phase; the power-aware policy
front-loads distance while solar power is plentiful, finishing both
faster and cheaper.  Paper bottom line: 33.3 % time / 32.7 % energy
improvement; the shape (double-digit wins on both axes) must hold.
"""

import pytest

from _bench_utils import write_artifact
from repro.analysis import format_table
from repro.mission import (JPLPolicy, MissionSimulator,
                           PowerAwarePolicy, compare_reports,
                           paper_mission_environment)


@pytest.fixture(scope="module")
def reports(rover):
    jpl = MissionSimulator(paper_mission_environment(),
                           JPLPolicy(rover), 48).run()
    pa = MissionSimulator(paper_mission_environment(),
                          PowerAwarePolicy(rover), 48).run()
    return jpl, pa


def test_jpl_phases_match_paper(reports):
    jpl, _ = reports
    phases = jpl.phases()
    assert [p.steps for p in phases] == [16, 16, 16]
    assert jpl.total_time == pytest.approx(1800.0)
    assert phases[1].energy_cost == pytest.approx(440.0, rel=0.02)
    assert phases[2].energy_cost == pytest.approx(3104.0, rel=0.02)


def test_power_aware_front_loads_distance(reports):
    _, pa = reports
    phases = pa.phases()
    assert phases[0].steps >= 22      # paper: 24 in the best phase
    assert phases[-1].steps <= 8      # paper: 4 left for the worst


def test_improvements_on_both_axes(reports):
    jpl, pa = reports
    comparison = compare_reports(jpl, pa)
    assert comparison["time_improvement_pct"] > 15.0
    assert comparison["energy_improvement_pct"] > 15.0


def test_table4_artifact(reports, artifact_dir):
    jpl, pa = reports
    rows = []
    for report in (jpl, pa):
        for phase in report.phases():
            rows.append({"policy": report.policy,
                         "solar_W": phase.solar,
                         "steps": phase.steps,
                         "time_s": round(phase.time),
                         "Ec_J": round(phase.energy_cost, 1)})
    comparison = compare_reports(jpl, pa)
    footer = (f"\nimprovement: "
              f"{comparison['time_improvement_pct']:.1f}% time, "
              f"{comparison['energy_improvement_pct']:.1f}% energy "
              "(paper: 33.3% / 32.7%)")
    write_artifact(artifact_dir, "table4_mission.txt",
                   format_table(rows, title="Table 4: mission phases")
                   + footer)


def test_mission_timeline_figure(rover, artifact_dir):
    """The Table 4 story as one figure: consumption vs the stepping
    solar supply, iteration boundaries annotated with cumulative
    steps."""
    from repro.gantt import MissionTrack, write_mission_svg
    from repro.mission import PowerAwarePolicy
    from repro.power import StepSolar

    solar = StepSolar.paper_mission()
    policy = PowerAwarePolicy(rover)
    policy.reset()
    env = paper_mission_environment()
    track = MissionTrack("power-aware mission (Table 4)")
    t, steps = 0.0, 0
    while steps < 48:
        case = env.case_at(t)
        plan = policy.next_iteration(case, t)
        track.add_profile(plan.profile, start_time=t,
                          note=f"{steps + plan.steps}")
        t += plan.duration
        steps += plan.steps
    path = write_mission_svg(track, solar,
                             f"{artifact_dir}/table4_mission.svg",
                             title="Table 4: power-aware mission, "
                                   "consumption vs solar")
    assert open(path).read().startswith("<svg")


def test_bench_mission_simulation(benchmark, rover):
    """Time the simulation itself (policies pre-warmed via fixtures)."""
    policy = PowerAwarePolicy(rover)
    policy.next_iteration  # touch

    def run():
        return MissionSimulator(paper_mission_environment(), policy,
                                48).run()

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert report.completed
