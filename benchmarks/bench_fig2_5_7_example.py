"""Figs. 2, 5, 7 — the nine-task running example through the pipeline.

Regenerates the paper's illustrative schedules: the time-valid schedule
with one spike and several gaps (Fig. 2), the power-valid schedule
after delaying h and f (Fig. 5), and the improved full-utilization
schedule (Fig. 7).  Writes each as an ASCII chart and an SVG under
``benchmarks/artifacts/`` and times the full three-stage pipeline.
"""

import pytest

from _bench_utils import write_artifact
from repro.core.task import ANCHOR_NAME
from repro.examples_data import (FIG1_P_MAX, FIG1_P_MIN, FIG1_TAU,
                                 fig1_options, fig1_problem)
from repro.gantt import chart_result, render_chart, write_svg
from repro.scheduling import PowerAwareScheduler


@pytest.fixture(scope="module")
def pipeline():
    return PowerAwareScheduler(fig1_options()).solve_pipeline(
        fig1_problem())


def test_fig2_time_valid_shape(pipeline, artifact_dir):
    result = pipeline.timing
    assert result.finish_time == FIG1_TAU
    assert len(result.profile.spikes(FIG1_P_MAX)) == 1
    low = [s for s in result.profile.segments if s[2] < FIG1_P_MIN]
    assert len(low) >= 2  # "several power gaps"
    chart = chart_result(result, title="Fig. 2 - time-valid schedule")
    write_artifact(artifact_dir, "fig2_time_valid.txt",
                   render_chart(chart))
    write_svg(chart, f"{artifact_dir}/fig2_time_valid.svg")


def test_fig5_h_and_f_delayed(pipeline, artifact_dir):
    result = pipeline.max_power
    graph = result.extra["graph"]
    delayed = sorted(e.dst for e in graph.edges()
                     if e.src == ANCHOR_NAME and e.tag == "delay")
    assert delayed == ["f", "h"]
    assert result.metrics.spikes == 0
    chart = chart_result(result, title="Fig. 5 - after max-power")
    write_artifact(artifact_dir, "fig5_power_valid.txt",
                   render_chart(chart))
    write_svg(chart, f"{artifact_dir}/fig5_power_valid.svg")


def test_fig7_improved_schedule(pipeline, artifact_dir):
    result = pipeline.min_power
    assert result.utilization == pytest.approx(1.0)
    assert result.profile.peak() <= FIG1_P_MAX + 1e-9
    assert result.profile.floor() >= FIG1_P_MIN - 1e-9
    chart = chart_result(result, title="Fig. 7 - after min-power")
    write_artifact(artifact_dir, "fig7_improved.txt",
                   render_chart(chart))
    write_svg(chart, f"{artifact_dir}/fig7_improved.svg")


def test_bench_example_pipeline(benchmark):
    """Time the full three-stage run on the nine-task example."""
    options = fig1_options()

    def run():
        return PowerAwareScheduler(options).solve(fig1_problem())

    result = benchmark(run)
    assert result.utilization == pytest.approx(1.0)
