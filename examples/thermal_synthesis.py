#!/usr/bin/env python3
"""Deriving — not assuming — the rover's heating constraints.

Table 1 gives the heating windows as data; this example shows the two
layers beneath them:

1. a first-order thermal model of the motors whose feasible
   heater-lead window *projects to* the paper's [5, 50] s constraint;
2. an automatic synthesizer that starts from a rover graph with **no
   heating tasks at all**, schedules it, checks the physics, and
   inserts window-constrained firings until every motor operation runs
   warm — converging to exactly the paper's hand-placed five-firing
   allocation.

Run:  python examples/thermal_synthesis.py
"""

from repro.mission import (MarsRover, SolarCase, ThermalParams,
                           check_thermal, feasible_lead_window,
                           motor_temperature, strip_heating,
                           synthesize_heating)


def derive_the_window() -> None:
    params = ThermalParams()
    print("== the physics behind Table 1 ==")
    print(f"ambient {params.ambient} C, operating threshold "
          f"{params.operating_threshold} C")
    temps = [(t, motor_temperature(params, [(0, 5)], t))
             for t in (0, 2, 5, 20, 40, 55, 70)]
    for t, temp in temps:
        marker = "warm" if temp >= params.operating_threshold else "COLD"
        print(f"  t={t:3d}s after heater start: {temp:7.1f} C  {marker}")
    drive = feasible_lead_window(params, heat_duration=5,
                                 op_duration=10)
    steer = feasible_lead_window(params, heat_duration=5,
                                 op_duration=5)
    print(f"feasible heater lead for driving:  {drive}  "
          "(Table 1: [5, 50])")
    print(f"feasible heater lead for steering: {steer}  "
          "(paper rounds to 50)")


def synthesize() -> None:
    print("\n== synthesizing the heating tasks from scratch ==")
    rover = MarsRover.standard()
    for case in SolarCase:
        bare = strip_heating(rover.iteration_graph(case))
        outcome = synthesize_heating(bare, case)
        hand = rover.power_aware_result(case)
        assert check_thermal(outcome.result.schedule) == []
        print(f"  {case.value:8s}: {outcome.firings} firings in "
              f"{outcome.rounds} rounds -> tau="
              f"{outcome.result.finish_time}s "
              f"Ec={outcome.result.energy_cost:.1f}J "
              f"(hand-placed: tau={hand.finish_time}s "
              f"Ec={hand.energy_cost:.1f}J)")
    print("  -> the synthesizer re-derives the paper's manual "
          "allocation exactly")


if __name__ == "__main__":
    derive_the_window()
    synthesize()
