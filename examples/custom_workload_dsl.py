#!/usr/bin/env python3
"""Authoring workloads: the text DSL, JSON round-trips, and batteries.

Shows the persistence layer a real deployment would use: write a
problem in the human-friendly DSL, solve it, save/reload both problem
and schedule as JSON, and run the resulting power profile against a
non-ideal battery model to see how power jitter costs real capacity
(the paper's Section 2 motivation for the min-power constraint).

Run:  python examples/custom_workload_dsl.py
"""

import os
import tempfile

from repro.io import (load_problem, load_schedule, parse_problem,
                      save_problem, save_schedule)
from repro.power import ConstantSolar, PowerSystem, RateCapacityBattery
from repro.scheduling import schedule

UAV_INSPECTION = """
# A solar UAV inspecting a pipeline: camera + gimbal + downlink share
# an 11 W bus with 6 W of solar; gimbal moves must happen 2..20 s
# before each capture, and the downlink sends within 30 s of capture.
problem uav-inspection pmax 11 pmin 6 baseline 1.0

resource gimbal kind mechanical
resource camera kind digital
resource radio  kind digital

task aim1     gimbal 3 4.0
task shoot1   camera 4 5.0
task aim2     gimbal 3 4.0
task shoot2   camera 4 5.0
task downlink radio  6 4.5

window aim1 shoot1 2 20
window aim2 shoot2 2 20
precedence shoot1 aim2
min shoot2 downlink 4
max shoot2 downlink 30
"""


def main() -> None:
    # 1. Parse and solve.
    problem = parse_problem(UAV_INSPECTION)
    result = schedule(problem)
    print(result.summary())
    print("starts:", result.schedule.as_dict())

    # 2. Round-trip through JSON.
    with tempfile.TemporaryDirectory() as tmp:
        problem_path = os.path.join(tmp, "uav.json")
        schedule_path = os.path.join(tmp, "uav_schedule.json")
        save_problem(problem, problem_path)
        save_schedule(result.schedule, schedule_path,
                      problem_name=problem.name)
        reloaded_problem = load_problem(problem_path)
        reloaded = load_schedule(schedule_path, reloaded_problem.graph)
        assert reloaded.as_dict() == result.schedule.as_dict()
        print(f"round-tripped through {problem_path}")

    # 3. Battery reality check: the same energy costs more charge when
    #    drawn in spikes.  Compare the scheduled (flattened) profile
    #    with a hypothetical worst case drawing the same excess energy
    #    at the battery's rated-power limit.
    battery = RateCapacityBattery(capacity=5_000.0, max_power=10.0,
                                  rated_power=3.0, alpha=0.8)
    system = PowerSystem(ConstantSolar(problem.p_min), battery)
    report = system.absorb(result.profile)
    print(f"battery delivered {report.battery_delivered:.1f} J, "
          f"charge consumed {report.battery_charge_used:.1f} J "
          f"(rate-capacity penalty "
          f"{report.battery_charge_used - report.battery_delivered:.1f} J)")
    print(f"free-power utilization per the supply model: "
          f"{100 * report.utilization:.1f} %")


if __name__ == "__main__":
    main()
