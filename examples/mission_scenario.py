#!/usr/bin/env python3
"""The Table 4 mission scenario, plus the runtime scheduler.

Simulates the 48-step traverse under decaying solar power
(14.9 W -> 12 W -> 9 W), comparing JPL's fixed serial schedule against
the power-aware policy, and then demonstrates the runtime layer the
paper sketches in Section 5.3: statically computed schedules selected
at run time by their (P_max, P_min) validity ranges, so the rover does
not reschedule as the environment drifts.

Run:  python examples/mission_scenario.py
"""

from repro.analysis import format_table
from repro.mission import (JPLPolicy, MarsRover, MissionSimulator,
                           PowerAwarePolicy, compare_reports,
                           paper_mission_environment)
from repro.scheduling import RuntimeScheduler


def run_mission() -> None:
    rover = MarsRover.standard()
    jpl = MissionSimulator(paper_mission_environment(),
                           JPLPolicy(rover), target_steps=48).run()
    pa = MissionSimulator(paper_mission_environment(),
                          PowerAwarePolicy(rover), target_steps=48).run()

    rows = []
    for report in (jpl, pa):
        for phase in report.phases():
            rows.append({"policy": report.policy,
                         "solar_W": phase.solar,
                         "steps": phase.steps,
                         "time_s": round(phase.time),
                         "Ec_J": round(phase.energy_cost, 1)})
    print(format_table(rows, title="== Table 4: mission phases =="))
    print()
    print(jpl.summary())
    print(pa.summary())
    comparison = compare_reports(jpl, pa)
    print(f"\nimprovement: {comparison['time_improvement_pct']:.1f} % "
          f"time, {comparison['energy_improvement_pct']:.1f} % energy "
          "(paper: 33.3 % / 32.7 %)")


def run_runtime_scheduler() -> None:
    """Schedules-as-a-table: compute once, reuse across environments."""
    from repro.core import PowerProfile, Schedule
    from repro.mission import POWER_TABLE

    rover = MarsRover.standard()

    def case_for(p_min: float):
        return min(POWER_TABLE,
                   key=lambda c: abs(POWER_TABLE[c].solar - p_min))

    def factory(p_max: float, p_min: float):
        # Map the environment back to the nearest temperature case and
        # build that case's problem under the *actual* constraints.
        problem = rover.problem(case_for(p_min))
        return problem.with_power_constraints(p_max=p_max, p_min=p_min)

    def reprofile(entry, p_max, p_min):
        # The rover draws more as temperature falls with the sun, so a
        # stored schedule's validity must be re-checked under the
        # *target* case's power table before it is reused.
        problem = rover.problem(case_for(p_min))
        schedule = Schedule(problem.graph, entry.schedule.as_dict())
        return PowerProfile.from_schedule(schedule,
                                          baseline=problem.baseline)

    runtime = RuntimeScheduler(factory, reprofile=reprofile)
    print("\n== runtime scheduler: validity-range reuse ==")
    # Sweep the environment through a slow solar decay; most points
    # reuse a stored schedule instead of recomputing.
    for solar in (14.9, 14.0, 13.0, 12.0, 11.0, 10.0, 9.0):
        entry = runtime.schedule_for(p_max=solar + 10.0, p_min=solar)
        print(f"  solar {solar:5.1f} W -> {entry.label:34s} "
              f"(valid for P_max >= {entry.min_p_max:.1f} W)")
    print(f"  table size: {len(runtime.table)} schedules, "
          f"{runtime.hits} hits / {runtime.misses} misses")
    for line in runtime.table.describe():
        print("   ", line)


if __name__ == "__main__":
    run_mission()
    run_runtime_scheduler()
