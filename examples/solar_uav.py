#!/usr/bin/env python3
"""A second power-aware system: a solar survey UAV across a morning.

The paper's framework generalizes beyond the rover — anything with
free-but-unstorable power, a costly reserve, and min/max timing windows
fits.  This example flies a pipeline-inspection UAV from early morning
to noon under a continuous diurnal solar arc:

* too dark to fly a leg? the planner *loiters* until the budget fits;
* cold early legs carry a de-icing task (and fly longer);
* every leg is scheduled power-aware under the sun at its start time,
  so battery cost per leg falls as the morning brightens.

Run:  python examples/solar_uav.py
"""

from repro.analysis import format_table
from repro.mission import SolarUav, UavConfig
from repro.power import DiurnalSolar, IdealBattery


def main() -> None:
    uav = SolarUav(
        config=UavConfig(transit_separation=1_200),  # legs 20 min apart
        solar=DiurnalSolar(peak=90.0, dawn=0.0, dusk=36_000.0),
        battery=IdealBattery(capacity=60_000.0, max_power=40.0))

    report = uav.fly(legs=10, start_time=900.0, deice_below=30.0)

    print(format_table(report.rows(),
                       title="== solar UAV survey: one morning =="))
    print()
    first, last = report.legs[0], report.legs[-1]
    print(f"loitered until t={first.start_time:.0f} s for enough sun "
          f"(requested start was 900 s)")
    print(f"battery per leg: {first.energy_cost:.0f} J at dawn -> "
          f"{last.energy_cost:.0f} J near noon")
    print(f"de-iced legs: "
          f"{sum(1 for leg in report.legs if leg.deiced)} of "
          f"{len(report.legs)}")
    print(f"battery remaining: {uav.battery.remaining:.0f} J of 60000")
    if report.battery_depleted:
        print("mission aborted: battery depleted")


if __name__ == "__main__":
    main()
