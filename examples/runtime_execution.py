#!/usr/bin/env python3
"""Executing a static schedule through an imperfect reality.

The paper computes static schedules; a flight system must *execute*
them while tasks overrun and the supply misbehaves.  This example runs
one rover iteration through the execution layer:

1. nominal execution — the time-triggered dispatcher replays the plan;
2. a driving-motor overrun under the same dispatcher — watch the
   violations a static executive silently accumulates;
3. the same overrun under the self-timed dispatcher — the schedule
   stretches but stays safe;
4. snapshot + replan — freeze history mid-run and re-solve the
   remainder under a *reduced* power budget (clouds rolled in).

Run:  python examples/runtime_execution.py
"""

from repro.execution import (FixedOverruns, ScheduleExecutor, replan)
from repro.mission import MarsRover, SolarCase
from repro.power import ConstantSolar, IdealBattery, PowerSystem


def main() -> None:
    rover = MarsRover.standard()
    problem = rover.problem(SolarCase.TYPICAL)
    plan = rover.power_aware_result(SolarCase.TYPICAL)
    print(f"plan: {plan.summary()}")

    # 1. nominal: the static dispatcher replays the plan bit-exactly
    supply = PowerSystem(ConstantSolar(12.0),
                         IdealBattery(capacity=5000.0, max_power=10.0))
    nominal = ScheduleExecutor(problem, plan.schedule, supply=supply,
                               policy="static").run()
    print(f"\n1) nominal static execution: {nominal.summary()}")
    print(f"   battery used: {supply.battery.used:.1f} J "
          f"(planned Ec {plan.energy_cost:.1f} J)")

    # 2. drive_1 sticks in loose regolith for an extra 20 s; the
    #    time-triggered dispatcher still launches drive_2 on schedule
    overrun = FixedOverruns({"drive_1": 20})
    brittle = ScheduleExecutor(problem, plan.schedule,
                               durations=overrun,
                               policy="static").run()
    print(f"\n2) static execution with drive_1 +20 s: "
          f"{brittle.summary()}")
    for event in brittle.trace.violations()[:4]:
        print(f"   {event}")

    # 3. the same overrun, self-timed: safe but slower
    safe = ScheduleExecutor(problem, plan.schedule, durations=overrun,
                            policy="self_timed").run()
    print(f"\n3) self-timed with the same overrun: {safe.summary()}")
    print(f"   finish slipped {safe.finished_at - plan.finish_time} s; "
          f"violations: {len(safe.trace.violations())}")

    # 4. mid-run replan under a shrunken budget
    snapshot = ScheduleExecutor(problem, plan.schedule,
                                durations=overrun,
                                policy="self_timed").run(until=20)
    executed = sorted(snapshot.spans)
    print(f"\n4) snapshot at t=20: {len(executed)} tasks started "
          f"({', '.join(executed)})")
    revised = replan(problem, snapshot, now=20,
                     p_max=problem.p_max - 3.0)
    print(f"   replanned remainder under "
          f"P_max={problem.p_max - 3.0:g} W: tau={revised.finish_time}s "
          f"(was {plan.finish_time}s), spikes={revised.metrics.spikes}")


if __name__ == "__main__":
    main()
