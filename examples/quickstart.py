#!/usr/bin/env python3
"""Quickstart: build a power-aware scheduling problem and solve it.

A minimal end-to-end tour of the public API: define tasks on shared
resources, add min/max timing constraints, set the power constraints,
run the three-stage scheduler, and inspect the result both numerically
and as a power-aware Gantt chart.

Run:  python examples/quickstart.py
"""

from repro import ConstraintGraph, SchedulingProblem, schedule
from repro.gantt import chart_result, render_chart


def main() -> None:
    # 1. Describe the workload as a constraint graph.  A tiny sensor
    #    node: warm up a sensor, sample it while a radio boots, then
    #    transmit -- all under a 10 W budget with 6 W of "free" power
    #    (think: solar) we would like to soak up.
    g = ConstraintGraph("sensor-node")
    g.new_task("warmup", duration=4, power=5.0, resource="sensor")
    g.new_task("sample", duration=6, power=4.0, resource="sensor")
    g.new_task("radio_boot", duration=3, power=3.0, resource="radio")
    g.new_task("transmit", duration=5, power=6.0, resource="radio")

    # Timing constraints (the paper's min/max separations):
    g.add_precedence("warmup", "sample")         # sample after warmup
    g.add_max_separation("warmup", "sample", 10)  # ...but within 10 s
    g.add_precedence("sample", "transmit")       # send what was sampled
    g.add_precedence("radio_boot", "transmit")   # radio must be up

    # 2. Power constraints: hard budget P_max, soft free level P_min.
    problem = SchedulingProblem(g, p_max=10.0, p_min=6.0, baseline=1.0)

    # 3. Solve: timing -> max-power -> min-power.
    result = schedule(problem)

    # 4. Inspect.
    print(result.summary())
    print()
    print("start times:", result.schedule.as_dict())
    print(f"finish time: {result.finish_time} s")
    print(f"energy cost above free power: {result.energy_cost:.1f} J")
    print(f"free-power utilization: {100 * result.utilization:.1f} %")
    print()
    print(render_chart(chart_result(result)))


if __name__ == "__main__":
    main()
