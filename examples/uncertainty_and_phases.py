#!/usr/bin/env python3
"""The paper's stated model extensions, exercised end to end.

Section 4.1 simplifies each task to a single exact power value but
notes the formulation extends to (a) *(min, typical, max)* power
specifications and (b) power as a *function over time*.  Both
extensions ship in this library:

* **corner analysis / robust scheduling** — plan at the typical corner,
  verify (or re-plan) at the pessimistic corner, and report the Ec/rho
  range the schedule spans;
* **phased tasks** — a motor with an inrush spike followed by a cruise
  phase, modelled as a rigid chain of constant-power segments.

Run:  python examples/uncertainty_and_phases.py
"""

from repro import ConstraintGraph, SchedulingProblem, schedule
from repro.analysis import (PowerTriple, attach_triples, corner_problems,
                            robust_schedule)
from repro.core.phased import add_phased_task, phased_start
from repro.gantt import chart_result, render_power_view


def robust_planning() -> None:
    print("== (min, typical, max) power corners ==")
    g = ConstraintGraph("instrument-suite")
    g.new_task("spectrometer", duration=8, power=0.0, resource="sci1")
    g.new_task("camera", duration=6, power=0.0, resource="sci2")
    g.new_task("downlink", duration=5, power=0.0, resource="radio")
    g.add_precedence("spectrometer", "downlink")
    g.add_precedence("camera", "downlink")

    graph = attach_triples(g, {
        # cold instruments draw more: min@warm, typ, max@cold
        "spectrometer": PowerTriple(4.0, 5.5, 7.5),
        "camera": PowerTriple(3.0, 4.0, 6.0),
        "downlink": PowerTriple(5.0, 6.0, 7.0),
    })
    problem = SchedulingProblem(graph, p_max=12.0, p_min=6.0)

    for corner, corner_problem in corner_problems(problem).items():
        result = schedule(corner_problem)
        print(f"  {corner:8s}: tau={result.finish_time:3d}s "
              f"Ec={result.energy_cost:6.1f}J "
              f"peak={result.metrics.peak_power:.1f}W")

    result = robust_schedule(problem)
    print(" ", result.summary())
    lo, hi = result.energy_cost_range
    print(f"  planner's envelope: battery cost between {lo:.1f} and "
          f"{hi:.1f} J depending on temperature")


def phased_motors() -> None:
    print("\n== power as a function of time (phased tasks) ==")
    g = ConstraintGraph("conveyor")
    # two motors, each: 2 s inrush at 9 W, then 8 s cruise at 3 W
    add_phased_task(g, "motor_a", [(2, 9.0), (8, 3.0)], resource="MA")
    add_phased_task(g, "motor_b", [(2, 9.0), (8, 3.0)], resource="MB")
    # a controller task that must overlap both cruises
    g.new_task("monitor", duration=6, power=1.5, resource="ctl")
    g.add_min_separation("motor_a#1", "monitor", 0)
    g.add_max_separation("motor_a#1", "monitor", 2)

    problem = SchedulingProblem(g, p_max=13.0, p_min=0.0, baseline=0.5)
    result = schedule(problem)
    s = result.schedule
    print(f"  motor_a starts {phased_start(s, 'motor_a')}s, "
          f"motor_b starts {phased_start(s, 'motor_b')}s "
          f"(inrush peaks staggered: 9+9+0.5 > 13 W)")
    print(f"  tau={result.finish_time}s  "
          f"peak={result.metrics.peak_power:.1f}W <= 13W")
    print(render_power_view(chart_result(result), power_scale=1.5))


if __name__ == "__main__":
    robust_planning()
    phased_motors()
