#!/usr/bin/env python3
"""Design-space exploration: what the IMPACCT tooling is *for*.

The paper's motivation is that designers "had no choice but to embed
many power management decisions in the implementation" — a tool should
instead let them explore the power/performance plane cheaply.  This
example does exactly that on the rover's typical-case workload:

* sweep the max-power budget and find the power-performance knee,
* sweep the min-power level to see how the free-power utilization and
  battery cost respond,
* shoot out the four schedulers (power-aware pipeline, greedy list,
  serial baseline, exhaustive optimum on a reduced instance).

Run:  python examples/design_space_exploration.py
"""

from repro.analysis import (compare_schedulers, format_table, knee_point,
                            summarize_outcomes, sweep_p_max, sweep_p_min)
from repro.mission import MarsRover, SolarCase
from repro.scheduling import (greedy_schedule, optimal_schedule, schedule,
                              serial_schedule)
from repro.workloads import fork_join, random_problem


def sweep_budget() -> None:
    rover = MarsRover.standard()
    problem = rover.problem(SolarCase.TYPICAL)
    budgets = [14, 16, 18, 20, 22, 25, 30, 40]
    points = sweep_p_max(problem, budgets)
    print(format_table([p.row() for p in points],
                       title="== P_max sweep (rover, typical case) =="))
    knee = knee_point(points)
    if knee is not None:
        print(f"\npower-performance knee: P_max = {knee.p_max:g} W "
              f"achieves tau = {knee.finish_time} s — extra budget "
              "beyond this buys no speed")


def sweep_free_level() -> None:
    rover = MarsRover.standard()
    problem = rover.problem(SolarCase.TYPICAL)
    points = sweep_p_min(problem, [0, 4, 8, 10, 12, 14, 16])
    print()
    print(format_table([p.row() for p in points],
                       title="== P_min sweep (rover, typical case) =="))


def scheduler_shootout() -> None:
    problems = [
        fork_join(width=4, power=3.0, p_max=10.0, p_min=6.0),
        random_problem(seed=42),
        random_problem(seed=43),
    ]
    schedulers = {
        "power-aware": schedule,
        "greedy-list": greedy_schedule,
        "serial": serial_schedule,
    }
    outcomes = compare_schedulers(schedulers, problems)
    print()
    print(format_table([o.row() for o in outcomes],
                       title="== scheduler comparison =="))
    print()
    print(format_table(summarize_outcomes(outcomes),
                       title="== aggregate =="))

    # On a small instance the exhaustive scheduler bounds the heuristic.
    small = fork_join(width=3, power=3.0, p_max=8.0, p_min=5.0)
    heuristic = schedule(small)
    exact = optimal_schedule(small, objective="lexicographic")
    print()
    print(f"fork-join(3): heuristic tau={heuristic.finish_time} "
          f"Ec={heuristic.energy_cost:.1f} J vs optimal "
          f"tau={exact.finish_time} Ec={exact.energy_cost:.1f} J")


def pareto_plane() -> None:
    """The (tau, Ec) plane for one workload under many budgets."""
    import os

    from repro.analysis import explore, pareto_front, write_pareto_svg
    from repro.scheduling import anneal

    problem = fork_join(width=5, power=3.0, p_max=9.0, p_min=5.0)
    solvers = {"serial": serial_schedule, "greedy": greedy_schedule}
    for budget in (7.0, 9.0, 12.0, 16.0):
        solvers[f"pa@{budget:g}W"] = (lambda b: (
            lambda p: schedule(
                p.with_power_constraints(p_max=b,
                                         p_min=min(p.p_min, b)))
        ))(budget)
    points = explore(problem, solvers)
    front = pareto_front(points)
    print()
    print("== Pareto front of the (tau, Ec) plane ==")
    for point in sorted(points, key=lambda p: p.finish_time):
        marker = "*" if point in front else " "
        print(f"  {marker} {point.label:12s} tau={point.finish_time:3d}s"
              f"  Ec={point.energy_cost:6.1f}J")
    out = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "pareto_front.svg")
    write_pareto_svg(points, out, title="fork-join(5) design space")
    print(f"  [wrote {out}]")


if __name__ == "__main__":
    sweep_budget()
    sweep_free_level()
    scheduler_shootout()
    pareto_plane()
