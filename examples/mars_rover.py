#!/usr/bin/env python3
"""The paper's case study: power-aware schedules for the Mars rover.

Reproduces Section 6 end to end:

* builds the rover's constraint graph (Tables 1-2, Fig. 8),
* solves the three solar cases with the JPL-serial baseline and the
  power-aware pipeline (Table 3),
* renders the power views of the three schedules (Figs. 9-11) as ASCII
  and as SVG files next to this script.

Run:  python examples/mars_rover.py
"""

import os

from repro.analysis import format_table
from repro.gantt import (chart_result, render_power_view,
                         write_html_report, write_svg)
from repro.mission import MarsRover, SolarCase


def main() -> None:
    rover = MarsRover.standard()
    out_dir = os.path.dirname(os.path.abspath(__file__))

    rows = []
    charts = []
    for case in SolarCase:
        jpl = rover.jpl_result(case)
        pa = rover.power_aware_result(case)
        for label, res in (("jpl", jpl), ("power-aware", pa)):
            rows.append({
                "case": case.value,
                "scheduler": label,
                "tau_s": res.finish_time,
                "Ec_J": round(res.energy_cost, 1),
                "rho_pct": round(100 * res.utilization, 1),
                "peak_W": round(res.metrics.peak_power, 1),
            })

        chart = chart_result(pa, title=f"Mars rover - {case.value} case")
        charts.append(chart)
        print(f"\n### {case.value} case (power view, Figs. 9-11)")
        print(render_power_view(chart, time_scale=1, power_scale=2.0))
        svg_path = os.path.join(out_dir, f"rover_{case.value}.svg")
        write_svg(chart, svg_path)
        print(f"[wrote {svg_path}]")

    report_path = os.path.join(out_dir, "rover_report.html")
    write_html_report(charts, report_path,
                      title="Mars rover power-aware schedules")
    print(f"\n[wrote design-review report {report_path}]")

    print()
    print(format_table(rows, title="== Table 3: JPL vs power-aware =="))
    print()
    print("Paper reference: power-aware tau = 50/60/75 s, "
          "Ec = 79.5/147/388 J, rho = 81/94/100 %")

    # The best case benefits from unrolling the loop and inserting two
    # extra heating tasks (the paper's Fig. 9 optimization):
    unrolled = rover.unrolled_result(SolarCase.BEST, iterations=2,
                                     prewarm=True)
    boundary = rover.iteration_boundary(unrolled)
    first = unrolled.profile.restricted(0, boundary)
    second = unrolled.profile.restricted(boundary,
                                         unrolled.profile.horizon)
    print()
    print("Unrolled best case (paper: 79.5 J first iteration, "
          "6 J thereafter):")
    print(f"  iteration 1: {first.energy_above(14.9):.1f} J over "
          f"{first.horizon} s")
    print(f"  iteration 2: {second.energy_above(14.9):.1f} J over "
          f"{second.horizon} s")


if __name__ == "__main__":
    main()
