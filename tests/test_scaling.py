"""Tests for the horizontal-scaling tier (``docs/scaling.md``).

Covers the acceptance criteria of the scaled serving layer:

* the **store service** speaks ``repro-store-request`` v1 correctly
  (get-range / put-delta / snapshot, version gates, validation), and
  concurrent ``put-delta`` merges are order-independent — the service
  store equals an in-process :class:`ScheduleStore` fed the same
  deltas in any order (DESIGN.md 5e);
* two serve instances sharing one store service **reuse each other's
  validity-range entries**, and the reused rows are bit-identical;
* a sweep through the **router** over a shared-store fleet is
  bit-for-bit identical to the plain serial :class:`BatchRunner`;
* killing one of three subprocess members **mid-sweep** still yields
  bit-identical results (retry-and-reassignment) and benches the dead
  member;
* sticky session routing, id rewriting, and session idle-TTL GC;
* **doc conformance**: every example in ``docs/scaling.md`` is
  replayed against a live store + fleet + router stack, in document
  order, and must match.
"""

from __future__ import annotations

import contextlib
import json
import os
import re
import shlex
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.engine import (BatchRunner, RunnerConfig, SweepSpec,
                          canonical_store_doc)
from repro.engine.schedule_store import CERTIFIED_STAGE, ScheduleStore
from repro.examples_data import fig1_problem
from repro.io.requests import (ROUTER_MEMBERS_FORMAT,
                               STORE_RESPONSE_FORMAT,
                               STORE_RESPONSE_VERSION,
                               store_request_to_dict)
from repro.scheduling import SchedulerOptions
from repro.serving import (Router, RouterConfig, ServingClient,
                           ServingConfig, ServingError, SolveServer,
                           StoreClient, StoreService,
                           StoreServiceConfig)

import tests.test_serving as serving_tests
from tests.test_serving import LiveServer, _assert_like_doc, \
    _parse_doc_examples

DOC_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "docs",
                        "scaling.md")
REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir))

BUDGETS = [6, 7, 8, 9, 10, 11, 12, 13, 14, 16]
LEVELS = [1, 2, 3, 4, 5, 6, 7, 8, 10, 12]


class LiveService(LiveServer):
    """Any of the three async servers on a background thread's loop.

    Generalizes :class:`tests.test_serving.LiveServer` (which is
    hard-wired to :class:`SolveServer`) to a factory: pass a callable
    returning a started-but-not-yet-running :class:`SolveServer`,
    :class:`StoreService` or :class:`Router`.
    """

    def __init__(self, factory):
        super().__init__(ServingConfig(port=0))  # unused by _main
        self.factory = factory

    async def _main(self, ready: threading.Event) -> None:
        import asyncio
        self.server = self.factory()
        await self.server.start()
        self._stop = asyncio.Event()
        ready.set()
        await self._stop.wait()
        await self.server.shutdown()


class ScalingStack:
    """A full live tier: store service + N serves + a router."""

    def __init__(self, instances: int = 2, shared_store: bool = True,
                 serve_kwargs: "dict | None" = None,
                 router_kwargs: "dict | None" = None):
        self.instances = instances
        self.shared_store = shared_store
        self.serve_kwargs = serve_kwargs or {}
        self.router_kwargs = router_kwargs or {}
        self._exits = contextlib.ExitStack()

    def __enter__(self) -> "ScalingStack":
        self.store = self._exits.enter_context(LiveService(
            lambda: StoreService(StoreServiceConfig(port=0))))
        self.serves = []
        for _ in range(self.instances):
            config = ServingConfig(
                port=0,
                store_url=self.store.url if self.shared_store
                else None,
                **self.serve_kwargs)
            self.serves.append(self._exits.enter_context(
                LiveService(lambda c=config: SolveServer(c))))
        members = [serve.url for serve in self.serves]
        self.router = self._exits.enter_context(LiveService(
            lambda: Router(RouterConfig(port=0, members=members,
                                        **self.router_kwargs))))
        return self

    def __exit__(self, *exc) -> None:
        self._exits.close()


def _grid_jobs(budgets=BUDGETS, levels=LEVELS, seed=2001):
    """Wire-representable Fig. 1 grid jobs (seed-only options)."""
    spec = SweepSpec.grid(fig1_problem(), budgets, levels,
                          options=SchedulerOptions(seed=seed))
    return spec.jobs()


def _journal_delta(budgets, levels):
    """A shippable delta holding every entry a private run stored.

    (The runner drains its own journal per job, so rebuild the delta
    records from the settled store — same shape ``drain_journal``
    ships.)
    """
    runner = BatchRunner(RunnerConfig(reuse_schedules=True))
    runner.run(_grid_jobs(budgets, levels))
    return [{"base_key": base_key, "name": bucket.name,
             "entry": entry.to_dict()}
            for base_key, bucket in runner.store.problems.items()
            for entry in bucket.entries]


# ---------------------------------------------------------------------
# the store service protocol
# ---------------------------------------------------------------------


def test_store_service_roundtrip():
    delta = _journal_delta([10, 12], [4])
    assert delta, "a private run should journal its inserts"
    base_key = delta[0]["base_key"]
    certified = next(record for record in delta
                     if record["entry"]["stage"] == CERTIFIED_STAGE)
    entry = certified["entry"]

    with LiveService(lambda: StoreService(
            StoreServiceConfig(port=0))) as live:
        client = StoreClient(live.url)
        # Empty store: a covering probe misses.
        miss = client.get_range(base_key, entry["peak"] + 1.0,
                                entry["floor"])
        assert miss == {"format": STORE_RESPONSE_FORMAT,
                        "version": STORE_RESPONSE_VERSION,
                        "op": "get-range", "hit": False,
                        "base_key": base_key}
        # Push the journal; every record inserts.
        ack = client.put_delta(delta)
        assert ack["op"] == "put-delta"
        assert ack["merged"] == len(delta)
        assert ack["deduped"] == 0
        assert ack["entries"] == len(delta)
        # Idempotent: a re-push dedupes everything.
        again = client.put_delta(delta)
        assert again["merged"] == 0
        assert again["deduped"] == len(delta)
        assert again["entries"] == len(delta)
        # The certified timing entry answers covering probes...
        hit = client.get_range(base_key, entry["peak"] + 1.0,
                               entry["floor"])
        assert hit["hit"] is True
        assert hit["entry"] == entry
        assert hit["name"] == certified["name"]
        # ...and the powers-omitted prime probe.
        primed = client.get_range(base_key)
        assert primed["hit"] is True
        assert primed["entry"]["stage"] == CERTIFIED_STAGE
        # The snapshot round-trips to an equal store.
        snapshot = client.snapshot()
        assert snapshot["op"] == "snapshot"
        restored = ScheduleStore.from_dict(snapshot["store"])
        assert canonical_store_doc(restored) \
            == canonical_store_doc(live.server.store)
        # Liveness reports the policy and entry counts.
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["policy"] == "identical"
        assert health["entries"] == len(delta)


def test_store_service_validation():
    with LiveService(lambda: StoreService(
            StoreServiceConfig(port=0))) as live:
        client = ServingClient(live.url)
        good = store_request_to_dict("get-range", base_key="demo",
                                     p_max=12.0, p_min=4.0)
        # A version from the future is refused.
        futuristic = dict(good, version=99)
        status, doc = client.request("POST", "/v1/store/get-range",
                                     futuristic)
        assert status == 400
        assert doc["error"]["code"] == "unsupported_version"
        # The op must match the endpoint.
        status, doc = client.request("POST", "/v1/store/put-delta",
                                     good)
        assert status == 400
        assert doc["error"]["code"] == "bad_request"
        # get-range needs both powers or neither.
        lopsided = store_request_to_dict("get-range", base_key="demo")
        lopsided["p_max"] = 12.0
        status, doc = client.request("POST", "/v1/store/get-range",
                                     lopsided)
        assert status == 400
        assert doc["error"]["code"] == "bad_request"
        # A delta record needs a mapping entry.
        bad_delta = store_request_to_dict(
            "put-delta", delta=[{"base_key": "demo", "name": "d",
                                 "entry": "not-a-mapping"}])
        status, doc = client.request("POST", "/v1/store/put-delta",
                                     bad_delta)
        assert status == 400
        assert doc["error"]["code"] == "bad_request"
        # Wrong method and unknown route.
        status, doc = client.request("POST", "/v1/store/snapshot",
                                     good)
        assert status == 405
        assert doc["error"]["code"] == "method_not_allowed"
        status, doc = client.request("GET", "/v1/store/nope")
        assert status == 404
        assert doc["error"]["code"] == "not_found"


def _behavioral_store_doc(store: ScheduleStore) -> "dict":
    """:func:`canonical_store_doc` minus provenance.

    ``label``/``solved_p_max``/``solved_p_min`` record which job
    produced an entry; on a ``starts`` collision the first writer's
    provenance survives, so only the behavioral fields (starts, stage,
    validity rectangle, makespan) are merge-order-independent — which
    is exactly what probe answers are made of (DESIGN.md 5e).
    """
    doc = canonical_store_doc(store)
    for bucket in doc.get("problems", {}).values():
        bucket["entries"] = sorted(
            ({key: value for key, value in entry.items()
              if key not in ("label", "solved_p_max",
                             "solved_p_min")}
             for entry in bucket["entries"]),
            key=lambda entry: (entry["stage"],
                               sorted(entry["starts"].items())))
    return doc


def test_concurrent_put_delta_merges_commute():
    """N clients pushing overlapping deltas concurrently leave the
    service store behaviorally equal to an in-process store fed the
    same deltas in *reverse* order — the journal-dedupe merge
    commutes up to provenance (DESIGN.md 5e)."""
    slices = [[8], [10], [12], [14]]
    deltas = [_journal_delta(budgets, [2, 4, 6])
              for budgets in slices]
    # Every slice primes the same workload, so the certified entry
    # appears in several deltas — the dedupe path is exercised.
    reference = ScheduleStore(policy="identical")
    for delta in reversed(deltas):
        reference.merge_delta(delta)

    with LiveService(lambda: StoreService(
            StoreServiceConfig(port=0))) as live:
        barrier = threading.Barrier(len(deltas))
        failures = []

        def push(delta):
            client = StoreClient(live.url)
            try:
                barrier.wait(10)
                client.put_delta(delta)
            except Exception as exc:  # noqa: BLE001 - reraised below
                failures.append(exc)

        threads = [threading.Thread(target=push, args=(delta,))
                   for delta in deltas]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert not failures
        assert _behavioral_store_doc(live.server.store) \
            == _behavioral_store_doc(reference)
        assert len(live.server.store) == len(reference)


# ---------------------------------------------------------------------
# shared-store serving
# ---------------------------------------------------------------------


def test_cross_instance_store_reuse_is_bit_identical():
    problem = fig1_problem()
    with LiveService(lambda: StoreService(
            StoreServiceConfig(port=0))) as store:
        config = ServingConfig(port=0, store_url=store.url)
        with LiveService(lambda: SolveServer(config)) as first, \
                LiveService(lambda: SolveServer(config)) as second:
            # Instance 1 pays for the priming solve; the covered
            # point (inside the certified rectangle) is served from
            # its store, which syncs to the service post-batch.
            cold = first.client.solve(problem, p_max=20.0, p_min=7.0)
            assert cold["status"] == "done"
            deadline = time.monotonic() + 10.0
            while len(store.server.store) == 0:
                assert time.monotonic() < deadline, \
                    "instance 1 never synced its journal"
                time.sleep(0.05)
            # Instance 2 has a cold local store: its hit comes over
            # the wire from the service.
            warm = second.client.solve(problem, p_max=20.0, p_min=7.0)
            assert warm["reused"] == 1
            assert warm["points"][0]["reused"] is True
            assert warm["points"][0]["finish_time"] \
                == cold["points"][0]["finish_time"]
            assert warm["points"][0]["energy_cost"] \
                == cold["points"][0]["energy_cost"]
            assert warm["points"][0]["peak_power"] \
                == cold["points"][0]["peak_power"]
            deadline = time.monotonic() + 10.0
            while True:
                text = second.client.metrics_text()
                match = re.search(
                    r"^repro_store_remote_hits (\d+)", text, re.M)
                if match and int(match.group(1)) >= 1:
                    break
                assert time.monotonic() < deadline, \
                    "no store.remote_hits on instance 2"
                time.sleep(0.05)


def test_router_shared_store_sweep_matches_serial(monkeypatch):
    from repro.engine import RemoteBackend

    jobs = _grid_jobs()
    serial = BatchRunner(RunnerConfig())
    base = serial.run(jobs)
    with ScalingStack(instances=2) as stack:
        runner = BatchRunner(
            RunnerConfig(),
            backend=RemoteBackend([stack.router.url], shards=4))
        results = runner.run(jobs)
        assert runner.last_mode == "remote"
        assert [r.value for r in results] == [r.value for r in base]
        assert all(r.ok for r in results)
        # The router actually balanced: every member took sweeps.
        client = ServingClient(stack.router.url)
        members = client.checked("GET", "/v1/router/members")
        assert members["format"] == ROUTER_MEMBERS_FORMAT
        assert len(members["members"]) == 2
        assert all(member["jobs"] >= 1
                   for member in members["members"])
        # The fleet shared one store: the service saw traffic.
        assert len(stack.store.server.store) > 0


# ---------------------------------------------------------------------
# retry-and-reassignment: a member dies mid-sweep
# ---------------------------------------------------------------------


def _spawn_serve_member() -> "tuple[subprocess.Popen, str]":
    """A ``repro-schedule serve`` subprocess; returns (proc, url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") \
        + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
        cwd=REPO_ROOT, env=env, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True)
    deadline = time.monotonic() + 30.0
    while True:
        assert time.monotonic() < deadline, "member never came up"
        line = proc.stdout.readline()
        assert line, f"member exited early (rc={proc.poll()})"
        match = re.search(r"listening on (http://[\d.:]+)", line)
        if match:
            return proc, match.group(1)


def test_router_reassigns_after_member_death():
    """Kill one of three subprocess members mid-sweep: the run must
    still be bit-identical to serial, and the router must bench the
    corpse."""
    jobs = _grid_jobs()
    serial = BatchRunner(RunnerConfig())
    base = serial.run(jobs)

    members = [_spawn_serve_member() for _ in range(3)]
    try:
        urls = [url for _proc, url in members]
        victim = members[1][0]
        with LiveService(lambda: Router(RouterConfig(
                port=0, members=urls, retries=3,
                health_interval_s=0.2,
                fail_threshold=2))) as router:
            from repro.engine import RemoteBackend

            def assassinate():
                time.sleep(0.3)
                victim.send_signal(signal.SIGKILL)

            killer = threading.Thread(target=assassinate)
            killer.start()
            runner = BatchRunner(
                RunnerConfig(retries=3),
                backend=RemoteBackend([router.url], shards=6))
            results = runner.run(jobs)
            killer.join(10)
            victim.wait(10)

            assert all(r.ok for r in results)
            assert [r.value for r in results] \
                == [r.value for r in base]
            # The health loop benches the dead member.
            client = ServingClient(router.url)
            deadline = time.monotonic() + 15.0
            while True:
                doc = client.checked("GET", "/v1/router/members")
                down = [m["member"] for m in doc["members"]
                        if not m["healthy"]]
                if down:
                    break
                assert time.monotonic() < deadline, \
                    "dead member never benched"
                time.sleep(0.2)
            assert down == ["m1"]
            health = client.healthz()
            assert health == {"status": "degraded", "members": 3,
                              "healthy": 2}
    finally:
        for proc, _url in members:
            if proc.poll() is None:
                proc.kill()
            proc.wait(10)
            proc.stdout.close()


# ---------------------------------------------------------------------
# sticky routing: sessions and jobs live on one member
# ---------------------------------------------------------------------


def test_router_sticky_sessions_and_id_rewrite():
    with ScalingStack(instances=2, shared_store=False) as stack:
        client = ServingClient(stack.router.url)
        first = client.open_session(12.0, p_min=2.0)
        second = client.open_session(12.0, p_min=2.0)
        # Round-robin: the two opens land on different members, and
        # the ids come back tagged with the owner.
        prefixes = {first["session"].split("-", 1)[0],
                    second["session"].split("-", 1)[0]}
        assert prefixes == {"m0", "m1"}
        # Status and close route back to the owning member, with the
        # tag preserved on the way out.
        status = client.session(first["session"])
        assert status["session"] == first["session"]
        # The NDJSON event stream relays through the router with the
        # same rewrite on its header record.
        events = client.session_apply(
            first["session"],
            [{"event": "arrival",
              "task": {"name": "t0", "duration": 2, "power": 4.0}}])
        assert events[0]["session"] == first["session"]
        assert events[-1]["event"] == "end"
        closed = client.close_session(second["session"])
        assert closed["session"] == second["session"]
        # An id naming no member of this router is a 404.
        with pytest.raises(ServingError) as err:
            client.session("m7-s-000001")
        assert err.value.code == "not_found"
        with pytest.raises(ServingError) as err:
            client.job("j-000001")  # untagged: not router-issued
        assert err.value.code == "not_found"
        # Flight recorders are per-instance, not proxied.
        with pytest.raises(ServingError) as err:
            client.debug_requests()
        assert err.value.code == "not_found"
        # ...but remain reachable on the member itself.
        assert "requests" in stack.serves[0].client.debug_requests()


# ---------------------------------------------------------------------
# session GC: idle sessions are evicted after the TTL
# ---------------------------------------------------------------------


def test_session_ttl_evicts_idle_sessions():
    config = ServingConfig(port=0, session_ttl_s=0.3)
    with LiveServer(config) as live:
        ack = live.client.open_session(12.0, p_min=2.0)
        session_id = ack["session"]
        assert live.client.session(session_id)["session"] \
            == session_id
        # Watch the metric, not the session — a status poll counts as
        # activity and would keep resetting the idle clock.
        deadline = time.monotonic() + 10.0
        while True:
            text = live.client.metrics_text()
            match = re.search(r"^repro_session_evicted (\d+)", text,
                              re.M)
            if match and int(match.group(1)) >= 1:
                break
            assert time.monotonic() < deadline, \
                "idle session never evicted"
            time.sleep(0.1)
        with pytest.raises(ServingError) as err:
            live.client.session(session_id)
        assert err.value.code == "not_found"


def test_active_sessions_survive_the_ttl():
    config = ServingConfig(port=0, session_ttl_s=0.5)
    with LiveServer(config) as live:
        ack = live.client.open_session(12.0, p_min=2.0)
        session_id = ack["session"]
        # Keep touching the session for several TTLs.
        for _ in range(8):
            time.sleep(0.15)
            assert live.client.session(session_id)["session"] \
                == session_id
        live.client.close_session(session_id)


# ---------------------------------------------------------------------
# doc conformance: replay every example in docs/scaling.md
# ---------------------------------------------------------------------

#: Scaling-doc fields that vary run to run, beyond the serving set:
#: probe timestamps and the members' ephemeral ports.
_SCALING_VOLATILE = {"last_ok_unix", "url"}


def test_doc_conformance_scaling(monkeypatch):
    """Replay every example in docs/scaling.md against a live stack.

    The examples were recorded against the exact stack the doc
    describes — one store service, two ``ServingConfig(port=0,
    max_wait_ms=150)`` members sharing it, and a router with health
    probes slowed to keep the recording deterministic — and are
    replayed in document order, so member assignment (round-robin from
    m0), job ids and store contents are deterministic.

    Store-service examples are addressed by path (``/v1/store/*``);
    everything else goes through the router.
    """
    monkeypatch.setattr(
        serving_tests, "_VOLATILE",
        serving_tests._VOLATILE | _SCALING_VOLATILE)
    with open(DOC_PATH, encoding="utf-8") as handle:
        text = handle.read()
    examples = list(_parse_doc_examples(text))
    assert len(examples) >= 12, "doc lost its examples?"
    paths = {path for _m, path, *_rest in examples}
    for endpoint in ("/healthz", "/v1/store/get-range",
                     "/v1/store/put-delta", "/v1/solve", "/v1/sweep",
                     "/v1/router/members", "/metrics"):
        assert endpoint in paths, f"no doc example for {endpoint}"

    with ScalingStack(
            instances=2,
            serve_kwargs={"max_wait_ms": 150.0},
            router_kwargs={"health_interval_s": 3600.0}) as stack:
        router_client = ServingClient(stack.router.url)
        store_client = ServingClient(stack.store.url)
        for method, path, body, status, language, block in examples:
            where = f"{method} {path} -> {status}"
            client = store_client if path.startswith("/v1/store/") \
                else router_client
            if language == "ndjson":
                records = [json.loads(line) for line in block if line]
                actual = list(
                    router_client.events(path.split("/")[3]))
                _assert_like_doc(records, actual, where)
            elif language == "text":
                got_status, got_text = client.request(method, path,
                                                      body)
                assert got_status == status, where
                got_lines = set(got_text.splitlines())
                for line in block:
                    if line.startswith("# TYPE"):
                        assert line in got_lines, \
                            f"{where}: missing {line!r}"
            else:
                got_status, got_doc = client.request(method, path,
                                                     body)
                assert got_status == status, \
                    f"{where}: got {got_status} ({got_doc})"
                _assert_like_doc(json.loads("\n".join(block)),
                                 got_doc, where)


def test_doc_cli_examples_parse():
    """Every ``repro-schedule ...`` line in docs/scaling.md is a
    valid invocation of the real CLI parser."""
    from repro.cli import build_parser
    with open(DOC_PATH, encoding="utf-8") as handle:
        text = handle.read()
    lines = [line.strip().lstrip("$ ").strip()
             for line in text.splitlines()
             if line.strip().lstrip("$ ").startswith(
                 "repro-schedule ")]
    assert len(lines) >= 4, "doc lost its CLI examples?"
    parser = build_parser()
    for line in lines:
        argv = shlex.split(line)[1:]
        try:
            parser.parse_args(argv)
        except SystemExit:  # argparse error path
            pytest.fail(f"doc CLI example does not parse: {line}")
