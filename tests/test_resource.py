"""Unit tests for resources and the resource pool."""

import pytest

from repro import GraphError, Resource, ResourcePool


class TestResource:
    def test_defaults(self):
        r = Resource(name="heater")
        assert r.idle_power == 0.0
        assert r.kind == "generic"

    def test_empty_name_rejected(self):
        with pytest.raises(GraphError):
            Resource(name="")

    def test_negative_idle_power_rejected(self):
        with pytest.raises(GraphError):
            Resource(name="r", idle_power=-1.0)


class TestResourcePool:
    def test_add_and_lookup(self):
        pool = ResourcePool()
        pool.add(Resource(name="cpu", idle_power=2.5))
        assert pool["cpu"].idle_power == 2.5
        assert "cpu" in pool

    def test_duplicate_rejected(self):
        pool = ResourcePool([Resource(name="cpu")])
        with pytest.raises(GraphError):
            pool.add(Resource(name="cpu"))

    def test_unknown_lookup_raises(self):
        with pytest.raises(GraphError):
            ResourcePool()["nope"]

    def test_ensure_creates_default_once(self):
        pool = ResourcePool()
        first = pool.ensure("r")
        second = pool.ensure("r")
        assert first is second
        assert len(pool) == 1

    def test_insertion_order_preserved(self):
        pool = ResourcePool([Resource(name="b"), Resource(name="a")])
        assert pool.names == ["b", "a"]

    def test_total_idle_power(self):
        pool = ResourcePool([Resource(name="cpu", idle_power=2.5),
                             Resource(name="fpga", idle_power=1.5)])
        assert pool.total_idle_power == pytest.approx(4.0)

    def test_iteration_yields_resources(self):
        pool = ResourcePool([Resource(name="a"), Resource(name="b")])
        assert [r.name for r in pool] == ["a", "b"]
