"""Differential certification of the numpy solver kernel.

The numpy fast path (``repro.core.kernel``) is *certified against* the
pure-Python oracle, never trusted: every test here runs the same
computation through both implementations and asserts bit-identical
results — integer distances, IEEE-754-exact energies, identical
spikes/gaps, and identical exceptions on infeasible instances.  The
same differential pattern covers the warm-start layers (state restores,
copy-carried caches, the cross-point warm pool): warm answers must be
indistinguishable from cold solves.
"""

from __future__ import annotations

import random
from contextlib import contextmanager

import pytest

from repro.core import ANCHOR_NAME, ConstraintGraph, PowerProfile
from repro.core.arrays import HAVE_NUMPY, graph_arrays
from repro.core.kernel import (clear_warm_pool, set_kernel, set_warm,
                               use_numpy)
from repro.core.longest_path import (longest_paths, lp_counter_snapshot,
                                     lp_counters_delta)
from repro.engine import BatchRunner, RunnerConfig, SweepSpec
from repro.errors import PositiveCycleError
from repro.examples_data import fig1_options, fig1_problem
from repro.scheduling import PowerAwareScheduler
from repro.workloads import RandomWorkloadConfig, random_problem

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY,
                                 reason="numpy not installed")


@contextmanager
def core_mode(kernel: str, warm: bool):
    """Pin kernel + warm selection, restoring the previous state."""
    prev_kernel = set_kernel(kernel)
    prev_warm = set_warm(warm)
    clear_warm_pool()
    try:
        yield
    finally:
        set_kernel(prev_kernel)
        set_warm(prev_warm)
        clear_warm_pool()


# ----------------------------------------------------------------------
# graph generators
# ----------------------------------------------------------------------

def _random_graph(seed: int, tasks: int = 18) -> ConstraintGraph:
    """A random feasible-ish constraint graph with min/max edges."""
    rng = random.Random(seed)
    g = ConstraintGraph(name=f"rand-{seed}")
    names = [f"t{i}" for i in range(tasks)]
    for name in names:
        g.new_task(name, duration=rng.randint(1, 9),
                   power=rng.uniform(1.0, 5.0))
    for i, src in enumerate(names):
        for dst in names[i + 1:]:
            if rng.random() < 0.25:
                g.add_precedence(src, dst, gap=rng.randint(0, 4))
        if rng.random() < 0.4:
            g.add_release(src, rng.randint(0, 20))
    for i, src in enumerate(names[:-1]):
        if rng.random() < 0.2:
            g.add_max_separation(src, names[i + 1], rng.randint(30, 90))
    return g


def _workload_graphs():
    for seed in (3, 11, 29):
        yield random_problem(
            seed, RandomWorkloadConfig(tasks=24, resources=3,
                                       layers=4)).graph


def _assert_witness_chain(graph, result, name):
    """``critical_path`` must be a genuine tight-edge witness."""
    chain = result.critical_path(name)
    assert chain and chain[-1] == name
    head = chain[0]
    head_pred = result.predecessor.get(head)
    if head_pred is None:
        assert result.distance[head] == 0
    else:
        assert head_pred == ANCHOR_NAME
        weight = graph.separation(ANCHOR_NAME, head)
        assert weight is not None
        assert result.distance[head] == weight
    for src, dst in zip(chain, chain[1:]):
        weight = graph.separation(src, dst)
        assert weight is not None
        assert result.distance[src] + weight == result.distance[dst]


# ----------------------------------------------------------------------
# longest paths: oracle vs numpy
# ----------------------------------------------------------------------

@needs_numpy
@pytest.mark.parametrize("seed", [0, 1, 2, 7, 13, 42])
def test_distances_bit_identical_random_graphs(seed):
    with core_mode("oracle", warm=False):
        reference = dict(longest_paths(_random_graph(seed)).distance)
    with core_mode("numpy", warm=False):
        fast = longest_paths(_random_graph(seed))
    assert dict(fast.distance) == reference
    assert all(isinstance(d, int) and not isinstance(d, bool)
               for d in fast.distance.values())


@needs_numpy
def test_distances_bit_identical_workload_graphs():
    for graph in _workload_graphs():
        with core_mode("oracle", warm=False):
            reference = dict(longest_paths(graph).distance)
        graph._lp_cache = None
        with core_mode("numpy", warm=False):
            fast = longest_paths(graph)
        assert dict(fast.distance) == reference


@needs_numpy
@pytest.mark.parametrize("seed", [0, 2, 13])
def test_kernel_critical_paths_are_witnesses(seed):
    graph = _random_graph(seed)
    with core_mode("numpy", warm=False):
        result = longest_paths(graph)
        for name in graph.task_names():
            _assert_witness_chain(graph, result, name)
    graph._lp_cache = None
    with core_mode("oracle", warm=False):
        result = longest_paths(graph)
        for name in graph.task_names():
            _assert_witness_chain(graph, result, name)


def _infeasible_anchor_graph() -> ConstraintGraph:
    g = ConstraintGraph("anchor-push")
    g.new_task("A", duration=2, power=1.0)
    g.add_release("A", 10)
    g.add_start_deadline("A", 5)
    return g


def _infeasible_cycle_graph() -> ConstraintGraph:
    g = ConstraintGraph("pos-cycle")
    for name in ("A", "B", "C"):
        g.new_task(name, duration=2, power=1.0)
    g.add_min_separation("A", "B", 10)
    g.add_min_separation("B", "C", 10)
    g.add_min_separation("C", "A", 10)
    return g


@needs_numpy
@pytest.mark.parametrize("builder", [_infeasible_anchor_graph,
                                     _infeasible_cycle_graph])
def test_infeasible_exceptions_identical(builder):
    with core_mode("oracle", warm=False):
        with pytest.raises(PositiveCycleError) as oracle_exc:
            longest_paths(builder())
    with core_mode("numpy", warm=False):
        with pytest.raises(PositiveCycleError) as kernel_exc:
            longest_paths(builder())
    assert str(kernel_exc.value) == str(oracle_exc.value)
    assert getattr(kernel_exc.value, "cycle", None) == \
        getattr(oracle_exc.value, "cycle", None)


@pytest.mark.parametrize("kernel", ["oracle"]
                         + (["numpy"] if HAVE_NUMPY else []))
def test_incremental_exception_parity(kernel):
    """Infeasibility reported through a warm cache is byte-identical to
    a cold solve (the incremental path delegates to the full oracle
    instead of raising its own divergence error)."""
    def build():
        g = ConstraintGraph("warm-infeasible")
        for name in ("A", "B"):
            g.new_task(name, duration=3, power=1.0)
        g.add_min_separation("A", "B", 5)
        return g

    cold = build()
    cold.add_min_separation("B", "A", 7)  # closes a positive cycle
    with core_mode(kernel, warm=False):
        with pytest.raises(PositiveCycleError) as cold_exc:
            longest_paths(cold)

    warm = build()
    with core_mode(kernel, warm=True):
        longest_paths(warm)  # primes the incremental cache
        warm.add_min_separation("B", "A", 7)
        with pytest.raises(PositiveCycleError) as warm_exc:
            longest_paths(warm)
    assert str(warm_exc.value) == str(cold_exc.value)
    assert warm_exc.value.cycle == cold_exc.value.cycle


def test_incremental_matches_full_after_adds():
    g = _random_graph(5)
    with core_mode("oracle", warm=True):
        snapshot = lp_counter_snapshot()
        longest_paths(g)
        g.add_min_separation("t0", "t9", 17)
        g.add_release("t4", 33)
        incremental = dict(longest_paths(g).distance)
        delta = lp_counters_delta(snapshot)
        assert delta["incremental_runs"] >= 1
    fresh = _random_graph(5)
    fresh.add_min_separation("t0", "t9", 17)
    fresh.add_release("t4", 33)
    with core_mode("oracle", warm=False):
        assert dict(longest_paths(fresh).distance) == incremental


# ----------------------------------------------------------------------
# warm-start layers
# ----------------------------------------------------------------------

def test_rollback_state_restore_is_exact():
    g = _random_graph(9)
    with core_mode("oracle", warm=True):
        base = dict(longest_paths(g).distance)
        token = g.checkpoint()
        g.add_release("t2", 55)
        g.add_min_separation("t1", "t7", 21)
        longest_paths(g)
        g.rollback(token)
        snapshot = lp_counter_snapshot()
        restored = dict(longest_paths(g).distance)
        delta = lp_counters_delta(snapshot)
        assert delta["state_restores"] == 1
        assert delta["full_runs"] == 0
    assert restored == base


def test_state_restore_fuzz_checkpoint_rollback():
    """Random checkpoint/rollback/add interleavings: warm answers must
    equal a cold solve of the same edge set at every step."""
    rng = random.Random(1234)
    g = _random_graph(21, tasks=12)
    names = g.task_names()
    tokens = []
    with core_mode("oracle", warm=True):
        for _ in range(120):
            op = rng.random()
            if op < 0.4:
                tokens.append(g.checkpoint())
            elif op < 0.7 and tokens:
                g.rollback(tokens.pop(rng.randrange(len(tokens))))
                tokens = [t for t in tokens if t <= len(g._journal)]
            else:
                src, dst = rng.sample(names, 2)
                try:
                    g.add_min_separation(src, dst, rng.randint(0, 6))
                except Exception:
                    continue
            try:
                warm_answer = dict(longest_paths(g).distance)
            except PositiveCycleError:
                # infeasible interleaving: parity already covered by
                # test_incremental_exception_parity; rewind and go on
                if tokens:
                    g.rollback(tokens.pop())
                continue
            cold = ConstraintGraph("cold")
            for task in g.tasks():
                cold.add_task(task)
            for src, dst, weight in g.edge_triples():
                cold.add_edge(src, dst, weight)
            with core_mode("oracle", warm=False):
                assert dict(longest_paths(cold).distance) == warm_answer


def test_copy_carries_fixpoint_and_warm_pool_hits():
    g = _random_graph(31)
    with core_mode("oracle", warm=True):
        base = dict(longest_paths(g).distance)
        snapshot = lp_counter_snapshot()
        first = g.copy()
        assert dict(longest_paths(first).distance) == base
        # unmutated copy: answered from the carried cache, no solve
        delta = lp_counters_delta(snapshot)
        assert delta["cache_hits"] == 1
        assert delta["full_runs"] == 0
        # a mutated sibling still warm-starts its own solve
        second = g.copy()
        second.add_release("t3", 41)
        mutated = dict(longest_paths(second).distance)
    fresh = _random_graph(31)
    fresh.add_release("t3", 41)
    with core_mode("oracle", warm=False):
        assert dict(longest_paths(fresh).distance) == mutated


def test_warm_pool_serves_sibling_copies():
    g = _random_graph(37)
    with core_mode("oracle", warm=True):
        first = g.copy()
        first._lp_cache = None  # force past the carried cache
        solved = dict(longest_paths(first).distance)
        second = g.copy()
        second._lp_cache = None
        snapshot = lp_counter_snapshot()
        assert dict(longest_paths(second).distance) == solved
        delta = lp_counters_delta(snapshot)
        assert delta["warm_hits"] == 1
        assert delta["full_runs"] == 0


def test_warm_off_is_cold_every_time():
    g = _random_graph(43)
    with core_mode("oracle", warm=False):
        longest_paths(g)
        token = g.checkpoint()
        g.add_release("t5", 60)
        longest_paths(g)
        g.rollback(token)
        snapshot = lp_counter_snapshot()
        longest_paths(g)
        delta = lp_counters_delta(snapshot)
        assert delta["state_restores"] == 0
        assert delta["warm_hits"] == 0
        assert delta["full_runs"] == 1


def test_result_views_are_immutable():
    g = _random_graph(2)
    with core_mode("oracle", warm=False):
        result = longest_paths(g)
    with pytest.raises(TypeError):
        result.distance["t0"] = 99
    with pytest.raises(TypeError):
        result.predecessor["t0"] = "t1"
    # plain-dict copies remain available to callers that need them
    assert dict(result.distance)["t0"] == result.distance["t0"]


# ----------------------------------------------------------------------
# profile integrals: oracle vs numpy
# ----------------------------------------------------------------------

def _random_profile(seed: int) -> PowerProfile:
    rng = random.Random(seed)
    segments = []
    t = 0
    for _ in range(rng.randint(1, 14)):
        end = t + rng.randint(1, 9)
        segments.append((t, end, round(rng.uniform(0.0, 9.0), 3)))
        t = end
    return PowerProfile(segments)


@needs_numpy
@pytest.mark.parametrize("seed", list(range(8)))
def test_profile_queries_bit_identical(seed):
    profile = _random_profile(seed)
    levels = [0.0, 1.5, 4.0, profile.peak(), 99.0]
    with core_mode("oracle", warm=False):
        reference = {
            "energy": profile.energy(),
            "above": [profile.energy_above(lv) for lv in levels],
            "capped": [profile.energy_capped(lv) for lv in levels],
            "peak": profile.peak(),
            "floor": profile.floor(),
            "valid": [profile.is_power_valid(lv) for lv in levels],
            "spikes": [profile.spikes(lv) for lv in levels],
            "gaps": [profile.gaps(lv) for lv in levels],
        }
    with core_mode("numpy", warm=False):
        assert profile.energy() == reference["energy"]
        assert [profile.energy_above(lv) for lv in levels] == \
            reference["above"]
        assert [profile.energy_capped(lv) for lv in levels] == \
            reference["capped"]
        assert profile.peak() == reference["peak"]
        assert profile.floor() == reference["floor"]
        assert [profile.is_power_valid(lv) for lv in levels] == \
            reference["valid"]
        assert [profile.spikes(lv) for lv in levels] == \
            reference["spikes"]
        assert [profile.gaps(lv) for lv in levels] == \
            reference["gaps"]


@needs_numpy
def test_profile_empty_and_single_segment_identical():
    empty = PowerProfile([])
    single = PowerProfile([(0, 5, 3.25)])
    for profile in (empty, single):
        with core_mode("oracle", warm=False):
            reference = (profile.energy(), profile.energy_above(3.25),
                         profile.energy_capped(3.25), profile.peak(),
                         profile.floor(), profile.spikes(1.0),
                         profile.gaps(10.0))
        with core_mode("numpy", warm=False):
            assert (profile.energy(), profile.energy_above(3.25),
                    profile.energy_capped(3.25), profile.peak(),
                    profile.floor(), profile.spikes(1.0),
                    profile.gaps(10.0)) == reference


# ----------------------------------------------------------------------
# end-to-end: full solves and sweep grids
# ----------------------------------------------------------------------

def _solve_snapshot(problem, options):
    result = PowerAwareScheduler(options).solve(problem)
    return (dict(result.schedule.items()),
            result.profile.segments,
            result.metrics.energy_cost,
            result.metrics.peak_power)


@needs_numpy
def test_full_pipeline_bit_identical_fig1():
    with core_mode("oracle", warm=False):
        reference = _solve_snapshot(fig1_problem(), fig1_options())
    for warm in (False, True):
        with core_mode("numpy", warm=warm):
            assert _solve_snapshot(fig1_problem(),
                                   fig1_options()) == reference


@needs_numpy
@pytest.mark.parametrize("seed", [3, 11, 29])
def test_full_pipeline_bit_identical_random_workloads(seed):
    config = RandomWorkloadConfig(tasks=20, resources=3, layers=4)
    with core_mode("oracle", warm=False):
        reference = _solve_snapshot(random_problem(seed, config), None)
    for warm in (False, True):
        with core_mode("numpy", warm=warm):
            assert _solve_snapshot(random_problem(seed, config),
                                   None) == reference


@needs_numpy
def test_sweep_grid_bit_identical_across_kernels():
    """The tests/test_sharding.py pattern, kernel edition: the Fig. 1
    grid solved by the oracle (cold) and by the numpy fast path with
    warm-started re-solves must produce field-exact SweepPoints."""
    budgets = [6, 8, 10, 12, 14]
    levels = [1, 3, 5, 8]
    spec = SweepSpec.grid(fig1_problem(), budgets, levels,
                          options=fig1_options())
    baseline_runner = BatchRunner(RunnerConfig(
        core_kernel="oracle", warm_start=False))
    baseline = baseline_runner.run(spec.jobs())
    fast_runner = BatchRunner(RunnerConfig(
        core_kernel="numpy", warm_start=True))
    fast = fast_runner.run(spec.jobs())
    assert all(r.ok for r in fast)
    assert [r.value for r in fast] == [r.value for r in baseline]


def test_runner_config_validates_kernel():
    with pytest.raises(ValueError, match="core_kernel"):
        RunnerConfig(core_kernel="cuda")


@needs_numpy
def test_graph_arrays_cached_per_version():
    g = _random_graph(4)
    first = graph_arrays(g)
    assert graph_arrays(g) is first
    g.add_release("t1", 5)
    rebuilt = graph_arrays(g)
    assert rebuilt is not first
    assert rebuilt.edge_count == len(g.edge_triples())


@needs_numpy
def test_pickled_graph_drops_derived_caches():
    import pickle

    g = _random_graph(8)
    with core_mode("oracle", warm=True):
        longest_paths(g)
        graph_arrays(g)
        clone = pickle.loads(pickle.dumps(g))
    assert clone._arrays_cache is None
    assert clone._state_cache == {}
    assert clone._warm_src is None
    assert clone._uid != g._uid
    # the plain lp cache travels: the clone's first solve is warm
    with core_mode("oracle", warm=False):
        assert dict(longest_paths(clone).distance) == \
            dict(longest_paths(g).distance)


def test_use_numpy_honours_mode():
    prev = set_kernel("oracle")
    try:
        assert not use_numpy()
        set_kernel("numpy")
        assert use_numpy() == HAVE_NUMPY
        set_kernel("auto")
        assert use_numpy() == HAVE_NUMPY
    finally:
        set_kernel(prev)
