"""Unit tests for the fully-serial (JPL-style) baseline scheduler."""

import pytest

from repro import (ConstraintGraph, SchedulingFailure, SchedulingProblem,
                   check_time_valid, serial_schedule)
from repro.workloads import independent


class TestSerialization:
    def test_everything_serialized(self):
        problem = independent(4, duration=5, power=4.0, p_max=100.0)
        result = serial_schedule(problem)
        # one task at a time -> makespan is the duration sum
        assert result.finish_time == 20
        assert result.metrics.peak_power == pytest.approx(4.0)

    def test_packed_back_to_back(self):
        problem = independent(3, duration=4, power=1.0, p_max=100.0)
        result = serial_schedule(problem)
        starts = sorted(result.schedule.as_dict().values())
        assert starts == [0, 4, 8]

    def test_respects_precedences(self):
        g = ConstraintGraph()
        g.new_task("a", duration=5, power=1.0, resource="A")
        g.new_task("b", duration=5, power=1.0, resource="B")
        g.add_precedence("b", "a")
        result = serial_schedule(SchedulingProblem(g, p_max=10.0))
        assert result.schedule.start("b") == 0
        assert result.schedule.start("a") == 5

    def test_chain_recorded_in_extra(self):
        problem = independent(3, duration=2, power=1.0, p_max=10.0)
        result = serial_schedule(problem)
        chain = result.extra["chain"]
        assert len(chain) == 3
        # chain order matches start-time order
        starts = [result.schedule.start(n) for n in chain]
        assert starts == sorted(starts)

    def test_time_valid(self, small_problem):
        result = serial_schedule(small_problem)
        assert check_time_valid(result.schedule).ok

    def test_backtracks_over_windows(self):
        """A max window can force a specific serial order."""
        g = ConstraintGraph()
        g.new_task("a", duration=5, power=1.0, resource="A")
        g.new_task("z", duration=5, power=1.0, resource="B")
        g.add_separation_window("z", "a", 0, 5)  # a within 5 s of z
        result = serial_schedule(SchedulingProblem(g, p_max=10.0))
        assert result.schedule.start("z") == 0
        assert result.schedule.start("a") == 5

    def test_infeasible_serialization_detected(self):
        """Two tasks that must overlap cannot be serialized."""
        g = ConstraintGraph()
        g.new_task("u", duration=10, power=1.0, resource="A")
        g.new_task("v", duration=10, power=1.0, resource="B")
        g.add_separation_window("u", "v", 0, 5)  # must overlap
        with pytest.raises(SchedulingFailure):
            serial_schedule(SchedulingProblem(g, p_max=10.0))

    def test_rover_serial_is_75s(self):
        from repro.mission import MarsRover, SolarCase
        rover = MarsRover.standard()
        result = serial_schedule(rover.problem(SolarCase.WORST))
        assert result.finish_time == 75
