"""Property-based tests for the execution layer.

The self-timed dispatcher's contract: *whatever the jitter does*, the
realized execution never violates a min separation, never overlaps a
resource, and never exceeds the power budget it can see.  The static
dispatcher's contract: with exact durations it replays the plan
bit-for-bit.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SchedulerOptions, SchedulingFailure
from repro.core.task import ANCHOR_NAME
from repro.execution import ScheduleExecutor, UniformJitter
from repro.scheduling import PowerAwareScheduler
from tests.test_properties import precedence_problems

FAST = SchedulerOptions(max_power_restarts=1, min_power_scans=1,
                        max_spike_attempts=300, seed=1)


def _plan(problem):
    try:
        return PowerAwareScheduler(FAST).solve(problem)
    except SchedulingFailure:
        return None


class TestSelfTimedInvariants:
    @given(precedence_problems(),
           st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
           st.integers(min_value=0, max_value=5))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_never_violates_under_jitter(self, problem, fraction,
                                         seed):
        plan = _plan(problem)
        if plan is None:
            return
        run = ScheduleExecutor(problem, plan.schedule,
                               durations=UniformJitter(fraction,
                                                       seed=seed),
                               policy="self_timed").run()
        assert run.trace.violations() == []
        assert not run.pending

        # realized min separations hold against realized starts
        graph = problem.graph
        for edge in graph.edges():
            if edge.weight < 0 or ANCHOR_NAME in (edge.src, edge.dst):
                continue
            src_start = run.spans[edge.src][0]
            dst_start = run.spans[edge.dst][0]
            assert dst_start - src_start >= edge.weight

        # no resource ever double-booked
        for name, (start, end) in run.spans.items():
            resource = graph.task(name).resource
            if resource is None:
                continue
            for other, (ostart, oend) in run.spans.items():
                if other == name \
                        or graph.task(other).resource != resource:
                    continue
                assert end <= ostart or oend <= start

        # realized profile under the visible budget
        assert run.profile.is_power_valid(problem.p_max)

    @given(precedence_problems())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_static_replay_is_exact(self, problem):
        plan = _plan(problem)
        if plan is None:
            return
        run = ScheduleExecutor(problem, plan.schedule,
                               policy="static").run()
        assert run.ok
        for name in plan.schedule:
            assert run.spans[name][0] == plan.schedule.start(name)
        assert run.finished_at == plan.finish_time
