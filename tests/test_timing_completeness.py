"""Completeness of the timing scheduler, checked against brute force.

The paper claims Fig. 3 "can be proved to always find a time-valid
schedule if one exists, since it will traverse all possible topological
orderings".  We verify that claim empirically: on exhaustively
enumerable random instances (4 tasks, small horizon, min/max windows,
shared resources), the timing scheduler succeeds exactly when a brute
force over all start assignments finds a time-valid schedule.
"""

import itertools
import random

import pytest

from repro import (ConstraintGraph, Schedule, SchedulerOptions,
                   SchedulingFailure, SchedulingProblem,
                   check_time_valid)
from repro.errors import PositiveCycleError, ReproError
from repro.scheduling import TimingScheduler

HORIZON = 12
N_TASKS = 4


def random_instance(seed: int) -> ConstraintGraph:
    rng = random.Random(seed)
    g = ConstraintGraph(f"tiny-{seed}")
    names = [f"t{i}" for i in range(N_TASKS)]
    for name in names:
        g.new_task(name, duration=rng.randint(1, 4), power=1.0,
                   resource=rng.choice(["R0", "R1"]))
    for _ in range(rng.randint(1, 4)):
        src, dst = rng.sample(names, 2)
        kind = rng.random()
        try:
            if kind < 0.5:
                g.add_min_separation(src, dst, rng.randint(0, 6))
            elif kind < 0.8:
                g.add_max_separation(src, dst, rng.randint(0, 8))
            else:
                lo = rng.randint(0, 4)
                g.add_separation_window(src, dst, lo,
                                        lo + rng.randint(0, 4))
        except ReproError:
            pass
    return g


def brute_force_has_schedule(graph: ConstraintGraph) -> bool:
    names = graph.task_names()
    for starts in itertools.product(range(HORIZON + 1),
                                    repeat=len(names)):
        schedule = Schedule(graph, dict(zip(names, starts)))
        if check_time_valid(schedule).ok:
            return True
    return False


@pytest.mark.parametrize("seed", range(40))
def test_timing_scheduler_matches_brute_force(seed):
    graph = random_instance(seed)
    problem = SchedulingProblem(graph, p_max=1e9)
    scheduler = TimingScheduler(SchedulerOptions(max_backtracks=50_000))
    try:
        result = scheduler.solve(problem)
        found = True
        # the found schedule must also fit the brute-force horizon for
        # a fair comparison — ASAP schedules of these tiny instances do
        assert check_time_valid(result.schedule).ok
    except (SchedulingFailure, PositiveCycleError):
        found = False
    assert found == brute_force_has_schedule(graph), (
        f"seed {seed}: scheduler={'found' if found else 'failed'} but "
        f"brute force disagrees")
