"""Unit tests for the runtime execution layer."""

import pytest

from repro import (ConstraintGraph, SchedulerOptions, SchedulingProblem,
                   schedule)
from repro.errors import ReproError
from repro.execution import (BATTERY_DEPLETED, POWER_SPIKE,
                             RESOURCE_VIOLATION, FixedOverruns,
                             ScheduleExecutor, SolarDropout, Trace,
                             UniformJitter, replan,
                             TASK_FINISHED, TASK_STARTED)
from repro.power import ConstantSolar, IdealBattery, PowerSystem

FAST = SchedulerOptions(max_power_restarts=1, min_power_scans=1, seed=1)


def pipeline_problem() -> SchedulingProblem:
    g = ConstraintGraph("exec")
    g.new_task("a", duration=4, power=4.0, resource="R")
    g.new_task("b", duration=4, power=4.0, resource="R")
    g.new_task("c", duration=4, power=4.0, resource="S")
    g.add_precedence("a", "b")
    g.add_precedence("a", "c")
    return SchedulingProblem(g, p_max=9.0, p_min=4.0)


def planned(problem):
    return schedule(problem, FAST)


class TestTrace:
    def test_record_and_query(self):
        trace = Trace()
        trace.record(3, TASK_STARTED, "a")
        trace.record(7, TASK_FINISHED, "a")
        trace.record(5, POWER_SPIKE, detail="11 W")
        assert len(trace) == 3
        assert trace.of_kind(TASK_STARTED)[0].task == "a"
        assert len(trace.for_task("a")) == 2
        assert len(trace.violations()) == 1
        assert trace.first(TASK_FINISHED).time == 7
        assert "t=5" in trace.render()


class TestNominalExecution:
    def test_static_replays_the_plan_exactly(self):
        problem = pipeline_problem()
        plan = planned(problem)
        result = ScheduleExecutor(problem, plan.schedule,
                                  policy="static").run()
        assert result.ok
        for name in plan.schedule:
            assert result.spans[name][0] == plan.schedule.start(name)
        assert result.finished_at == plan.finish_time

    def test_self_timed_matches_plan_when_nothing_goes_wrong(self):
        problem = pipeline_problem()
        plan = planned(problem)
        result = ScheduleExecutor(problem, plan.schedule,
                                  policy="self_timed").run()
        assert result.ok
        assert result.finished_at == plan.finish_time

    def test_realized_profile_matches_plan(self):
        problem = pipeline_problem()
        plan = planned(problem)
        result = ScheduleExecutor(problem, plan.schedule).run()
        assert result.profile.segments == plan.profile.segments

    def test_unknown_policy_rejected(self):
        problem = pipeline_problem()
        plan = planned(problem)
        with pytest.raises(ReproError):
            ScheduleExecutor(problem, plan.schedule, policy="magic")

    def test_snapshot_run_until(self):
        problem = pipeline_problem()
        plan = planned(problem)
        result = ScheduleExecutor(problem, plan.schedule).run(until=2)
        assert result.pending  # nothing can have completed by t=2
        assert not result.ok


class TestOverruns:
    def test_static_policy_exposes_resource_collision(self):
        """Task a overruns past b's planned start on the shared
        resource: the time-triggered executive collides."""
        problem = pipeline_problem()
        plan = planned(problem)
        result = ScheduleExecutor(
            problem, plan.schedule,
            durations=FixedOverruns({"a": 3}), policy="static").run()
        kinds = {e.kind for e in result.trace.violations()}
        assert RESOURCE_VIOLATION in kinds

    def test_self_timed_policy_stretches_instead(self):
        problem = pipeline_problem()
        plan = planned(problem)
        result = ScheduleExecutor(
            problem, plan.schedule,
            durations=FixedOverruns({"a": 3}),
            policy="self_timed").run()
        assert result.ok
        assert result.finished_at > plan.finish_time
        # b starts only after a's *actual* end on the shared resource
        assert result.spans["b"][0] >= result.spans["a"][1]

    def test_self_timed_respects_power_headroom(self):
        problem = pipeline_problem()
        plan = planned(problem)
        result = ScheduleExecutor(
            problem, plan.schedule,
            durations=FixedOverruns({"b": 2}),
            policy="self_timed").run()
        assert result.profile.is_power_valid(problem.p_max)

    def test_uniform_jitter_is_deterministic_per_seed(self):
        model = UniformJitter(0.3, seed=4)
        task = pipeline_problem().graph.task("a")
        first = model.actual_duration(task)
        assert model.actual_duration(task) == first
        model.reset(seed=99)
        # may or may not differ, but must stay within bounds
        other = model.actual_duration(task)
        assert 1 <= other <= task.duration * 2

    def test_jitter_bounds(self):
        with pytest.raises(ReproError):
            UniformJitter(1.5)
        with pytest.raises(ReproError):
            FixedOverruns({"a": -1})


class TestSupplyInteraction:
    def test_battery_drains_during_execution(self):
        problem = pipeline_problem()
        plan = planned(problem)
        battery = IdealBattery(capacity=1000.0, max_power=10.0)
        supply = PowerSystem(ConstantSolar(4.0), battery)
        result = ScheduleExecutor(problem, plan.schedule,
                                  supply=supply).run()
        assert result.ok
        assert battery.used == pytest.approx(
            plan.profile.energy_above(4.0), abs=1e-6)
        assert result.energy is not None
        assert result.energy.battery_drawn == pytest.approx(
            battery.used, abs=1e-6)

    def test_battery_depletion_aborts_run(self):
        problem = pipeline_problem()
        plan = planned(problem)
        battery = IdealBattery(capacity=5.0, max_power=10.0)
        supply = PowerSystem(ConstantSolar(0.0), battery)
        result = ScheduleExecutor(problem, plan.schedule,
                                  supply=supply).run()
        assert result.aborted
        assert result.trace.first(BATTERY_DEPLETED) is not None

    def test_solar_dropout_shifts_cost_to_battery(self):
        problem = pipeline_problem()
        plan = planned(problem)
        base = ConstantSolar(4.0)
        battery = IdealBattery(capacity=1000.0, max_power=10.0)
        supply = PowerSystem(SolarDropout(base, 0, 4), battery)
        result = ScheduleExecutor(problem, plan.schedule,
                                  supply=supply).run()
        # during the dropout everything above 0 W comes from battery
        nominal = plan.profile.energy_above(4.0)
        assert battery.used > nominal

    def test_dropout_window_validated(self):
        with pytest.raises(ReproError):
            SolarDropout(ConstantSolar(1.0), 5, 5)


class TestReplan:
    def test_replan_freezes_history_and_releases_future(self):
        problem = pipeline_problem()
        plan = planned(problem)
        snapshot = ScheduleExecutor(
            problem, plan.schedule,
            durations=FixedOverruns({"a": 4}),
            policy="self_timed").run(until=5)
        result = replan(problem, snapshot, now=5, options=FAST)
        # a keeps its actual start; pending tasks start at/after now
        assert result.schedule.start("a") == snapshot.spans["a"][0]
        for name in problem.graph.task_names():
            if name not in snapshot.spans:
                assert result.schedule.start(name) >= 5

    def test_replan_accounts_for_overrun(self):
        """b shares a's resource: after a 4-tick overrun of a, the new
        plan must push b past a's actual end (8), not its nominal end
        (4)."""
        problem = pipeline_problem()
        snapshot = ScheduleExecutor(
            problem, planned(problem).schedule,
            durations=FixedOverruns({"a": 4}),
            policy="self_timed").run(until=5)
        assert "b" not in snapshot.spans  # resource R still held by a
        result = replan(problem, snapshot, now=5, options=FAST)
        assert result.schedule.start("b") >= 8

    def test_replan_under_new_power_constraints(self):
        problem = pipeline_problem()
        snapshot = ScheduleExecutor(problem,
                                    planned(problem).schedule).run(
            until=1)
        result = replan(problem, snapshot, now=1, p_max=5.0,
                        options=FAST)
        # with only 5 W, b and c can no longer overlap after t=1
        profile = result.profile
        future = profile.restricted(1, profile.horizon)
        assert future.is_power_valid(5.0)

    def test_replan_rejects_negative_now(self):
        problem = pipeline_problem()
        snapshot = ScheduleExecutor(problem,
                                    planned(problem).schedule).run(
            until=1)
        with pytest.raises(ReproError):
            replan(problem, snapshot, now=-1)
