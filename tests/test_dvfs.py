"""DVFS operating points as a first-class problem axis.

Three layers of evidence:

* **Scaling laws** — hypothesis properties over the shared arithmetic in
  :mod:`repro.core.dvfs`: duration monotone nonincreasing in ``f``,
  (ideal) energy monotone in ``f`` at fixed work, the integer grid
  never undercharging the continuous model, and the quantizer being a
  stable pure function.
* **Bit-identity** — a full-speed-only ladder must be indistinguishable
  from a frequency-free problem: same solver output on the Fig. 1
  pipeline (both kernels, warm on/off) and field-exact SweepPoints on a
  14x14 grid, serial vs 4 subprocess shards (the shard-count-invariance
  committed invariant, extended to the new axis).
* **Subsystem contracts** — the schedule-store exemption (DESIGN.md
  5f), base-key stability for ladder-free problems, wire-format version
  negotiation, and the rescue scenario delay-only scheduling provably
  cannot solve.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (ConstraintGraph, OperatingPoint,
                        SchedulingProblem, Task, attach_ladder,
                        materialize_assignment, quantize_power,
                        scaled_duration, scaled_power)
from repro.core.arrays import HAVE_NUMPY
from repro.core.dvfs import DEFAULT_LADDER, ladder_from_freqs
from repro.core.kernel import clear_warm_pool, set_kernel, set_warm
from repro.engine import BatchRunner, RunnerConfig, ScheduleStore, SweepSpec
from repro.engine.backends import SubprocessShardBackend
from repro.engine.hashing import canonical_problem_dict, problem_base_key
from repro.errors import GraphError, SchedulingFailure
from repro.examples_data import fig1_options, fig1_problem
from repro.io.json_io import problem_from_dict, problem_to_dict
from repro.io.requests import (REQUEST_VERSION, RequestError,
                               solve_request_from_dict,
                               solve_request_to_dict)
from repro.scheduling import (FreqSelectScheduler, PowerAwareScheduler,
                              freq_select_schedule)

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY,
                                 reason="numpy not installed")

_FREQS = st.floats(min_value=0.05, max_value=1.0,
                   allow_nan=False, allow_infinity=False)
_DURATIONS = st.integers(min_value=0, max_value=400)
_POWERS = st.floats(min_value=0.0, max_value=60.0,
                    allow_nan=False, allow_infinity=False)
_CORES = st.integers(min_value=1, max_value=4)


def _core_mode(kernel, warm):
    prev_kernel = set_kernel(kernel)
    prev_warm = set_warm(warm)
    clear_warm_pool()
    return prev_kernel, prev_warm


def _restore_mode(prev):
    set_kernel(prev[0])
    set_warm(prev[1])
    clear_warm_pool()


# ----------------------------------------------------------------------
# operating-point model
# ----------------------------------------------------------------------

def test_operating_point_validation():
    assert OperatingPoint().is_full_speed
    assert OperatingPoint(freq=1.0, cores=1).key == (1.0, 1)
    with pytest.raises(GraphError):
        OperatingPoint(freq=0.0)
    with pytest.raises(GraphError):
        OperatingPoint(freq=1.5)
    with pytest.raises(GraphError):
        OperatingPoint(freq=0.5, cores=0)
    with pytest.raises(GraphError):
        OperatingPoint(freq=0.5, cores=1.5)  # type: ignore[arg-type]


def test_task_ladder_validation():
    full = OperatingPoint()
    half = OperatingPoint(freq=0.5)
    task = Task("t", 10, 4.0, "cpu", operating_points=(full, half))
    assert task.has_ladder
    with pytest.raises(GraphError, match="full-speed"):
        Task("t", 10, 4.0, operating_points=(half,))
    with pytest.raises(GraphError, match="duplicate"):
        Task("t", 10, 4.0, operating_points=(full, full))
    with pytest.raises(GraphError, match="OperatingPoint"):
        Task("t", 10, 4.0, operating_points=(full, 0.5))


def test_at_full_speed_is_bit_identical():
    task = Task("t", 7, 1.0 / 3.0, "cpu", meta={"kind": "filter"},
                operating_points=ladder_from_freqs(DEFAULT_LADDER))
    back = task.at_point(OperatingPoint())
    # no quantization at the reference point: 1/3 survives exactly
    assert back.power == task.power
    assert back.duration == task.duration
    assert dict(back.meta) == dict(task.meta)
    assert not back.has_ladder


def test_at_point_scales_and_tags():
    task = Task("t", 10, 8.0, "cpu",
                operating_points=ladder_from_freqs((1.0, 0.5)))
    scaled = task.at_point(OperatingPoint(freq=0.5))
    assert scaled.duration == 20
    assert scaled.power == quantize_power(8.0 * 0.125)
    assert scaled.meta["dvfs_freq"] == 0.5
    assert scaled.meta["dvfs_cores"] == 1
    with pytest.raises(GraphError):
        # the point must come from the task's own ladder
        materialize_assignment(
            _ladder_problem(), {"a": OperatingPoint(freq=0.3)})


def test_ladder_requires_full_speed_rung():
    with pytest.raises(GraphError, match="full-speed"):
        ladder_from_freqs((0.5, 0.25))


# ----------------------------------------------------------------------
# scaling laws (hypothesis)
# ----------------------------------------------------------------------

@given(duration=_DURATIONS, f1=_FREQS, f2=_FREQS, cores=_CORES)
@settings(max_examples=200, deadline=None)
def test_duration_monotone_nonincreasing_in_freq(duration, f1, f2,
                                                 cores):
    lo, hi = min(f1, f2), max(f1, f2)
    assert scaled_duration(duration, lo, cores) >= \
        scaled_duration(duration, hi, cores)
    assert scaled_duration(duration, 1.0, 1) == duration


@given(duration=_DURATIONS, power=_POWERS, f1=_FREQS, f2=_FREQS)
@settings(max_examples=200, deadline=None)
def test_ideal_energy_monotone_in_freq_at_fixed_work(duration, power,
                                                     f1, f2):
    """Continuous model: E(f) = d * p * f**2 grows with f (cores drop
    out — more cores divide the time they multiply the power by)."""
    lo, hi = min(f1, f2), max(f1, f2)
    assert duration * power * lo ** 2 <= duration * power * hi ** 2


@given(duration=_DURATIONS, power=_POWERS, freq=_FREQS, cores=_CORES)
@settings(max_examples=200, deadline=None)
def test_integer_grid_never_undercharges(duration, power, freq, cores):
    """ceil-rounding only stretches time, so realized energy is at
    least the ideal minus the one-microwatt power quantization."""
    realized = scaled_duration(duration, freq, cores) \
        * scaled_power(power, freq, cores)
    ideal = duration * power * freq ** 2
    slack = scaled_duration(duration, freq, cores) * 5e-7
    assert realized >= ideal - slack


@given(power=_POWERS, freq=_FREQS, cores=_CORES)
@settings(max_examples=200, deadline=None)
def test_quantizer_is_stable_and_shared(power, freq, cores):
    value = scaled_power(power, freq, cores)
    assert value == quantize_power(value)          # idempotent
    assert value == quantize_power(power * freq ** 3 * cores)
    assert scaled_power(power, 1.0, 1) == quantize_power(power)


# ----------------------------------------------------------------------
# materialization edge semantics
# ----------------------------------------------------------------------

def _ladder_problem() -> SchedulingProblem:
    g = ConstraintGraph("edges")
    g.new_task("a", 10, 6.0, "cpu")
    g.new_task("b", 4, 2.0, "cpu")
    g.new_task("c", 3, 1.0, "heater")
    g.add_precedence("a", "b", gap=2)        # weight d(a)+2 = 12
    g.add_min_separation("c", "b", 2)        # short window: stays
    g.add_finish_deadline("a", 50)           # start deadline 40
    problem = SchedulingProblem(graph=g, p_max=20.0)
    return attach_ladder(problem, (1.0, 0.5))


def test_materialize_adjusts_duration_anchored_edges():
    problem = _ladder_problem()
    slow = materialize_assignment(
        problem, {"a": OperatingPoint(freq=0.5)})
    g = slow.graph
    assert g.task("a").duration == 20
    # end-to-start precedence moved with the stretch: 12 -> 22
    assert g.separation("a", "b") == 22
    # deadline tightened as a finish deadline: start by 50 - 20 = 30
    assert g.separation("a", "__anchor__") == -30
    # the short start-to-start window is speed-independent
    assert g.separation("c", "b") == 2


def test_materialize_full_speed_is_exact():
    problem = _ladder_problem()
    full = {name: OperatingPoint() for name in ("a", "b", "c")}
    out = materialize_assignment(problem, full)
    plain = [(t.name, t.duration, t.power, t.resource)
             for t in out.graph.tasks()]
    assert not out.has_operating_points
    assert plain == [("a", 10, 6.0, "cpu"), ("b", 4, 2.0, "cpu"),
                     ("c", 3, 1.0, "heater")]
    assert sorted((e.src, e.dst, e.weight, e.tag)
                  for e in out.graph.edges()) == \
        sorted((e.src, e.dst, e.weight, e.tag)
               for e in _ladder_problem().graph.edges())


# ----------------------------------------------------------------------
# bit-identity: full-speed ladder == frequency-free solve
# ----------------------------------------------------------------------

def _solve_snapshot(problem, options):
    result = PowerAwareScheduler(options).solve(problem)
    return (dict(result.schedule.items()),
            result.profile.segments,
            result.metrics.energy_cost,
            result.metrics.peak_power)


def _fig1_full_speed():
    return attach_ladder(fig1_problem(), (1.0,))


@pytest.mark.parametrize("warm", [False, True])
def test_full_speed_ladder_bit_identical_fig1_oracle(warm):
    prev = _core_mode("oracle", warm)
    try:
        reference = _solve_snapshot(fig1_problem(), fig1_options())
        assert _solve_snapshot(_fig1_full_speed(),
                               fig1_options()) == reference
    finally:
        _restore_mode(prev)


@needs_numpy
@pytest.mark.parametrize("warm", [False, True])
def test_full_speed_ladder_bit_identical_fig1_numpy(warm):
    prev = _core_mode("oracle", False)
    try:
        reference = _solve_snapshot(fig1_problem(), fig1_options())
    finally:
        _restore_mode(prev)
    prev = _core_mode("numpy", warm)
    try:
        assert _solve_snapshot(_fig1_full_speed(),
                               fig1_options()) == reference
    finally:
        _restore_mode(prev)


# 14 budgets x 14 levels: the differential grid of the acceptance
# criteria.  Serial frequency-free is the baseline; the full-speed
# ladder must match it point for point, serially and across 4 shards.
_BUDGETS_14 = [6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 20]
_LEVELS_14 = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 14]


@pytest.fixture(scope="module")
def grid_14_baseline():
    spec = SweepSpec.grid(fig1_problem(), _BUDGETS_14, _LEVELS_14,
                          options=fig1_options())
    runner = BatchRunner(RunnerConfig())
    return [r.value for r in runner.run(spec.jobs())]


def test_full_speed_ladder_grid_14x14_serial(grid_14_baseline):
    spec = SweepSpec.grid(fig1_problem(), _BUDGETS_14, _LEVELS_14,
                          options=fig1_options(), freq_levels=(1.0,))
    runner = BatchRunner(RunnerConfig())
    results = runner.run(spec.jobs())
    assert all(r.ok for r in results)
    assert [r.value for r in results] == grid_14_baseline


def test_full_speed_ladder_grid_14x14_across_4_shards(grid_14_baseline):
    spec = SweepSpec.grid(fig1_problem(), _BUDGETS_14, _LEVELS_14,
                          options=fig1_options(), freq_levels=(1.0,))
    runner = BatchRunner(
        RunnerConfig(reuse_schedules=True),
        backend=SubprocessShardBackend(shards=4, strategy="tile"))
    results = runner.run(spec.jobs())
    assert runner.last_mode == "shards"
    assert all(r.ok for r in results)
    assert [r.value for r in results] == grid_14_baseline


# ----------------------------------------------------------------------
# the move delay-only scheduling cannot make
# ----------------------------------------------------------------------

def _overbudget_problem() -> SchedulingProblem:
    g = ConstraintGraph("overbudget")
    g.new_task("hot", 8, 15.0, "cpu")
    g.new_task("steady", 4, 2.0, "motor")
    g.add_finish_deadline("hot", 60)
    return SchedulingProblem(graph=g, p_max=12.0)


def test_slowdown_rescues_provably_delay_infeasible_problem():
    problem = _overbudget_problem()
    # the static screen proves no delay-only schedule can exist
    assert problem.feasible_power_check()
    with pytest.raises(SchedulingFailure):
        PowerAwareScheduler().solve(problem)
    laddered = attach_ladder(problem, DEFAULT_LADDER)
    result = PowerAwareScheduler().solve(laddered)
    assert result.metrics.peak_power <= laddered.p_max
    chosen = result.extra["dvfs"]["assignment"]["hot"]
    assert chosen["freq"] < 1.0


def test_freq_select_pipeline_reports_stage_and_extras():
    laddered = attach_ladder(_overbudget_problem(), DEFAULT_LADDER)
    pipeline = FreqSelectScheduler().solve_pipeline(laddered)
    assert pipeline.freq_select is not None
    assert pipeline.freq_select.stage == "freq_select"
    dvfs = pipeline.final.extra["dvfs"]
    assert dvfs["evaluations"] >= 1
    assert dvfs["energy_rounded_J"] >= 0.0
    assert "freq_select" in pipeline.final.stats.stage_seconds
    # the one-call wrapper agrees with the pipeline's final result
    direct = freq_select_schedule(laddered)
    assert dict(direct.schedule.items()) == \
        dict(pipeline.final.schedule.items())


def test_freq_select_passthrough_without_ladder():
    problem = fig1_problem()
    via = FreqSelectScheduler().solve_pipeline(problem)
    plain = PowerAwareScheduler().solve_pipeline(problem)
    assert via.freq_select is None
    assert dict(via.final.schedule.items()) == \
        dict(plain.final.schedule.items())


def test_freq_select_fails_when_no_rung_fits():
    g = ConstraintGraph("hopeless")
    g.new_task("hot", 4, 500.0, "cpu")
    problem = SchedulingProblem(graph=g, p_max=1.0)
    laddered = attach_ladder(problem, (1.0, 0.75))
    with pytest.raises(SchedulingFailure, match="every operating"):
        PowerAwareScheduler().solve(laddered)


# ----------------------------------------------------------------------
# engine contracts: hashing + schedule-store exemption
# ----------------------------------------------------------------------

def test_ladder_free_canonical_hash_unchanged():
    """Ladder-free tasks keep their historical 5-tuple shape, so every
    existing store/journal key stays valid."""
    doc = canonical_problem_dict(fig1_problem())
    assert all(len(entry) == 5 for entry in doc["tasks"])
    laddered = canonical_problem_dict(_fig1_full_speed())
    assert any(len(entry) == 6 for entry in laddered["tasks"])
    assert problem_base_key(fig1_problem()) != \
        problem_base_key(_fig1_full_speed())
    # pure function: stable across calls
    assert problem_base_key(fig1_problem()) == \
        problem_base_key(fig1_problem())


def test_store_never_certifies_ladder_problems():
    store = ScheduleStore()
    laddered = _fig1_full_speed()
    key = store.ensure_primed(laddered, fig1_options())
    assert len(store) == 0                # no certified entry
    # idempotent and still empty on the second call
    assert store.ensure_primed(laddered, fig1_options()) == key
    assert len(store) == 0
    plain_key = store.ensure_primed(fig1_problem(), fig1_options())
    assert plain_key != key
    assert len(store) == 1                # speed-fixed still certifies


def test_sweep_with_store_keeps_ladder_points_exempt():
    spec = SweepSpec.grid(fig1_problem(), [10, 12], [2, 4],
                          options=fig1_options(), freq_levels=(1.0,))
    runner = BatchRunner(RunnerConfig(reuse_schedules=True))
    results = runner.run(spec.jobs())
    assert all(r.ok for r in results)
    assert len(runner.store) == 0         # nothing recorded either
    # and the answers equal the frequency-free ones
    plain = BatchRunner(RunnerConfig()).run(
        SweepSpec.grid(fig1_problem(), [10, 12], [2, 4],
                       options=fig1_options()).jobs())
    assert [r.value for r in results] == [r.value for r in plain]


# ----------------------------------------------------------------------
# wire formats: version negotiation
# ----------------------------------------------------------------------

def test_problem_document_version_negotiation():
    plain_doc = problem_to_dict(fig1_problem())
    assert plain_doc["version"] == 1
    assert all("operating_points" not in t for t in plain_doc["tasks"])
    ladder_doc = problem_to_dict(
        attach_ladder(fig1_problem(), (1.0, 0.5)))
    assert ladder_doc["version"] == 2
    restored = problem_from_dict(ladder_doc)
    assert restored.has_operating_points
    task = next(t for t in restored.graph.tasks() if t.duration > 0)
    assert [p.key for p in task.operating_points] == [(1.0, 1),
                                                      (0.5, 1)]
    # a v1-only reader rejects v2 cleanly instead of dropping the axis
    from repro.errors import SerializationError
    too_new = dict(plain_doc)
    too_new["version"] = 3
    with pytest.raises(SerializationError, match="newer"):
        problem_from_dict(too_new)


def test_solve_request_version_negotiation():
    plain = solve_request_to_dict(fig1_problem(), p_max=10.0)
    assert plain["version"] == 1          # no DVFS -> old servers OK
    parsed = solve_request_from_dict(plain)
    assert not parsed.problem.has_operating_points

    laddered = solve_request_to_dict(fig1_problem(), p_max=10.0,
                                     freq_levels=[1.0, 0.5])
    assert laddered["version"] == 2
    parsed = solve_request_from_dict(laddered)
    assert parsed.freq_levels == (1.0, 0.5)
    assert parsed.problem.has_operating_points

    too_new = dict(plain)
    too_new["version"] = REQUEST_VERSION + 1
    with pytest.raises(RequestError) as err:
        solve_request_from_dict(too_new)
    assert err.value.code == "unsupported_version"

    bad = dict(plain)
    bad["freq_levels"] = [0.5, 0.25]      # no full-speed rung
    with pytest.raises(RequestError) as err:
        solve_request_from_dict(bad)
    assert err.value.code == "bad_request"
