"""Unit tests for the workload generators."""

import pytest

from repro import check_time_valid
from repro.errors import ReproError
from repro.scheduling.timing import TimingScheduler, asap_schedule
from repro.workloads import (RandomWorkloadConfig, chain, fork_join,
                             independent, pipeline, random_problem,
                             random_problems)


class TestPatterns:
    def test_chain_structure(self):
        problem = chain(4, duration=3)
        g = problem.graph
        assert len(g) == 4
        assert g.separation("t0", "t1") == 3
        assert g.separation("t2", "t3") == 3

    def test_chain_min_length(self):
        with pytest.raises(ReproError):
            chain(0)

    def test_independent_resources_distinct(self):
        problem = independent(5)
        resources = {t.resource for t in problem.graph.tasks()}
        assert len(resources) == 5

    def test_fork_join_structure(self):
        problem = fork_join(width=3, duration=5)
        g = problem.graph
        assert len(g) == 5
        for i in range(3):
            assert g.separation("source", f"w{i}") == 5
            assert g.separation(f"w{i}", "sink") == 5

    def test_pipeline_grid(self):
        problem = pipeline(stages=3, width=2, duration=4)
        g = problem.graph
        assert len(g) == 6
        assert g.separation("s0_c1", "s1_c1") == 4
        assert g.separation("s1_c0", "s2_c0") == 4
        # stage tasks share a resource
        assert len(g.tasks_on("stage0")) == 2

    def test_pipeline_validation(self):
        with pytest.raises(ReproError):
            pipeline(stages=0, width=2)


class TestRandomGenerator:
    def test_reproducible_for_seed(self):
        a = random_problem(99)
        b = random_problem(99)
        assert a.graph.task_names() == b.graph.task_names()
        assert sorted((e.src, e.dst, e.weight) for e in a.graph.edges()) \
            == sorted((e.src, e.dst, e.weight) for e in b.graph.edges())
        assert a.p_max == b.p_max

    def test_different_seeds_differ(self):
        a = random_problem(1)
        b = random_problem(2)
        assert sorted((e.src, e.dst, e.weight) for e in a.graph.edges()) \
            != sorted((e.src, e.dst, e.weight) for e in b.graph.edges())

    def test_config_respected(self):
        config = RandomWorkloadConfig(tasks=12, resources=2, layers=3)
        problem = random_problem(5, config)
        assert len(problem.graph) == 12
        resources = {t.resource for t in problem.graph.tasks()}
        assert resources <= {"R0", "R1"}

    def test_instances_are_time_feasible(self):
        """Generated constraints never contradict: the timing
        scheduler must always succeed."""
        for seed in range(30, 40):
            problem = random_problem(seed)
            graph = problem.fresh_graph()
            TimingScheduler().schedule_graph(graph)
            assert check_time_valid(asap_schedule(graph)).ok

    def test_power_budget_leaves_headroom(self):
        for seed in range(50, 60):
            problem = random_problem(seed)
            assert problem.feasible_power_check() == []

    def test_batch_generation(self):
        batch = random_problems(5, base_seed=200)
        assert len(batch) == 5
        assert len({p.name for p in batch}) == 5

    def test_invalid_config_rejected(self):
        with pytest.raises(ReproError):
            RandomWorkloadConfig(tasks=0)
        with pytest.raises(ReproError):
            RandomWorkloadConfig(tightness=0)
        with pytest.raises(ReproError):
            RandomWorkloadConfig(p_min_fraction=2.0)
