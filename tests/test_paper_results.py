"""Paper-level acceptance tests: the headline claims must reproduce.

These tests pin the *shape* of the paper's evaluation (who wins, by
roughly what factor, where the regimes coincide) and the values our
reproduction achieves, so regressions in any scheduler component are
caught against the actual scientific claims rather than incidental
numbers.
"""

import pytest

from repro.mission import (JPLPolicy, MarsRover, MissionSimulator,
                           PowerAwarePolicy, SolarCase, compare_reports,
                           paper_mission_environment)


@pytest.fixture(scope="module")
def rover() -> MarsRover:
    return MarsRover.standard()


@pytest.fixture(scope="module")
def power_aware(rover):
    return {case: rover.power_aware_result(case) for case in SolarCase}


class TestTable3:
    def test_best_case_finish_time_is_50(self, power_aware):
        """Paper: 50 s (critical path); 50 % faster than JPL's 75 s."""
        assert power_aware[SolarCase.BEST].finish_time == 50

    def test_typical_case_matches_paper_exactly(self, power_aware):
        """Paper row: 60 s, 147 J, 94 %."""
        result = power_aware[SolarCase.TYPICAL]
        assert result.finish_time == 60
        assert result.energy_cost == pytest.approx(147.0, abs=0.5)
        assert 100 * result.utilization == pytest.approx(94.0, abs=0.5)

    def test_worst_case_equals_serial_schedule(self, rover, power_aware):
        """Paper: 'The existing schedule is identical to our
        power-aware schedule in the worst case'."""
        result = power_aware[SolarCase.WORST]
        jpl = rover.jpl_result(SolarCase.WORST)
        assert result.finish_time == jpl.finish_time == 75
        assert result.energy_cost == pytest.approx(388.0, abs=1e-6)
        assert result.utilization == pytest.approx(1.0)

    def test_speedup_trend_across_cases(self, power_aware):
        """More free power -> faster schedules (50 <= 60 <= 75)."""
        taus = [power_aware[c].finish_time
                for c in (SolarCase.BEST, SolarCase.TYPICAL,
                          SolarCase.WORST)]
        assert taus == sorted(taus)
        assert taus[0] < taus[2]

    def test_power_aware_trades_battery_for_speed(self, rover,
                                                  power_aware):
        """In the non-worst cases the power-aware schedule is faster
        but draws more battery energy than JPL's (the paper's central
        trade-off)."""
        for case in (SolarCase.BEST, SolarCase.TYPICAL):
            pa = power_aware[case]
            jpl = rover.jpl_result(case)
            assert pa.finish_time < jpl.finish_time
            assert pa.energy_cost >= jpl.energy_cost

    def test_all_schedules_respect_budget(self, rover, power_aware):
        for case in SolarCase:
            problem = rover.problem(case)
            assert power_aware[case].metrics.peak_power \
                <= problem.p_max + 1e-9


class TestUnrolledBestCase:
    def test_second_iteration_much_cheaper(self, rover):
        """Paper: 79.5 J first iteration, 6 J thereafter — the inserted
        heating tasks let the second iteration run almost for free."""
        result = rover.unrolled_result(SolarCase.BEST, iterations=2,
                                       prewarm=True)
        boundary = rover.iteration_boundary(result)
        solar = 14.9
        first = result.profile.restricted(0, boundary)
        second = result.profile.restricted(boundary,
                                           result.profile.horizon)
        assert second.energy_above(solar) < 0.5 * first.energy_above(
            solar)

    def test_steady_state_period_is_50s(self, rover):
        """Three unrolled iterations pipeline into a 50 s steady
        period (matching the paper's 24 steps per 600 s)."""
        result = rover.unrolled_result(SolarCase.BEST, iterations=3,
                                       prewarm=True)
        starts = result.schedule.as_dict()
        b2 = min(s for n, s in starts.items() if n.startswith("i2_"))
        b3 = min(s for n, s in starts.items() if n.startswith("i3_"))
        assert b3 - b2 == 50


class TestTable4:
    @pytest.fixture(scope="class")
    def reports(self, rover):
        jpl = MissionSimulator(paper_mission_environment(),
                               JPLPolicy(rover), 48).run()
        pa = MissionSimulator(paper_mission_environment(),
                              PowerAwarePolicy(rover), 48).run()
        return jpl, pa

    def test_both_policies_complete(self, reports):
        jpl, pa = reports
        assert jpl.completed and pa.completed
        assert jpl.total_steps >= 48 and pa.total_steps >= 48

    def test_jpl_mission_matches_paper(self, reports):
        """Fixed speed: 16 steps per 600 s phase, 1800 s total; energy
        cost concentrated in the worst phase (paper: 3554 J total)."""
        jpl, _ = reports
        assert jpl.total_time == pytest.approx(1800.0)
        phases = jpl.phases()
        assert [p.steps for p in phases] == [16, 16, 16]
        assert phases[0].energy_cost == pytest.approx(0.0)
        assert phases[1].energy_cost == pytest.approx(440.0, rel=0.01)
        assert phases[2].energy_cost == pytest.approx(3104.0, rel=0.01)

    def test_power_aware_wins_on_both_axes(self, reports):
        """The paper's bottom line: 33.3 % faster and 32.7 % cheaper.
        Our measured improvements must be substantial on both axes."""
        jpl, pa = reports
        comparison = compare_reports(jpl, pa)
        assert comparison["time_improvement_pct"] > 15.0
        assert comparison["energy_improvement_pct"] > 15.0

    def test_power_aware_front_loads_distance(self, reports):
        """The rover covers most ground while solar power is high,
        leaving only a few steps for the costly worst case."""
        _, pa = reports
        phases = pa.phases()
        assert phases[0].steps > 16          # beats JPL's fixed pace
        assert phases[-1].steps < 16         # little left for dusk
