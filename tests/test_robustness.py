"""Unit tests for (min, typical, max) power-uncertainty analysis."""

import pytest

from repro import ConstraintGraph, SchedulerOptions, SchedulingProblem
from repro.analysis import (PowerTriple, attach_triples, corner_problems,
                            robust_schedule)
from repro.errors import ReproError

FAST = SchedulerOptions(max_power_restarts=1, min_power_scans=1, seed=3)


def triple_problem(p_max: float = 14.0) -> SchedulingProblem:
    g = ConstraintGraph("uncertain")
    g.new_task("a", duration=5, power=0.0, resource="A")
    g.new_task("b", duration=5, power=0.0, resource="B")
    g.new_task("c", duration=5, power=0.0, resource="C")
    g.add_precedence("a", "c")
    graph = attach_triples(g, {
        "a": PowerTriple(4.0, 6.0, 8.0),
        "b": PowerTriple(5.0, 7.0, 9.0),
        "c": PowerTriple(3.0, 5.0, 6.0),
    })
    return SchedulingProblem(graph, p_max=p_max, p_min=5.0)


class TestPowerTriple:
    def test_ordering_enforced(self):
        with pytest.raises(ReproError):
            PowerTriple(5.0, 4.0, 6.0)
        with pytest.raises(ReproError):
            PowerTriple(-1.0, 2.0, 3.0)

    def test_corner_lookup(self):
        t = PowerTriple(1.0, 2.0, 3.0)
        assert t.at("min") == 1.0
        assert t.at("typical") == 2.0
        assert t.at("max") == 3.0
        with pytest.raises(ReproError):
            t.at("best")


class TestCorners:
    def test_attach_sets_typical_power(self):
        problem = triple_problem()
        assert problem.graph.task("a").power == 6.0
        assert isinstance(problem.graph.task("a").meta["power_triple"],
                          PowerTriple)

    def test_corner_problems_scale_powers(self):
        corners = corner_problems(triple_problem())
        assert corners["min"].graph.task("b").power == 5.0
        assert corners["typical"].graph.task("b").power == 7.0
        assert corners["max"].graph.task("b").power == 9.0

    def test_corners_share_constraints(self):
        corners = corner_problems(triple_problem())
        for corner in corners.values():
            assert corner.graph.separation("a", "c") == 5

    def test_tasks_without_triples_unchanged(self):
        g = ConstraintGraph()
        g.new_task("x", duration=2, power=3.5)
        problem = SchedulingProblem(g, p_max=10.0)
        corners = corner_problems(problem)
        assert corners["max"].graph.task("x").power == 3.5


class TestRobustSchedule:
    def test_reports_ranges_across_corners(self):
        result = robust_schedule(triple_problem(p_max=25.0),
                                 options=FAST)
        lo, hi = result.energy_cost_range
        assert lo <= hi
        assert result.peak_range[0] <= result.peak_range[1]
        assert result.valid_at_max

    def test_replans_at_max_corner_when_needed(self):
        # typical powers allow a+b together (13 < 14) but max powers
        # (8+9 = 17) overflow the budget: the planner must fall back to
        # the pessimistic corner and the final schedule must be valid
        # there.
        result = robust_schedule(triple_problem(p_max=14.0),
                                 options=FAST)
        assert result.valid_at_max
        assert result.peak_range[1] <= 14.0 + 1e-9

    def test_unknown_plan_corner_rejected(self):
        with pytest.raises(ReproError):
            robust_schedule(triple_problem(), plan_corner="worst")

    def test_summary_mentions_validity(self):
        result = robust_schedule(triple_problem(p_max=25.0),
                                 options=FAST)
        assert "valid" in result.summary()
