"""Tests for the thermal model — deriving Table 1's heating windows."""

import pytest

from repro.errors import ReproError
from repro.mission import MarsRover, SolarCase
from repro.mission.thermal import (ThermalParams, check_thermal,
                                   feasible_lead_window,
                                   motor_temperature)


@pytest.fixture(scope="module")
def params() -> ThermalParams:
    return ThermalParams()


class TestModel:
    def test_cold_soak_equilibrium(self, params):
        assert motor_temperature(params, [], 1000.0) \
            == pytest.approx(params.ambient)

    def test_heating_raises_temperature(self, params):
        cold = motor_temperature(params, [], 10.0)
        warm = motor_temperature(params, [(0, 5)], 5.0)
        assert warm > cold
        assert warm > params.operating_threshold

    def test_cooling_after_heating(self, params):
        just_after = motor_temperature(params, [(0, 5)], 5.0)
        later = motor_temperature(params, [(0, 5)], 30.0)
        much_later = motor_temperature(params, [(0, 5)], 300.0)
        assert just_after > later > much_later
        assert much_later == pytest.approx(params.ambient, abs=1.0)

    def test_multiple_firings_accumulate(self, params):
        single = motor_temperature(params, [(0, 5)], 40.0)
        double = motor_temperature(params, [(0, 5), (30, 35)], 40.0)
        assert double > single

    def test_parameter_validation(self):
        with pytest.raises(ReproError):
            ThermalParams(heat_tau=0)
        with pytest.raises(ReproError):
            ThermalParams(operating_threshold=-90.0)


class TestWindowDerivation:
    def test_drive_window_is_table1(self, params):
        """The physics projects to exactly the paper's [5, 50] s window
        for the 10 s driving operation."""
        assert feasible_lead_window(params, heat_duration=5,
                                    op_duration=10) == (5, 50)

    def test_steer_window_close_to_table1(self, params):
        """The shorter steering operation projects to [5, 55] — the
        paper rounds both operations to a common 50 s bound."""
        lo, hi = feasible_lead_window(params, heat_duration=5,
                                      op_duration=5)
        assert lo == 5
        assert abs(hi - 50) <= 5

    def test_lower_edge_is_the_firing_itself(self, params):
        lo, _ = feasible_lead_window(params, heat_duration=5,
                                     op_duration=10)
        assert lo == 5  # cannot drive while heating

    def test_without_blocking_the_lower_edge_drops(self, params):
        lo, _ = feasible_lead_window(params, heat_duration=5,
                                     op_duration=10,
                                     op_blocks_heating=False)
        assert lo < 5

    def test_weak_heater_rejected(self):
        weak = ThermalParams(heated_temperature=-40.0,
                             operating_threshold=-44.0)
        with pytest.raises(ReproError):
            feasible_lead_window(weak, heat_duration=1, op_duration=10)


class TestScheduleValidation:
    @pytest.mark.parametrize("case", list(SolarCase))
    def test_all_rover_schedules_are_thermally_sound(self, case):
        """Schedules satisfying the constraint-graph windows must also
        satisfy the physics they project from."""
        rover = MarsRover.standard()
        for result in (rover.jpl_result(case),
                       rover.power_aware_result(case)):
            assert check_thermal(result.schedule) == []

    def test_cold_operation_detected(self):
        """Strip the heaters and the physics check must object."""
        from repro import ConstraintGraph, Schedule
        g = ConstraintGraph("cold")
        g.new_task("drive_1", duration=10, power=10.0,
                   resource="driving", meta={"kind": "drive"})
        schedule = Schedule(g, {"drive_1": 0})
        violations = check_thermal(schedule)
        assert len(violations) == 1
        assert violations[0].task == "drive_1"
        assert "below threshold" in repr(violations[0])
