"""Unit tests for the Section 4.2 metrics."""

import math

import pytest

from repro import (ConstraintGraph, PowerProfile, Schedule, energy_cost,
                   evaluate, min_power_utilization, power_jitter)


@pytest.fixture
def stepped() -> PowerProfile:
    # 16 W for 5 s, 12 W for 5 s, 14 W for 10 s.
    return PowerProfile([(0, 5, 16.0), (5, 10, 12.0), (10, 20, 14.0)])


class TestEnergyCost:
    def test_cost_above_free_level(self, stepped):
        assert energy_cost(stepped, 14.0) == pytest.approx(10.0)

    def test_zero_free_level_costs_everything(self, stepped):
        assert energy_cost(stepped, 0.0) == pytest.approx(
            stepped.energy())

    def test_high_free_level_costs_nothing(self, stepped):
        assert energy_cost(stepped, 20.0) == 0.0


class TestUtilization:
    def test_partial_utilization(self, stepped):
        # capped at 14: 14*5 + 12*5 + 14*10 = 270 of 280 available.
        assert min_power_utilization(stepped, 14.0) \
            == pytest.approx(270.0 / 280.0)

    def test_full_when_profile_above_level(self, stepped):
        assert min_power_utilization(stepped, 12.0) == pytest.approx(1.0)

    def test_defined_as_one_for_zero_level(self, stepped):
        assert min_power_utilization(stepped, 0.0) == 1.0

    def test_empty_profile(self):
        assert min_power_utilization(PowerProfile([]), 5.0) == 1.0


class TestJitter:
    def test_flat_profile_has_no_jitter(self):
        flat = PowerProfile([(0, 10, 5.0)])
        std, ratio = power_jitter(flat)
        assert std == pytest.approx(0.0)
        assert ratio == pytest.approx(1.0)

    def test_known_variance(self):
        p = PowerProfile([(0, 5, 2.0), (5, 10, 6.0)])
        std, ratio = power_jitter(p)
        assert std == pytest.approx(2.0)   # mean 4, deviations +-2
        assert ratio == pytest.approx(6.0 / 4.0)

    def test_empty_profile(self):
        std, ratio = power_jitter(PowerProfile([]))
        assert std == 0.0
        assert ratio == 1.0

    def test_zero_mean_ratio_is_inf(self):
        p = PowerProfile([(0, 5, 0.0)])
        _, ratio = power_jitter(p)
        assert math.isinf(ratio)


class TestEvaluate:
    def test_full_metric_set(self):
        g = ConstraintGraph()
        g.new_task("a", duration=5, power=16.0, resource="A")
        g.new_task("b", duration=5, power=12.0, resource="B")
        s = Schedule(g, {"a": 0, "b": 5})
        m = evaluate(s, p_max=14.0, p_min=14.0)
        assert m.finish_time == 10
        assert m.total_energy == pytest.approx(140.0)
        assert m.energy_cost == pytest.approx(10.0)   # 2 W x 5 s
        assert m.utilization == pytest.approx(130.0 / 140.0)
        assert m.peak_power == pytest.approx(16.0)
        assert m.spikes == 1
        assert m.gaps == 1

    def test_row_shape(self):
        g = ConstraintGraph()
        g.new_task("a", duration=2, power=3.0)
        m = evaluate(Schedule(g, {"a": 0}), p_max=5.0, p_min=1.0)
        row = m.row()
        assert set(row) == {"tau_s", "energy_J", "energy_cost_J",
                            "utilization_pct", "peak_W", "jitter_std_W"}
        assert row["tau_s"] == 2
