"""Unit tests for sweeps, comparisons, and report tables."""

import pytest

from repro.analysis import (compare_schedulers, format_cell,
                            format_markdown_table, format_table,
                            knee_point, summarize_outcomes, sweep_p_max,
                            sweep_p_min)
from repro.scheduling import schedule, serial_schedule
from repro.workloads import independent


@pytest.fixture(scope="module")
def problem():
    return independent(4, duration=5, power=4.0, p_max=10.0, p_min=4.0)


class TestSweeps:
    def test_p_max_sweep_monotone_speed(self, problem):
        points = sweep_p_max(problem, [5.0, 9.0, 17.0])
        taus = [p.finish_time for p in points if p.feasible]
        assert taus == sorted(taus, reverse=True)
        # 17 W fits all four 4 W tasks at once
        assert points[-1].finish_time == 5

    def test_infeasible_budget_recorded(self, problem):
        points = sweep_p_max(problem, [3.0])
        assert points[0].feasible is False
        assert points[0].finish_time is None

    def test_p_min_sweep_cost_monotone(self, problem):
        points = sweep_p_min(problem, [0.0, 4.0, 8.0], p_max=10.0)
        costs = [p.energy_cost for p in points]
        assert costs == sorted(costs, reverse=True)
        assert costs[0] == pytest.approx(80.0)  # all energy is costly

    def test_knee_point(self, problem):
        points = sweep_p_max(problem, [5.0, 9.0, 13.0, 17.0, 25.0])
        knee = knee_point(points)
        assert knee is not None
        assert knee.finish_time == 5
        assert knee.p_max == 17.0  # smallest budget achieving tau = 5

    def test_knee_none_when_all_infeasible(self, problem):
        assert knee_point(sweep_p_max(problem, [1.0])) is None

    def test_rows_have_stable_columns(self, problem):
        point = sweep_p_max(problem, [9.0])[0]
        assert set(point.row()) == {"P_max_W", "P_min_W", "feasible",
                                    "tau_s", "Ec_J", "rho_pct",
                                    "peak_W"}


class TestCompare:
    def test_matrix_and_summary(self, problem):
        outcomes = compare_schedulers(
            {"pa": schedule, "serial": serial_schedule}, [problem])
        assert len(outcomes) == 2
        assert all(o.success for o in outcomes)
        summary = summarize_outcomes(outcomes)
        assert {row["scheduler"] for row in summary} == {"pa", "serial"}
        assert all(row["solved"] == "1/1" for row in summary)

    def test_failures_recorded_not_raised(self):
        def exploding(problem):
            from repro.errors import SchedulingFailure
            raise SchedulingFailure("boom")

        outcomes = compare_schedulers({"bad": exploding},
                                      [independent(1, p_max=10.0)])
        assert outcomes[0].success is False
        assert "boom" in outcomes[0].error
        summary = summarize_outcomes(outcomes)
        assert summary[0]["solved"] == "0/1"


class TestReportTables:
    ROWS = [{"name": "a", "tau": 50, "cost": 79.5},
            {"name": "b", "tau": 75, "cost": 0.0}]

    def test_format_cell(self):
        assert format_cell(1.0) == "1"
        assert format_cell(1.25) == "1.25"
        assert format_cell(1.256) == "1.26"
        assert format_cell(None) == "-"
        assert format_cell(True) == "yes"
        assert format_cell("x") == "x"
        assert format_cell(float("nan")) == "-"

    def test_ascii_table(self):
        text = format_table(self.ROWS, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "cost" in lines[1]
        assert len(lines) == 2 + 1 + len(self.ROWS)

    def test_ascii_table_empty(self):
        assert format_table([], title="empty") == "empty"

    def test_markdown_table(self):
        text = format_markdown_table(self.ROWS)
        lines = text.splitlines()
        assert lines[0].startswith("| name ")
        assert lines[1].startswith("|---")
        assert "79.5" in text

    def test_column_selection_and_order(self):
        text = format_table(self.ROWS, columns=["cost", "name"])
        header = text.splitlines()[0]
        assert header.index("cost") < header.index("name")
