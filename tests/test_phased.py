"""Unit tests for phased tasks (power as a function of time)."""

import pytest

from repro import (ConstraintGraph, GraphError, PowerProfile, Schedule,
                   SchedulingProblem, check_power_valid, schedule)
from repro.core.phased import (add_phased_task, is_phase_of,
                               phase_names, phased_start)


def motor_graph() -> ConstraintGraph:
    g = ConstraintGraph("phased")
    add_phased_task(g, "drive", [(2, 20.0), (8, 12.0)],
                    resource="wheels")
    return g


class TestConstruction:
    def test_segments_created_in_order(self):
        g = motor_graph()
        assert g.task("drive#0").duration == 2
        assert g.task("drive#1").power == 12.0
        assert phase_names("drive", 2) == ["drive#0", "drive#1"]

    def test_chain_is_rigid(self):
        g = motor_graph()
        assert g.separation("drive#0", "drive#1") == 2
        assert g.separation("drive#1", "drive#0") == -2

    def test_same_resource(self):
        g = motor_graph()
        assert g.task("drive#0").resource == "wheels"
        assert g.task("drive#1").resource == "wheels"

    def test_metadata_links_phases(self):
        g = motor_graph()
        assert is_phase_of(g.task("drive#1"), "drive")
        assert not is_phase_of(g.task("drive#1"), "other")

    def test_bad_inputs_rejected(self):
        g = ConstraintGraph()
        with pytest.raises(GraphError):
            add_phased_task(g, "a#b", [(1, 1.0)])
        with pytest.raises(GraphError):
            add_phased_task(g, "x", [])
        with pytest.raises(GraphError):
            add_phased_task(g, "y", [(0, 1.0)])


class TestProfiles:
    def test_profile_matches_power_function(self):
        g = motor_graph()
        s = Schedule(g, {"drive#0": 3, "drive#1": 5})
        profile = PowerProfile.from_schedule(s)
        assert profile.value(3) == 20.0
        assert profile.value(5) == 12.0
        assert profile.energy() == pytest.approx(2 * 20 + 8 * 12)

    def test_phased_start_helper(self):
        g = motor_graph()
        s = Schedule(g, {"drive#0": 3, "drive#1": 5})
        assert phased_start(s, "drive") == 3
        with pytest.raises(GraphError):
            phased_start(s, "nope")


class TestScheduling:
    def test_scheduler_moves_phases_together(self):
        """Two phased motors on one budget: the inrush peaks must not
        coincide, and each chain must stay contiguous."""
        g = ConstraintGraph("two-motors")
        add_phased_task(g, "m1", [(2, 8.0), (6, 3.0)], resource="A")
        add_phased_task(g, "m2", [(2, 8.0), (6, 3.0)], resource="B")
        problem = SchedulingProblem(g, p_max=12.0)
        result = schedule(problem)
        s = result.schedule
        for name in ("m1", "m2"):
            assert s.start(f"{name}#1") == s.finish(f"{name}#0")
        assert result.metrics.peak_power <= 12.0 + 1e-9
        assert check_power_valid(s, 12.0).ok

    def test_inrush_alignment_not_forced_apart_when_budget_allows(self):
        g = ConstraintGraph("wide")
        add_phased_task(g, "m1", [(2, 8.0), (6, 3.0)], resource="A")
        add_phased_task(g, "m2", [(2, 8.0), (6, 3.0)], resource="B")
        problem = SchedulingProblem(g, p_max=20.0)
        result = schedule(problem)
        assert result.finish_time == 8  # fully parallel
