"""Targeted edge-case coverage across modules.

Small behaviours that the mainline tests step over: reprs, error
hierarchies, degenerate inputs, and rarely-taken branches.  Each test
documents a contract a downstream user could reasonably rely on.
"""

import pytest

from repro import (ConstraintGraph, Edge, GraphError, InfeasibleError,
                   PositiveCycleError, PowerProfile, ReproError,
                   Schedule, SchedulingFailure, SchedulingProblem,
                   SerializationError, ValidationError, longest_paths,
                   schedule)


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [GraphError, InfeasibleError,
                                     PositiveCycleError,
                                     SchedulingFailure,
                                     SerializationError,
                                     ValidationError])
    def test_all_errors_are_repro_errors(self, exc):
        assert issubclass(exc, ReproError)

    def test_positive_cycle_carries_trace(self):
        error = PositiveCycleError("boom", cycle=["a", "b"])
        assert error.cycle == ["a", "b"]
        assert PositiveCycleError("x").cycle is None


class TestReprsAndEdges:
    def test_edge_direction_flag(self):
        assert Edge("a", "b", 5).is_forward
        assert not Edge("a", "b", -5).is_forward

    def test_graph_repr_mentions_counts(self):
        g = ConstraintGraph("demo")
        g.new_task("t", duration=1)
        assert "demo" in repr(g)
        assert "tasks=1" in repr(g)

    def test_schedule_repr_shows_makespan(self):
        g = ConstraintGraph()
        g.new_task("t", duration=4)
        assert "tau=4" in repr(Schedule(g, {"t": 0}))

    def test_profile_repr(self):
        profile = PowerProfile([(0, 5, 2.0)])
        assert "peak=2" in repr(profile)

    def test_problem_repr(self):
        g = ConstraintGraph("p")
        g.new_task("t", duration=1)
        text = repr(SchedulingProblem(g, p_max=9.0))
        assert "P_max=9" in text


class TestLongestPathExtras:
    def test_critical_path_trace(self):
        g = ConstraintGraph()
        g.new_task("a", duration=3)
        g.new_task("b", duration=3)
        g.new_task("c", duration=3)
        g.add_precedence("a", "b")
        g.add_precedence("b", "c")
        result = longest_paths(g)
        assert result.critical_path("c") == ["a", "b", "c"]
        assert result.critical_path("a") == ["a"]

    def test_cache_survives_copy(self):
        g = ConstraintGraph()
        g.new_task("a", duration=3)
        longest_paths(g)
        clone = g.copy()
        # the clone starts cold but must compute correctly
        assert longest_paths(clone).distance["a"] == 0

    def test_new_task_invalidates_fast_path(self):
        g = ConstraintGraph()
        g.new_task("a", duration=3)
        longest_paths(g)
        g.new_task("b", duration=2)
        g.add_precedence("a", "b")
        assert longest_paths(g).distance["b"] == 3


class TestProfileEdges:
    def test_sampled_rejects_bad_step(self):
        profile = PowerProfile([(0, 4, 1.0)])
        with pytest.raises(ValidationError):
            profile.sampled(step=0)

    def test_empty_profile_queries(self):
        empty = PowerProfile([])
        assert empty.peak() == 0.0
        assert empty.floor() == 0.0
        assert empty.value(3) == 0.0
        assert empty.spikes(1.0) == []


class TestScheduleTableExtras:
    def test_add_plain_schedule(self):
        from repro import ScheduleTable

        g = ConstraintGraph()
        g.new_task("t", duration=2, power=3.0)
        table = ScheduleTable()
        entry = table.add("manual", Schedule(g, {"t": 0}),
                          baseline=1.0)
        assert entry.min_p_max == pytest.approx(4.0)
        assert len(table) == 1


class TestTraceExtras:
    def test_first_returns_none_when_absent(self):
        from repro.execution import Trace

        trace = Trace()
        assert trace.first("task-started") is None
        assert trace.for_task("x") == []
        assert list(trace) == []


class TestBatteryExtras:
    def test_ideal_battery_validation(self):
        from repro.power import IdealBattery

        with pytest.raises(ReproError):
            IdealBattery(capacity=-1.0)
        battery = IdealBattery(capacity=10.0, max_power=5.0)
        with pytest.raises(ReproError):
            battery.draw(-1.0, 1.0)

    def test_rate_capacity_validation(self):
        from repro.power import RateCapacityBattery

        with pytest.raises(ReproError):
            RateCapacityBattery(capacity=10.0, rated_power=0.0)
        with pytest.raises(ReproError):
            RateCapacityBattery(capacity=10.0, alpha=-0.1)


class TestSweepPointRows:
    def test_infeasible_point_row(self):
        from repro.analysis import SweepPoint

        point = SweepPoint(p_max=3.0, p_min=1.0, feasible=False)
        row = point.row()
        assert row["feasible"] is False
        assert row["tau_s"] is None
        assert row["rho_pct"] is None


class TestOptimalExtras:
    def test_energy_objective_with_default_horizon(self):
        from repro import optimal_schedule
        from repro.workloads import independent

        problem = independent(2, duration=3, power=4.0, p_max=10.0,
                              p_min=4.0)
        result = optimal_schedule(problem, objective="energy_cost")
        # serializing costs nothing above the 4 W free level
        assert result.energy_cost == pytest.approx(0.0)


class TestVersionFlag:
    def test_cli_version_exits_zero(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro-schedule" in capsys.readouterr().out


class TestMissionReportExtras:
    def test_empty_report_totals(self):
        from repro.mission import MissionReport

        report = MissionReport(policy="x", target_steps=10)
        assert report.total_steps == 0
        assert report.total_time == 0.0
        assert report.phases() == []
        assert not report.completed

    def test_pipeline_schedule_functional_api(self, small_problem):
        result = schedule(small_problem)
        assert result.summary().startswith(small_problem.name)
