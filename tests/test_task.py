"""Unit tests for the task model."""

import pytest

from repro import GraphError, Task
from repro.core.task import ANCHOR_NAME


class TestTaskConstruction:
    def test_basic_attributes(self):
        t = Task(name="drive", duration=10, power=13.8,
                 resource="wheels")
        assert t.name == "drive"
        assert t.duration == 10
        assert t.power == 13.8
        assert t.resource == "wheels"

    def test_energy_is_duration_times_power(self):
        assert Task(name="t", duration=10, power=13.8).energy \
            == pytest.approx(138.0)

    def test_zero_duration_allowed(self):
        assert Task(name="milestone", duration=0).energy == 0.0

    def test_default_power_is_zero(self):
        assert Task(name="t", duration=1).power == 0.0

    def test_default_resource_is_none(self):
        assert Task(name="t", duration=1).resource is None

    def test_meta_preserved(self):
        t = Task(name="t", duration=1, meta={"kind": "heat"})
        assert t.meta["kind"] == "heat"

    def test_empty_name_rejected(self):
        with pytest.raises(GraphError):
            Task(name="", duration=1)

    def test_negative_duration_rejected(self):
        with pytest.raises(GraphError):
            Task(name="t", duration=-1)

    def test_non_integer_duration_rejected(self):
        with pytest.raises(GraphError):
            Task(name="t", duration=2.5)

    def test_negative_power_rejected(self):
        with pytest.raises(GraphError):
            Task(name="t", duration=1, power=-0.1)


class TestTaskHelpers:
    def test_renamed_copies_everything_else(self):
        t = Task(name="t", duration=3, power=2.0, resource="R")
        r = t.renamed("u")
        assert r.name == "u"
        assert (r.duration, r.power, r.resource) == (3, 2.0, "R")
        assert t.name == "t"  # original untouched (frozen)

    def test_with_power(self):
        t = Task(name="t", duration=3, power=2.0)
        assert t.with_power(9.5).power == 9.5
        assert t.power == 2.0

    def test_anchor_properties(self):
        anchor = Task.anchor()
        assert anchor.is_anchor
        assert anchor.name == ANCHOR_NAME
        assert anchor.duration == 0
        assert anchor.power == 0.0

    def test_regular_task_is_not_anchor(self):
        assert not Task(name="t", duration=1).is_anchor

    def test_tasks_are_hashable_and_frozen(self):
        t = Task(name="t", duration=1)
        with pytest.raises(AttributeError):
            t.duration = 2
