"""Property-based invariants of the online session engine.

Three families, each stated over workload classes where the property
is a *theorem*, not a heuristic tendency:

* **arrival-order invariance** — for a set of independent tasks (no
  cross-task constraints, no deadlines), the admitted set is a pure
  function of the task set and ``P_max``: with the serial fallback in
  play, a task is admissible iff it individually fits the power
  budget, so no arrival permutation can change the outcome;
* **committed-prefix validity** — whatever interleaving of arrivals,
  clock advances, and faults a mission sees, the current schedule
  (frozen history + planned suffix) always passes the timing and
  power validators;
* **rejection monotone in ``P_max``** — raising the power budget can
  only grow the admitted set (again over deadline-free workloads,
  where serialization guarantees feasibility is per-task).

Heuristic caveat, documented as a boundary: with *deadlines* or max
separations in play the schedulers are heuristic and admission can
genuinely depend on arrival order — that regime is covered by example
in ``test_online_differential.py`` (seed-11 rejection convergence),
not asserted as a universal property here.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.validation import check_power_valid, check_time_valid
from repro.online import MissionSession, SessionConfig
from repro.scheduling.base import SchedulerOptions

OPTIONS = SchedulerOptions(seed=7, max_power_restarts=1,
                           min_power_scans=2)

#: One independent task: (duration, power).  Names are assigned by
#: position so permutations permute *arrival order*, not identity.
task_st = st.tuples(st.integers(min_value=1, max_value=6),
                    st.floats(min_value=0.5, max_value=12.0,
                              allow_nan=False, allow_infinity=False,
                              width=32))

task_set_st = st.lists(task_st, min_size=1, max_size=7)


def session(p_max: float, scheduler: str = "min_power") \
        -> MissionSession:
    return MissionSession(SessionConfig(
        p_max=p_max, scheduler=scheduler, options=OPTIONS,
        name="prop"))


def feed(sess: MissionSession, tasks, order) -> "frozenset[str]":
    """Offer ``tasks`` in ``order``; return the admitted name set."""
    for index in order:
        duration, power = tasks[index]
        sess.offer(f"t{index}", duration=duration, power=power)
    return frozenset(sess.admitted)


class TestArrivalOrderInvariance:
    @given(tasks=task_set_st,
           p_max=st.floats(min_value=1.0, max_value=15.0,
                           allow_nan=False, allow_infinity=False),
           data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_admitted_set_is_order_free(self, tasks, p_max, data):
        order = data.draw(
            st.permutations(range(len(tasks))), label="order")
        forward = feed(session(p_max), tasks, range(len(tasks)))
        permuted = feed(session(p_max), tasks, order)
        assert forward == permuted

    @given(tasks=task_set_st,
           p_max=st.floats(min_value=1.0, max_value=15.0,
                           allow_nan=False, allow_infinity=False))
    @settings(max_examples=40, deadline=None)
    def test_admission_is_per_task_feasibility(self, tasks, p_max):
        """For independent tasks the admitted set has a closed form:
        exactly the tasks that individually fit under ``P_max``."""
        admitted = feed(session(p_max), tasks, range(len(tasks)))
        expected = frozenset(
            f"t{i}" for i, (_d, power) in enumerate(tasks)
            if power <= p_max)
        assert admitted == expected


class TestCommittedPrefixValidity:
    @given(tasks=st.lists(task_st, min_size=1, max_size=6),
           advances=st.lists(st.integers(min_value=1, max_value=5),
                             min_size=0, max_size=4),
           chain=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_schedule_always_validates(self, tasks, advances, chain):
        sess = session(p_max=14.0)
        clock = 0
        pending_advances = list(advances)
        previous: "str | None" = None
        for index, (duration, power) in enumerate(tasks):
            constraints = []
            if chain and previous is not None:
                constraints = [{"kind": "precedence",
                                "src": previous}]
            event = sess.offer(f"t{index}", duration=duration,
                               power=power,
                               constraints=constraints)
            if event["event"] == "admit":
                previous = f"t{index}"
            self._assert_valid(sess)
            if pending_advances:
                clock += pending_advances.pop()
                sess.advance(clock)
                self._assert_valid(sess)
        if sess.admitted:
            sess.quiesce()
            self._assert_valid(sess)

    @staticmethod
    def _assert_valid(sess: MissionSession) -> None:
        if sess.schedule is None:
            return
        time_report = check_time_valid(sess.schedule)
        assert time_report.ok, time_report.violations
        power_report = check_power_valid(
            sess.schedule, sess.config.p_max,
            baseline=sess.problem().total_baseline)
        assert power_report.ok, power_report.violations
        # committed starts are frozen: the plan agrees with history
        for name, start in sess.committed.items():
            assert sess.schedule.start(name) == start

    @given(tasks=st.lists(task_st, min_size=2, max_size=5),
           overrun=st.integers(min_value=1, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_fault_replan_keeps_prefix_valid(self, tasks, overrun):
        sess = session(p_max=14.0)
        for index, (duration, power) in enumerate(tasks):
            sess.offer(f"t{index}", duration=duration, power=power)
        if not sess.admitted:
            return
        first = min(sess.admitted,
                    key=lambda n: sess.schedule.start(n))
        start = sess.schedule.start(first)
        sess.advance(start + 1)
        assert first in sess.committed
        sess.inject_fault({first: overrun}, at=start + 1)
        self._assert_valid(sess)
        # the faulted task's realized span is stretched
        span_start, span_end = sess.spans[first]
        nominal = sess.problem().graph.task(first).duration
        assert span_end - span_start == nominal + overrun


class TestRejectionMonotoneInPmax:
    @given(tasks=task_set_st,
           lo=st.floats(min_value=1.0, max_value=12.0,
                        allow_nan=False, allow_infinity=False),
           delta=st.floats(min_value=0.0, max_value=8.0,
                           allow_nan=False, allow_infinity=False))
    @settings(max_examples=40, deadline=None)
    def test_admitted_grows_with_budget(self, tasks, lo, delta):
        tight = feed(session(lo), tasks, range(len(tasks)))
        loose = feed(session(lo + delta), tasks, range(len(tasks)))
        assert tight <= loose

    @given(tasks=task_set_st,
           lo=st.floats(min_value=1.0, max_value=12.0,
                        allow_nan=False, allow_infinity=False),
           delta=st.floats(min_value=0.0, max_value=8.0,
                           allow_nan=False, allow_infinity=False))
    @settings(max_examples=25, deadline=None)
    def test_rejected_shrinks_with_budget(self, tasks, lo, delta):
        sess_tight = session(lo)
        sess_loose = session(lo + delta)
        feed(sess_tight, tasks, range(len(tasks)))
        feed(sess_loose, tasks, range(len(tasks)))
        rejected_tight = {name for name, _ in sess_tight.rejected}
        rejected_loose = {name for name, _ in sess_loose.rejected}
        assert rejected_loose <= rejected_tight


class TestSchedulerChoiceSharesAdmission:
    """Admission is a feasibility question; the min-power improvement
    stage must never change who gets in."""

    @given(tasks=task_set_st,
           p_max=st.floats(min_value=1.0, max_value=15.0,
                           allow_nan=False, allow_infinity=False))
    @settings(max_examples=25, deadline=None)
    def test_min_and_max_power_admit_identically(self, tasks, p_max):
        via_min = feed(session(p_max, "min_power"), tasks,
                       range(len(tasks)))
        via_max = feed(session(p_max, "max_power"), tasks,
                       range(len(tasks)))
        assert via_min == via_max
