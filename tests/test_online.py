"""The online mission-session engine: arrivals, commits, faults.

Covers the :class:`repro.online.MissionSession` state machine directly
(no wire protocol — ``test_online_serving.py`` does that): admission
and rejection semantics, the frozen committed prefix, mission-clock
monotonicity, fault-injection replans (including the degenerate
all-tasks-faulted case), and the arrival-script helpers.
"""

from __future__ import annotations

import pytest

from repro.core.validation import check_power_valid, check_time_valid
from repro.errors import ReproError
from repro.examples_data import fig1_problem
from repro.online import (MissionSession, SessionConfig, SessionScript,
                          arrivals_from_problem, problem_from_script,
                          replay_script, script_from_problem)
from repro.scheduling.base import SchedulerOptions


def make_session(p_max: float = 10.0, p_min: float = 0.0,
                 scheduler: str = "min_power",
                 seed: int = 7) -> MissionSession:
    return MissionSession(SessionConfig(
        p_max=p_max, p_min=p_min, scheduler=scheduler,
        options=SchedulerOptions(seed=seed, max_power_restarts=1),
        name="t-session"))


class TestAdmission:
    def test_admit_returns_start_and_emits_event(self):
        s = make_session()
        event = s.offer("a", duration=3, power=4.0, resource="R")
        assert event["event"] == "admit"
        assert event["task"] == "a"
        assert event["start"] == 0
        assert s.admitted == ["a"]
        assert s.schedule.start("a") == 0

    def test_power_infeasible_arrival_rejected(self):
        s = make_session(p_max=5.0)
        assert s.offer("a", duration=2, power=4.0)["event"] == "admit"
        event = s.offer("big", duration=2, power=50.0)
        assert event["event"] == "reject"
        assert "big" in event["reason"]
        assert s.admitted == ["a"]
        assert [name for name, _ in s.rejected] == ["big"]

    def test_rejection_leaves_state_untouched(self):
        s = make_session(p_max=5.0)
        s.offer("a", duration=2, power=4.0)
        before_starts = s.schedule.as_dict()
        before_edges = len(s.problem().graph.edges())
        s.offer("big", duration=2, power=50.0,
                constraints=[{"kind": "precedence", "src": "a"}])
        assert s.schedule.as_dict() == before_starts
        assert len(s.problem().graph.edges()) == before_edges
        assert "big" not in s.problem().graph
        # and the session still works afterwards
        assert s.offer("c", duration=1, power=1.0)["event"] == "admit"

    def test_timing_infeasible_arrival_rejected(self):
        s = make_session(p_max=20.0)
        s.offer("a", duration=5, power=1.0)
        # demand b at least 10 after a, but also a at least 1 after b:
        # a positive cycle.
        event = s.offer(
            "b", duration=2, power=1.0,
            constraints=[
                {"kind": "min", "src": "a", "dst": "b", "sep": 10},
                {"kind": "min", "src": "b", "dst": "a", "sep": 1},
            ])
        assert event["event"] == "reject"
        assert s.admitted == ["a"]

    def test_unknown_constraint_target_rejects(self):
        s = make_session()
        event = s.offer(
            "a", duration=2,
            constraints=[{"kind": "precedence", "src": "ghost"}])
        assert event["event"] == "reject"
        assert s.admitted == []

    def test_duplicate_name_rejects(self):
        s = make_session()
        s.offer("a", duration=2, power=1.0)
        event = s.offer("a", duration=3, power=1.0)
        assert event["event"] == "reject"
        assert s.admitted == ["a"]

    def test_exclusive_resource_serializes_arrivals(self):
        s = make_session(p_max=100.0)
        s.offer("a", duration=4, power=1.0, resource="cpu")
        s.offer("b", duration=4, power=1.0, resource="cpu")
        sched = s.quiesce().schedule
        assert {sched.start("a"), sched.start("b")} == {0, 4}


class TestClock:
    def test_advance_commits_started_tasks(self):
        s = make_session(p_max=100.0)
        s.offer("a", duration=4, power=1.0, resource="R")
        s.offer("b", duration=4, power=1.0, resource="R")
        events = s.advance(2)
        assert [e["task"] for e in events] == ["a"]
        assert s.committed == {"a": 0}
        assert s.pending == ["b"]

    def test_clock_never_moves_backward(self):
        s = make_session()
        s.offer("a", duration=2, power=1.0)
        s.advance(5)
        assert s.advance(3) == []
        assert s.now == 5

    def test_bad_clock_value_raises(self):
        s = make_session()
        with pytest.raises(ReproError):
            s.advance(-1)
        with pytest.raises(ReproError):
            s.advance(True)

    def test_task_starting_exactly_now_stays_movable(self):
        s = make_session(p_max=100.0)
        s.offer("a", duration=3, power=1.0)
        s.advance(0)
        assert s.committed == {}

    def test_committed_start_survives_later_arrivals(self):
        s = make_session(p_max=6.0)
        s.offer("a", duration=4, power=4.0)
        s.advance(1)
        assert s.committed == {"a": 0}
        # a heavy task cannot overlap a; it must land after a's end
        event = s.offer("b", duration=2, power=4.0)
        assert event["event"] == "admit"
        assert s.schedule.start("a") == 0
        assert s.schedule.start("b") >= 4

    def test_late_arrival_clamped_to_now(self):
        s = make_session()
        s.advance(5)
        event = s.offer("a", duration=2, power=1.0, at=3)
        assert event["event"] == "admit"
        assert s.now == 5
        assert s.schedule.start("a") >= 5

    def test_suffix_release_respects_clock(self):
        s = make_session(p_max=100.0)
        s.offer("a", duration=2, power=1.0)
        s.advance(7)
        s.offer("b", duration=2, power=1.0)
        assert s.schedule.start("b") >= 7


class TestFaults:
    def test_overrun_pushes_successor(self):
        s = make_session(p_max=12.0)
        s.offer("x", duration=3, power=5.0, resource="R")
        s.offer("y", duration=3, power=5.0, resource="R",
                constraints=[{"kind": "precedence", "src": "x"}])
        s.advance(1)
        event = s.inject_fault({"x": 2}, at=2)
        assert event["event"] == "replan"
        assert event["frozen"] == ["x"]
        assert s.spans["x"] == (0, 5)
        assert s.schedule.start("y") >= 5

    def test_replan_respects_power_bound(self):
        s = make_session(p_max=8.0)
        s.offer("x", duration=3, power=5.0)
        s.offer("y", duration=3, power=5.0,
                constraints=[{"kind": "precedence", "src": "x"}])
        s.advance(1)
        s.inject_fault({"x": 3}, at=2)
        # x now runs [0, 6); y at 5 W cannot overlap it under 8 W
        assert s.spans["x"] == (0, 6)
        assert s.schedule.start("y") >= 6
        report = check_power_valid(s.schedule, 8.0,
                                   baseline=s.problem().total_baseline)
        assert report.ok, report.violations

    def test_all_tasks_faulted_degenerate_case(self):
        s = make_session(p_max=100.0)
        s.offer("x", duration=2, power=1.0)
        s.offer("y", duration=2, power=1.0)
        s.offer("z", duration=2, power=1.0)
        sched = s.schedule
        horizon = max(sched.finish(n) for n in ("x", "y", "z"))
        event = s.inject_fault({"x": 1, "y": 1, "z": 1},
                               at=horizon + 3)
        assert event["frozen"] == ["x", "y", "z"]
        # every task frozen at its executed start, stretched by +1
        for name in ("x", "y", "z"):
            start, end = s.spans[name]
            assert end - start == 3
            assert s.schedule.start(name) == start
        assert s.committed_report().ok

    def test_post_fault_arrival_sees_stretched_history(self):
        s = make_session(p_max=8.0)
        s.offer("x", duration=3, power=5.0, resource="R")
        s.advance(1)
        s.inject_fault({"x": 4}, at=2)   # x runs [0, 7)
        event = s.offer("b", duration=2, power=5.0, resource="R")
        assert event["event"] == "admit"
        # b shares x's exclusive resource and its power class: it must
        # clear the *stretched* end, not the nominal one.
        assert s.schedule.start("b") >= 7

    def test_second_fault_preserves_first_faults_overrun(self):
        # Regression: a later fault naming a *different* task must not
        # erase the first fault's realized stretch from history — the
        # replay's duration model carries every recorded overrun.
        s = make_session(p_max=12.0)
        s.offer("x", duration=3, power=5.0, resource="R")
        s.offer("y", duration=3, power=5.0, resource="R",
                constraints=[{"kind": "precedence", "src": "x"}])
        s.offer("z", duration=4, power=1.0)
        s.advance(1)
        s.inject_fault({"x": 2}, at=2)   # x now runs [0, 5)
        assert s.spans["x"] == (0, 5)
        s.inject_fault({"z": 1}, at=3)   # names only z
        assert s.spans["x"] == (0, 5)
        assert s.spans["z"] == (0, 5)
        # y shares x's exclusive resource: it must still clear the
        # stretched end recorded by the *first* fault.
        assert s.schedule.start("y") >= 5
        assert s.committed_report().ok

    def test_repeated_fault_on_same_task_keeps_longest_stretch(self):
        s = make_session(p_max=12.0)
        s.offer("x", duration=4, power=5.0)
        s.advance(1)
        s.inject_fault({"x": 3}, at=2)   # x runs [0, 7)
        assert s.spans["x"] == (0, 7)
        # A smaller overrun for the same still-running task cannot
        # shrink the realized span.
        s.inject_fault({"x": 1}, at=3)
        assert s.spans["x"] == (0, 7)

    def test_fault_replan_uses_session_scheduler(self):
        # A max_power session's fault replans must come from the
        # max-power algorithm, not the full min-power pipeline.
        s = make_session(p_max=12.0, scheduler="max_power")
        s.offer("x", duration=3, power=5.0)
        s.offer("y", duration=3, power=5.0,
                constraints=[{"kind": "precedence", "src": "x"}])
        s.advance(1)
        s.inject_fault({"x": 2}, at=2)
        assert s.result.stage == "max_power"

    def test_fault_before_admission_raises(self):
        s = make_session()
        with pytest.raises(ReproError):
            s.inject_fault({"x": 1})

    def test_fault_on_unknown_task_raises(self):
        s = make_session()
        s.offer("a", duration=2, power=1.0)
        with pytest.raises(ReproError):
            s.inject_fault({"ghost": 1})

    def test_fault_in_the_past_raises(self):
        s = make_session()
        s.offer("a", duration=2, power=1.0)
        s.advance(5)
        with pytest.raises(ReproError):
            s.inject_fault({"a": 1}, at=3)


class TestQuiesce:
    def test_empty_session_quiesces_to_none(self):
        s = make_session()
        assert s.quiesce() is None

    def test_quiesce_result_is_validated(self):
        s = make_session(p_max=9.0)
        for i in range(5):
            s.offer(f"t{i}", duration=2, power=4.0)
        result = s.quiesce()
        assert check_time_valid(result.schedule).ok
        assert check_power_valid(
            result.schedule, 9.0,
            baseline=s.problem().total_baseline).ok

    def test_closed_session_refuses_everything(self):
        s = make_session()
        s.offer("a", duration=2, power=1.0)
        s.close()
        assert s.closed
        with pytest.raises(ReproError):
            s.offer("b", duration=2, power=1.0)
        with pytest.raises(ReproError):
            s.advance(3)
        with pytest.raises(ReproError):
            s.quiesce()
        # close is idempotent
        s.close()

    def test_event_journal_is_sequenced(self):
        s = make_session(p_max=5.0)
        s.offer("a", duration=2, power=4.0)
        s.offer("big", duration=2, power=50.0)
        s.advance(3)
        s.quiesce()
        s.close()
        assert [e["seq"] for e in s.events] == list(range(len(s.events)))
        kinds = [e["event"] for e in s.events]
        assert kinds[0] == "open"
        assert kinds[-1] == "close"
        assert "admit" in kinds and "reject" in kinds
        assert "commit" in kinds and "quiesce" in kinds


class TestScripts:
    def test_arrivals_from_problem_rebuilds_graph(self):
        problem = fig1_problem()
        commands = arrivals_from_problem(problem, quiesce=False)
        assert len(commands) == len(problem.graph.task_names())
        script = script_from_problem(problem)
        session, events = replay_script(script)
        rebuilt = session.problem().graph
        original = problem.graph
        assert sorted(rebuilt.task_names()) \
            == sorted(original.task_names())
        assert {(e.src, e.dst, e.weight) for e in rebuilt.edges()} \
            == {(e.src, e.dst, e.weight) for e in original.edges()}

    def test_problem_from_script_rebuilds_graph(self):
        problem = fig1_problem()
        script = script_from_problem(problem)
        rebuilt = problem_from_script(script)
        assert sorted(rebuilt.graph.task_names()) \
            == sorted(problem.graph.task_names())
        assert {(e.src, e.dst, e.weight) for e in rebuilt.graph.edges()} \
            == {(e.src, e.dst, e.weight) for e in problem.graph.edges()}
        assert rebuilt.p_max == problem.p_max

    def test_problem_from_script_restricted_to_admitted(self):
        problem = fig1_problem()
        script = script_from_problem(problem)
        admitted = problem.graph.task_names()[:3]
        rebuilt = problem_from_script(script, admitted)
        assert sorted(rebuilt.graph.task_names()) == sorted(admitted)
        for edge in rebuilt.graph.edges():
            for endpoint in (edge.src, edge.dst):
                assert endpoint in admitted \
                    or endpoint == rebuilt.graph.anchor.name

    def test_arrivals_order_must_be_permutation(self):
        problem = fig1_problem()
        with pytest.raises(ReproError):
            arrivals_from_problem(problem, order=["a", "b"])
        with pytest.raises(ReproError):
            arrivals_from_problem(
                problem,
                order=problem.graph.task_names() + ["ghost"])

    def test_script_json_round_trip(self):
        import json
        script = script_from_problem(fig1_problem(), seed=11)
        doc = json.loads(json.dumps(script.to_dict()))
        clone = SessionScript.from_dict(doc)
        assert clone.p_max == script.p_max
        assert clone.seed == 11
        assert clone.commands == script.commands
        s1, _ = replay_script(script)
        s2, _ = replay_script(clone)
        assert s1.schedule == s2.schedule

    def test_apply_dispatch_matches_direct_calls(self):
        s = make_session(p_max=12.0)
        events = s.apply({"event": "arrival",
                          "task": {"name": "a", "duration": 3,
                                   "power": 5.0, "resource": "R"}})
        assert [e["event"] for e in events] == ["admit"]
        events = s.apply({"event": "advance", "to": 2})
        assert [e["event"] for e in events] == ["commit"]
        events = s.apply({"event": "fault", "overruns": {"a": 1}})
        assert [e["event"] for e in events] == ["replan"]
        events = s.apply({"event": "quiesce"})
        assert [e["event"] for e in events] == ["quiesce"]
        with pytest.raises(ReproError):
            s.apply({"event": "warp"})
