"""Unit tests for infeasibility diagnosis."""

from repro import ConstraintGraph
from repro.core.diagnose import explain_infeasibility, find_cycle


def contradictory_pair() -> ConstraintGraph:
    g = ConstraintGraph("bad")
    g.new_task("a", duration=5)
    g.new_task("b", duration=5)
    g.add_min_separation("a", "b", 10)
    g.add_max_separation("a", "b", 6)
    return g


class TestFindCycle:
    def test_feasible_graph_has_no_cycle(self):
        g = ConstraintGraph()
        g.new_task("a", duration=1)
        g.new_task("b", duration=1)
        g.add_precedence("a", "b")
        assert find_cycle(g) is None

    def test_contradictory_window_found(self):
        cycle = find_cycle(contradictory_pair())
        assert cycle is not None
        assert set(cycle) <= {"a", "b"}
        assert len(cycle) >= 2

    def test_deadline_chain_found(self):
        g = ConstraintGraph()
        g.new_task("x", duration=5)
        g.add_release("x", 10)
        g.add_start_deadline("x", 4)
        cycle = find_cycle(g)
        assert cycle is not None
        assert "x" in cycle

    def test_three_way_cycle(self):
        g = ConstraintGraph()
        for name in "abc":
            g.new_task(name, duration=1)
        g.add_min_separation("a", "b", 4)
        g.add_min_separation("b", "c", 4)
        g.add_max_separation("a", "c", 5)  # needs >= 8
        cycle = find_cycle(g)
        assert cycle is not None


class TestExplanation:
    def test_feasible_returns_none(self):
        g = ConstraintGraph()
        g.new_task("a", duration=1)
        assert explain_infeasibility(g) is None

    def test_explanation_shows_both_constraints(self):
        explanation = explain_infeasibility(contradictory_pair())
        assert explanation is not None
        text = explanation.render()
        assert "infeasible" in text
        assert "sigma(b) >= sigma(a) + 10" in text
        assert "at most 6" in text

    def test_excess_is_positive(self):
        explanation = explain_infeasibility(contradictory_pair())
        assert explanation.excess >= 1

    def test_tags_surface_in_lines(self):
        g = contradictory_pair()
        explanation = explain_infeasibility(g)
        assert any("[user]" in line for line in explanation.lines)

    def test_anchor_edges_described_as_release_and_deadline(self):
        g = ConstraintGraph()
        g.new_task("x", duration=5)
        g.add_release("x", 10)
        g.add_start_deadline("x", 4)
        explanation = explain_infeasibility(g)
        text = explanation.render()
        assert "may not start before" in text or "must start by" in text
