"""Unit tests for the greedy power-capped list scheduler."""

import pytest

from repro import (ConstraintGraph, SchedulingFailure, SchedulingProblem,
                   check_power_valid, greedy_schedule)
from repro.workloads import fork_join, independent


class TestGreedy:
    def test_packs_under_power_cap(self):
        problem = independent(4, duration=5, power=4.0, p_max=10.0)
        result = greedy_schedule(problem)
        assert result.metrics.peak_power <= 10.0 + 1e-9
        assert result.finish_time == 10

    def test_respects_resources(self):
        g = ConstraintGraph()
        g.new_task("u", duration=5, power=1.0, resource="R")
        g.new_task("v", duration=5, power=1.0, resource="R")
        result = greedy_schedule(SchedulingProblem(g, p_max=10.0))
        assert result.schedule.overlapping_on_resource("R") == []

    def test_respects_precedences(self):
        problem = fork_join(width=3, power=2.0, p_max=20.0)
        result = greedy_schedule(problem)
        s = result.schedule
        for i in range(3):
            assert s.start(f"w{i}") >= s.finish("source")
            assert s.start("sink") >= s.finish(f"w{i}")

    def test_result_power_valid(self, small_problem):
        result = greedy_schedule(small_problem)
        assert check_power_valid(result.schedule, small_problem.p_max,
                                 baseline=small_problem.baseline).ok

    def test_infeasible_task_rejected(self):
        problem = independent(1, duration=5, power=12.0, p_max=10.0)
        with pytest.raises(SchedulingFailure):
            greedy_schedule(problem)

    def test_max_separations_cause_honest_failure(self):
        """Greedy does not backtrack: a window it happens to violate is
        reported as a failure rather than silently returned."""
        g = ConstraintGraph()
        g.new_task("a", duration=5, power=6.0, resource="A")
        g.new_task("b", duration=5, power=6.0, resource="B")
        # b within 2 s of a, but both cannot run together (12 > 10):
        g.add_separation_window("a", "b", 0, 2)
        problem = SchedulingProblem(g, p_max=10.0)
        with pytest.raises(SchedulingFailure):
            greedy_schedule(problem)

    def test_greedy_not_slower_than_serial_on_independent(self):
        from repro import serial_schedule
        problem = independent(6, duration=3, power=2.0, p_max=5.0)
        greedy = greedy_schedule(problem)
        serial = serial_schedule(problem)
        assert greedy.finish_time <= serial.finish_time
