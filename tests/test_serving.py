"""End-to-end tests for the async solve server (``repro.serving``).

Covers the acceptance criteria of the serving layer:

* a served solve is bit-for-bit equal to a direct pipeline solve;
* concurrent clients share one result cache / schedule store (visible
  as ``engine.store.*`` / ``engine.cache.*`` metrics on ``/metrics``);
* deadlines, cancellation, backpressure and drain behave as the
  documented error codes promise;
* **doc conformance**: every JSON example in ``docs/serving.md`` is
  replayed against a live server, in document order, and must match.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import re
import threading
import time

import pytest

from repro import PowerAwareScheduler
from repro.examples_data import fig1_problem
from repro.io import problem_to_dict, save_problem
from repro.io.requests import ERROR_CODES
from repro.serving import (ServingClient, ServingConfig, ServingError,
                           SolveServer)

DOC_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "docs",
                        "serving.md")


class LiveServer:
    """A :class:`SolveServer` on a background thread's event loop."""

    def __init__(self, config: "ServingConfig | None" = None):
        self.config = config or ServingConfig(port=0)
        self.server: "SolveServer | None" = None
        self.client: "ServingClient | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._stop: "asyncio.Event | None" = None
        self._thread: "threading.Thread | None" = None

    async def _main(self, ready: threading.Event) -> None:
        self.server = SolveServer(self.config)
        await self.server.start()
        self._stop = asyncio.Event()
        ready.set()
        await self._stop.wait()
        await self.server.shutdown()

    def __enter__(self) -> "LiveServer":
        ready = threading.Event()

        def run() -> None:
            self._loop = asyncio.new_event_loop()
            asyncio.set_event_loop(self._loop)
            self._loop.run_until_complete(self._main(ready))
            self._loop.close()

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()
        assert ready.wait(10), "server did not come up"
        self.client = ServingClient(
            f"http://127.0.0.1:{self.server.port}")
        return self

    def __exit__(self, *_exc) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(30)
        assert not self._thread.is_alive()

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.server.port}"

    def run_coro(self, coro):
        """Run a coroutine on the server loop, return its result."""
        return asyncio.run_coroutine_threadsafe(coro,
                                                self._loop).result(30)


# ---------------------------------------------------------------------
# round trips
# ---------------------------------------------------------------------


def test_solve_round_trip_matches_direct_pipeline():
    problem = fig1_problem()
    direct = PowerAwareScheduler().solve(problem)
    with LiveServer() as live:
        response = live.client.solve(problem)
    assert response["status"] == "done"
    (point,) = response["points"]
    assert point["feasible"] is True
    assert point["finish_time"] == direct.finish_time
    assert point["energy_cost"] == direct.energy_cost
    assert point["utilization"] == direct.utilization
    assert point["peak_power"] == direct.metrics.peak_power


def test_sweep_round_trip_matches_sweep_grid():
    from repro.analysis import sweep_grid
    problem = fig1_problem()
    budgets, levels = [12.0, 16.0, 25.0], [4.0, 8.0]
    expected = sweep_grid(problem, budgets, levels)
    with LiveServer() as live:
        ack = live.client.sweep(problem, budgets=budgets,
                                levels=levels)
        final = live.client.wait(ack["job"])
    assert final["status"] == "done"
    assert len(final["points"]) == len(expected)
    for got, want in zip(final["points"], expected):
        assert got["p_max"] == want.p_max
        assert got["p_min"] == want.p_min
        assert got["feasible"] == want.feasible
        if want.feasible:
            assert got["finish_time"] == want.finish_time
            assert got["energy_cost"] == want.energy_cost
            assert got["utilization"] == want.utilization
            assert got["peak_power"] == want.peak_power


def test_clients_share_cache_and_store():
    problem = fig1_problem()
    config = ServingConfig(port=0, reuse_schedules=True,
                           reuse_policy="valid")
    with LiveServer(config) as live:
        first = ServingClient(live.url)
        second = ServingClient(live.url)
        cold = first.solve(problem, p_max=16.0, p_min=14.0)
        assert cold["cached"] == 0
        # Identical point from another client: result-cache hit.
        warm = second.solve(problem, p_max=16.0, p_min=14.0)
        assert warm["cached"] == 1
        assert warm["points"][0]["cached"] is True
        assert warm["points"][0]["finish_time"] \
            == cold["points"][0]["finish_time"]
        # Covered-but-not-identical point: schedule-store range hit.
        covered = second.solve(problem, p_max=20.0, p_min=10.0)
        assert covered["reused"] == 1
        assert covered["points"][0]["reused"] is True
        # Counters are absorbed when the batch run returns, a hair
        # after the last response is streamed — poll briefly.
        deadline = time.monotonic() + 5.0
        while True:
            metrics = first.metrics_text()
            if "repro_engine_cache_hits" in metrics \
                    and "repro_engine_store_range_hits" in metrics:
                break
            assert time.monotonic() < deadline, metrics
            time.sleep(0.05)
        hits = re.search(r"^repro_engine_store_range_hits (\d+)",
                         metrics, flags=re.M)
        assert hits and int(hits.group(1)) >= 1


def test_concurrent_clients_coalesce_into_batches():
    problem = fig1_problem()
    config = ServingConfig(port=0, max_wait_ms=100.0)
    with LiveServer(config) as live:
        responses: "list[dict]" = []
        errors: "list[Exception]" = []

        def worker(p_max: float) -> None:
            try:
                client = ServingClient(live.url)
                responses.append(
                    client.solve(problem, p_max=p_max, p_min=4.0))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(16.0 + i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert not errors
        assert len(responses) == 4
        assert all(r["status"] == "done" for r in responses)
        # The 100 ms window folded the concurrent solves into fewer
        # engine batches than requests.
        assert live.server.batcher.batches < 4


# ---------------------------------------------------------------------
# deadlines, cancellation, backpressure, drain
# ---------------------------------------------------------------------


def test_deadline_exceeded_maps_to_504():
    with LiveServer() as live:
        with pytest.raises(ServingError) as err:
            live.client.solve(fig1_problem(), deadline_ms=0)
    assert err.value.code == "deadline_exceeded"
    assert err.value.http_status == 504


def test_queue_full_maps_to_429():
    config = ServingConfig(port=0, queue_limit=1, max_wait_ms=2000.0)
    problem = fig1_problem()
    with LiveServer(config) as live:
        # First job parks in the coalescing window and fills the queue.
        live.client.sweep(problem, points=[(16.0, 14.0)])
        with pytest.raises(ServingError) as err:
            live.client.sweep(problem, points=[(25.0, 4.0)])
        assert err.value.code == "queue_full"
        assert err.value.http_status == 429


def test_draining_server_rejects_new_jobs_with_503():
    with LiveServer() as live:
        live._loop.call_soon_threadsafe(
            setattr, live.server.batcher, "draining", True)
        health = live.client.healthz()
        assert health["status"] == "draining"
        with pytest.raises(ServingError) as err:
            live.client.solve(fig1_problem())
        assert err.value.code == "shutting_down"
        assert err.value.http_status == 503
        live._loop.call_soon_threadsafe(
            setattr, live.server.batcher, "draining", False)


def test_drain_completes_every_accepted_job():
    problem = fig1_problem()
    with LiveServer() as live:
        acks = [live.client.sweep(problem,
                                  budgets=[10.0 + i, 20.0 + i],
                                  levels=[4.0, 8.0])
                for i in range(3)]
        # Shut down immediately: drain must finish the accepted jobs.
        live.run_coro(live.server.shutdown())
        for ack in acks:
            submission = live.server.jobs[ack["job"]]
            assert submission.status == "done"
            assert all(point is not None
                       for point in submission.results)


def test_cancel_queued_job():
    config = ServingConfig(port=0, max_wait_ms=500.0)
    with LiveServer(config) as live:
        ack = live.client.sweep(fig1_problem(),
                                budgets=[10.0, 12.0, 14.0],
                                levels=[4.0, 8.0])
        cancelled = live.client.cancel(ack["job"])
        assert cancelled["status"] == "cancelled"
        assert cancelled["points_done"] == 0
        events = list(live.client.events(ack["job"]))
        assert events[-1]["event"] == "done"
        assert events[-1]["status"] == "cancelled"
        again = live.client.cancel(ack["job"])  # idempotent
        assert again["status"] == "cancelled"


# ---------------------------------------------------------------------
# event stream
# ---------------------------------------------------------------------


def test_event_stream_shape():
    problem = fig1_problem()
    with LiveServer() as live:
        ack = live.client.sweep(problem, budgets=[12.0, 16.0],
                                levels=[4.0, 8.0])
        events = list(live.client.events(ack["job"]))
    header = events[0]
    assert header["format"] == "repro-serve-events"
    assert header["version"] == 1
    assert header["job"] == ack["job"]
    names = [event["event"] for event in events[1:]]
    assert names[0] == "accepted"
    assert names[-1] == "done"
    points = [event for event in events if event.get("event")
              == "point"]
    assert sorted(event["index"] for event in points) == [0, 1, 2, 3]
    for event in points:
        assert event["job"] == ack["job"]
        assert {"p_max", "p_min", "feasible"} <= set(event["point"])
        assert isinstance(event["at_ms"], int)


# ---------------------------------------------------------------------
# protocol-level errors
# ---------------------------------------------------------------------


def _raw_request(live: LiveServer, method: str, path: str,
                 body: bytes, headers: "dict[str, str]"):
    connection = http.client.HTTPConnection("127.0.0.1",
                                            live.server.port,
                                            timeout=30)
    try:
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def test_malformed_json_body_is_bad_request():
    with LiveServer() as live:
        status, doc = _raw_request(
            live, "POST", "/v1/solve", b"{not json",
            {"Content-Type": "application/json"})
    assert status == 400
    assert doc["error"]["code"] == "bad_request"


def test_oversized_body_is_payload_too_large():
    with LiveServer(ServingConfig(port=0, max_body=256)) as live:
        status, doc = _raw_request(
            live, "POST", "/v1/solve", b"x" * 1024,
            {"Content-Type": "application/json"})
    assert status == 413
    assert doc["error"]["code"] == "payload_too_large"


def test_chunked_transfer_encoding_is_rejected():
    with LiveServer() as live:
        status, doc = _raw_request(
            live, "POST", "/v1/solve", None,
            {"Transfer-Encoding": "chunked"})
    assert status == 400
    assert doc["error"]["code"] == "bad_request"
    assert "Content-Length" in doc["error"]["message"]


def test_unexpected_exception_maps_to_internal_500():
    with LiveServer() as live:
        live.server._health_doc = lambda: 1 / 0
        status, doc = live.client.request("GET", "/healthz")
    assert status == 500
    assert doc["error"]["code"] == "internal"


def test_unknown_route_is_not_found():
    with LiveServer() as live:
        with pytest.raises(ServingError) as err:
            live.client.checked("GET", "/v2/solve")
    assert err.value.code == "not_found"


# ---------------------------------------------------------------------
# engine hook
# ---------------------------------------------------------------------


def test_runner_on_result_sees_every_job_once():
    from repro.engine import BatchRunner, RunnerConfig, SolveJob
    problem = fig1_problem()
    jobs = [SolveJob(problem=problem.with_power_constraints(p, 4.0),
                     kind="sweep_point")
            for p in (12.0, 16.0, 16.0, 25.0)]
    seen: "list[tuple[int, bool]]" = []
    runner = BatchRunner(RunnerConfig(workers=0))
    results = runner.run(jobs,
                         on_result=lambda r: seen.append(
                             (r.position, r.ok)))
    assert sorted(position for position, _ok in seen) == [0, 1, 2, 3]
    assert all(ok for _position, ok in seen)
    assert len(results) == 4


# ---------------------------------------------------------------------
# serve trace artifact + CLI
# ---------------------------------------------------------------------


def test_serve_trace_artifact(tmp_path):
    trace_path = str(tmp_path / "serve-trace.json")
    with LiveServer(ServingConfig(port=0,
                                  trace_path=trace_path)) as live:
        live.client.solve(fig1_problem())
    with open(trace_path, encoding="utf-8") as handle:
        doc = json.load(handle)
    assert doc["format"] == "repro-serve-trace"
    assert doc["version"] == 1
    assert doc["batches"] >= 1
    assert doc["jobs"] and doc["jobs"][0]["status"] == "done"
    assert doc["metrics"]["serving.http.requests"]["value"] >= 1


def test_cli_submit_solve_and_check(tmp_path, capsys):
    from repro.cli import main
    path = str(tmp_path / "fig1.json")
    save_problem(fig1_problem(), path)
    with LiveServer() as live:
        code = main(["submit", path, "--server", live.url, "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "check: ok" in out
        code = main(["submit", path, "--server", live.url,
                     "--budgets", "12,16", "--levels", "4,8",
                     "--events", "--check"])
        out = capsys.readouterr().out
    assert code == 0
    assert '"event": "done"' in out
    assert "served points" in out


def test_cli_submit_errored_job_exits_nonzero(tmp_path, capsys):
    from repro.cli import main
    path = str(tmp_path / "fig1.json")
    save_problem(fig1_problem(), path)
    with LiveServer() as live:
        code = main(["submit", path, "--server", live.url,
                     "--budgets", "12,16", "--levels", "4,8",
                     "--deadline-ms", "0"])
        captured = capsys.readouterr()
    assert code == 1
    assert "job failed [deadline_exceeded]" in captured.err


def test_cli_serve_store_round_trip(tmp_path, capsys):
    # --store persists the schedule store across server lifetimes.
    store_path = str(tmp_path / "store.json")
    problem = fig1_problem()
    config = ServingConfig(port=0, store_path=store_path,
                           reuse_policy="valid")
    with LiveServer(config) as live:
        live.client.solve(problem, p_max=16.0, p_min=14.0)
    assert os.path.exists(store_path)
    with LiveServer(config) as live:
        served = live.client.solve(problem, p_max=20.0, p_min=10.0)
    assert served["points"][0].get("reused") is True


# ---------------------------------------------------------------------
# doc conformance: replay every example in docs/serving.md
# ---------------------------------------------------------------------

_REQUEST_RE = re.compile(
    r"^Request: `(GET|POST|DELETE) ([^`]+)`(.*)$")
_RESPONSE_RE = re.compile(r"^Response: `(\d+)`")

#: Fields whose values vary run to run; checked by type, not value.
_VOLATILE = {"elapsed_ms", "at_ms", "message"}


def _read_fence(lines: "list[str]", start: int) \
        -> "tuple[str, list[str], int]":
    language = lines[start][3:].strip()
    body = []
    index = start + 1
    while not lines[index].startswith("```"):
        body.append(lines[index])
        index += 1
    return language, body, index + 1


def _parse_doc_examples(text: str):
    """Yield ``(method, path, body, status, language, block)`` for
    every Request/Response pair in the document, in order."""
    lines = text.splitlines()
    index, last_body = 0, None
    while index < len(lines):
        match = _REQUEST_RE.match(lines[index])
        if not match:
            index += 1
            continue
        method, path, suffix = match.groups()
        index += 1
        body = None
        while not _RESPONSE_RE.match(lines[index]):
            if lines[index].startswith("```json"):
                _lang, block, index = _read_fence(lines, index)
                body = json.loads("\n".join(block))
            else:
                index += 1
        if body is None and "same body as above" in suffix:
            body = last_body
        if body is not None:
            last_body = body
        status = int(_RESPONSE_RE.match(lines[index]).group(1))
        index += 1
        while not lines[index].startswith("```"):
            index += 1
        language, block, index = _read_fence(lines, index)
        yield method, path, body, status, language, block


def _assert_like_doc(expected, actual, where: str) -> None:
    """Structural equality with the documented volatility rules."""
    if isinstance(expected, dict):
        assert isinstance(actual, dict), where
        assert set(actual) == set(expected), \
            f"{where}: keys {sorted(actual)} != {sorted(expected)}"
        for key, value in expected.items():
            if key in _VOLATILE:
                assert isinstance(
                    actual[key],
                    str if isinstance(value, str) else (int, float)), \
                    f"{where}/{key}"
            else:
                _assert_like_doc(value, actual[key],
                                 f"{where}/{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, list) \
            and len(actual) == len(expected), where
        for position, (want, got) in enumerate(zip(expected, actual)):
            _assert_like_doc(want, got, f"{where}[{position}]")
    else:
        assert actual == expected, \
            f"{where}: {actual!r} != {expected!r}"


def test_doc_error_table_matches_error_codes():
    with open(DOC_PATH, encoding="utf-8") as handle:
        text = handle.read()
    rows = re.findall(r"^\| `(\w+)` \| (\d+) \|", text, flags=re.M)
    assert dict((code, int(status)) for code, status in rows) \
        == ERROR_CODES


def test_doc_conformance_replay():
    """Replay every example in docs/serving.md against a live server.

    The examples were recorded against ``ServingConfig(port=0,
    max_wait_ms=150)`` (as the doc states) and are replayed in
    document order, so job ids, batch numbers and cache hits are
    deterministic.
    """
    with open(DOC_PATH, encoding="utf-8") as handle:
        text = handle.read()
    examples = list(_parse_doc_examples(text))
    assert len(examples) >= 14, "doc lost its examples?"
    paths = {path for _m, path, *_rest in examples}
    for endpoint in ("/healthz", "/v1/solve", "/v1/sweep",
                     "/metrics"):
        assert endpoint in paths, f"no doc example for {endpoint}"

    with LiveServer(ServingConfig(port=0, max_wait_ms=150.0)) as live:
        for method, path, body, status, language, block in examples:
            where = f"{method} {path} -> {status}"
            if language == "ndjson":
                records = [json.loads(line) for line in block if line]
                actual = list(live.client.events(path.split("/")[3]))
                _assert_like_doc(records, actual, where)
            elif language == "text":
                got_status, got_text = live.client.request(
                    method, path, body)
                assert got_status == status, where
                got_lines = set(got_text.splitlines())
                for line in block:
                    if line.startswith("# TYPE"):
                        assert line in got_lines, \
                            f"{where}: missing {line!r}"
            else:
                got_status, got_doc = live.client.request(
                    method, path, body)
                assert got_status == status, \
                    f"{where}: got {got_status} ({got_doc})"
                _assert_like_doc(json.loads("\n".join(block)),
                                 got_doc, where)


def test_doc_demo_problem_parses():
    """The compact demo problem embedded in the doc is a valid
    repro-problem document."""
    from repro.io import problem_from_dict
    with open(DOC_PATH, encoding="utf-8") as handle:
        text = handle.read()
    for _m, _p, body, _s, _lang, _block in _parse_doc_examples(text):
        if isinstance(body, dict) and "problem" in body:
            problem = problem_from_dict(body["problem"])
            assert problem_to_dict(problem)["name"] == \
                body["problem"]["name"]


# ---------------------------------------------------------------------
# truncated event streams
# ---------------------------------------------------------------------

class _OneShotStreamServer:
    """A raw socket server that sends a canned HTTP response and hangs up.

    Stands in for a solve server that dies mid-stream: the status line
    and headers are well-formed, the body is whatever the test wants —
    typically an NDJSON prefix with no terminal ``done`` record.
    """

    def __init__(self, body: bytes):
        import socket

        self._body = body
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(1)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def _serve(self) -> None:
        connection, _addr = self._sock.accept()
        connection.recv(65536)  # drain the request; content is irrelevant
        head = (b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/x-ndjson\r\n"
                b"Content-Length: %d\r\n\r\n" % len(self._body))
        connection.sendall(head + self._body)
        connection.close()

    def __enter__(self) -> "_OneShotStreamServer":
        self._thread.start()
        return self

    def __exit__(self, *_exc) -> None:
        self._sock.close()
        self._thread.join(10)


def _stream_lines(*records: dict) -> bytes:
    return b"".join(json.dumps(record).encode() + b"\n"
                    for record in records)


def test_stream_without_terminal_event_raises_typed_error():
    from repro.serving import TruncatedStreamError

    body = _stream_lines(
        {"format": "repro-serve-events", "version": 1, "job": "j1"},
        {"event": "queued", "job": "j1"},
        {"event": "running", "job": "j1"})
    with _OneShotStreamServer(body) as fake:
        client = ServingClient(f"http://127.0.0.1:{fake.port}")
        with pytest.raises(TruncatedStreamError) as excinfo:
            for _event in client.events("j1"):
                pass
    error = excinfo.value
    assert error.code == "truncated_stream"
    assert error.job_id == "j1"
    assert error.events_seen == 3
    assert error.http_status is None
    assert isinstance(error, ServingError)
    assert "without a terminal 'done' event" in str(error)


def test_stream_cut_mid_record_raises_typed_error():
    from repro.serving import TruncatedStreamError

    body = _stream_lines(
        {"format": "repro-serve-events", "version": 1, "job": "j2"},
        {"event": "queued", "job": "j2"})
    body += b'{"event": "running", "jo'  # dies mid-record, no newline
    with _OneShotStreamServer(body) as fake:
        client = ServingClient(f"http://127.0.0.1:{fake.port}")
        seen = []
        with pytest.raises(TruncatedStreamError) as excinfo:
            for event in client.events("j2"):
                seen.append(event)
    # every complete event was still delivered before the error
    assert [record.get("event") for record in seen] == [None, "queued"]
    assert excinfo.value.events_seen == 2
    assert "cut off mid-line" in str(excinfo.value)


def test_wait_surfaces_truncated_stream():
    from repro.serving import TruncatedStreamError

    body = _stream_lines(
        {"format": "repro-serve-events", "version": 1, "job": "j3"},
        {"event": "queued", "job": "j3"})
    with _OneShotStreamServer(body) as fake:
        client = ServingClient(f"http://127.0.0.1:{fake.port}")
        with pytest.raises(TruncatedStreamError):
            client.wait("j3")


def test_live_stream_with_terminal_event_does_not_raise():
    problem = fig1_problem()
    with LiveServer() as live:
        ack = live.client.sweep(problem, points=[(10.0, 4.0)])
        events = list(live.client.events(ack["job"]))
    assert events[-1]["event"] == "done"
