"""Tests for automatic heating-task synthesis."""

import pytest

from repro.mission import MarsRover, SolarCase
from repro.mission.heating_synthesis import (strip_heating,
                                             synthesize_heating)
from repro.mission.thermal import check_thermal
from repro.scheduling import SchedulerOptions

FAST = SchedulerOptions(max_power_restarts=1, min_power_scans=2, seed=7)


@pytest.fixture(scope="module")
def rover() -> MarsRover:
    return MarsRover(options=FAST)


class TestStripHeating:
    def test_removes_heat_tasks_only(self, rover):
        graph = rover.iteration_graph(SolarCase.TYPICAL)
        bare = strip_heating(graph)
        kinds = {t.meta.get("kind") for t in bare.tasks()}
        assert "heat" not in kinds
        assert len(bare) == 6  # 2 x (hazard, steer, drive)

    def test_keeps_operation_constraints(self, rover):
        bare = strip_heating(rover.iteration_graph(SolarCase.TYPICAL))
        assert bare.separation("hazard_1", "steer_1") == 10
        assert bare.separation("drive_1", "hazard_2") == 10


class TestSynthesis:
    @pytest.mark.parametrize("case", list(SolarCase))
    def test_rederives_the_hand_allocation(self, rover, case):
        """Starting from a heat-free graph, synthesis converges to the
        paper's allocation: five shared firings per 2-step iteration,
        with the same finish time and energy cost as the hand-placed
        model."""
        bare = strip_heating(rover.iteration_graph(case))
        outcome = synthesize_heating(bare, case, options=FAST)
        hand = rover.power_aware_result(case)
        assert outcome.firings == 5
        assert outcome.result.finish_time == hand.finish_time
        assert outcome.result.energy_cost \
            == pytest.approx(hand.energy_cost, abs=0.5)

    def test_result_is_thermally_sound(self, rover):
        bare = strip_heating(rover.iteration_graph(SolarCase.TYPICAL))
        outcome = synthesize_heating(bare, SolarCase.TYPICAL,
                                     options=FAST)
        assert check_thermal(outcome.result.schedule) == []

    def test_synthesized_tasks_are_tagged(self, rover):
        bare = strip_heating(rover.iteration_graph(SolarCase.TYPICAL))
        outcome = synthesize_heating(bare, SolarCase.TYPICAL,
                                     options=FAST)
        for name in outcome.inserted:
            assert outcome.graph.task(name).meta["synthesized"]

    def test_already_sound_graph_needs_no_firings(self, rover):
        """A graph whose hand-placed heatings already satisfy the
        physics comes back unchanged after one verification round."""
        graph = rover.iteration_graph(SolarCase.TYPICAL)
        outcome = synthesize_heating(graph, SolarCase.TYPICAL,
                                     options=FAST)
        assert outcome.firings == 0
        assert outcome.rounds == 1

    def test_hopeless_physics_fails_cleanly(self, rover):
        from repro.errors import ReproError
        from repro.mission.thermal import ThermalParams

        bare = strip_heating(rover.iteration_graph(SolarCase.TYPICAL))
        # a motor that cools nearly instantly can never stay warm
        hopeless = ThermalParams(cool_tau=0.25, heat_tau=0.2)
        with pytest.raises(ReproError):
            synthesize_heating(bare, SolarCase.TYPICAL,
                               params=hopeless, options=FAST,
                               max_rounds=3)
