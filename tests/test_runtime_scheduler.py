"""Unit tests for the runtime schedule table (paper Section 5.3)."""

import pytest

from repro import (RuntimeScheduler, ScheduleTable,
                   SchedulerOptions, schedule)
from repro.examples_data import fig1_options, fig1_problem
from repro.workloads import independent


class TestScheduleTable:
    def test_validity_range_from_profile(self):
        result = schedule(independent(2, duration=5, power=4.0,
                                      p_max=10.0, p_min=4.0))
        table = ScheduleTable()
        entry = table.add_result("demo", result)
        assert entry.min_p_max == pytest.approx(result.metrics.peak_power)
        assert entry.is_valid_under(result.metrics.peak_power)
        assert not entry.is_valid_under(result.metrics.peak_power - 1.0)

    def test_select_returns_none_on_miss(self):
        table = ScheduleTable()
        assert table.select(10.0, 5.0) is None

    def test_select_prefers_higher_utilization(self):
        problem = independent(2, duration=5, power=6.0, p_max=14.0,
                              p_min=6.0)
        parallel = schedule(problem)
        from repro import serial_schedule
        serial = serial_schedule(problem)
        table = ScheduleTable()
        table.add_result("parallel", parallel)
        table.add_result("serial", serial)
        # under a tight budget only the serial entry is valid
        tight = table.select(p_max=7.0, p_min=6.0)
        assert tight.label == "serial"

    def test_fig7_validity_range_matches_paper(self):
        """Fig. 7's schedule applies for P_max >= 16, P_min <= 14."""
        from repro.scheduling import PowerAwareScheduler
        result = PowerAwareScheduler(fig1_options()).solve(
            fig1_problem())
        table = ScheduleTable()
        entry = table.add_result("fig7", result)
        assert entry.min_p_max <= 16.0
        assert entry.max_full_p_min >= 14.0

    def test_describe_lines(self):
        table = ScheduleTable()
        result = schedule(independent(1, duration=2, power=3.0,
                                      p_max=5.0))
        table.add_result("x", result)
        lines = table.describe()
        assert len(lines) == 1
        assert "P_max" in lines[0]


class TestRankingOrder:
    """Pin the documented ranking: earliest finish, then lowest energy
    cost, then highest utilization (docstring and code must agree)."""

    @staticmethod
    def entry(label, segments):
        from repro import ConstraintGraph, PowerProfile, Schedule
        from repro.scheduling.runtime import ScheduleEntry
        dummy = Schedule(ConstraintGraph(), {})
        return ScheduleEntry(label=label, schedule=dummy,
                             profile=PowerProfile(segments))

    @staticmethod
    def pick(entries, p_max, p_min):
        table = ScheduleTable(entries=list(entries))
        return table.select(p_max, p_min).label

    def test_finish_time_beats_energy_cost(self):
        fast = self.entry("fast", [(0, 10, 6.0)])      # ec = 20
        frugal = self.entry("frugal", [(0, 12, 4.0)])  # ec = 0
        assert self.pick([frugal, fast], p_max=10.0, p_min=4.0) == "fast"
        assert fast.score(10.0, 4.0) < frugal.score(10.0, 4.0)

    def test_energy_cost_breaks_finish_ties(self):
        lean = self.entry("lean", [(0, 10, 5.0)])      # ec = 10
        hungry = self.entry("hungry", [(0, 10, 6.0)])  # ec = 20
        assert self.pick([hungry, lean], p_max=10.0, p_min=4.0) == "lean"

    def test_utilization_breaks_remaining_ties(self):
        # both finish at 10 with energy cost 20 above P_min = 4;
        # "busy" soaks up the free supply in its tail, "idle" wastes it
        idle = self.entry("idle", [(0, 5, 8.0), (5, 10, 0.0)])
        busy = self.entry("busy", [(0, 5, 8.0), (5, 10, 4.0)])
        assert self.pick([idle, busy], p_max=10.0, p_min=4.0) == "busy"
        assert busy.score(10.0, 4.0) < idle.score(10.0, 4.0)


class TestRuntimeScheduler:
    def test_hit_and_miss_accounting(self):
        def factory(p_max, p_min):
            return independent(2, duration=5, power=4.0,
                               p_max=p_max, p_min=p_min)

        runtime = RuntimeScheduler(factory,
                                   SchedulerOptions(max_power_restarts=1))
        first = runtime.schedule_for(10.0, 4.0)
        assert runtime.misses == 1
        second = runtime.schedule_for(12.0, 4.0)  # reusable: peak <= 12
        assert runtime.hits == 1
        assert second is first

    def test_recomputes_when_budget_shrinks(self):
        def factory(p_max, p_min):
            return independent(2, duration=5, power=4.0,
                               p_max=p_max, p_min=p_min)

        runtime = RuntimeScheduler(factory,
                                   SchedulerOptions(max_power_restarts=1))
        wide = runtime.schedule_for(10.0, 4.0)
        narrow = runtime.schedule_for(5.0, 4.0)
        assert runtime.misses == 2
        assert narrow.min_p_max <= 5.0
        assert narrow is not wide
