"""Unit tests for the max-power scheduler (paper Fig. 4)."""

import pytest

from repro import (ConstraintGraph, MaxPowerScheduler, SchedulerOptions,
                   SchedulingFailure, SchedulingProblem,
                   check_power_valid, max_power_schedule)
from repro.workloads import independent


class TestSpikeElimination:
    def test_independent_tasks_packed_under_budget(self):
        # 4 x 4 W tasks under a 10 W budget: at most 2 at a time.
        problem = independent(4, duration=5, power=4.0, p_max=10.0)
        result = max_power_schedule(problem)
        assert result.metrics.peak_power <= 10.0 + 1e-9
        assert result.metrics.spikes == 0
        assert result.finish_time == 10  # two slots of two tasks

    def test_valid_schedule_untouched(self):
        problem = independent(2, duration=5, power=4.0, p_max=10.0)
        result = max_power_schedule(problem)
        assert result.finish_time == 5  # both fit side by side

    def test_result_is_power_and_time_valid(self, small_problem):
        result = max_power_schedule(small_problem)
        report = check_power_valid(result.schedule,
                                   small_problem.p_max,
                                   baseline=small_problem.baseline)
        assert report.ok

    def test_baseline_reduces_headroom(self):
        lo = independent(4, duration=5, power=4.0, p_max=10.0)
        result_lo = max_power_schedule(lo)
        hi = SchedulingProblem(lo.graph, p_max=10.0, baseline=3.0)
        result_hi = max_power_schedule(hi)
        # with 3 W of baseline only one 4 W task fits at a time
        assert result_hi.finish_time > result_lo.finish_time

    def test_infeasible_task_rejected_up_front(self):
        problem = independent(1, duration=5, power=12.0, p_max=10.0)
        with pytest.raises(SchedulingFailure, match="power-infeasible"):
            max_power_schedule(problem)

    def test_respects_timing_constraints_while_delaying(self):
        g = ConstraintGraph()
        g.new_task("a", duration=5, power=6.0, resource="A")
        g.new_task("b", duration=5, power=6.0, resource="B")
        g.add_separation_window("a", "b", 0, 3)
        problem = SchedulingProblem(g, p_max=8.0)
        # a and b can never overlap fully (12 W > 8) but the window
        # forces them within 3 s of each other -> infeasible.
        with pytest.raises(SchedulingFailure):
            max_power_schedule(problem,
                               SchedulerOptions(max_spike_attempts=200,
                                                serial_fallback=False))

    def test_stage_and_stats(self, small_problem):
        scheduler = MaxPowerScheduler()
        result = scheduler.solve(small_problem)
        assert result.stage == "max_power"
        assert result.stats.delays_applied >= 1


class TestHeuristicKnobs:
    def test_random_selection_still_valid(self, small_problem):
        options = SchedulerOptions(slack_ordering=False, seed=3)
        result = max_power_schedule(small_problem, options)
        assert result.metrics.spikes == 0

    def test_deterministic_for_fixed_seed(self, small_problem):
        a = max_power_schedule(small_problem, SchedulerOptions(seed=5))
        b = max_power_schedule(small_problem, SchedulerOptions(seed=5))
        assert a.schedule == b.schedule

    def test_serial_fallback_disabled(self, small_problem):
        options = SchedulerOptions(serial_fallback=False)
        result = max_power_schedule(small_problem, options)
        assert result.metrics.spikes == 0

    def test_multi_start_never_worse_than_single(self, small_problem):
        single = max_power_schedule(
            small_problem, SchedulerOptions(max_power_restarts=1,
                                            serial_fallback=False))
        multi = max_power_schedule(
            small_problem, SchedulerOptions(max_power_restarts=4,
                                            serial_fallback=False))
        assert multi.finish_time <= single.finish_time


class TestCompaction:
    def test_compaction_never_lengthens(self, small_problem):
        raw = max_power_schedule(
            small_problem, SchedulerOptions(compaction=False,
                                            serial_fallback=False))
        packed = max_power_schedule(
            small_problem, SchedulerOptions(compaction=True,
                                            serial_fallback=False))
        assert packed.finish_time <= raw.finish_time

    def test_compaction_result_stays_valid(self):
        problem = independent(6, duration=4, power=3.0, p_max=7.0)
        result = max_power_schedule(problem,
                                    SchedulerOptions(compaction=True))
        report = check_power_valid(result.schedule, problem.p_max)
        assert report.ok

    def test_rover_worst_case_reaches_serial_quality(self):
        """The paper: the worst-case power-aware schedule coincides
        with the fully-serial JPL schedule (75 s)."""
        from repro.mission import MarsRover, SolarCase
        rover = MarsRover.standard()
        result = max_power_schedule(rover.problem(SolarCase.WORST))
        assert result.finish_time == 75
        assert result.metrics.spikes == 0
