"""Unit tests for the DVS related-work baseline."""

import pytest

from repro import ConstraintGraph, SchedulingFailure, SchedulingProblem
from repro.errors import ReproError
from repro.scheduling import DvsScheduler, dvs_schedule, schedule
from repro.scheduling.dvs import CPU_RESOURCE


def cpu_jobs(deadlines: "dict[str, int]",
             p_max: float = 20.0) -> SchedulingProblem:
    g = ConstraintGraph("dvs")
    for i, (name, deadline) in enumerate(deadlines.items()):
        g.new_task(name, duration=4, power=6.0, resource=CPU_RESOURCE)
        g.add_finish_deadline(name, deadline)
    return SchedulingProblem(g, p_max=p_max)


class TestLadder:
    def test_ladder_must_contain_full_speed(self):
        with pytest.raises(ReproError):
            DvsScheduler(frequencies=(0.5, 0.25))

    def test_ladder_range_checked(self):
        with pytest.raises(ReproError):
            DvsScheduler(frequencies=(1.0, 1.5))


class TestScheduling:
    def test_loose_deadlines_pick_slow_frequencies(self):
        result = dvs_schedule(cpu_jobs({"j1": 40, "j2": 80}))
        freqs = result.extra["frequencies"]
        assert all(f < 1.0 for f in freqs.values())
        # energy scales with f^2: must be below full-speed energy
        full_energy = 2 * 4 * 6.0
        assert result.metrics.total_energy < full_energy

    def test_tight_deadlines_force_full_speed(self):
        result = dvs_schedule(cpu_jobs({"j1": 4, "j2": 8}))
        assert set(result.extra["frequencies"].values()) == {1.0}

    def test_deadlines_always_met(self):
        problem = cpu_jobs({"j1": 12, "j2": 30, "j3": 60})
        result = dvs_schedule(problem)
        for name, deadline in (("j1", 12), ("j2", 30), ("j3", 60)):
            assert result.schedule.finish(name) <= deadline

    def test_edf_order(self):
        problem = cpu_jobs({"late": 60, "soon": 8})
        result = dvs_schedule(problem)
        assert result.schedule.start("soon") \
            < result.schedule.start("late")

    def test_impossible_deadline_fails(self):
        g = ConstraintGraph()
        g.new_task("j1", duration=4, power=6.0, resource=CPU_RESOURCE)
        g.new_task("j2", duration=4, power=6.0, resource=CPU_RESOURCE)
        g.add_finish_deadline("j1", 4)
        g.add_finish_deadline("j2", 5)  # cannot follow j1 in time
        with pytest.raises(SchedulingFailure):
            dvs_schedule(SchedulingProblem(g, p_max=20.0))

    def test_needs_cpu_tasks(self):
        g = ConstraintGraph()
        g.new_task("motor", duration=4, power=6.0, resource="motor")
        with pytest.raises(SchedulingFailure):
            dvs_schedule(SchedulingProblem(g, p_max=20.0))

    def test_rejects_inter_job_constraints(self):
        problem = cpu_jobs({"j1": 40, "j2": 80})
        problem.graph.add_precedence("j1", "j2")
        with pytest.raises(SchedulingFailure):
            dvs_schedule(problem)

    def test_power_scales_cubically(self):
        result = dvs_schedule(cpu_jobs({"j1": 160}))
        (freq,) = result.extra["frequencies"].values()
        job = result.schedule.graph.task("j1")
        assert job.power == pytest.approx(6.0 * freq ** 3)

    def test_reports_ideal_and_rounded_energy(self):
        result = dvs_schedule(cpu_jobs({"j1": 40, "j2": 80}))
        ideal = result.extra["energy_ideal_J"]
        rounded = result.extra["energy_rounded_J"]
        freqs = result.extra["frequencies"]
        # ideal follows the continuous law E = d * p * f**2 exactly
        assert ideal == pytest.approx(
            sum(4 * 6.0 * f ** 2 for f in freqs.values()))
        # ceil-rounded durations can only add energy (modulo the
        # one-microwatt power quantization)
        assert rounded >= ideal - 1e-6
        # rounded matches what the materialized schedule actually burns
        assert rounded == pytest.approx(result.metrics.total_energy)

    def test_full_speed_energies_coincide(self):
        result = dvs_schedule(cpu_jobs({"j1": 4, "j2": 8}))
        assert result.extra["energy_ideal_J"] == pytest.approx(
            result.extra["energy_rounded_J"])
        assert result.extra["energy_ideal_J"] == pytest.approx(2 * 4 * 6.0)


class TestPaperCritique:
    """The Section-2 comparison: DVS is oblivious to system power."""

    @staticmethod
    def system_problem(p_max: float) -> SchedulingProblem:
        g = ConstraintGraph("system")
        # an uncontrollable subsystem load occupying [0, 10)
        g.new_task("heater", duration=10, power=8.0, resource="heater")
        g.add_start_deadline("heater", 0)  # fixed by the thermal loop
        # one CPU job that *could* run after the heater instead
        g.new_task("filter", duration=6, power=6.0,
                   resource=CPU_RESOURCE)
        g.add_finish_deadline("filter", 22)
        return SchedulingProblem(g, p_max=p_max)

    def test_dvs_violates_system_budget(self):
        """DVS launches the CPU job immediately (slowed, but on top of
        the heater) because it cannot see the system-level budget."""
        result = dvs_schedule(self.system_problem(p_max=8.5))
        assert result.metrics.spikes >= 1

    def test_power_aware_respects_it(self):
        """The power-aware scheduler slides the CPU job past the heater
        instead — same deadline, no spike."""
        result = schedule(self.system_problem(p_max=8.5))
        assert result.metrics.spikes == 0
        assert result.schedule.finish("filter") <= 22

    def test_dvs_wins_on_cpu_energy(self):
        """...but the critique cuts both ways: on a pure-CPU workload
        with slack, DVS spends less energy than any scheduler that
        cannot slow the processor."""
        problem = cpu_jobs({"j1": 60, "j2": 120})
        dvs = dvs_schedule(problem)
        pa = schedule(problem)
        assert dvs.metrics.total_energy < pa.metrics.total_energy
