"""Planner tests: sweep specs, shard partitions, manifest round trips.

The property tests pin the planner's core contract: **every partition
is a true partition** — no job dropped, no job duplicated, shard-local
order ascending — and merging shards by position restores the original
submission order exactly, for both strategies, any shard count, and
grids with the duplicate corners clamping produces.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import (PARTITION_STRATEGIES, ScheduleStore,
                          SolveJob, SweepSpec, plan_shards,
                          problem_base_key)
from repro.examples_data import fig1_problem
from repro.io.shards import (load_manifest, manifest_from_dict,
                             manifest_to_dict, save_manifest)
from repro.scheduling import SchedulerOptions
from repro.workloads import RandomWorkloadConfig, random_problem

FIG1 = fig1_problem()
ALT = random_problem(5, RandomWorkloadConfig(tasks=6, resources=2,
                                             layers=2))


# ----------------------------------------------------------------------
# SweepSpec
# ----------------------------------------------------------------------

class TestSweepSpec:
    def test_points_clamp_like_sweep_grid(self):
        spec = SweepSpec.grid(FIG1, [10, 8], [4, 12])
        # row-major, levels clamped to each budget, duplicates kept
        assert spec.points() == [(10, 4), (10, 10), (8, 4), (8, 8)]

    def test_jobs_order_problems_outer(self):
        spec = SweepSpec.grid([FIG1, ALT], [10], [4, 6])
        jobs = spec.jobs()
        assert len(jobs) == 4
        assert [job.problem.name for job in jobs] == \
            [FIG1.name, FIG1.name, ALT.name, ALT.name]
        assert [(job.problem.p_max, job.problem.p_min)
                for job in jobs[:2]] == [(10, 4), (10, 6)]

    def test_jobs_share_workload_graph(self):
        spec = SweepSpec.grid(FIG1, [10, 12], [4])
        jobs = spec.jobs()
        assert jobs[0].problem.graph is jobs[1].problem.graph


# ----------------------------------------------------------------------
# partition properties
# ----------------------------------------------------------------------

@st.composite
def _planned_grids(draw):
    budgets = draw(st.lists(
        st.integers(min_value=4, max_value=30).map(float),
        min_size=1, max_size=6))
    levels = draw(st.lists(
        st.integers(min_value=1, max_value=30).map(float),
        min_size=1, max_size=6))
    problems = [FIG1, ALT][:draw(st.integers(min_value=1, max_value=2))]
    shards = draw(st.integers(min_value=1, max_value=6))
    strategy = draw(st.sampled_from(PARTITION_STRATEGIES))
    return problems, budgets, levels, shards, strategy


@given(_planned_grids())
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_plan_is_true_partition(params):
    problems, budgets, levels, shards, strategy = params
    jobs = SweepSpec.grid(problems, budgets, levels).jobs()
    plan = plan_shards(jobs, shards, strategy)

    assert plan.shards == shards
    # no drop, no duplicate: the union of shard positions is exactly
    # the original index space
    assert plan.positions() == list(range(len(jobs)))
    # shard-local order is ascending global position
    for manifest in plan:
        positions = manifest.positions()
        assert positions == sorted(positions)
        # each position carries the job originally planned there
        for position, job in manifest.jobs:
            assert job is jobs[position]
    # stable ordering after a positional merge: identical to submission
    merged = sorted(
        ((position, job) for manifest in plan
         for position, job in manifest.jobs))
    assert [job for _position, job in merged] == jobs


@given(_planned_grids())
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_tile_strategy_keeps_workload_runs_contiguous(params):
    problems, budgets, levels, shards, _strategy = params
    jobs = SweepSpec.grid(problems, budgets, levels).jobs()
    plan = plan_shards(jobs, shards, "tile")

    def base_of(job):
        return problem_base_key(job.problem, job.options,
                                kind=job.kind)

    # the power-plane ordering each workload's tiles are cut from
    plane_order: "dict[str, list[int]]" = {}
    for position, job in enumerate(jobs):
        plane_order.setdefault(base_of(job), []).append(position)
    for base, positions in plane_order.items():
        positions.sort(key=lambda position: (
            jobs[position].problem.p_max,
            jobs[position].problem.p_min, position))
    for manifest in plan:
        by_base: "dict[str, set[int]]" = {}
        for position, job in manifest.jobs:
            by_base.setdefault(base_of(job), set()).add(position)
        for base, members in by_base.items():
            # one contiguous run (a tile) of the workload's
            # power-plane ordering per shard — the locality the
            # schedule store exploits
            ordered = plane_order[base]
            indices = sorted(ordered.index(position)
                             for position in members)
            assert indices == list(range(indices[0],
                                         indices[0] + len(indices)))


def test_round_robin_deals_by_index():
    jobs = SweepSpec.grid(FIG1, [8, 10, 12], [2, 4]).jobs()
    plan = plan_shards(jobs, 2, "round_robin")
    assert plan.manifests[0].positions() == [0, 2, 4]
    assert plan.manifests[1].positions() == [1, 3, 5]


def test_empty_shards_are_legal():
    jobs = SweepSpec.grid(FIG1, [8], [2, 4]).jobs()
    plan = plan_shards(jobs, 4)
    assert plan.shards == 4
    assert sorted(len(m) for m in plan) == [0, 0, 1, 1]
    assert plan.positions() == [0, 1]


def test_plan_accepts_positioned_pairs():
    jobs = SweepSpec.grid(FIG1, [8, 10], [2]).jobs()
    plan = plan_shards([(7, jobs[0]), (3, jobs[1])], 2)
    assert plan.positions() == [3, 7]


def test_plan_rejects_bad_inputs():
    jobs = SweepSpec.grid(FIG1, [8], [2]).jobs()
    with pytest.raises(ValueError):
        plan_shards(jobs, 0)
    with pytest.raises(ValueError):
        plan_shards(jobs, 2, "diagonal")


# ----------------------------------------------------------------------
# manifest round trip
# ----------------------------------------------------------------------

class TestManifestRoundTrip:
    def test_round_trip_preserves_jobs_and_keys(self, tmp_path):
        options = SchedulerOptions(seed=11)
        jobs = SweepSpec.grid([FIG1, ALT], [8, 10], [2, 4],
                              options=options).jobs()
        store = ScheduleStore()
        store.ensure_primed(jobs[0].problem, options)
        plan = plan_shards(jobs, 2, "tile", sweep="grid",
                           runner={"retries": 2,
                                   "reuse_schedules": True,
                                   "reuse_policy": "identical",
                                   "instrument": False,
                                   "lp_log_factor": None},
                           store=store.to_dict())
        for manifest in plan:
            path = tmp_path / f"m{manifest.index}.json"
            save_manifest(manifest, str(path))
            loaded = load_manifest(str(path))
            assert loaded.index == manifest.index
            assert loaded.of == manifest.of
            assert loaded.strategy == manifest.strategy
            assert loaded.sweep == "grid"
            assert loaded.runner == manifest.runner
            assert loaded.store == manifest.store
            assert loaded.positions() == manifest.positions()
            # the job keys — covering problem, options and kind — are
            # preserved bit for bit, so the rebuilt jobs solve
            # identically
            for (_p1, job), (_p2, rebuilt) in zip(manifest.jobs,
                                                  loaded.jobs):
                assert rebuilt.key() == job.key()

    def test_rebuilt_jobs_share_base_problem_graphs(self):
        jobs = SweepSpec.grid(FIG1, [8, 10, 12], [2]).jobs()
        manifest = plan_shards(jobs, 1).manifests[0]
        loaded = manifest_from_dict(manifest_to_dict(manifest))
        graphs = {id(job.problem.graph)
                  for _position, job in loaded.jobs}
        assert len(graphs) == 1

    def test_per_job_options_survive(self):
        jobs = [SolveJob(problem=FIG1.with_power_constraints(10, 2),
                         options=SchedulerOptions(seed=1)),
                SolveJob(problem=FIG1.with_power_constraints(12, 2),
                         options=SchedulerOptions(seed=2))]
        manifest = plan_shards(jobs, 1).manifests[0]
        loaded = manifest_from_dict(manifest_to_dict(manifest))
        assert [job.options.seed
                for _position, job in loaded.jobs] == [1, 2]
