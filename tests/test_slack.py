"""Unit tests for slack analysis (Delta_sigma)."""

import pytest

from repro import (ConstraintGraph, Schedule, ValidationError,
                   UNBOUNDED_SLACK, movable_window, slack, slack_table)


def chain_graph() -> ConstraintGraph:
    g = ConstraintGraph("g")
    g.new_task("a", duration=5)
    g.new_task("b", duration=5)
    g.add_precedence("a", "b")  # sigma(b) >= sigma(a) + 5
    return g


class TestSlack:
    def test_zero_slack_when_successor_is_tight(self):
        g = chain_graph()
        s = Schedule(g, {"a": 0, "b": 5})
        assert slack(s, "a") == 0

    def test_positive_slack_when_successor_is_loose(self):
        g = chain_graph()
        s = Schedule(g, {"a": 0, "b": 9})
        assert slack(s, "a") == 4

    def test_unbounded_without_outgoing_edges(self):
        g = chain_graph()
        s = Schedule(g, {"a": 0, "b": 5})
        assert slack(s, "b") == UNBOUNDED_SLACK

    def test_deadline_limits_slack(self):
        g = chain_graph()
        g.add_start_deadline("b", 12)
        s = Schedule(g, {"a": 0, "b": 5})
        assert slack(s, "b") == 7

    def test_max_separation_counts_as_outgoing_of_later_task(self):
        # u at most 10 after... v within [0, 10] after u: the backward
        # edge (v -> u, -10) is an outgoing edge of v.
        g = ConstraintGraph()
        g.new_task("u", duration=2)
        g.new_task("v", duration=2)
        g.add_max_separation("u", "v", 10)
        s = Schedule(g, {"u": 0, "v": 4})
        assert slack(s, "v") == 6  # can move to at most u + 10

    def test_invalid_schedule_raises(self):
        g = chain_graph()
        s = Schedule(g, {"a": 3, "b": 5})  # violates min separation
        with pytest.raises(ValidationError):
            slack(s, "a")

    def test_slack_table_covers_all_tasks(self):
        g = chain_graph()
        s = Schedule(g, {"a": 0, "b": 7})
        table = slack_table(s)
        assert set(table) == {"a", "b"}
        assert table["a"] == 2


class TestMovableWindow:
    def test_window_of_middle_task(self):
        g = ConstraintGraph()
        g.new_task("a", duration=5)
        g.new_task("b", duration=5)
        g.new_task("c", duration=5)
        g.add_precedence("a", "b")
        g.add_precedence("b", "c")
        s = Schedule(g, {"a": 0, "b": 6, "c": 15})
        lo, hi = movable_window(s, "b")
        assert lo == 5   # after a
        assert hi == 10  # c at 15 needs b + 5 <= 15

    def test_window_with_release(self):
        g = ConstraintGraph()
        g.new_task("a", duration=5)
        g.add_release("a", 3)
        s = Schedule(g, {"a": 7})
        lo, hi = movable_window(s, "a")
        assert lo == 3
        assert hi == 7 + UNBOUNDED_SLACK

    def test_slack_delayed_schedule_remains_consistent(self):
        """Delaying within slack keeps every constraint satisfied."""
        from repro import check_time_valid
        g = chain_graph()
        g.add_start_deadline("b", 20)
        s = Schedule(g, {"a": 0, "b": 10})
        room = slack(s, "a")
        assert room == 5
        moved = s.delayed("a", room)
        assert check_time_valid(moved).ok
