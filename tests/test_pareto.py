"""Unit tests for Pareto-front design-space exploration."""

import xml.etree.ElementTree as ET

import pytest

from repro import SchedulerOptions, schedule, serial_schedule
from repro.analysis import (DesignPoint, explore, pareto_front,
                            render_pareto_svg, write_pareto_svg)
from repro.errors import ReproError, SchedulingFailure
from repro.workloads import independent


def pt(label, tau, ec) -> DesignPoint:
    return DesignPoint(label=label, finish_time=tau, energy_cost=ec,
                       utilization=1.0)


class TestDominance:
    def test_strictly_better_dominates(self):
        assert pt("a", 10, 5.0).dominates(pt("b", 12, 7.0))

    def test_tradeoff_points_do_not_dominate(self):
        fast = pt("fast", 10, 9.0)
        cheap = pt("cheap", 20, 2.0)
        assert not fast.dominates(cheap)
        assert not cheap.dominates(fast)

    def test_equal_points_do_not_dominate(self):
        assert not pt("a", 10, 5.0).dominates(pt("b", 10, 5.0))

    def test_front_extraction(self):
        points = [pt("fast", 10, 9.0), pt("cheap", 20, 2.0),
                  pt("bad", 25, 9.5), pt("mid", 15, 5.0)]
        front = pareto_front(points)
        assert [p.label for p in front] == ["fast", "mid", "cheap"]

    def test_front_deduplicates_coordinates(self):
        points = [pt("a", 10, 5.0), pt("b", 10, 5.0)]
        assert len(pareto_front(points)) == 1


class TestExplore:
    def test_explore_runs_all_solvers(self):
        problem = independent(4, duration=5, power=4.0, p_max=10.0,
                              p_min=4.0)
        points = explore(problem, {
            "power-aware": lambda p: schedule(
                p, SchedulerOptions(max_power_restarts=1)),
            "serial": lambda p: serial_schedule(p),
        })
        labels = {p.label for p in points}
        assert labels == {"power-aware", "serial"}
        front = pareto_front(points)
        assert front  # something survives

    def test_failures_are_skipped(self):
        def exploding(problem):
            raise SchedulingFailure("nope")

        problem = independent(2, duration=2, power=2.0, p_max=10.0)
        points = explore(problem, {"boom": exploding})
        assert points == []


class TestRendering:
    def test_svg_well_formed_and_front_labelled(self):
        points = [pt("fast", 10, 9.0), pt("cheap", 20, 2.0),
                  pt("bad", 25, 9.5)]
        document = render_pareto_svg(points, title="plane")
        root = ET.fromstring(document)
        assert root.tag.endswith("svg")
        assert "plane" in document
        assert "fast" in document and "cheap" in document
        # dominated point drawn grey, no label
        assert "#bbb" in document

    def test_empty_points_rejected(self):
        with pytest.raises(ReproError):
            render_pareto_svg([])

    def test_write_to_file(self, tmp_path):
        path = write_pareto_svg([pt("only", 5, 1.0)],
                                str(tmp_path / "front.svg"))
        assert open(path).read().startswith("<svg")
