"""Unit tests for the exhaustive branch-and-bound scheduler."""

import pytest

from repro import (ConstraintGraph, InfeasibleError, OptimalScheduler,
                   ReproError, SchedulingProblem, check_power_valid,
                   optimal_schedule, schedule)
from repro.workloads import independent


class TestOptimal:
    def test_minimal_makespan_for_independent_tasks(self):
        problem = independent(4, duration=5, power=4.0, p_max=10.0)
        result = optimal_schedule(problem, objective="makespan")
        assert result.finish_time == 10  # 2 per slot is provably best

    def test_respects_resources_and_power(self, small_problem):
        result = optimal_schedule(small_problem)
        assert check_power_valid(result.schedule, small_problem.p_max,
                                 baseline=small_problem.baseline).ok

    def test_energy_cost_objective(self):
        problem = independent(2, duration=5, power=6.0, p_max=14.0)
        spread = optimal_schedule(
            problem.with_power_constraints(p_max=14.0, p_min=6.0),
            objective="energy_cost", horizon=10)
        # serializing both tasks keeps P(t) at the 6 W free level:
        # zero cost; running them together would cost 30 J.
        assert spread.energy_cost == pytest.approx(0.0)

    def test_lexicographic_prefers_speed_then_cost(self):
        problem = independent(2, duration=5, power=6.0, p_max=14.0)
        scaled = problem.with_power_constraints(p_max=14.0, p_min=6.0)
        result = optimal_schedule(scaled, objective="lexicographic")
        assert result.finish_time == 5  # parallel wins on makespan
        assert result.energy_cost == pytest.approx(30.0)

    def test_infeasible_is_proved(self):
        g = ConstraintGraph()
        g.new_task("u", duration=5, power=6.0, resource="A")
        g.new_task("v", duration=5, power=6.0, resource="B")
        g.add_separation_window("u", "v", 0, 2)
        problem = SchedulingProblem(g, p_max=10.0)
        with pytest.raises(InfeasibleError):
            optimal_schedule(problem, horizon=20)

    def test_unknown_objective_rejected(self):
        with pytest.raises(ReproError):
            OptimalScheduler(objective="speed")

    def test_node_budget_respected(self):
        problem = independent(4, duration=5, power=2.0, p_max=10.0)
        scheduler = OptimalScheduler(max_nodes=50)
        try:
            result = scheduler.solve(problem)
            assert result.extra["nodes"] <= 50
        except InfeasibleError:
            pass  # budget too small to find anything: also acceptable

    def test_heuristic_never_beats_optimal_makespan(self):
        problem = independent(3, duration=4, power=3.0, p_max=7.0)
        exact = optimal_schedule(problem, objective="makespan")
        heuristic = schedule(problem)
        assert heuristic.finish_time >= exact.finish_time

    def test_default_horizon_is_sufficient(self, small_problem):
        result = optimal_schedule(small_problem)
        assert result.finish_time <= result.extra["horizon"]
