"""Unit tests for the mission timeline chart."""

import xml.etree.ElementTree as ET

import pytest

from repro import PowerProfile
from repro.gantt import (MissionTrack, render_mission_svg,
                         write_mission_svg)
from repro.power import StepSolar


@pytest.fixture
def track() -> MissionTrack:
    track = MissionTrack("demo mission")
    first = PowerProfile([(0, 10, 12.0), (10, 20, 16.0)])
    second = PowerProfile([(0, 15, 10.0)])
    track.add_profile(first, start_time=0.0, note="iter 1")
    track.add_profile(second, start_time=20.0, note="iter 2")
    return track


@pytest.fixture
def solar() -> StepSolar:
    return StepSolar([(0, 14.0), (20, 9.0)])


class TestTrack:
    def test_segments_are_absolute(self, track):
        assert track.segments[0] == (0.0, 10.0, 12.0)
        assert track.segments[-1] == (20.0, 35.0, 10.0)
        assert track.end_time == 35.0

    def test_boundaries_carry_notes(self, track):
        assert track.boundaries == [(0.0, "iter 1"), (20.0, "iter 2")]


class TestRenderer:
    def test_svg_well_formed(self, track, solar):
        document = render_mission_svg(track, solar, title="T4")
        root = ET.fromstring(document)
        assert root.tag.endswith("svg")
        assert "T4" in document

    def test_free_and_battery_fills_present(self, track, solar):
        document = render_mission_svg(track, solar)
        # segment at 16 W over 14 W solar -> both colours appear
        assert "#74b06f" in document  # free
        assert "#d9644a" in document  # battery
        assert "solar" in document

    def test_all_free_when_under_solar(self, solar):
        track = MissionTrack("cheap")
        track.add_profile(PowerProfile([(0, 10, 5.0)]), 0.0)
        document = render_mission_svg(track, solar)
        # the battery colour appears only in the legend swatch
        assert document.count("#d9644a") == 1

    def test_write_to_file(self, track, solar, tmp_path):
        path = write_mission_svg(track, solar,
                                 str(tmp_path / "mission.svg"))
        assert open(path).read().startswith("<svg")

    def test_boundary_markers_rendered(self, track, solar):
        document = render_mission_svg(track, solar)
        assert "iter 2" in document
        assert document.count("stroke-dasharray") >= 2
