"""Integration tests for the three-stage pipeline (Section 5)."""

import pytest

from repro import (PowerAwareScheduler, SchedulerOptions,
                   check_power_valid, schedule)
from repro.scheduling import preset, preset_names
from repro.workloads import fork_join, random_problem


class TestPipeline:
    def test_stages_are_ordered_improvements(self, small_problem):
        pipeline = PowerAwareScheduler().solve_pipeline(small_problem)
        # timing may violate power; max-power must not; min-power must
        # not regress validity or utilization.
        assert pipeline.max_power.metrics.spikes == 0
        assert pipeline.min_power.metrics.spikes == 0
        assert pipeline.min_power.utilization \
            >= pipeline.max_power.utilization - 1e-12
        assert pipeline.min_power.finish_time \
            <= pipeline.max_power.finish_time

    def test_final_is_min_power_stage(self, small_problem):
        pipeline = PowerAwareScheduler().solve_pipeline(small_problem)
        assert pipeline.final is pipeline.min_power

    def test_stage_rows_cover_three_stages(self, small_problem):
        pipeline = PowerAwareScheduler().solve_pipeline(small_problem)
        rows = pipeline.stage_rows()
        assert len(rows) == 3
        assert [r["stage"].split()[0] for r in rows] \
            == ["time-valid", "power-valid", "improved"]

    def test_schedule_function_is_shorthand(self, small_problem):
        direct = schedule(small_problem)
        via_class = PowerAwareScheduler().solve(small_problem)
        assert direct.schedule == via_class.schedule

    def test_problem_graph_unchanged(self, small_problem):
        before = small_problem.graph.edge_count()
        schedule(small_problem)
        assert small_problem.graph.edge_count() == before

    @pytest.mark.parametrize("seed", [10, 16, 20])
    def test_random_instances_end_valid(self, seed, fast_options):
        problem = random_problem(seed)
        result = PowerAwareScheduler(fast_options).solve(problem)
        report = check_power_valid(result.schedule, problem.p_max,
                                   baseline=problem.baseline)
        assert report.ok

    def test_deterministic_across_runs(self, fast_options):
        problem = fork_join(width=4, power=3.0, p_max=8.0, p_min=5.0)
        a = PowerAwareScheduler(fast_options).solve(problem)
        b = PowerAwareScheduler(fast_options).solve(problem)
        assert a.schedule == b.schedule


class TestPresets:
    def test_all_presets_resolve(self):
        for name in preset_names():
            options = preset(name)
            assert isinstance(options, SchedulerOptions)

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            preset("nope")

    @pytest.mark.parametrize("name", preset_names())
    def test_every_preset_solves_fork_join(self, name):
        problem = fork_join(width=3, power=3.0, p_max=8.0, p_min=5.0)
        result = PowerAwareScheduler(preset(name)).solve(problem)
        assert result.metrics.spikes == 0

    def test_paper_preset_is_default_options(self):
        assert preset("paper") == SchedulerOptions()
