"""Unit tests for power profiles (P_sigma(t))."""

import pytest

from repro import (ConstraintGraph, Interval, PowerProfile, Schedule,
                   ValidationError)


def profile_of(tasks, starts, baseline=0.0) -> PowerProfile:
    g = ConstraintGraph()
    for name, duration, power in tasks:
        g.new_task(name, duration=duration, power=power,
                   resource=name)
    return PowerProfile.from_schedule(Schedule(g, starts),
                                      baseline=baseline)


class TestConstruction:
    def test_single_task(self):
        p = profile_of([("a", 5, 3.0)], {"a": 0})
        assert p.segments == [(0, 5, 3.0)]
        assert p.horizon == 5

    def test_overlap_sums(self):
        p = profile_of([("a", 5, 3.0), ("b", 5, 2.0)],
                       {"a": 0, "b": 3})
        assert p.segments == [(0, 3, 3.0), (3, 5, 5.0), (5, 8, 2.0)]

    def test_baseline_fills_idle_time(self):
        p = profile_of([("a", 2, 3.0), ("b", 2, 3.0)],
                       {"a": 0, "b": 4}, baseline=1.0)
        assert p.value(2) == pytest.approx(1.0)
        assert p.value(0) == pytest.approx(4.0)

    def test_resource_idle_power_added(self):
        g = ConstraintGraph()
        from repro import Resource
        g.declare_resource(Resource(name="cpu", idle_power=2.5))
        g.new_task("a", duration=4, power=1.0, resource="cpu")
        p = PowerProfile.from_schedule(Schedule(g, {"a": 0}))
        assert p.value(0) == pytest.approx(3.5)

    def test_horizon_extension(self):
        g = ConstraintGraph()
        g.new_task("a", duration=2, power=3.0)
        p = PowerProfile.from_schedule(Schedule(g, {"a": 0}),
                                       baseline=1.0, horizon=10)
        assert p.horizon == 10
        assert p.value(9) == pytest.approx(1.0)

    def test_horizon_before_finish_rejected(self):
        g = ConstraintGraph()
        g.new_task("a", duration=5, power=1.0)
        with pytest.raises(ValidationError):
            PowerProfile.from_schedule(Schedule(g, {"a": 0}), horizon=3)

    def test_empty_schedule(self):
        g = ConstraintGraph()
        p = PowerProfile.from_schedule(Schedule(g, {}))
        assert p.horizon == 0
        assert p.energy() == 0.0

    def test_segments_must_be_contiguous(self):
        with pytest.raises(ValidationError):
            PowerProfile([(0, 5, 1.0), (6, 8, 1.0)])

    def test_equal_neighbours_merged(self):
        p = PowerProfile([(0, 5, 2.0), (5, 9, 2.0)])
        assert p.segments == [(0, 9, 2.0)]


class TestQueries:
    @pytest.fixture
    def stepped(self) -> PowerProfile:
        return PowerProfile([(0, 5, 16.0), (5, 10, 12.0),
                             (10, 20, 14.0)])

    def test_value_lookup(self, stepped):
        assert stepped.value(0) == 16.0
        assert stepped.value(7) == 12.0
        assert stepped.value(19) == 14.0
        assert stepped.value(20) == 0.0
        assert stepped.value(-1) == 0.0

    def test_peak_and_floor(self, stepped):
        assert stepped.peak() == 16.0
        assert stepped.floor() == 12.0

    def test_spikes(self, stepped):
        assert stepped.spikes(15.0) == [Interval(0, 5, 16.0)]
        assert stepped.spikes(16.0) == []

    def test_gaps(self, stepped):
        assert stepped.gaps(14.0) == [Interval(5, 10, 12.0)]
        assert stepped.gaps(12.0) == []

    def test_adjacent_violating_segments_merge(self):
        p = PowerProfile([(0, 5, 20.0), (5, 10, 18.0), (10, 15, 10.0)])
        spikes = p.spikes(16.0)
        assert spikes == [Interval(0, 10, 20.0)]

    def test_first_spike_and_gap(self, stepped):
        assert stepped.first_spike(15.0) == Interval(0, 5, 16.0)
        assert stepped.first_gap(14.0) == Interval(5, 10, 12.0)
        assert stepped.first_spike(20.0) is None

    def test_is_power_valid_with_tolerance(self, stepped):
        assert stepped.is_power_valid(16.0)
        # float fuzz within tolerance is still valid
        fuzz = PowerProfile([(0, 5, 16.0 + 1e-12)])
        assert fuzz.is_power_valid(16.0)


class TestEnergy:
    @pytest.fixture
    def stepped(self) -> PowerProfile:
        return PowerProfile([(0, 5, 16.0), (5, 10, 12.0),
                             (10, 20, 14.0)])

    def test_total_energy(self, stepped):
        assert stepped.energy() == pytest.approx(16 * 5 + 12 * 5 + 14 * 10)

    def test_energy_above(self, stepped):
        assert stepped.energy_above(14.0) == pytest.approx(2 * 5)
        assert stepped.energy_above(0.0) == pytest.approx(
            stepped.energy())

    def test_energy_capped(self, stepped):
        assert stepped.energy_capped(14.0) == pytest.approx(
            14 * 5 + 12 * 5 + 14 * 10)

    def test_split_identity(self, stepped):
        # above + capped == total, for any level
        for level in (0.0, 5.0, 13.0, 14.0, 16.0, 99.0):
            assert stepped.energy_above(level) \
                + stepped.energy_capped(level) \
                == pytest.approx(stepped.energy())


class TestTransforms:
    def test_restricted(self):
        p = PowerProfile([(0, 5, 2.0), (5, 10, 4.0)])
        r = p.restricted(3, 8)
        assert r.segments == [(0, 2, 2.0), (2, 5, 4.0)]

    def test_restricted_bounds_checked(self):
        p = PowerProfile([(0, 5, 2.0)])
        with pytest.raises(ValidationError):
            p.restricted(2, 9)

    def test_concatenate(self):
        a = PowerProfile([(0, 5, 2.0)])
        b = PowerProfile([(0, 3, 4.0)])
        joined = PowerProfile.concatenate([a, b])
        assert joined.segments == [(0, 5, 2.0), (5, 8, 4.0)]
        assert joined.horizon == 8

    def test_concatenate_carries_first_baseline(self):
        # regression: the joined profile used to report only the *last*
        # part's baseline (1.0 then 0.5 yielded baseline=0.5)
        a = PowerProfile([(0, 5, 2.0)], baseline=1.0)
        b = PowerProfile([(0, 3, 4.0)], baseline=1.0)
        assert PowerProfile.concatenate([a, b]).baseline == 1.0

    def test_concatenate_mixed_baselines_raise(self):
        a = PowerProfile([(0, 5, 2.0)], baseline=1.0)
        b = PowerProfile([(0, 3, 4.0)], baseline=0.5)
        with pytest.raises(ValidationError):
            PowerProfile.concatenate([a, b])

    def test_concatenate_explicit_baseline_override(self):
        a = PowerProfile([(0, 5, 2.0)], baseline=1.0)
        b = PowerProfile([(0, 3, 4.0)], baseline=0.5)
        joined = PowerProfile.concatenate([a, b], baseline=0.75)
        assert joined.baseline == 0.75
        assert joined.segments == [(0, 5, 2.0), (5, 8, 4.0)]

    def test_concatenate_empty_list(self):
        joined = PowerProfile.concatenate([])
        assert joined.horizon == 0
        assert joined.baseline == 0.0

    def test_restrict_concat_roundtrip(self):
        p = PowerProfile([(0, 5, 2.0), (5, 10, 4.0), (10, 12, 1.0)])
        parts = [p.restricted(0, 5), p.restricted(5, 12)]
        assert PowerProfile.concatenate(parts).segments == p.segments

    def test_sampled(self):
        p = PowerProfile([(0, 2, 2.0), (2, 4, 4.0)])
        assert p.sampled() == [2.0, 2.0, 4.0, 4.0]
        assert p.sampled(step=2) == [2.0, 4.0]
