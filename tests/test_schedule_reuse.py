"""Differential + property tests for validity-range schedule reuse.

The engine's :class:`ScheduleStore` claims (paper Section 5.3) that a
schedule solved once covers every environment inside its
``[peak, inf) x (-inf, floor]`` rectangle.  These tests attack that
claim from four sides:

* **differential** — range-served sweep points must be *metric
  identical* (finish time, energy cost, utilization, peak) to a fresh
  pipeline solve of the same point, on the paper's Fig. 1 example and
  on randomized workloads alike;
* **oracle** — every schedule the store serves must pass the
  independent validators (:func:`check_power_valid`, full utilization)
  at the *query* environment, and its feasibility verdict must agree
  with the exhaustive :class:`OptimalScheduler` on small instances;
* **property-based** (hypothesis) — the validity-rectangle membership
  math itself: points inside always accepted, points just outside
  always rejected, and :meth:`ScheduleTable.select` refuses entries
  whose peak exceeds the budget;
* **parity** — a parallel run (worker snapshots + delta merge) must
  produce the same points and the same merged store as the serial run.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ConstraintGraph, SchedulingProblem
from repro.core.metrics import evaluate
from repro.core.profile import PowerProfile
from repro.core.validation import check_power_valid
from repro.engine import (BatchRunner, RunnerConfig, ScheduleStore,
                          SolveJob, StoredSchedule, problem_base_key)
from repro.errors import SerializationError
from repro.examples_data import fig1_options, fig1_problem
from repro.scheduling import (OptimalScheduler, ScheduleTable,
                              SchedulerOptions, TimingScheduler,
                              in_validity_range)
from repro.workloads import RandomWorkloadConfig, random_problem

TOL = PowerProfile.POWER_TOL


def grid_jobs(problem, budgets, levels, options=None):
    """One sweep_point job per (P_max, P_min) grid point."""
    return [SolveJob(problem=problem.with_power_constraints(pm, pn),
                     options=options)
            for pm in budgets for pn in levels]


def environment_grid(problem, options=None):
    """A (budgets, levels) grid straddling the timing rectangle.

    Built from the instance's own timing-stage peak/floor so every
    workload — whatever its scale — gets points inside the certified
    rectangle (guaranteed range hits) and points outside it (guaranteed
    fresh solves).
    """
    timing = TimingScheduler(options or SchedulerOptions()) \
        .solve(problem)
    peak = timing.profile.peak()
    floor = timing.profile.floor()
    budgets = sorted({round(peak * f, 2)
                      for f in (0.85, 1.0, 1.25, 2.0)})
    levels = sorted({0.0, round(floor * 0.5, 2), round(floor, 2),
                     round(floor + 2.0, 2)})
    return budgets, levels


def assert_points_identical(reused, fresh):
    """Bit-for-bit comparison of two sweep point lists."""
    assert len(reused) == len(fresh)
    for a, b in zip(reused, fresh):
        assert a.p_max == b.p_max and a.p_min == b.p_min
        assert a.feasible == b.feasible
        assert a.finish_time == b.finish_time
        assert a.energy_cost == b.energy_cost
        assert a.utilization == b.utilization
        assert a.peak_power == b.peak_power


# ----------------------------------------------------------------------
# store unit behaviour
# ----------------------------------------------------------------------

class TestScheduleStore:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            ScheduleStore(policy="optimistic")
        with pytest.raises(ValueError):
            RunnerConfig(reuse_policy="optimistic")

    def test_probe_is_counter_pure(self):
        store = ScheduleStore()
        problem = fig1_problem()
        key = store.ensure_primed(problem, fig1_options())
        before = store.counters()
        assert store.probe(key, 25.0, 0.0) is not None
        assert store.probe(key, 1.0, 99.0) is None
        after = store.counters()
        assert after == before  # probes never move counters

    def test_priming_is_idempotent(self):
        store = ScheduleStore()
        problem = fig1_problem()
        k1 = store.ensure_primed(problem, fig1_options())
        entries_after_first = len(store)
        k2 = store.ensure_primed(problem, fig1_options())
        assert k1 == k2
        assert len(store) == entries_after_first
        assert store.primes == 1

    def test_insert_dedupes_identical_starts(self):
        store = ScheduleStore()
        entry = StoredSchedule(label="x", stage="timing",
                               starts=(("a", 0), ("b", 5)),
                               makespan=10, peak=5.0, floor=2.0)
        clone = StoredSchedule(label="other-label", stage="min_power",
                               starts=(("a", 0), ("b", 5)),
                               makespan=10, peak=5.0, floor=2.0)
        assert store.insert("k", entry)
        assert not store.insert("k", clone)
        assert len(store) == 1
        assert store.counters()["deduped"] == 1

    def test_json_round_trip(self, tmp_path):
        store = ScheduleStore(policy="valid")
        problem = fig1_problem()
        store.ensure_primed(problem, fig1_options())
        path = str(tmp_path / "store.json")
        store.write(path)
        loaded = ScheduleStore.read(path)
        assert loaded.policy == "valid"
        assert len(loaded) == len(store)
        key = problem_base_key(problem, fig1_options(),
                               kind="sweep_point")
        original = store.probe(key, 25.0, 0.0)
        restored = loaded.probe(key, 25.0, 0.0)
        assert restored is not None
        assert restored.starts == original.starts
        assert restored.peak == original.peak
        assert restored.floor == original.floor

    def test_read_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "repro-trace", "version": 2}')
        with pytest.raises(SerializationError):
            ScheduleStore.read(str(path))
        path.write_text('{"format": "repro-schedule-store", '
                        '"version": 99}')
        with pytest.raises(SerializationError):
            ScheduleStore.read(str(path))

    def test_snapshot_is_isolated(self):
        parent = ScheduleStore()
        problem = fig1_problem()
        key = parent.ensure_primed(problem, fig1_options())
        snap = parent.snapshot()
        extra = StoredSchedule(label="w", stage="min_power",
                               starts=(("z", 0),), makespan=1,
                               peak=1.0, floor=0.5)
        snap.insert(key, extra)
        assert len(snap) == len(parent) + 1  # parent untouched
        # ...and the delta journal carries exactly the new entry
        delta = snap.drain_journal()
        assert [d["entry"]["label"] for d in delta] == ["w"]
        merged = parent.merge_delta(delta)
        assert merged == 1
        assert parent.merge_delta(delta) == 0  # second merge dedupes

    def test_identical_policy_serves_only_certified_entries(self):
        store = ScheduleStore(policy="identical")
        final = StoredSchedule(label="f", stage="min_power",
                               starts=(("a", 0),), makespan=5,
                               peak=4.0, floor=3.0)
        store.insert("k", final)
        assert store.probe("k", 10.0, 0.0) is None
        wide = ScheduleStore(policy="valid")
        wide.insert("k", final)
        assert wide.probe("k", 10.0, 0.0) is final

    def test_valid_policy_prefers_fastest_covering_entry(self):
        store = ScheduleStore(policy="valid")
        slow = StoredSchedule(label="slow", stage="min_power",
                              starts=(("a", 0),), makespan=20,
                              peak=4.0, floor=3.0)
        fast = StoredSchedule(label="fast", stage="timing",
                              starts=(("a", 1),), makespan=10,
                              peak=6.0, floor=3.0)
        store.insert("k", slow)
        store.insert("k", fast)
        assert store.probe("k", 10.0, 0.0).label == "fast"
        # budget below the fast entry's peak: only the slow one covers
        assert store.probe("k", 5.0, 0.0).label == "slow"


# ----------------------------------------------------------------------
# differential: range-served == fresh solve, bit for bit
# ----------------------------------------------------------------------

class TestDifferentialIdentical:
    def test_fig1_grid_bit_for_bit(self):
        """The acceptance grid: 10x10 over the Fig. 1 example."""
        problem = fig1_problem()
        options = fig1_options()
        budgets = [14.0 + i for i in range(10)]   # 14..23 (peak 19.5)
        levels = [5.0 + i for i in range(10)]     # 5..14  (floor 7.5)
        jobs = grid_jobs(problem, budgets, levels, options)

        fresh_runner = BatchRunner(RunnerConfig())
        fresh = fresh_runner.run_values(jobs)

        reuse_runner = BatchRunner(RunnerConfig(reuse_schedules=True))
        reused = reuse_runner.run_values(jobs)

        assert_points_identical(reused, fresh)
        trace = reuse_runner.last_trace
        assert trace.reuse is not None
        assert trace.reuse["range_hits"] > 0
        # strictly fewer solves than points swept
        assert trace.reuse["solved"] < len(jobs)
        assert trace.reuse["range_hits"] + trace.reuse["solved"] \
            == len(jobs)
        # per-job flags agree with the aggregate
        assert sum(job.reused for job in trace.jobs) \
            == trace.reuse["range_hits"]

    @pytest.mark.parametrize("seed", [7, 21, 42, 1337])
    def test_random_workloads_bit_for_bit(self, seed):
        config = RandomWorkloadConfig(tasks=10, resources=3, layers=3)
        problem = random_problem(seed, config)
        options = SchedulerOptions(seed=seed)
        budgets, levels = environment_grid(problem, options)
        jobs = grid_jobs(problem, budgets, levels, options)

        fresh = BatchRunner(RunnerConfig()).run_values(jobs)
        reuse_runner = BatchRunner(RunnerConfig(reuse_schedules=True))
        reused = reuse_runner.run_values(jobs)

        assert_points_identical(reused, fresh)
        assert reuse_runner.last_trace.reuse["range_hits"] > 0

    def test_warm_store_across_runs(self):
        """A store written by one run serves the next run's points."""
        problem = fig1_problem()
        options = fig1_options()
        jobs = grid_jobs(problem, [20.0, 22.0], [5.0, 7.0], options)
        first = BatchRunner(RunnerConfig(reuse_schedules=True))
        first.run(jobs)
        warm = ScheduleStore.from_dict(first.store.to_dict())
        second = BatchRunner(RunnerConfig(reuse_schedules=True),
                             store=warm)
        fresh = BatchRunner(RunnerConfig()).run_values(jobs)
        assert_points_identical(second.run_values(jobs), fresh)
        # every point inside the certified rectangle: zero new solves
        assert second.last_trace.reuse["range_hits"] == len(jobs)


# ----------------------------------------------------------------------
# oracle cross-checks
# ----------------------------------------------------------------------

class TestOracle:
    def test_served_schedules_pass_independent_validators(self):
        """Whatever the store serves must satisfy the real constraint
        checkers at the *query* environment, under both policies."""
        problem = fig1_problem()
        options = fig1_options()
        for policy in ("identical", "valid"):
            store = ScheduleStore(policy=policy)
            key = store.ensure_primed(problem, options)
            # seed the store with a tighter-environment solve as well
            from repro.scheduling import PowerAwareScheduler
            result = PowerAwareScheduler(options).solve(problem)
            store.record_result(key, problem, result)
            for p_max in (14.0, 16.0, 19.5, 25.0):
                for p_min in (0.0, 7.5, 14.0):
                    entry = store.probe(key, p_max, p_min)
                    if entry is None:
                        continue
                    schedule = entry.rebuild(problem)
                    report = check_power_valid(
                        schedule, p_max, baseline=problem.baseline)
                    assert report.ok, report.failures
                    metrics = evaluate(schedule, p_max, p_min,
                                       baseline=problem.baseline)
                    assert metrics.utilization \
                        == pytest.approx(1.0)
                    assert metrics.peak_power <= p_max + TOL

    def test_feasibility_agrees_with_exhaustive_oracle(self):
        """On a tiny instance, every environment the store serves must
        be feasible per branch-and-bound — and the served finish time
        can never beat the oracle's optimum."""
        g = ConstraintGraph("oracle-tiny")
        g.new_task("a", duration=2, power=4.0, resource="A")
        g.new_task("b", duration=3, power=3.0, resource="B")
        g.new_task("c", duration=2, power=5.0, resource="A")
        g.add_precedence("a", "c")
        problem = SchedulingProblem(g, p_max=9.0, p_min=0.0,
                                    baseline=0.0)
        options = SchedulerOptions(seed=3)
        store = ScheduleStore()
        key = store.ensure_primed(problem, options)
        for p_max in (7.0, 8.0, 9.0, 12.0):
            entry = store.probe(key, p_max, 0.0)
            if entry is None:
                continue
            oracle = OptimalScheduler(objective="makespan").solve(
                problem.with_power_constraints(p_max, 0.0))
            assert oracle.schedule.makespan <= entry.makespan
            assert check_power_valid(
                entry.rebuild(problem), p_max,
                baseline=problem.baseline).ok


# ----------------------------------------------------------------------
# hypothesis: the validity-rectangle math itself
# ----------------------------------------------------------------------

finite = dict(allow_nan=False, allow_infinity=False)


class TestValidityRangeProperties:
    @given(peak=st.floats(min_value=0.0, max_value=1e3, **finite),
           margin=st.floats(min_value=0.0, max_value=1e3, **finite),
           dip=st.floats(min_value=0.0, max_value=1e3, **finite))
    @settings(max_examples=200, deadline=None)
    def test_inside_rectangle_always_accepted(self, peak, margin, dip):
        floor = peak  # any floor works; keep the state space small
        assert in_validity_range(peak, floor, peak + margin,
                                 floor - dip)

    @given(peak=st.floats(min_value=1.0, max_value=1e3, **finite),
           floor=st.floats(min_value=0.0, max_value=1e3, **finite),
           delta=st.floats(min_value=1e-6, max_value=1e3, **finite))
    @settings(max_examples=200, deadline=None)
    def test_outside_rectangle_always_rejected(self, peak, floor,
                                               delta):
        eps = max(delta, peak * 1e-9 * 4, floor * 1e-9 * 4)
        assert not in_validity_range(peak, floor, peak - eps, floor)
        assert not in_validity_range(peak, floor, peak + 1.0,
                                     floor + eps)

    @given(peak=st.floats(min_value=0.5, max_value=100.0, **finite),
           floor=st.floats(min_value=0.0, max_value=100.0, **finite),
           p_max=st.floats(min_value=0.0, max_value=200.0, **finite),
           p_min=st.floats(min_value=0.0, max_value=200.0, **finite))
    @settings(max_examples=300, deadline=None)
    def test_stored_schedule_covers_matches_module_predicate(
            self, peak, floor, p_max, p_min):
        entry = StoredSchedule(label="h", stage="timing",
                               starts=(("a", 0),), makespan=1,
                               peak=peak, floor=floor)
        assert entry.covers(p_max, p_min) \
            == in_validity_range(peak, floor, p_max, p_min)
        assert entry.min_p_max == peak
        assert entry.max_full_p_min == floor

    @given(budget_gap=st.floats(min_value=0.01, max_value=50.0,
                                **finite))
    @settings(max_examples=50, deadline=None)
    def test_table_select_rejects_budget_below_peak(self, budget_gap):
        """ScheduleTable.select must return None for any budget
        strictly below every entry's peak."""
        g = ConstraintGraph("select-reject")
        g.new_task("a", duration=3, power=6.0)
        problem = SchedulingProblem(g, p_max=10.0, p_min=0.0)
        from repro.core.schedule import Schedule
        table = ScheduleTable()
        entry = table.add("only", Schedule(problem.graph, {"a": 0}))
        below = entry.min_p_max - budget_gap
        if below + TOL >= entry.min_p_max:
            return  # gap swallowed by tolerance; nothing to assert
        assert table.select(below, 0.0) is None
        assert table.select(entry.min_p_max, 0.0) is entry


# ----------------------------------------------------------------------
# serial vs parallel parity
# ----------------------------------------------------------------------

class TestSerialParallelParity:
    def test_same_points_and_merged_store(self):
        problem = fig1_problem()
        options = fig1_options()
        budgets = [14.0, 16.0, 20.0, 22.0]
        levels = [5.0, 7.0, 10.0, 14.0]
        jobs = grid_jobs(problem, budgets, levels, options)

        serial = BatchRunner(RunnerConfig(workers=0,
                                          reuse_schedules=True))
        serial_points = serial.run_values(jobs)

        parallel = BatchRunner(RunnerConfig(workers=2, chunksize=2,
                                            reuse_schedules=True))
        parallel_points = parallel.run_values(jobs)

        assert_points_identical(parallel_points, serial_points)
        # a pool that could not be created degrades to the serial loop,
        # which still must produce the same merged store
        assert parallel.last_mode in ("process", "serial-fallback")

        # merged stores agree: same base keys, same entry start-maps
        s_doc = serial.store.to_dict()["problems"]
        p_doc = parallel.store.to_dict()["problems"]
        assert set(s_doc) == set(p_doc)
        for base_key in s_doc:
            s_starts = {tuple(sorted(e["starts"].items()))
                        for e in s_doc[base_key]["entries"]}
            p_starts = {tuple(sorted(e["starts"].items()))
                        for e in p_doc[base_key]["entries"]}
            assert s_starts == p_starts
            # and no duplicate entries survived the merge
            assert len(p_starts) == len(p_doc[base_key]["entries"])

        assert serial.last_trace.reuse["range_hits"] \
            == parallel.last_trace.reuse["range_hits"]


# ----------------------------------------------------------------------
# the "valid" policy: paper semantics, weaker guarantee
# ----------------------------------------------------------------------

class TestValidPolicy:
    def test_served_points_are_valid_but_maybe_slower(self):
        """Under policy='valid' every served point is power-valid with
        full utilization; finish time may exceed the fresh solve's but
        never beats it (a served schedule is one the pipeline already
        found)."""
        problem = fig1_problem()
        options = fig1_options()
        budgets = [14.0, 16.0, 20.0, 25.0]
        levels = [5.0, 10.0, 14.0]
        jobs = grid_jobs(problem, budgets, levels, options)
        fresh = BatchRunner(RunnerConfig()).run_values(jobs)
        runner = BatchRunner(RunnerConfig(reuse_schedules=True,
                                          reuse_policy="valid"))
        served = runner.run_values(jobs)
        for a, b in zip(served, fresh):
            assert a.feasible == b.feasible
            if not a.feasible:
                continue
            assert a.peak_power <= a.p_max + TOL
            assert a.utilization == pytest.approx(1.0)
            assert a.finish_time >= b.finish_time
        assert runner.last_trace.reuse["policy"] == "valid"
