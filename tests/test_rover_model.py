"""Tests for the Mars rover model (Tables 1-2, Fig. 8 reconstruction).

The reconstruction's acceptance test is Table 3's JPL column: the
hand-crafted serial schedule derived purely from Tables 1-2 must
reproduce the paper's numbers *exactly* (75 s; 0 / 55 / 388 J;
60 / 91 / 100 %).
"""

import pytest

from repro import check_power_valid
from repro.errors import ReproError
from repro.mission import (BATTERY_MAX_POWER, POWER_TABLE, MarsRover,
                           SolarCase)


@pytest.fixture(scope="module")
def rover() -> MarsRover:
    return MarsRover.standard()


class TestPowerTable:
    def test_table2_values(self):
        best = POWER_TABLE[SolarCase.BEST]
        assert (best.solar, best.cpu, best.heating, best.driving,
                best.steering, best.hazard) \
            == (14.9, 2.5, 7.6, 7.5, 4.3, 5.1)
        worst = POWER_TABLE[SolarCase.WORST]
        assert worst.driving == 13.8
        assert BATTERY_MAX_POWER == 10.0


class TestGraphStructure:
    def test_task_census(self, rover):
        graph = rover.iteration_graph(SolarCase.TYPICAL)
        kinds = {}
        for task in graph.tasks():
            kinds.setdefault(task.meta.get("kind"), []).append(task)
        assert len(kinds["hazard"]) == 2
        assert len(kinds["steer"]) == 2
        assert len(kinds["drive"]) == 2
        assert len(kinds["heat"]) == 5  # 2 steering + 3 wheel heaters

    def test_five_heater_resources(self, rover):
        graph = rover.iteration_graph(SolarCase.TYPICAL)
        heaters = [r for r in graph.resources.names
                   if r.startswith("heater")]
        assert len(heaters) == 5

    def test_durations_match_table1(self, rover):
        graph = rover.iteration_graph(SolarCase.TYPICAL)
        by_kind = {t.meta.get("kind"): t for t in graph.tasks()}
        assert by_kind["hazard"].duration == 10
        assert by_kind["steer"].duration == 5
        assert by_kind["drive"].duration == 10
        assert by_kind["heat"].duration == 5

    def test_heating_window_constraints(self, rover):
        graph = rover.iteration_graph(SolarCase.TYPICAL)
        # every heat task has a [5, 50] window to each task it warms
        assert graph.separation("heat_s1", "steer_1") == 5
        assert graph.separation("steer_1", "heat_s1") == -50
        assert graph.separation("heat_w3", "drive_2") == 5
        assert graph.separation("drive_2", "heat_w3") == -50

    def test_step_chain_constraints(self, rover):
        graph = rover.iteration_graph(SolarCase.TYPICAL)
        assert graph.separation("hazard_1", "steer_1") == 10
        assert graph.separation("steer_1", "drive_1") == 5
        assert graph.separation("drive_1", "hazard_2") == 10

    def test_three_steps_per_heating_rejected(self):
        with pytest.raises(ReproError):
            MarsRover(steps_per_iteration=3)

    def test_problem_constraints_follow_case(self, rover):
        for case in SolarCase:
            problem = rover.problem(case)
            powers = POWER_TABLE[case]
            assert problem.p_max == pytest.approx(powers.solar + 10.0)
            assert problem.p_min == pytest.approx(powers.solar)
            assert problem.baseline == pytest.approx(powers.cpu)


class TestJplBaseline:
    @pytest.mark.parametrize("case,cost,util", [
        (SolarCase.BEST, 0.0, 60.2),
        (SolarCase.TYPICAL, 55.0, 90.8),
        (SolarCase.WORST, 388.0, 100.0),
    ])
    def test_table3_jpl_column_exact(self, rover, case, cost, util):
        result = rover.jpl_result(case)
        assert result.finish_time == 75
        assert result.energy_cost == pytest.approx(cost, abs=1e-6)
        assert 100 * result.utilization == pytest.approx(util, abs=0.05)

    def test_same_start_times_in_every_case(self, rover):
        starts = [rover.jpl_result(case).schedule.as_dict()
                  for case in SolarCase]
        assert starts[0] == starts[1] == starts[2]

    def test_jpl_schedule_is_valid(self, rover):
        for case in SolarCase:
            result = rover.jpl_result(case)
            problem = rover.problem(case)
            assert check_power_valid(result.schedule, problem.p_max,
                                     baseline=problem.baseline).ok


class TestUnrolled:
    def test_unrolled_graph_has_cross_iteration_chain(self, rover):
        graph = rover.unrolled_graph(SolarCase.BEST, iterations=2)
        assert graph.separation("i1_drive_2", "i2_hazard_1") == 10

    def test_prewarm_replaces_second_iteration_steer_heats(self, rover):
        graph = rover.unrolled_graph(SolarCase.BEST, iterations=2,
                                     prewarm=True)
        names = graph.task_names()
        assert "i1_prewarm_s1" in names
        assert "i2_heat_s1" not in names
        assert "i2_heat_w1" in names  # wheel heats stay

    def test_no_prewarm_keeps_all_heats(self, rover):
        graph = rover.unrolled_graph(SolarCase.BEST, iterations=2,
                                     prewarm=False)
        names = graph.task_names()
        assert "i2_heat_s1" in names
        assert "i1_prewarm_s1" not in names

    def test_prewarm_window_targets_next_iteration(self, rover):
        graph = rover.unrolled_graph(SolarCase.BEST, iterations=2,
                                     prewarm=True)
        assert graph.separation("i1_prewarm_s1", "i2_steer_1") == 5
        assert graph.separation("i2_steer_1", "i1_prewarm_s1") == -50

    def test_iteration_boundary_requires_unrolled(self, rover):
        result = rover.power_aware_result(SolarCase.TYPICAL)
        with pytest.raises(ReproError):
            rover.iteration_boundary(result)
