"""Smoke tests: the fast example scripts must run end to end.

The slower case-study examples (mars_rover.py, mission_scenario.py,
design_space_exploration.py) exercise the same code paths as the
benchmark suite and are validated there; here we keep the quick ones
green so the README's first contact never breaks.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir,
                        "examples")

FAST_EXAMPLES = ("quickstart.py", "custom_workload_dsl.py",
                 "uncertainty_and_phases.py", "runtime_execution.py",
                 "solar_uav.py", "thermal_synthesis.py")


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    path = os.path.join(EXAMPLES, script)
    proc = subprocess.run([sys.executable, path], capture_output=True,
                          text=True, timeout=240)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip(), "example should print something"


def test_quickstart_reports_core_quantities():
    path = os.path.join(EXAMPLES, "quickstart.py")
    proc = subprocess.run([sys.executable, path], capture_output=True,
                          text=True, timeout=240)
    for needle in ("finish time", "energy cost", "utilization",
                   "power view"):
        assert needle in proc.stdout


def test_all_documented_examples_exist():
    present = {name for name in os.listdir(EXAMPLES)
               if name.endswith(".py")}
    expected = {"quickstart.py", "mars_rover.py", "mission_scenario.py",
                "design_space_exploration.py", "custom_workload_dsl.py",
                "uncertainty_and_phases.py", "runtime_execution.py",
                "solar_uav.py", "thermal_synthesis.py"}
    assert expected <= present
