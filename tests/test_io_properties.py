"""Property-based tests for the persistence layer.

Contracts: (1) problem -> dict -> problem is a fixpoint (the second
dict equals the first); (2) the DSL parser never crashes with anything
but :class:`SerializationError` on malformed text; (3) a problem
rendered *to* DSL and parsed back round-trips (we generate the DSL from
the problem, so this also pins the documented syntax).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SchedulingProblem, SerializationError
from repro.io import parse_problem, problem_from_dict, problem_to_dict
from tests.test_properties import precedence_problems

# ----------------------------------------------------------------------
# JSON fixpoint
# ----------------------------------------------------------------------


class TestJsonFixpoint:
    @given(precedence_problems())
    @settings(max_examples=40, deadline=None)
    def test_dict_round_trip_is_fixpoint(self, problem):
        first = problem_to_dict(problem)
        rebuilt = problem_from_dict(first)
        second = problem_to_dict(rebuilt)
        assert first == second

    @given(precedence_problems())
    @settings(max_examples=20, deadline=None)
    def test_rebuilt_problem_is_equivalent(self, problem):
        rebuilt = problem_from_dict(problem_to_dict(problem))
        assert rebuilt.p_max == problem.p_max
        assert rebuilt.graph.task_names() == problem.graph.task_names()
        for task in problem.graph.tasks():
            clone = rebuilt.graph.task(task.name)
            assert (clone.duration, clone.power, clone.resource) \
                == (task.duration, task.power, task.resource)


# ----------------------------------------------------------------------
# DSL robustness and round-trip
# ----------------------------------------------------------------------

def problem_to_dsl(problem: SchedulingProblem) -> str:
    """Render a (precedence-style) problem in the documented DSL."""
    lines = [f"problem {problem.name or 'p'} pmax {problem.p_max} "
             f"pmin {problem.p_min} baseline {problem.baseline}"]
    for task in problem.graph.tasks():
        resource = task.resource or "none"
        lines.append(f"task {task.name} {resource} {task.duration} "
                     f"{task.power}")
    for edge in problem.graph.edges():
        if edge.weight >= 0:
            lines.append(f"min {edge.src} {edge.dst} {edge.weight}")
        else:
            lines.append(f"max {edge.dst} {edge.src} {-edge.weight}")
    return "\n".join(lines)


class TestDslRoundTrip:
    @given(precedence_problems())
    @settings(max_examples=30, deadline=None)
    def test_render_parse_round_trip(self, problem):
        text = problem_to_dsl(problem)
        parsed = parse_problem(text)
        assert parsed.p_max == pytest.approx(problem.p_max)
        assert parsed.graph.task_names() == problem.graph.task_names()
        assert sorted((e.src, e.dst, e.weight)
                      for e in parsed.graph.edges()) \
            == sorted((e.src, e.dst, e.weight)
                      for e in problem.graph.edges())


junk_lines = st.lists(
    st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            max_size=40),
    max_size=8)


class TestDslRobustness:
    @given(junk_lines)
    @settings(max_examples=80, deadline=None)
    def test_garbage_never_crashes(self, lines):
        """Arbitrary printable garbage either parses or raises the
        library's own SerializationError — never anything else."""
        text = "\n".join(lines)
        try:
            parse_problem(text)
        except SerializationError:
            pass

    @given(st.integers(min_value=0, max_value=6), junk_lines)
    @settings(max_examples=60, deadline=None)
    def test_garbage_after_valid_header(self, n_tasks, lines):
        head = ["problem fuzz pmax 50"]
        head += [f"task t{i} R{i % 2} {i + 1} 1.0"
                 for i in range(n_tasks)]
        text = "\n".join(head + lines)
        try:
            parse_problem(text)
        except SerializationError:
            pass
