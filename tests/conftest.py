"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import ConstraintGraph, SchedulerOptions, SchedulingProblem


@pytest.fixture
def small_graph() -> ConstraintGraph:
    """Four tasks on three resources with a window and a precedence.

    Layout (ASAP): a[0,5) on A, c[5,10) on A, b[5,15) on B, d[0,8) on C.
    """
    g = ConstraintGraph("small")
    g.new_task("a", duration=5, power=8.0, resource="A")
    g.new_task("b", duration=10, power=6.0, resource="B")
    g.new_task("c", duration=5, power=7.0, resource="A")
    g.new_task("d", duration=8, power=5.0, resource="C")
    g.add_precedence("a", "b")
    g.add_max_separation("a", "b", 20)
    g.add_min_separation("a", "c", 2)
    return g


@pytest.fixture
def small_problem(small_graph) -> SchedulingProblem:
    return SchedulingProblem(small_graph, p_max=14.0, p_min=10.0,
                             baseline=1.0)


@pytest.fixture
def fast_options() -> SchedulerOptions:
    """Options trimmed for test speed (single restart, fewer scans)."""
    return SchedulerOptions(max_power_restarts=1, min_power_scans=2,
                            max_spike_attempts=500, seed=7)
