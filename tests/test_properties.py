"""Property-based tests (hypothesis) for the core invariants.

These pin down the algebraic contracts the schedulers rely on:

* profile construction conserves energy and splits it exactly at any
  level;
* slack is exactly the largest safe single-task delay;
* graph checkpoint/rollback is a perfect inverse for any mutation
  sequence;
* the pipeline's outputs are always valid and never violate the stage
  ordering guarantees, for arbitrary generated instances.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (ConstraintGraph, PowerProfile, Schedule,
                   SchedulerOptions, SchedulingFailure,
                   SchedulingProblem, check_power_valid,
                   check_time_valid, slack, UNBOUNDED_SLACK)
from repro.core.metrics import min_power_utilization
from repro.power import split_energy
from repro.scheduling import PowerAwareScheduler

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

task_specs = st.lists(
    st.tuples(st.integers(min_value=1, max_value=8),      # duration
              st.floats(min_value=0.0, max_value=9.0,
                        allow_nan=False, width=16),       # power
              st.integers(min_value=0, max_value=2)),     # resource id
    min_size=1, max_size=6)

starts_for = st.integers(min_value=0, max_value=30)


def build_graph(specs) -> ConstraintGraph:
    g = ConstraintGraph("prop")
    for i, (duration, power, res) in enumerate(specs):
        g.new_task(f"t{i}", duration=duration, power=round(power, 1),
                   resource=f"R{res}")
    return g


@st.composite
def scheduled_instances(draw):
    """A graph plus an arbitrary start assignment (no validity claim)."""
    specs = draw(task_specs)
    g = build_graph(specs)
    starts = {f"t{i}": draw(starts_for) for i in range(len(specs))}
    return g, Schedule(g, starts)


@st.composite
def precedence_problems(draw):
    """Feasible problems: forward-only precedence edges + headroom."""
    specs = draw(task_specs)
    g = build_graph(specs)
    names = g.task_names()
    for i in range(1, len(names)):
        if draw(st.booleans()):
            src = names[draw(st.integers(0, i - 1))]
            g.add_precedence(src, names[i])
    max_power = max(t.power for t in g.tasks())
    p_max = max_power + draw(
        st.floats(min_value=0.5, max_value=10.0, allow_nan=False))
    p_min = draw(st.floats(min_value=0.0, max_value=1.0,
                           allow_nan=False)) * p_max
    return SchedulingProblem(g, p_max=round(p_max, 1),
                             p_min=round(min(p_min, p_max), 1))


# ----------------------------------------------------------------------
# profile invariants
# ----------------------------------------------------------------------

class TestProfileProperties:
    @given(scheduled_instances())
    def test_energy_conservation(self, instance):
        """Profile energy == sum of task energies over the horizon."""
        graph, schedule = instance
        profile = PowerProfile.from_schedule(schedule)
        expected = sum(t.duration * t.power for t in graph.tasks())
        assert profile.energy() == pytest.approx(expected, abs=1e-6)

    @given(scheduled_instances(),
           st.floats(min_value=0.0, max_value=30.0, allow_nan=False))
    def test_energy_split_identity(self, instance, level):
        """above(level) + capped(level) == total, for every level."""
        _, schedule = instance
        profile = PowerProfile.from_schedule(schedule)
        assert profile.energy_above(level) \
            + profile.energy_capped(level) \
            == pytest.approx(profile.energy(), abs=1e-6)

    @given(scheduled_instances())
    def test_segments_partition_the_horizon(self, instance):
        _, schedule = instance
        profile = PowerProfile.from_schedule(schedule)
        prev_end = 0
        for t0, t1, _ in profile.segments:
            assert t0 == prev_end
            prev_end = t1
        assert prev_end == profile.horizon

    @given(scheduled_instances(),
           st.floats(min_value=0.1, max_value=30.0, allow_nan=False))
    def test_accounting_agrees_with_metrics(self, instance, level):
        """Two independent Ec/rho implementations must agree."""
        _, schedule = instance
        profile = PowerProfile.from_schedule(schedule)
        split = split_energy(profile, level)
        assert split.energy_cost == pytest.approx(
            profile.energy_above(level), abs=1e-6)
        if profile.horizon > 0:
            assert split.utilization == pytest.approx(
                min_power_utilization(profile, level), abs=1e-9)

    @given(scheduled_instances())
    def test_value_matches_schedule_power(self, instance):
        """P(t) equals the sum of active task powers at every t."""
        _, schedule = instance
        profile = PowerProfile.from_schedule(schedule)
        for t in range(profile.horizon):
            assert profile.value(t) == pytest.approx(
                schedule.power_at(t), abs=1e-9)


# ----------------------------------------------------------------------
# slack invariants
# ----------------------------------------------------------------------

class TestSlackProperties:
    @given(precedence_problems(), st.data())
    @settings(suppress_health_check=[HealthCheck.too_slow])
    def test_slack_is_exactly_the_safe_delay(self, problem, data):
        """Delaying by the slack keeps time-validity; one more unit
        (for bounded slack, with everything else fixed) breaks some
        separation constraint."""
        from repro.scheduling.timing import TimingScheduler, \
            asap_schedule
        graph = problem.fresh_graph()
        TimingScheduler().schedule_graph(graph)
        schedule = asap_schedule(graph)
        name = data.draw(st.sampled_from(graph.task_names()))
        room = slack(schedule, name)
        if room >= UNBOUNDED_SLACK:
            return
        moved = schedule.delayed(name, room)
        # separations hold (resource overlap may occur: slack is a
        # separation-level notion; serialization edges are separations
        # too, so overlap cannot actually occur for graph successors)
        assert check_time_valid(moved).ok
        broken = schedule.delayed(name, room + 1)
        report = check_time_valid(broken)
        assert any(v.kind == "separation" for v in report.violations)


# ----------------------------------------------------------------------
# graph rollback invariants
# ----------------------------------------------------------------------

mutations = st.lists(
    st.tuples(st.sampled_from(["add", "remove"]),
              st.integers(0, 3), st.integers(0, 3),
              st.integers(-10, 10)),
    min_size=0, max_size=12)


class TestIncrementalLongestPath:
    @given(mutations)
    def test_cached_solver_matches_fresh_solver(self, ops):
        """Interleave adds/removes/rollbacks with longest-path queries:
        the cached (incrementally-updated) result must always equal a
        from-scratch computation on a pristine copy."""
        from repro import PositiveCycleError, longest_paths

        g = ConstraintGraph("inc")
        for i in range(4):
            g.new_task(f"t{i}", duration=1)
        tokens = []
        for step, (op, a, b, w) in enumerate(ops):
            if a == b:
                continue
            src, dst = f"t{a}", f"t{b}"
            if op == "add":
                try:
                    g.add_edge(src, dst, w)
                except Exception:
                    continue
            elif tokens and step % 3 == 0:
                g.rollback(tokens.pop())
            else:
                tokens.append(g.checkpoint())
                g.remove_edge(src, dst)
            fresh = g.copy()  # pristine: no cache attached yet
            try:
                cached_dist = longest_paths(g).distance
                cached_ok = True
            except PositiveCycleError:
                cached_ok = False
            try:
                fresh_dist = longest_paths(fresh).distance
                fresh_ok = True
            except PositiveCycleError:
                fresh_ok = False
            assert cached_ok == fresh_ok
            if cached_ok:
                assert cached_dist == fresh_dist

    # interleaved add / tighten / checkpoint / rollback / remove — the
    # fuzz that would catch any future incremental-cache bug, asserted
    # directly against the reference Bellman-Ford implementation
    fuzz_ops = st.lists(
        st.tuples(st.sampled_from(["add", "tighten", "remove",
                                   "checkpoint", "rollback"]),
                  st.integers(0, 5), st.integers(0, 5),
                  st.integers(-12, 12)),
        min_size=1, max_size=40)

    @given(fuzz_ops)
    @settings(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_incremental_equals_reference_bellman_ford(self, ops):
        """After every mutation, ``longest_paths`` (cached/incremental)
        must agree with ``_full_longest_paths`` run on a pristine copy
        — distances and cycle verdicts alike.  Long add runs exercise
        the bounded add-log (trim forces full recomputes); tighten ops
        exercise the grow-only worklist on existing edges."""
        from repro import PositiveCycleError, longest_paths
        from repro.core.longest_path import _full_longest_paths

        g = ConstraintGraph("fuzz")
        for i in range(6):
            g.new_task(f"t{i}", duration=1 + i % 3)
        tokens = []
        for op, a, b, w in ops:
            if a == b:
                continue
            src, dst = f"t{a}", f"t{b}"
            if op == "add":
                g.add_edge(src, dst, w)
            elif op == "tighten":
                existing = g.separation(src, dst)
                if existing is None:
                    continue
                g.add_edge(src, dst, existing + abs(w) % 4 + 1)
            elif op == "remove":
                g.remove_edge(src, dst)
            elif op == "checkpoint":
                tokens.append(g.checkpoint())
                continue  # no mutation: nothing new to verify
            elif op == "rollback":
                if not tokens:
                    continue
                g.rollback(tokens.pop())

            fresh = g.copy()
            names = fresh.task_names(include_anchor=True)
            try:
                cached = longest_paths(g).distance
                cached_ok = True
            except PositiveCycleError:
                cached_ok = False
            try:
                reference = _full_longest_paths(fresh, names).distance
                reference_ok = True
            except PositiveCycleError:
                reference_ok = False
            assert cached_ok == reference_ok
            if cached_ok:
                assert cached == reference
            else:
                return  # graph is contradictory; later ops uninformative


class TestRollbackProperties:
    @given(mutations, mutations)
    def test_rollback_restores_exact_edge_set(self, before, after):
        g = ConstraintGraph("rb")
        for i in range(4):
            g.new_task(f"t{i}", duration=1)

        def apply(ops):
            for op, a, b, w in ops:
                if a == b:
                    continue
                src, dst = f"t{a}", f"t{b}"
                if op == "add":
                    try:
                        g.add_edge(src, dst, w)
                    except Exception:
                        pass
                else:
                    g.remove_edge(src, dst)

        apply(before)
        snapshot = sorted((e.src, e.dst, e.weight, e.tag)
                          for e in g.edges())
        token = g.checkpoint()
        apply(after)
        g.rollback(token)
        assert sorted((e.src, e.dst, e.weight, e.tag)
                      for e in g.edges()) == snapshot


# ----------------------------------------------------------------------
# pipeline invariants on arbitrary feasible instances
# ----------------------------------------------------------------------

class TestPipelineProperties:
    @given(precedence_problems())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_pipeline_output_always_valid(self, problem):
        options = SchedulerOptions(max_power_restarts=1,
                                   min_power_scans=1,
                                   max_spike_attempts=300, seed=1)
        try:
            pipe = PowerAwareScheduler(options).solve_pipeline(problem)
        except SchedulingFailure:
            return  # heuristic gave up: allowed, just not invalid
        report = check_power_valid(pipe.min_power.schedule,
                                   problem.p_max,
                                   baseline=problem.baseline)
        assert report.ok
        assert pipe.min_power.utilization \
            >= pipe.max_power.utilization - 1e-9
        assert pipe.min_power.finish_time <= pipe.max_power.finish_time
