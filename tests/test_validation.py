"""Unit tests for schedule validation."""

import pytest

from repro import (ConstraintGraph, Schedule, ValidationError,
                   assert_power_valid, assert_time_valid,
                   check_power_valid, check_time_valid)


@pytest.fixture
def graph() -> ConstraintGraph:
    g = ConstraintGraph()
    g.new_task("a", duration=5, power=6.0, resource="R")
    g.new_task("b", duration=5, power=6.0, resource="R")
    g.new_task("c", duration=5, power=6.0, resource="S")
    g.add_precedence("a", "b")
    g.add_max_separation("a", "b", 12)
    return g


class TestTimeValidity:
    def test_valid_schedule_passes(self, graph):
        s = Schedule(graph, {"a": 0, "b": 5, "c": 0})
        assert check_time_valid(s).ok
        assert_time_valid(s)  # should not raise

    def test_min_separation_violation(self, graph):
        s = Schedule(graph, {"a": 0, "b": 3, "c": 0})
        report = check_time_valid(s)
        assert not report.ok
        assert any(v.kind == "separation" for v in report.violations)

    def test_max_separation_violation(self, graph):
        s = Schedule(graph, {"a": 0, "b": 15, "c": 0})
        report = check_time_valid(s)
        assert any(v.kind == "separation" for v in report.violations)

    def test_resource_overlap_detected(self, graph):
        s = Schedule(graph, {"a": 0, "b": 7, "c": 0})
        # shrink the separation: a ends at 5, b at 7 is fine... force a
        # real overlap on S by moving c onto R via a fresh graph
        g = ConstraintGraph()
        g.new_task("x", duration=5, power=1.0, resource="R")
        g.new_task("y", duration=5, power=1.0, resource="R")
        bad = Schedule(g, {"x": 0, "y": 3})
        report = check_time_valid(bad)
        assert any(v.kind == "resource" for v in report.violations)

    def test_assert_raises_with_details(self, graph):
        s = Schedule(graph, {"a": 0, "b": 3, "c": 0})
        with pytest.raises(ValidationError, match="sigma"):
            assert_time_valid(s)


class TestPowerValidity:
    def test_power_valid(self, graph):
        s = Schedule(graph, {"a": 0, "b": 5, "c": 10})
        assert check_power_valid(s, p_max=7.0).ok

    def test_spike_reported(self, graph):
        s = Schedule(graph, {"a": 0, "b": 5, "c": 0})  # a + c = 12 W
        report = check_power_valid(s, p_max=7.0)
        assert any(v.kind == "spike" for v in report.violations)

    def test_baseline_counts_toward_spikes(self, graph):
        s = Schedule(graph, {"a": 0, "b": 5, "c": 10})
        report = check_power_valid(s, p_max=7.0, baseline=2.0)
        assert not report.ok

    def test_assert_power_valid(self, graph):
        s = Schedule(graph, {"a": 0, "b": 5, "c": 10})
        assert_power_valid(s, p_max=7.0)
        with pytest.raises(ValidationError):
            assert_power_valid(s, p_max=5.0)

    def test_report_collects_multiple_violations(self, graph):
        s = Schedule(graph, {"a": 0, "b": 3, "c": 0})
        report = check_power_valid(s, p_max=7.0)
        kinds = {v.kind for v in report.violations}
        assert "separation" in kinds and "spike" in kinds

    def test_report_bool_protocol(self, graph):
        s = Schedule(graph, {"a": 0, "b": 5, "c": 10})
        assert bool(check_time_valid(s)) is True
