"""Unit tests for schedule diffs."""

import pytest

from repro import ConstraintGraph, Schedule
from repro.analysis import diff_results, diff_schedules
from repro.errors import ReproError
from repro.examples_data import fig1_options, fig1_problem
from repro.scheduling import PowerAwareScheduler


@pytest.fixture
def graph() -> ConstraintGraph:
    g = ConstraintGraph("d")
    g.new_task("a", duration=5, power=4.0, resource="A")
    g.new_task("b", duration=5, power=4.0, resource="B")
    return g


class TestDiffSchedules:
    def test_identical_schedules(self, graph):
        s = Schedule(graph, {"a": 0, "b": 0})
        diff = diff_schedules(s, s, p_max=10.0, p_min=4.0)
        assert diff.unchanged
        assert diff.summary() == "schedules are identical"

    def test_moves_and_deltas(self, graph):
        before = Schedule(graph, {"a": 0, "b": 0})
        after = Schedule(graph, {"a": 0, "b": 5})
        diff = diff_schedules(before, after, p_max=10.0, p_min=4.0)
        assert diff.moved_tasks == ["b"]
        assert diff.moves[0].delta == 5
        assert diff.metric_delta("tau_s") == 5
        # serializing under P_min=4 removes the above-free-level draw
        assert diff.metric_delta("energy_cost_J") == pytest.approx(-20.0)

    def test_mismatched_task_sets_rejected(self, graph):
        other = ConstraintGraph("o")
        other.new_task("x", duration=1)
        with pytest.raises(ReproError):
            diff_schedules(Schedule(graph, {"a": 0, "b": 0}),
                           Schedule(other, {"x": 0}),
                           p_max=10.0, p_min=0.0)

    def test_rows_render(self, graph):
        before = Schedule(graph, {"a": 0, "b": 0})
        after = Schedule(graph, {"a": 2, "b": 7})
        diff = diff_schedules(before, after, p_max=10.0, p_min=0.0)
        rows = diff.rows()
        assert rows[0]["delta_s"] == "+2"
        assert rows[1]["delta_s"] == "+7"


class TestDiffResults:
    def test_fig2_to_fig5_names_h_and_f(self):
        pipeline = PowerAwareScheduler(fig1_options()).solve_pipeline(
            fig1_problem())
        diff = diff_results(pipeline.timing, pipeline.max_power)
        assert diff.moved_tasks == ["f", "h"]
        assert diff.metric_delta("tau_s") == 0
        assert diff.metric_delta("energy_cost_J") < 0

    def test_fig5_to_fig7_improves_utilization(self):
        pipeline = PowerAwareScheduler(fig1_options()).solve_pipeline(
            fig1_problem())
        diff = diff_results(pipeline.max_power, pipeline.min_power)
        assert diff.metric_delta("utilization_pct") > 0
        assert "moved" in diff.summary()
