"""Unit tests for the batch exploration engine (repro.engine)."""

import json

import pytest

from repro import ConstraintGraph, SchedulerOptions, SchedulingProblem
from repro.analysis import monte_carlo_robustness, sweep_grid, sweep_p_max
from repro.engine import (BatchRunner, ResultCache, RunnerConfig,
                          SolveJob, derive_seed, problem_key,
                          register_kind, run_job, solve_problems)


def tiny_problem(p_max: float = 14.0, p_min: float = 10.0) \
        -> SchedulingProblem:
    g = ConstraintGraph("tiny")
    g.new_task("a", duration=5, power=8.0, resource="A")
    g.new_task("b", duration=10, power=6.0, resource="B")
    g.new_task("c", duration=5, power=7.0, resource="A")
    g.add_precedence("a", "b")
    g.add_min_separation("a", "c", 2)
    return SchedulingProblem(g, p_max=p_max, p_min=p_min, baseline=1.0)


# ----------------------------------------------------------------------
# canonical hashing
# ----------------------------------------------------------------------

class TestProblemKey:
    def test_stable_across_equivalent_graphs(self):
        """Edge insertion order must not affect the key."""
        def build(order_flipped: bool) -> SchedulingProblem:
            g = ConstraintGraph("same")
            g.new_task("a", duration=5, power=2.0)
            g.new_task("b", duration=5, power=2.0)
            edges = [("a", "b", 5), ("b", "a", -20)]
            if order_flipped:
                edges.reverse()
            for src, dst, w in edges:
                g.add_edge(src, dst, w)
            return SchedulingProblem(g, p_max=10.0)

        assert problem_key(build(False)) == problem_key(build(True))

    def test_sensitive_to_constraints_and_options(self):
        base = tiny_problem()
        assert problem_key(base) != \
            problem_key(base.with_power_constraints(15.0, 10.0))
        assert problem_key(base, SchedulerOptions(seed=1)) != \
            problem_key(base, SchedulerOptions(seed=2))
        assert problem_key(base, kind="sweep_point") != \
            problem_key(base, kind="other")

    def test_derive_seed_is_stable_and_spread(self):
        seeds = [derive_seed(2001, i) for i in range(50)]
        assert seeds == [derive_seed(2001, i) for i in range(50)]
        assert len(set(seeds)) == 50


# ----------------------------------------------------------------------
# result cache
# ----------------------------------------------------------------------

class TestResultCache:
    def test_hit_miss_accounting(self):
        cache = ResultCache()
        hit, _ = cache.lookup("k")
        assert not hit
        cache.put("k", 42)
        hit, value = cache.lookup("k")
        assert hit and value == 42
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1,
                                 "evictions": 0}

    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.lookup("a")          # refresh a; b is now oldest
        cache.put("c", 3)
        assert cache.contains("a") and cache.contains("c")
        assert not cache.contains("b")

    def test_eviction_counter_past_capacity(self):
        cache = ResultCache(max_entries=3)
        for i in range(10):
            cache.put(f"k{i}", i)
        stats = cache.stats()
        assert stats["evictions"] == 7
        assert stats["entries"] == 3
        # only the three newest keys survive
        assert all(cache.contains(f"k{i}") for i in (7, 8, 9))
        assert not any(cache.contains(f"k{i}") for i in range(7))

    def test_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)

    def test_peek_does_not_perturb_accounting(self):
        """Regression: classification probes must not count as misses.

        ``lookup`` charges a miss the moment it is called, but the
        runner probes the cache *before* deciding whether a job will be
        solved at all (it may be served by the schedule store instead).
        ``peek`` answers that question without moving any counter or
        the LRU order."""
        cache = ResultCache(max_entries=2)
        hit, value = cache.peek("absent")
        assert not hit and value is None
        cache.put("a", 1)
        cache.put("b", 2)
        hit, value = cache.peek("a")
        assert hit and value == 1
        assert cache.stats() == {"hits": 0, "misses": 0, "entries": 2,
                                 "evictions": 0}
        # peek("a") did NOT refresh recency: "a" is still the oldest
        cache.put("c", 3)
        assert not cache.contains("a")
        assert cache.contains("b") and cache.contains("c")
        # lookup still counts, as before
        cache.lookup("b")
        cache.lookup("absent")
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 2,
                                 "evictions": 1}


# ----------------------------------------------------------------------
# batch runner
# ----------------------------------------------------------------------

class TestBatchRunnerSerial:
    def test_matches_plain_sweep_loop(self):
        problem = tiny_problem()
        budgets = [10.0, 12.0, 14.0]
        plain = sweep_p_max(problem, budgets)
        engine = sweep_p_max(problem, budgets, runner=BatchRunner())
        assert engine == plain

    def test_duplicates_solved_once(self):
        problem = tiny_problem()
        job = SolveJob(problem=problem)
        runner = BatchRunner()
        results = runner.run([job, job, job])
        assert [r.cached for r in results] == [False, True, True]
        assert runner.last_trace.run["unique_solved"] == 1
        assert runner.last_trace.cache["hits"] == 2
        assert results[0].value == results[1].value == results[2].value

    def test_cache_persists_across_runs(self):
        problem = tiny_problem()
        runner = BatchRunner()
        first = runner.run([SolveJob(problem=problem)])
        second = runner.run([SolveJob(problem=problem)])
        assert not first[0].cached and second[0].cached
        assert second[0].value == first[0].value

    def test_unknown_kind_reports_not_raises(self):
        runner = BatchRunner()
        [result] = runner.run([SolveJob(problem=tiny_problem(),
                                        kind="no-such-kind")])
        assert not result.ok
        assert "no-such-kind" in result.error

    def test_solve_problems_batch(self):
        problems = [tiny_problem(p_max=p, p_min=8.0)
                    for p in (12.0, 14.0, 16.0)]
        points = solve_problems(problems)
        assert len(points) == 3
        assert all(point.feasible for point in points)


_FLAKY_CALLS = {"n": 0}


def _flaky_kind(job):
    _FLAKY_CALLS["n"] += 1
    if _FLAKY_CALLS["n"] < 3:
        raise RuntimeError("transient failure")
    return "recovered", {}


register_kind("flaky_test", _flaky_kind)


def _sleepy_kind(job):
    import time
    time.sleep(1.5)
    return "slept", {}


register_kind("sleepy_test", _sleepy_kind)


class TestRetryAndTimeout:
    def test_capped_retry_recovers(self):
        _FLAKY_CALLS["n"] = 0
        result = run_job(SolveJob(problem=tiny_problem(),
                                  kind="flaky_test"), retries=2)
        assert result.ok and result.value == "recovered"
        assert result.attempts == 3

    def test_retry_budget_exhausted_reports_error(self):
        _FLAKY_CALLS["n"] = -10  # needs 13 calls to succeed
        result = run_job(SolveJob(problem=tiny_problem(),
                                  kind="flaky_test"), retries=1)
        assert not result.ok
        assert "transient failure" in result.error

    def test_process_timeout_reports_per_job(self):
        runner = BatchRunner(RunnerConfig(workers=2, timeout_s=0.3,
                                          retries=0, use_cache=False))
        [result] = runner.run([SolveJob(problem=tiny_problem(),
                                        kind="sleepy_test")])
        if runner.last_mode == "process":
            assert not result.ok
            assert "timed out" in result.error
        else:  # environment without worker processes: job just runs
            assert result.ok


class TestBatchRunnerParallel:
    def test_parallel_identical_to_serial_same_seed(self):
        """The determinism contract: workers change nothing."""
        problem = tiny_problem()
        budgets = [10.0, 11.0, 12.0, 14.0]
        levels = [9.0, 11.0, 13.0]
        options = SchedulerOptions(seed=77)
        serial = sweep_grid(problem, budgets, levels, options=options)
        runner = BatchRunner(RunnerConfig(workers=2))
        parallel = sweep_grid(problem, budgets, levels, options=options,
                              runner=runner)
        assert parallel == serial

    def test_chunked_dispatch(self):
        problem = tiny_problem()
        runner = BatchRunner(RunnerConfig(workers=2, chunksize=3))
        points = sweep_p_max(problem, [10.0, 11.0, 12.0, 13.0, 14.0],
                             runner=runner)
        assert len(points) == 5
        assert all(point.feasible for point in points)

    def test_degrades_to_serial_when_pool_unavailable(self, monkeypatch):
        import concurrent.futures as futures

        def broken(*args, **kwargs):
            raise OSError("no processes in this sandbox")

        monkeypatch.setattr(futures, "ProcessPoolExecutor", broken)
        runner = BatchRunner(RunnerConfig(workers=4))
        points = sweep_p_max(tiny_problem(), [12.0, 14.0],
                             runner=runner)
        assert runner.last_mode == "serial-fallback"
        assert all(point.feasible for point in points)
        assert points == sweep_p_max(tiny_problem(), [12.0, 14.0])


class TestRunnerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RunnerConfig(workers=-1)
        with pytest.raises(ValueError):
            RunnerConfig(chunksize=0)
        with pytest.raises(ValueError):
            RunnerConfig(retries=-1)
        with pytest.raises(ValueError):
            RunnerConfig(timeout_s=0.0)


# ----------------------------------------------------------------------
# traces
# ----------------------------------------------------------------------

class TestRunTrace:
    def test_trace_document_schema(self, tmp_path):
        path = str(tmp_path / "trace.json")
        runner = BatchRunner(RunnerConfig(trace_path=path))
        problem = tiny_problem()
        sweep_grid(problem, [10.0, 12.0], [11.0, 13.0], runner=runner)

        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
        assert doc["format"] == "repro-trace" and doc["version"] == 2
        assert doc["run"]["jobs"] == 4
        assert doc["run"]["mode"] == "serial"
        assert doc["run"]["instrumented"] is False
        assert doc["cache"]["misses"] == doc["run"]["unique_solved"]
        assert doc["cache"]["evictions"] == 0
        assert {"timing", "max_power", "min_power"} <= \
            set(doc["stage_seconds"])
        assert doc["counters"]["longest_path_runs"] > 0
        assert len(doc["jobs"]) == 4
        for job in doc["jobs"]:
            assert {"position", "key", "cached", "ok", "attempts",
                    "elapsed_s", "stage_seconds",
                    "counters"} <= set(job)

    def test_stats_ride_along_per_job(self):
        runner = BatchRunner()
        [result] = runner.run([SolveJob(problem=tiny_problem())])
        counters = result.stats["counters"]
        # With warm-started re-solves on by default the stage copies
        # inherit solved fixpoints, so cold full runs inside the stages
        # are not guaranteed — but the solver must have answered
        # *something* through one of its layers.
        assert counters["lp_full_runs"] + counters["lp_cache_hits"] \
            + counters["lp_incremental_runs"] \
            + counters["lp_state_restores"] + counters["lp_warm_hits"] > 0
        assert result.stats["stage_seconds"]["min_power"] >= 0.0


# ----------------------------------------------------------------------
# Monte Carlo robustness through the engine
# ----------------------------------------------------------------------

class TestMonteCarlo:
    def test_reproducible_and_bounded(self):
        problem = tiny_problem(p_max=18.0, p_min=10.0)
        first = monte_carlo_robustness(problem, trials=6,
                                       rel_sigma=0.2, base_seed=5)
        again = monte_carlo_robustness(problem, trials=6,
                                       rel_sigma=0.2, base_seed=5)
        assert first.finish_times == again.finish_times
        assert first.energy_costs == again.energy_costs
        assert 0.0 <= first.feasible_fraction <= 1.0
        assert first.feasible == len(first.finish_times)

    def test_rejects_zero_trials(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            monte_carlo_robustness(tiny_problem(), trials=0)
