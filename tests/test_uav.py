"""Unit tests for the solar UAV case study."""

import pytest

from repro.errors import ReproError
from repro.mission import SolarUav, UavConfig
from repro.mission.uav import AIM_MAX_LEAD, DOWNLINK_MAX_WAIT
from repro.power import DiurnalSolar, IdealBattery
from repro.scheduling import SchedulerOptions

FAST = SchedulerOptions(max_power_restarts=1, min_power_scans=1, seed=9)


@pytest.fixture
def uav() -> SolarUav:
    return SolarUav(options=FAST)


class TestLegModel:
    def test_leg_graph_structure(self, uav):
        g = uav.leg_graph(deice=False)
        assert sorted(g.task_names()) == ["aim", "downlink", "scan"]
        assert g.separation("aim", "scan") is not None
        assert g.separation("scan", "aim") == -AIM_MAX_LEAD
        assert g.separation("downlink", "scan") \
            == -(uav.config.scan_duration + DOWNLINK_MAX_WAIT)

    def test_deice_leg_adds_task_on_radio_bay(self, uav):
        g = uav.leg_graph(deice=True)
        assert "deice" in g
        assert g.task("deice").resource == "radio_bay"
        assert g.separation("deice", "scan") \
            == uav.config.deice_duration

    def test_leg_problem_tracks_sun(self, uav):
        noon = uav.leg_problem(18_000.0, deice=False)
        dawnish = uav.leg_problem(2_000.0, deice=True)
        assert noon.p_max > dawnish.p_max
        assert noon.p_min == pytest.approx(uav.solar.power(18_000.0))

    def test_config_validation(self):
        with pytest.raises(ReproError):
            UavConfig(cruise_power=-1.0)


class TestMission:
    def test_mission_flies_requested_legs(self, uav):
        report = uav.fly(legs=3, start_time=6_000.0)
        assert len(report.legs) == 3
        assert report.total_time > 0
        assert not report.battery_depleted

    def test_loiters_until_power_feasible(self, uav):
        """Starting in the dark, the planner waits for the sun."""
        report = uav.fly(legs=1, start_time=0.0)
        assert report.legs[0].start_time > 0.0

    def test_cold_legs_use_deicer_and_fly_longer(self):
        uav = SolarUav(options=FAST)
        cold = uav.fly(legs=1, start_time=2_400.0, deice_below=30.0)
        warm = SolarUav(options=FAST).fly(legs=1, start_time=18_000.0,
                                          deice_below=30.0)
        assert cold.legs[0].deiced
        assert not warm.legs[0].deiced
        assert cold.legs[0].duration >= warm.legs[0].duration

    def test_battery_cost_falls_toward_noon(self):
        uav = SolarUav(options=FAST)
        report = uav.fly(legs=2, start_time=4_000.0)
        # second leg flies under a higher sun: cheaper
        assert report.legs[1].energy_cost < report.legs[0].energy_cost

    def test_battery_depletion_aborts(self):
        uav = SolarUav(options=FAST,
                       battery=IdealBattery(capacity=500.0,
                                            max_power=40.0))
        report = uav.fly(legs=5, start_time=3_000.0)
        assert report.battery_depleted
        assert len(report.legs) < 5

    def test_eternal_night_raises(self):
        from repro.errors import SchedulingFailure
        dark = SolarUav(options=FAST,
                        solar=DiurnalSolar(peak=1.0, dawn=0,
                                           dusk=100.0))
        with pytest.raises(SchedulingFailure):
            dark.fly(legs=1, start_time=200.0)

    def test_invalid_leg_count(self, uav):
        with pytest.raises(ReproError):
            uav.fly(legs=0)

    def test_report_rows_shape(self, uav):
        report = uav.fly(legs=2, start_time=10_000.0)
        rows = report.rows()
        assert len(rows) == 2
        assert {"leg", "solar_W", "P_max_W", "dur_s", "Ec_J",
                "rho_pct", "deice"} <= set(rows[0])
