"""Unit tests for the power-aware Gantt chart and its renderers."""

import pytest

from repro import (ConstraintGraph, Schedule, ValidationError,
                   schedule)
from repro.gantt import (GanttChart, chart_result, render_chart,
                         render_power_view, render_time_view,
                         render_svg, write_svg)


@pytest.fixture
def chart() -> GanttChart:
    g = ConstraintGraph("demo")
    g.new_task("alpha", duration=5, power=6.0, resource="A")
    g.new_task("beta", duration=5, power=8.0, resource="B")
    g.new_task("gamma", duration=5, power=6.0, resource="A")
    g.add_precedence("alpha", "gamma")
    s = Schedule(g, {"alpha": 0, "beta": 0, "gamma": 5})
    return GanttChart(schedule=s, p_max=12.0, p_min=5.0, baseline=1.0)


class TestModel:
    def test_rows_grouped_by_resource(self, chart):
        assert set(chart.rows) == {"A", "B"}
        assert [b.task for b in chart.rows["A"]] == ["alpha", "gamma"]

    def test_bin_geometry(self, chart):
        alpha = chart.rows["A"][0]
        assert (alpha.start, alpha.end) == (0, 5)
        assert alpha.energy == pytest.approx(30.0)

    def test_spike_and_gap_annotations(self, chart):
        # t in [0,5): 6+8+1 = 15 > 12 -> spike; [5,10): 7 no gap
        assert len(chart.spikes()) == 1
        assert chart.gaps() == []

    def test_composition_stack(self, chart):
        stack = chart.composition_at(0)
        names = [name for name, _ in stack]
        assert names[0] == "(baseline)"
        assert set(names[1:]) == {"alpha", "beta"}

    def test_annotations_summary(self, chart):
        ann = chart.annotations()
        assert ann["tau"] == 10
        assert ann["P_max"] == 12.0
        assert ann["spikes"] == 1

    def test_with_bin_moved_valid(self, chart):
        moved = chart.with_bin_moved("beta", 10)
        assert moved.schedule.start("beta") == 10
        assert chart.schedule.start("beta") == 0  # original intact
        assert len(moved.spikes()) == 0

    def test_with_bin_moved_rejects_constraint_violation(self, chart):
        with pytest.raises(ValidationError):
            chart.with_bin_moved("gamma", 2)  # overlaps alpha on A


class TestAsciiRenderer:
    def test_time_view_has_one_row_per_resource(self, chart):
        text = render_time_view(chart)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("A")
        assert "a" in lines[0] and "g" in lines[0]

    def test_power_view_marks_levels(self, chart):
        text = render_power_view(chart)
        assert "P_max" in text
        assert "P_min" in text

    def test_full_chart_contains_header(self, chart):
        text = render_chart(chart)
        assert "P_max=12" in text
        assert "time view" in text and "power view" in text

    def test_slack_markers_optional(self, chart):
        plain = render_time_view(chart, show_slack=False)
        dotted = render_time_view(chart, show_slack=True)
        assert "." not in plain.replace("...", "")
        assert "." in dotted  # beta has slack to spare

    def test_bad_scales_rejected(self, chart):
        with pytest.raises(ValueError):
            render_time_view(chart, time_scale=0)
        with pytest.raises(ValueError):
            render_power_view(chart, power_scale=0)


class TestSvgRenderer:
    def test_svg_is_well_formed(self, chart):
        import xml.etree.ElementTree as ET
        document = render_svg(chart)
        root = ET.fromstring(document)
        assert root.tag.endswith("svg")

    def test_svg_mentions_tasks_and_levels(self, chart):
        document = render_svg(chart)
        for needle in ("alpha", "beta", "gamma", "P_max", "P_min",
                       "time-view", "power-view"):
            assert needle in document

    def test_write_svg(self, chart, tmp_path):
        path = write_svg(chart, str(tmp_path / "chart.svg"))
        with open(path) as handle:
            assert handle.read().startswith("<svg")

    def test_chart_result_builder(self, small_problem):
        result = schedule(small_problem)
        chart = chart_result(result)
        assert chart.p_max == small_problem.p_max
        assert chart.schedule is result.schedule
        assert render_svg(chart)  # renders without error


class TestHtmlReport:
    def test_report_contains_all_charts(self, chart):
        from repro.gantt import render_html_report
        other = chart.with_bin_moved("beta", 10)
        other.title = "alternative"
        document = render_html_report([chart, other], title="review")
        assert document.startswith("<!DOCTYPE html>")
        assert "review" in document
        assert document.count("<svg") == 2
        assert "alternative" in document

    def test_write_html_report(self, chart, tmp_path):
        from repro.gantt import write_html_report
        path = write_html_report([chart], str(tmp_path / "r.html"))
        with open(path) as handle:
            body = handle.read()
        assert "</html>" in body

    def test_metadata_line_present(self, chart):
        from repro.gantt import render_html_report
        document = render_html_report([chart])
        assert "P_max=12" in document
        assert "spikes=1" in document
