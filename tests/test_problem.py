"""Unit tests for the scheduling-problem container."""

import pytest

from repro import ConstraintGraph, GraphError, Resource, \
    SchedulingProblem


def graph_with(power: float) -> ConstraintGraph:
    g = ConstraintGraph("p")
    g.new_task("t", duration=5, power=power, resource="R")
    return g


class TestConstruction:
    def test_defaults(self):
        p = SchedulingProblem(graph_with(3.0), p_max=10.0)
        assert p.p_min == 0.0
        assert p.baseline == 0.0
        assert p.name == "p"

    def test_p_min_above_p_max_rejected(self):
        with pytest.raises(GraphError):
            SchedulingProblem(graph_with(3.0), p_max=5.0, p_min=6.0)

    def test_negative_constraints_rejected(self):
        with pytest.raises(GraphError):
            SchedulingProblem(graph_with(3.0), p_max=-1.0)
        with pytest.raises(GraphError):
            SchedulingProblem(graph_with(3.0), p_max=5.0, baseline=-1.0)


class TestDerived:
    def test_total_baseline_includes_idle_power(self):
        g = graph_with(3.0)
        g.declare_resource(Resource(name="cpu", idle_power=2.0))
        p = SchedulingProblem(g, p_max=10.0, baseline=1.0)
        assert p.total_baseline == pytest.approx(3.0)
        assert p.headroom() == pytest.approx(7.0)

    def test_feasible_power_check_flags_oversized_task(self):
        p = SchedulingProblem(graph_with(12.0), p_max=10.0)
        reasons = p.feasible_power_check()
        assert len(reasons) == 1
        assert "t" in reasons[0]

    def test_feasible_power_check_flags_baseline(self):
        p = SchedulingProblem(graph_with(1.0), p_max=10.0,
                              baseline=11.0)
        assert any("baseline" in r for r in p.feasible_power_check())

    def test_feasible_power_check_ok(self):
        assert SchedulingProblem(graph_with(3.0),
                                 p_max=10.0).feasible_power_check() == []

    def test_with_power_constraints_shares_graph(self):
        p = SchedulingProblem(graph_with(3.0), p_max=10.0, p_min=5.0)
        q = p.with_power_constraints(p_max=20.0, p_min=1.0)
        assert q.graph is p.graph
        assert q.p_max == 20.0
        assert p.p_max == 10.0

    def test_fresh_graph_is_a_copy(self):
        p = SchedulingProblem(graph_with(3.0), p_max=10.0)
        fresh = p.fresh_graph()
        fresh.add_release("t", 5)
        assert p.graph.separation("__anchor__", "t") is None
