"""Unit tests for stand-alone energy accounting.

Crucially, the accounting layer must agree with the metrics layer —
two independent implementations of Ec and rho.
"""

import pytest

from repro import PowerProfile
from repro.power import (ConstantSolar, StepSolar, split_energy,
                         split_energy_against_solar)


@pytest.fixture
def stepped() -> PowerProfile:
    return PowerProfile([(0, 5, 16.0), (5, 10, 12.0), (10, 20, 14.0)])


class TestSplitEnergy:
    def test_constant_level(self, stepped):
        split = split_energy(stepped, 14.0)
        assert split.consumed == pytest.approx(stepped.energy())
        assert split.battery_drawn == pytest.approx(
            stepped.energy_above(14.0))
        assert split.free_used == pytest.approx(
            stepped.energy_capped(14.0))
        assert split.free_available == pytest.approx(14.0 * 20)

    def test_agrees_with_metrics_layer(self, stepped):
        from repro.core.metrics import (energy_cost,
                                        min_power_utilization)
        for level in (0.0, 9.0, 12.0, 14.0, 16.0):
            split = split_energy(stepped, level)
            assert split.energy_cost == pytest.approx(
                energy_cost(stepped, level))
            if level > 0:
                assert split.utilization == pytest.approx(
                    min_power_utilization(stepped, level))

    def test_conservation(self, stepped):
        split = split_energy(stepped, 13.0)
        assert split.free_used + split.battery_drawn \
            == pytest.approx(split.consumed)

    def test_time_varying_solar(self):
        profile = PowerProfile([(0, 10, 8.0)])
        solar = StepSolar([(0, 10.0), (5, 2.0)])
        split = split_energy_against_solar(profile, solar)
        assert split.free_used == pytest.approx(8 * 5 + 2 * 5)
        assert split.battery_drawn == pytest.approx(6 * 5)
        assert split.free_wasted == pytest.approx(2 * 5)

    def test_start_time_offsets_solar(self):
        profile = PowerProfile([(0, 5, 8.0)])
        solar = StepSolar([(0, 10.0), (100, 0.0)])
        late = split_energy_against_solar(profile, solar,
                                          start_time=100.0)
        assert late.battery_drawn == pytest.approx(40.0)
        early = split_energy_against_solar(profile, solar)
        assert early.battery_drawn == pytest.approx(0.0)

    def test_utilization_one_when_no_free_energy(self):
        profile = PowerProfile([(0, 5, 3.0)])
        split = split_energy_against_solar(profile, ConstantSolar(0.0))
        assert split.utilization == 1.0
