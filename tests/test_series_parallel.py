"""Tests for the series-parallel (TGFF-style) generator."""

import pytest

from repro import check_power_valid, schedule
from repro.analysis import lower_bound
from repro.errors import ReproError
from repro.scheduling import SchedulerOptions
from repro.workloads import SeriesParallelConfig, series_parallel_problem

FAST = SchedulerOptions(max_power_restarts=1, min_power_scans=1, seed=3)


class TestGenerator:
    def test_reproducible(self):
        a = series_parallel_problem(5)
        b = series_parallel_problem(5)
        assert a.graph.task_names() == b.graph.task_names()
        assert sorted((e.src, e.dst, e.weight) for e in a.graph.edges()) \
            == sorted((e.src, e.dst, e.weight) for e in b.graph.edges())

    def test_meta_carries_oracles(self):
        problem = series_parallel_problem(7)
        assert problem.meta["critical_path"] > 0
        assert problem.meta["total_work"] \
            == sum(t.duration for t in problem.graph.tasks())

    def test_depth_zero_is_single_task(self):
        problem = series_parallel_problem(
            1, SeriesParallelConfig(depth=0))
        assert len(problem.graph) == 1

    def test_config_validation(self):
        with pytest.raises(ReproError):
            SeriesParallelConfig(depth=-1)
        with pytest.raises(ReproError):
            SeriesParallelConfig(max_branches=1)

    def test_tasks_have_sp_breadcrumbs(self):
        problem = series_parallel_problem(9)
        assert all("sp_path" in t.meta for t in problem.graph.tasks())


class TestOracleConsistency:
    @pytest.mark.parametrize("seed", [11, 12, 13, 14])
    def test_critical_path_meta_matches_graph(self, seed):
        """The recursively-computed critical path must equal the
        longest-path critical path of the emitted graph (power and
        resources ignored)."""
        from repro import longest_paths

        problem = series_parallel_problem(seed)
        dist = longest_paths(problem.graph).distance
        graph_cp = max(dist[t.name] + t.duration
                       for t in problem.graph.tasks())
        assert graph_cp == problem.meta["critical_path"]

    @pytest.mark.parametrize("seed", [21, 22, 23])
    def test_scheduler_solves_and_respects_bound(self, seed):
        problem = series_parallel_problem(seed)
        result = schedule(problem, FAST)
        assert check_power_valid(result.schedule, problem.p_max,
                                 baseline=problem.baseline).ok
        assert result.finish_time >= problem.meta["critical_path"]
        assert result.finish_time >= lower_bound(problem)
