"""Unit tests for the Schedule class."""

import pytest

from repro import ConstraintGraph, Schedule, ValidationError


@pytest.fixture
def graph() -> ConstraintGraph:
    g = ConstraintGraph("g")
    g.new_task("a", duration=5, power=2.0, resource="A")
    g.new_task("b", duration=3, power=4.0, resource="A")
    g.new_task("c", duration=4, power=1.0, resource="B")
    return g


@pytest.fixture
def schedule(graph) -> Schedule:
    return Schedule(graph, {"a": 0, "b": 5, "c": 2})


class TestConstruction:
    def test_missing_task_rejected(self, graph):
        with pytest.raises(ValidationError):
            Schedule(graph, {"a": 0, "b": 5})

    def test_negative_start_rejected(self, graph):
        with pytest.raises(ValidationError):
            Schedule(graph, {"a": -1, "b": 5, "c": 2})

    def test_non_integer_start_rejected(self, graph):
        with pytest.raises(ValidationError):
            Schedule(graph, {"a": 0.5, "b": 5, "c": 2})

    def test_from_pairs(self, graph):
        s = Schedule.from_pairs(graph, [("a", 0), ("b", 5), ("c", 2)])
        assert s.start("b") == 5


class TestQueries:
    def test_start_and_finish(self, schedule):
        assert schedule.start("a") == 0
        assert schedule.finish("a") == 5
        assert schedule.finish("c") == 6

    def test_makespan(self, schedule):
        assert schedule.makespan == 8  # b finishes at 5 + 3

    def test_finish_time_alias(self, schedule):
        assert schedule.finish_time == schedule.makespan

    def test_is_active_half_open(self, schedule):
        assert schedule.is_active("a", 0)
        assert schedule.is_active("a", 4)
        assert not schedule.is_active("a", 5)

    def test_zero_duration_never_active(self, graph):
        graph.new_task("m", duration=0)
        s = Schedule(graph, {"a": 0, "b": 5, "c": 2, "m": 3})
        assert not s.is_active("m", 3)

    def test_active_tasks(self, schedule):
        names = {t.name for t in schedule.active_tasks(3)}
        assert names == {"a", "c"}

    def test_power_at(self, schedule):
        assert schedule.power_at(3) == pytest.approx(3.0)  # a + c
        assert schedule.power_at(5) == pytest.approx(5.0)  # b + c

    def test_resource_timeline_sorted(self, schedule):
        timeline = schedule.resource_timeline("A")
        assert [(s, t.name) for s, t in timeline] == [(0, "a"), (5, "b")]

    def test_overlap_detection(self, graph):
        s = Schedule(graph, {"a": 0, "b": 3, "c": 0})  # a,b overlap on A
        clashes = s.overlapping_on_resource("A")
        assert [(u.name, v.name) for u, v in clashes] == [("a", "b")]

    def test_no_overlap_when_touching(self, schedule):
        assert schedule.overlapping_on_resource("A") == []


class TestUpdates:
    def test_with_start_is_functional(self, schedule):
        moved = schedule.with_start("c", 4)
        assert moved.start("c") == 4
        assert schedule.start("c") == 2

    def test_delayed(self, schedule):
        assert schedule.delayed("c", 3).start("c") == 5

    def test_negative_delay_rejected(self, schedule):
        with pytest.raises(ValidationError):
            schedule.delayed("c", -1)

    def test_shifted_moves_all(self, schedule):
        shifted = schedule.shifted(10)
        assert shifted.start("a") == 10
        assert shifted.makespan == schedule.makespan + 10

    def test_unknown_task_move_rejected(self, schedule):
        with pytest.raises(ValidationError):
            schedule.with_start("zz", 0)


class TestComparison:
    def test_equality_and_hash(self, graph, schedule):
        same = Schedule(graph, {"a": 0, "b": 5, "c": 2})
        assert schedule == same
        assert hash(schedule) == hash(same)

    def test_differences(self, schedule):
        other = schedule.with_start("c", 4)
        assert schedule.differences(other) == [("c", 2, 4)]
