"""Differential tests for sharded execution (plan → execute → merge).

The headline property: **shard-count invariance**.  A sweep split over
1, 2, or 4 subprocess shards — or over running solve servers — and
merged back must be bit-for-bit identical to the plain serial
:class:`BatchRunner` on the same jobs: same values, same submission
order, and (canonically compared) the same schedule store.
"""

from __future__ import annotations

import pytest

from repro.engine import (BatchRunner, BackendError, RunnerConfig,
                          SubprocessShardBackend, SweepSpec,
                          canonical_store_doc, merge_artifacts,
                          merge_results, plan_shards)
from repro.engine.backends.shards import run_manifest
from repro.errors import ReproError
from repro.examples_data import fig1_options, fig1_problem
from repro.io.shards import (artifact_from_dict, artifact_to_dict,
                             load_artifact, save_artifact)
from repro.scheduling import SchedulerOptions

BUDGETS = [6, 7, 8, 9, 10, 11, 12, 13, 14, 16]
LEVELS = [1, 2, 3, 4, 5, 6, 7, 8, 10, 12]


@pytest.fixture(scope="module")
def fig1_grid_jobs():
    """The Fig. 1 workload crossed with a 10x10 power grid."""
    spec = SweepSpec.grid(fig1_problem(), BUDGETS, LEVELS,
                          options=fig1_options())
    return spec.jobs()


@pytest.fixture(scope="module")
def serial_baseline(fig1_grid_jobs):
    runner = BatchRunner(RunnerConfig(reuse_schedules=True))
    results = runner.run(fig1_grid_jobs)
    return results, runner


# ----------------------------------------------------------------------
# subprocess shard invariance
# ----------------------------------------------------------------------

@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize("strategy", ["tile", "round_robin"])
def test_subprocess_shard_count_invariance(fig1_grid_jobs,
                                           serial_baseline, shards,
                                           strategy):
    base_results, base_runner = serial_baseline
    runner = BatchRunner(
        RunnerConfig(reuse_schedules=True),
        backend=SubprocessShardBackend(shards=shards,
                                       strategy=strategy))
    results = runner.run(fig1_grid_jobs)

    assert runner.last_mode == "shards"
    assert [r.position for r in results] == \
        [r.position for r in base_results]
    # bit-for-bit: SweepPoint is a frozen dataclass, so == is
    # field-exact
    assert [r.value for r in results] == \
        [r.value for r in base_results]
    assert all(r.ok for r in results)
    # the settled store holds exactly the serial run's schedules
    assert canonical_store_doc(runner.store) == \
        canonical_store_doc(base_runner.store)
    # the run trace still covers every job
    assert runner.last_trace.run["jobs"] == len(fig1_grid_jobs)


def test_shard_backend_exposes_plan_and_artifacts(fig1_grid_jobs,
                                                  serial_baseline):
    backend = SubprocessShardBackend(shards=2)
    runner = BatchRunner(RunnerConfig(reuse_schedules=True),
                         backend=backend)
    runner.run(fig1_grid_jobs)
    assert backend.last_plan is not None
    assert backend.last_plan.shards == 2
    assert len(backend.last_artifacts) == 2
    merged = merge_results(backend.last_artifacts)
    base_results, _ = serial_baseline
    # artifacts cover exactly the deduplicated primaries
    solved = {r.position for r in merged}
    assert solved <= {r.position for r in base_results}


def test_shard_worker_failure_degrades_to_job_errors(fig1_grid_jobs):
    backend = SubprocessShardBackend(shards=2,
                                     python="/nonexistent-python")
    runner = BatchRunner(RunnerConfig(retries=0), backend=backend)
    results = runner.run(fig1_grid_jobs[:4])
    assert len(results) == 4
    assert not any(r.ok for r in results if not r.cached)
    failed = [r for r in results if not r.ok]
    assert failed
    assert all("shard worker" in r.error for r in failed)


def test_shard_backend_rejects_bad_config():
    with pytest.raises(BackendError):
        SubprocessShardBackend(shards=0)
    with pytest.raises(BackendError):
        SubprocessShardBackend(strategy="diagonal")


# ----------------------------------------------------------------------
# remote backend invariance (live in-process server)
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def remote_grid_jobs():
    """Same grid, wire-representable options (seed only)."""
    spec = SweepSpec.grid(fig1_problem(), BUDGETS, LEVELS,
                          options=SchedulerOptions(seed=2001))
    return spec.jobs()


def test_remote_backend_invariance(remote_grid_jobs):
    from repro.engine import RemoteBackend
    from tests.test_serving import LiveServer

    serial = BatchRunner(RunnerConfig())
    base = serial.run(remote_grid_jobs)
    with LiveServer() as live:
        runner = BatchRunner(
            RunnerConfig(),
            backend=RemoteBackend([live.client], shards=2))
        results = runner.run(remote_grid_jobs)
    assert runner.last_mode == "remote"
    assert [r.value for r in results] == [r.value for r in base]
    assert all(r.ok for r in results)


def test_remote_backend_refuses_non_wire_options(remote_grid_jobs):
    from repro.engine import RemoteBackend

    backend = RemoteBackend(["http://127.0.0.1:1"], shards=1)
    jobs = SweepSpec.grid(fig1_problem(), [10], [4],
                          options=fig1_options()).jobs()
    runner = BatchRunner(RunnerConfig(), backend=backend)
    # fig1_options sets max_power_restarts, which the wire protocol
    # cannot carry — refusing beats silently solving something else
    with pytest.raises(BackendError):
        runner.run(jobs)


def test_remote_backend_retries_then_degrades(remote_grid_jobs):
    from repro.engine import RemoteBackend

    # nothing listens on this port: every attempt is a connection
    # error, which is retryable, and after the budget the shard
    # degrades to failed results
    backend = RemoteBackend(["http://127.0.0.1:9"], shards=1)
    runner = BatchRunner(RunnerConfig(retries=1), backend=backend)
    results = runner.run(remote_grid_jobs[:3])
    failed = [r for r in results if not r.ok]
    assert failed
    assert all("remote shard" in r.error for r in failed)
    assert all(r.attempts == 3 for r in failed)


# ----------------------------------------------------------------------
# merge layer
# ----------------------------------------------------------------------

def _make_artifacts(jobs, shards, instrument=False,
                    reuse=True, strategy="tile"):
    runner_doc = {"retries": 1, "reuse_schedules": reuse,
                  "reuse_policy": "identical",
                  "instrument": instrument, "lp_log_factor": None}
    plan = plan_shards(jobs, shards, strategy, runner=runner_doc)
    return [run_manifest(manifest) for manifest in plan
            if manifest.jobs]


def test_merge_results_interleaves_by_position(fig1_grid_jobs):
    artifacts = _make_artifacts(fig1_grid_jobs[:8], 3)
    merged = merge_results(artifacts)
    assert [r.position for r in merged] == list(range(8))


def test_merge_rejects_overlapping_positions(fig1_grid_jobs):
    artifacts = _make_artifacts(fig1_grid_jobs[:4], 2)
    with pytest.raises(ReproError, match="overlap at position"):
        merge_results([artifacts[0], artifacts[0]])


def test_merge_traces_reroots_under_shard_spans(fig1_grid_jobs):
    artifacts = _make_artifacts(fig1_grid_jobs[:6], 2,
                                instrument=True)
    merged = merge_artifacts(artifacts, strategy="tile")
    trace = merged.trace
    assert trace.run["mode"] == "shards"
    assert trace.run["shards"] == 2
    assert trace.run["strategy"] == "tile"
    assert trace.run["jobs"] == 6
    # jobs interleaved back into submission order
    assert [job.position for job in trace.jobs] == list(range(6))
    # one engine.run root, one engine.shard child per shard, each
    # wrapping that shard's own engine.run span forest
    assert len(trace.spans) == 1
    root = trace.spans[0]
    assert root["name"] == "engine.run"
    shard_spans = root["children"]
    assert [span["name"] for span in shard_spans] == \
        ["engine.shard", "engine.shard"]
    assert {span["attrs"]["shard"] for span in shard_spans} == {0, 1}
    for span in shard_spans:
        assert span["children"][0]["name"] == "engine.run"
    # cache counters summed across shards
    total_hits = sum(a.trace.cache.get("hits", 0) for a in artifacts)
    assert trace.cache["hits"] == total_hits
    # metric counters reconciled by summation
    jobs_metric = trace.metrics.get("engine.run.jobs")
    assert jobs_metric is not None and jobs_metric["value"] == 6


def test_merge_store_matches_unsharded_store(fig1_grid_jobs):
    serial = BatchRunner(RunnerConfig(reuse_schedules=True))
    serial.run(fig1_grid_jobs)
    for shards in (1, 3):
        artifacts = _make_artifacts(fig1_grid_jobs, shards)
        merged = merge_artifacts(artifacts)
        assert canonical_store_doc(merged.store) == \
            canonical_store_doc(serial.store)


def test_merged_cache_serves_all_solved_points(fig1_grid_jobs):
    artifacts = _make_artifacts(fig1_grid_jobs[:6], 2)
    merged = merge_artifacts(artifacts)
    for result in merged.results:
        if result.ok:
            hit, value = merged.cache.peek(result.key)
            assert hit and value == result.value


# ----------------------------------------------------------------------
# artifact round trip
# ----------------------------------------------------------------------

def test_artifact_round_trip(tmp_path, fig1_grid_jobs):
    artifacts = _make_artifacts(fig1_grid_jobs[:6], 2,
                                instrument=True)
    for artifact in artifacts:
        path = tmp_path / f"artifact_{artifact.index}.json"
        save_artifact(artifact, str(path))
        loaded = load_artifact(str(path))
        assert loaded.index == artifact.index
        assert loaded.of == artifact.of
        assert [r.position for r in loaded.results] == \
            [r.position for r in artifact.results]
        assert [r.value for r in loaded.results] == \
            [r.value for r in artifact.results]
        assert loaded.store_delta == artifact.store_delta
        assert loaded.cache_stats == artifact.cache_stats
        assert dict(loaded.cache_entries) == \
            dict(artifact.cache_entries)
        assert loaded.trace.run == artifact.trace.run
        # dict-level identity too
        assert artifact_to_dict(
            artifact_from_dict(artifact_to_dict(artifact))) == \
            artifact_to_dict(artifact)


# ----------------------------------------------------------------------
# CLI workflow
# ----------------------------------------------------------------------

def test_cli_shard_plan_run_merge(tmp_path, capsys):
    from repro.cli import main
    from repro.io import save_problem

    problem_path = tmp_path / "fig1.json"
    save_problem(fig1_problem(), str(problem_path))
    plan_dir = tmp_path / "plan"
    assert main(["shard", "plan", str(problem_path),
                 "--budgets", "8,10,12", "--levels", "2,4",
                 "--shards", "2", "--out-dir", str(plan_dir),
                 "--seed", "2001", "--reuse-schedules"]) == 0
    artifact_paths = []
    for index in range(2):
        artifact = tmp_path / f"a{index}.json"
        assert main(["shard", "run",
                     str(plan_dir / f"shard_{index}.json"),
                     "--artifact", str(artifact)]) == 0
        artifact_paths.append(str(artifact))
    trace_path = tmp_path / "merged.json"
    store_path = tmp_path / "store.json"
    assert main(["shard", "merge", *artifact_paths,
                 "--trace", str(trace_path),
                 "--store", str(store_path)]) == 0
    assert trace_path.exists() and store_path.exists()
    out = capsys.readouterr().out
    assert "merged: 6 jobs from 2 shards" in out

    # the merged values match a direct serial run of the same grid
    merged = merge_artifacts([load_artifact(path)
                              for path in artifact_paths])
    jobs = SweepSpec.grid(fig1_problem(), [8, 10, 12], [2, 4],
                          options=SchedulerOptions(seed=2001)).jobs()
    serial = BatchRunner(RunnerConfig(reuse_schedules=True))
    base = serial.run(jobs)
    assert [r.value for r in merged.results] == \
        [r.value for r in base]


def test_cli_sweep_backend_shards(tmp_path, capsys):
    from repro.cli import main
    from repro.io import save_problem

    problem_path = tmp_path / "fig1.json"
    save_problem(fig1_problem(), str(problem_path))
    assert main(["sweep", str(problem_path),
                 "--budgets", "8,10,12", "--levels", "2,4",
                 "--backend", "shards", "--shards", "2",
                 "--reuse-schedules"]) == 0
    out = capsys.readouterr().out
    assert "mode=shards" in out


def test_metrics_merge_matches_serial_registry(fig1_grid_jobs):
    """Sharded metric snapshots merged == one serial registry.

    Warm-started re-solves share state across jobs in ways that
    depend on the partition, so the comparison runs with
    ``warm_start=False``: then every counter is per-job deterministic
    and must sum exactly; histogram *counts* are exact too, while
    sums are wall-clock (compare the merge against the fold of its
    own parts, not against the serial timings).  Jobs are key-distinct
    so dedup/cache accounting cannot depend on the partition either.
    """
    jobs, seen = [], set()
    for job in fig1_grid_jobs:
        key = job.key()
        if key not in seen:
            seen.add(key)
            jobs.append(job)
        if len(jobs) == 12:
            break
    serial = BatchRunner(RunnerConfig(instrument=True,
                                      warm_start=False))
    serial.run(jobs)
    serial_metrics = serial.last_trace.metrics

    runner_doc = {"retries": 1, "reuse_schedules": False,
                  "reuse_policy": "identical", "instrument": True,
                  "lp_log_factor": None, "warm_start": False}
    plan = plan_shards(list(enumerate(jobs)), 3, "tile",
                       runner=runner_doc)
    artifacts = [run_manifest(manifest) for manifest in plan
                 if manifest.jobs]
    merged = merge_artifacts(artifacts).metrics

    def of_type(snapshot, kind):
        return {name: summary for name, summary in snapshot.items()
                if summary["type"] == kind}

    serial_counters = of_type(serial_metrics, "counter")
    merged_counters = of_type(merged, "counter")
    assert set(serial_counters) == set(merged_counters)
    for name, summary in serial_counters.items():
        assert merged_counters[name]["value"] == summary["value"], \
            name

    serial_hists = of_type(serial_metrics, "histogram")
    merged_hists = of_type(merged, "histogram")
    assert set(serial_hists) == set(merged_hists)
    for name, summary in serial_hists.items():
        assert merged_hists[name]["count"] == summary["count"], name
    # Merge exactness: the merged sum/count is the exact fold of the
    # per-shard snapshots it was built from.
    for name, summary in merged_hists.items():
        shard_sum = sum(artifact.metrics[name]["sum"]
                        for artifact in artifacts
                        if name in artifact.metrics)
        shard_count = sum(artifact.metrics[name]["count"]
                          for artifact in artifacts
                          if name in artifact.metrics)
        assert summary["count"] == shard_count, name
        assert summary["sum"] == pytest.approx(shard_sum, abs=1e-5), \
            name
        # and each quantile stays inside the observed value range
        low = min(artifact.metrics[name]["min"]
                  for artifact in artifacts
                  if name in artifact.metrics)
        high = max(artifact.metrics[name]["max"]
                   for artifact in artifacts
                   if name in artifact.metrics)
        for q in ("p50", "p95", "p99"):
            assert low - 1e-9 <= summary[q] <= high + 1e-9, (name, q)
