"""Distributed tracing, structured logs, and the flight recorder.

The tentpole property is the **stitched trace**: one trace id minted
at the front door (or by the batch runner) must reach every layer —
wire headers to remote servers, shard manifests to subprocess
workers, artifacts back through the merge — so that a single
``GET /v1/debug/trace/{id}`` shows client → server → runner →
scheduler as one span tree.
"""

from __future__ import annotations

import json

import pytest

from repro.engine import (BatchRunner, RemoteBackend, RunnerConfig,
                          SweepSpec, merge_artifacts, plan_shards)
from repro.engine.backends.shards import run_manifest
from repro.examples_data import fig1_problem
from repro.obs import (LOG, EventLog, format_traceparent, new_span_id,
                       new_trace_id, parse_traceparent)
from repro.scheduling import SchedulerOptions
from repro.serving import ServingConfig, ServingError
from tests.test_serving import LiveServer


# ----------------------------------------------------------------------
# traceparent plumbing
# ----------------------------------------------------------------------

class TestTraceContext:
    def test_ids_are_well_formed(self):
        trace_id, span_id = new_trace_id(), new_span_id()
        assert len(trace_id) == 32 and len(span_id) == 16
        int(trace_id, 16), int(span_id, 16)
        assert new_trace_id() != trace_id

    def test_traceparent_round_trip(self):
        trace_id, span_id = new_trace_id(), new_span_id()
        header = format_traceparent(trace_id, span_id)
        assert header == f"00-{trace_id}-{span_id}-01"
        assert parse_traceparent(header) == (trace_id, span_id)

    @pytest.mark.parametrize("bad", [
        None, "", "garbage", "00-short-abcd-01",
        "00-" + "g" * 32 + "-" + "a" * 16 + "-01",
        "00-" + "a" * 32 + "-" + "b" * 16,  # three parts
    ])
    def test_malformed_traceparent_is_ignored(self, bad):
        assert parse_traceparent(bad) is None


# ----------------------------------------------------------------------
# runner + shard propagation
# ----------------------------------------------------------------------

def _grid_jobs(budgets=(8, 10), levels=(2, 4)):
    spec = SweepSpec.grid(fig1_problem(), list(budgets), list(levels),
                          options=SchedulerOptions(seed=2001))
    return spec.jobs()


def test_runner_mints_trace_identity():
    runner = BatchRunner(RunnerConfig(instrument=True))
    runner.run(_grid_jobs()[:2])
    run = runner.last_trace.run
    assert len(run["trace_id"]) == 32
    assert len(run["span_id"]) == 16
    assert "parent_span_id" not in run
    [root] = runner.last_trace.spans
    assert root["attrs"]["trace_id"] == run["trace_id"]


def test_runner_adopts_explicit_context():
    runner = BatchRunner(RunnerConfig(instrument=True))
    trace_id, parent = new_trace_id(), new_span_id()
    runner.trace_context = (trace_id, parent)
    runner.run(_grid_jobs()[:2])
    run = runner.last_trace.run
    assert run["trace_id"] == trace_id
    assert run["parent_span_id"] == parent
    # A second run under the same context keeps the trace id but
    # mints a fresh run span id.
    first_span = run["span_id"]
    runner.run(_grid_jobs()[2:4])
    assert runner.last_trace.run["trace_id"] == trace_id
    assert runner.last_trace.run["span_id"] != first_span


def test_shard_manifest_carries_trace_and_merge_stitches():
    """The parent's context rides the manifest; artifacts of one
    trace stitch back into a merged run carrying that trace id."""
    trace_id, parent = new_trace_id(), new_span_id()
    runner_doc = {"retries": 1, "reuse_schedules": False,
                  "reuse_policy": "identical", "instrument": True,
                  "lp_log_factor": None,
                  "trace": {"trace_id": trace_id,
                            "parent_span_id": parent}}
    plan = plan_shards(list(enumerate(_grid_jobs())), 2, "tile",
                       runner=runner_doc)
    artifacts = [run_manifest(manifest) for manifest in plan
                 if manifest.jobs]
    assert len(artifacts) == 2
    for artifact in artifacts:
        assert artifact.trace.run["trace_id"] == trace_id
        assert artifact.trace.run["parent_span_id"] == parent
    merged = merge_artifacts(artifacts)
    assert merged.trace.run["trace_id"] == trace_id
    assert merged.trace.run["parent_span_id"] == parent
    [root] = merged.trace.spans
    assert root["attrs"]["trace_id"] == trace_id


def test_merge_of_mixed_traces_stays_unstitched():
    docs = []
    for trace_id in (new_trace_id(), new_trace_id()):
        docs.append({"retries": 1, "reuse_schedules": False,
                     "reuse_policy": "identical", "instrument": True,
                     "lp_log_factor": None,
                     "trace": {"trace_id": trace_id}})
    jobs = _grid_jobs()
    artifacts = []
    for index, doc in enumerate(docs):
        plan = plan_shards(list(enumerate(jobs[index * 2:
                                               index * 2 + 2],
                                          start=index * 2)),
                           1, "tile", runner=doc)
        artifacts.extend(run_manifest(manifest) for manifest in plan
                         if manifest.jobs)
    merged = merge_artifacts(artifacts)
    assert "trace_id" not in merged.trace.run


# ----------------------------------------------------------------------
# the stitched end-to-end trace (differential, live server)
# ----------------------------------------------------------------------

def test_remote_sweep_produces_single_stitched_trace():
    """``sweep --backend remote`` against a live ``serve``: every
    span the server recorded is reachable from the originating
    runner's trace id, covering client → server → runner →
    scheduler."""
    jobs = _grid_jobs()
    with LiveServer(ServingConfig(port=0, max_wait_ms=0.0)) as live:
        runner = BatchRunner(
            RunnerConfig(instrument=True),
            backend=RemoteBackend([live.client], shards=2))
        trace_id = new_trace_id()
        runner.trace_context = (trace_id, None)
        results = runner.run(jobs)
        assert all(result.ok for result in results)
        # The parent runner's trace IS the distributed trace.
        assert runner.last_trace.run["trace_id"] == trace_id

        # The server saw the same trace id on every shard request.
        debug = live.client.debug_requests()
        records = [record for record in debug["requests"]
                   if record["trace_id"] == trace_id]
        assert len(records) >= 2  # two shard sweeps at least
        assert all(record["parent_span_id"] for record in records), \
            "client span ids must arrive via the traceparent header"

        trace_doc = live.client.debug_trace(trace_id)
    assert trace_doc["format"] == "repro-debug-trace"
    assert trace_doc["trace_id"] == trace_id

    names = []

    def walk(span_doc):
        names.append(span_doc["name"])
        for child in span_doc.get("children", []):
            walk(child)

    for span_doc in trace_doc["spans"]:
        walk(span_doc)
    # Stage coverage: server request spans, engine run/job spans,
    # scheduler pipeline/stage spans — one reachable tree per request.
    assert "serving.request" in names
    assert "engine.run" in names
    assert "engine.job" in names
    assert any(name.startswith("sched.") for name in names)


def test_unknown_debug_trace_is_not_found():
    with LiveServer() as live:
        with pytest.raises(ServingError) as excinfo:
            live.client.debug_trace("f" * 32)
        assert excinfo.value.code == "not_found"


# ----------------------------------------------------------------------
# flight recorder rings
# ----------------------------------------------------------------------

def test_flight_recorder_keeps_errors_in_notable_ring():
    config = ServingConfig(port=0, flight_recorder=4)
    with LiveServer(config) as live:
        for _ in range(6):
            live.client.healthz()
        with pytest.raises(ServingError):
            live.client.checked("GET", "/v1/jobs/j-nope")
        for _ in range(6):
            live.client.healthz()
        debug = live.client.debug_requests()
    assert debug["capacity"] == 4
    assert len(debug["requests"]) == 4
    # The 404 has rolled out of the recent ring but is pinned in
    # the notable one, carrying its error code.
    assert all(record["status"] == 200
               for record in debug["requests"])
    notable = [record for record in debug["notable"]
               if record["status"] == 404]
    assert notable and notable[0]["error"] == "not_found"


def test_solve_request_record_links_job_and_trace():
    with LiveServer(ServingConfig(port=0, max_wait_ms=0.0)) as live:
        response = live.client.solve(fig1_problem())
        debug = live.client.debug_requests()
    solves = [record for record in debug["requests"]
              if record["endpoint"] == "v1.solve"]
    assert solves
    record = solves[0]
    assert record["job"] == response["job"]
    assert record["trace_id"] == live.client.trace_context[0]
    assert record["latency_ms"] > 0


# ----------------------------------------------------------------------
# structured event log
# ----------------------------------------------------------------------

class TestEventLog:
    def test_disabled_log_is_a_cheap_no_op(self, tmp_path):
        log = EventLog()
        assert not log.enabled
        log.emit("anything", trace_id="t")  # must not raise or write

    def test_emit_writes_correlated_jsonl(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog()
        log.enable(path=path)
        try:
            log.emit("unit.test", trace_id="t" * 32, span_id="s" * 16,
                     detail=7)
        finally:
            log.disable()
        [line] = open(path).read().splitlines()
        event = json.loads(line)
        assert event["event"] == "unit.test"
        assert event["trace_id"] == "t" * 32
        assert event["span_id"] == "s" * 16
        assert event["detail"] == 7
        assert event["ts"] > 0

    def test_env_knob_enables_global_log(self, tmp_path,
                                         monkeypatch):
        from repro.obs import LOG_ENV, maybe_enable_from_env
        path = str(tmp_path / "env.jsonl")
        monkeypatch.setenv(LOG_ENV, path)
        assert maybe_enable_from_env()
        try:
            LOG.emit("env.test")
        finally:
            LOG.disable()
        assert json.loads(open(path).read())["event"] == "env.test"

    def test_server_writes_access_log(self, tmp_path):
        path = str(tmp_path / "access.jsonl")
        with LiveServer(ServingConfig(port=0,
                                      log_path=path)) as live:
            live.client.healthz()
        events = [json.loads(line)
                  for line in open(path).read().splitlines()]
        kinds = [event["event"] for event in events]
        assert kinds[0] == "server.start"
        assert kinds[-1] == "server.stop"
        access = [event for event in events
                  if event["event"] == "http.access"]
        assert any(event["path"] == "/healthz" for event in access)
        assert all(len(event["trace_id"]) == 32 for event in access)
        assert not LOG.enabled  # shutdown released the global log


# ----------------------------------------------------------------------
# repro-schedule top
# ----------------------------------------------------------------------

def test_cli_top_once_renders_frame(capsys):
    from repro.cli import main

    with LiveServer(ServingConfig(port=0, max_wait_ms=0.0)) as live:
        live.client.solve(fig1_problem())
        url = f"http://127.0.0.1:{live.server.port}"
        assert main(["top", "--server", url, "--once"]) == 0
    out = capsys.readouterr().out
    assert f"repro solve server @ {url}" in out
    assert "queue depth" in out
    assert "v1.solve" in out
    assert "recent requests" in out


def test_cli_top_unreachable_server_fails_cleanly(capsys):
    from repro.cli import main

    assert main(["top", "--server", "http://127.0.0.1:9",
                 "--once"]) == 1
    assert "cannot poll" in capsys.readouterr().err
