"""Mission sessions over the wire (``/v1/sessions``).

The serving acceptance criteria of the online layer:

* a served session replay is **bit-identical** to a local
  :func:`repro.online.replay_script` of the same script — same events,
  same starts, same energy;
* mission rejections are normal stream events while protocol failures
  are in-stream ``error`` records, and the terminal ``end`` line makes
  truncation detectable;
* session requests round-trip with trace-context propagation and are
  visible in the flight recorder (``/v1/debug/requests``) and the
  metrics registry;
* **doc conformance**: every JSON/NDJSON example in ``docs/online.md``
  is replayed against a live server, in document order, and must
  match; ``docs/formats.md`` documents every session wire schema at
  its current version.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.examples_data import fig1_problem
from repro.io.requests import (SESSION_COMMANDS_FORMAT,
                               SESSION_COMMANDS_VERSION,
                               SESSION_EVENT_FORMAT,
                               SESSION_EVENT_VERSION,
                               SESSION_REQUEST_FORMAT,
                               SESSION_REQUEST_VERSION,
                               SESSION_SCRIPT_FORMAT,
                               SESSION_SCRIPT_VERSION)
from repro.online import replay_script, script_from_problem
from repro.serving import ServingConfig, ServingError
from tests.test_serving import (LiveServer, _assert_like_doc,
                                _parse_doc_examples)

DOC_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "docs",
                        "online.md")
FORMATS_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                            "docs", "formats.md")


def open_fig1_session(client, script):
    ack = client.open_session(
        p_max=script.p_max, p_min=script.p_min,
        baseline=script.baseline, scheduler=script.scheduler,
        seed=script.seed, name=script.name)
    assert ack["status"] == "open"
    return ack["session"]


# ---------------------------------------------------------------------
# round trips
# ---------------------------------------------------------------------


def test_served_session_is_bit_identical_to_local_replay():
    script = script_from_problem(fig1_problem(), seed=2001)
    local, local_events = replay_script(script)
    with LiveServer() as live:
        session_id = open_fig1_session(live.client, script)
        stream = live.client.session_apply(session_id,
                                           script.commands)
        status = live.client.session(session_id)

    # The stream is: header, the session events (each stamped with the
    # session id), terminal end.  Strip the stamps and the framing and
    # it must equal the local journal minus its `open` record (the
    # server emitted that during POST /v1/sessions).
    header, *events, end = stream
    assert header["format"] == SESSION_EVENT_FORMAT
    assert header["version"] == SESSION_EVENT_VERSION
    assert end["event"] == "end" and end["ok"] is True
    served = []
    for record in events:
        record = dict(record)
        assert record.pop("session") == session_id
        served.append(record)
    assert served == [e for e in local_events
                      if e["event"] != "open"]

    assert status["starts"] == local.schedule.as_dict()
    assert status["makespan"] == local.schedule.makespan
    assert status["admitted"] == list(local.admitted)
    [quiesced] = [e for e in served if e["event"] == "quiesce"]
    assert quiesced["energy_cost"] == local.result.energy_cost
    assert quiesced["peak_power"] == local.result.metrics.peak_power


def test_mission_rejection_is_a_normal_stream_event():
    with LiveServer() as live:
        ack = live.client.open_session(p_max=5.0, seed=7)
        session_id = ack["session"]
        stream = live.client.session_apply(session_id, [
            {"event": "arrival",
             "task": {"name": "ok", "duration": 2, "power": 4.0}},
            {"event": "arrival",
             "task": {"name": "hog", "duration": 2, "power": 50.0}},
        ])
    kinds = [record.get("event") for record in stream[1:]]
    assert kinds == ["admit", "reject", "end"]
    assert stream[-1]["ok"] is True
    assert stream[-1]["admitted"] == 1
    assert stream[-1]["rejected"] == 1


def test_closed_session_errors_in_stream():
    with LiveServer() as live:
        ack = live.client.open_session(p_max=10.0)
        session_id = ack["session"]
        closed = live.client.close_session(session_id)
        assert closed["status"] == "closed"
        stream = list(live.client.session_send(session_id, [
            {"event": "arrival",
             "task": {"name": "late", "duration": 1}},
        ]))
    kinds = [record.get("event") for record in stream[1:]]
    assert kinds == ["error", "end"]
    assert stream[1]["code"] == "bad_request"
    assert stream[-1]["ok"] is False


def test_error_mid_batch_keeps_prior_commands():
    with LiveServer() as live:
        ack = live.client.open_session(p_max=10.0)
        session_id = ack["session"]
        stream = list(live.client.session_send(session_id, [
            {"event": "arrival",
             "task": {"name": "a", "duration": 2, "power": 1.0}},
            {"event": "fault", "overruns": {"ghost": 1}},
            {"event": "arrival",
             "task": {"name": "never", "duration": 1}},
        ]))
        status = live.client.session(session_id)
    kinds = [record.get("event") for record in stream[1:]]
    assert kinds == ["admit", "error", "end"]
    assert status["admitted"] == ["a"]       # first command stuck
    assert "never" not in status["admitted"]  # third never ran


def test_unknown_session_is_not_found():
    with LiveServer() as live:
        with pytest.raises(ServingError) as excinfo:
            live.client.session("s-999999")
        assert excinfo.value.code == "not_found"
        assert excinfo.value.http_status == 404


def test_newer_session_request_version_is_rejected():
    with LiveServer() as live:
        status, doc = live.client.request("POST", "/v1/sessions", {
            "format": SESSION_REQUEST_FORMAT,
            "version": SESSION_REQUEST_VERSION + 1,
            "p_max": 9.0,
        })
    assert status == 400
    assert doc["error"]["code"] == "unsupported_version"


def test_empty_command_batch_is_rejected():
    with LiveServer() as live:
        ack = live.client.open_session(p_max=9.0)
        status, doc = live.client.request(
            "POST", f"/v1/sessions/{ack['session']}/events",
            {"format": SESSION_COMMANDS_FORMAT,
             "version": SESSION_COMMANDS_VERSION, "commands": []})
    assert status == 400
    assert doc["error"]["code"] == "bad_request"


# ---------------------------------------------------------------------
# observability: flight recorder, trace propagation, metrics
# ---------------------------------------------------------------------


def test_session_requests_reach_flight_recorder_with_trace():
    with LiveServer() as live:
        client = live.client
        ack = client.open_session(p_max=9.0, name="obs")
        session_id = ack["session"]
        client.session_apply(session_id, [
            {"event": "arrival",
             "task": {"name": "a", "duration": 2, "power": 1.0}},
            {"event": "quiesce"},
        ])
        client.session(session_id)
        debug = client.debug_requests()
    records = [record for record in debug["requests"]
               if record.get("session") == session_id]
    endpoints = {record["endpoint"] for record in records}
    assert endpoints == {"v1.sessions", "v1.sessions.events",
                         "v1.sessions.id"}
    trace_id = client.trace_context[0]
    for record in records:
        assert record["trace_id"] == trace_id, \
            "session requests must join the client's trace"
        assert record["parent_span_id"], \
            "client span ids must arrive via the traceparent header"
        assert record["status"] == 200


def test_session_metrics_are_exported():
    with LiveServer() as live:
        ack = live.client.open_session(p_max=5.0)
        live.client.session_apply(ack["session"], [
            {"event": "arrival",
             "task": {"name": "a", "duration": 2, "power": 4.0}},
            {"event": "arrival",
             "task": {"name": "hog", "duration": 2, "power": 50.0}},
            {"event": "advance", "to": 3},
        ])
        live.client.close_session(ack["session"])
        status, text = live.client.request("GET", "/metrics")
    assert status == 200
    samples = dict(
        line.split(" ", 1) for line in text.splitlines()
        if line and not line.startswith("#"))
    assert float(samples["repro_session_opened"]) >= 1
    assert float(samples["repro_session_closed"]) >= 1
    assert float(samples["repro_session_admits"]) >= 1
    assert float(samples["repro_session_rejects"]) >= 1
    assert float(samples["repro_session_commits"]) >= 1
    assert float(samples["repro_session_live"]) == 0


# ---------------------------------------------------------------------
# doc conformance: replay every example in docs/online.md
# ---------------------------------------------------------------------


def test_doc_conformance_replay():
    """Replay every example in docs/online.md against a live server.

    Examples are replayed in document order on a fresh server
    (``ServingConfig(port=0, max_wait_ms=150)``, as the doc states),
    so session ids, event sequence numbers, and solved values are
    deterministic.
    """
    with open(DOC_PATH, encoding="utf-8") as handle:
        text = handle.read()
    examples = list(_parse_doc_examples(text))
    assert len(examples) >= 6, "doc lost its examples?"
    paths = {path for _m, path, *_rest in examples}
    assert "/v1/sessions" in paths
    assert any(path.endswith("/events") for path in paths)

    with LiveServer(ServingConfig(port=0, max_wait_ms=150.0)) as live:
        for method, path, body, status, language, block in examples:
            where = f"{method} {path} -> {status}"
            if language == "ndjson":
                expected = [json.loads(line) for line in block if line]
                session_id = path.split("/")[3]
                actual = list(live.client.session_send(
                    session_id, body["commands"]))
                _assert_like_doc(expected, actual, where)
            else:
                got_status, got_doc = live.client.request(
                    method, path, body)
                assert got_status == status, where
                expected = json.loads("\n".join(block))
                _assert_like_doc(expected, got_doc, where)


def test_formats_doc_covers_session_schemas():
    """docs/formats.md documents every session wire format at the
    version the code stamps."""
    with open(FORMATS_PATH, encoding="utf-8") as handle:
        text = handle.read()
    for name, version in [
            (SESSION_REQUEST_FORMAT, SESSION_REQUEST_VERSION),
            (SESSION_COMMANDS_FORMAT, SESSION_COMMANDS_VERSION),
            (SESSION_EVENT_FORMAT, SESSION_EVENT_VERSION),
            (SESSION_SCRIPT_FORMAT, SESSION_SCRIPT_VERSION)]:
        assert f"`{name}`, version {version}" in text, \
            f"formats.md is missing {name} v{version}"


def test_online_doc_names_every_event_kind():
    """The doc's event-kind enumeration stays complete."""
    with open(DOC_PATH, encoding="utf-8") as handle:
        text = handle.read()
    for kind in ("open", "admit", "reject", "commit", "replan",
                 "quiesce", "close", "error", "end"):
        assert f"`{kind}`" in text, f"doc never mentions {kind!r}"
