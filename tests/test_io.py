"""Unit tests for JSON serialization and the problem DSL."""

import pytest

from repro import SerializationError, schedule
from repro.examples_data import fig1_problem
from repro.io import (load_problem, load_problem_dsl, load_schedule,
                      parse_problem, problem_from_dict, problem_to_dict,
                      save_problem, save_schedule, schedule_from_dict,
                      schedule_to_dict)


class TestJsonProblems:
    def test_round_trip_preserves_everything(self):
        problem = fig1_problem()
        data = problem_to_dict(problem)
        rebuilt = problem_from_dict(data)
        assert rebuilt.name == problem.name
        assert rebuilt.p_max == problem.p_max
        assert rebuilt.p_min == problem.p_min
        assert rebuilt.graph.task_names() == problem.graph.task_names()
        assert sorted((e.src, e.dst, e.weight)
                      for e in rebuilt.graph.edges()) \
            == sorted((e.src, e.dst, e.weight)
                      for e in problem.graph.edges())

    def test_round_trip_solves_identically(self):
        problem = fig1_problem()
        rebuilt = problem_from_dict(problem_to_dict(problem))
        assert schedule(problem).schedule.as_dict() \
            == schedule(rebuilt).schedule.as_dict()

    def test_derived_edges_excluded_by_default(self):
        problem = fig1_problem()
        graph = problem.fresh_graph()
        graph.add_edge("a", "b", 1, tag="delay")
        from repro import SchedulingProblem
        decorated = SchedulingProblem(graph, p_max=16.0)
        data = problem_to_dict(decorated)
        tags = {e["tag"] for e in data["edges"]}
        assert tags == {"user"}

    def test_file_round_trip(self, tmp_path):
        problem = fig1_problem()
        path = str(tmp_path / "p.json")
        save_problem(problem, path)
        assert load_problem(path).name == problem.name

    def test_wrong_format_rejected(self):
        with pytest.raises(SerializationError):
            problem_from_dict({"format": "other", "tasks": []})

    def test_newer_version_rejected(self):
        data = problem_to_dict(fig1_problem())
        data["version"] = 99
        with pytest.raises(SerializationError):
            problem_from_dict(data)

    def test_missing_field_reported(self):
        with pytest.raises(SerializationError, match="missing"):
            problem_from_dict({"format": "repro-problem", "version": 1,
                               "tasks": [{"name": "a", "duration": 1}]})

    def test_corrupt_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_problem(str(path))


class TestJsonSchedules:
    def test_schedule_round_trip(self, tmp_path):
        problem = fig1_problem()
        result = schedule(problem)
        path = str(tmp_path / "s.json")
        save_schedule(result.schedule, path, problem_name=problem.name)
        loaded = load_schedule(path, problem.graph)
        assert loaded == result.schedule

    def test_dict_round_trip(self):
        problem = fig1_problem()
        result = schedule(problem)
        data = schedule_to_dict(result.schedule)
        assert data["makespan"] == result.finish_time
        rebuilt = schedule_from_dict(data, problem.graph)
        assert rebuilt == result.schedule


class TestChartJson:
    def test_chart_round_trips_through_json(self, tmp_path):
        import json

        from repro.gantt import chart_result
        from repro.io import chart_to_dict, save_chart
        from repro.examples_data import fig1_options
        from repro.scheduling import PowerAwareScheduler

        result = PowerAwareScheduler(fig1_options()).solve(
            fig1_problem())
        chart = chart_result(result)
        data = chart_to_dict(chart)
        assert data["format"] == "repro-chart"
        assert data["p_max"] == 16.0
        assert data["horizon"] == 20
        resources = {row["resource"] for row in data["rows"]}
        assert resources == {"A", "B", "C"}
        tasks = {b["task"] for row in data["rows"]
                 for b in row["bins"]}
        assert tasks == set("abcdefghi")
        # the final fig7 profile is flat 14 W
        assert data["profile"] == [[0, 20, 14.0]]
        assert data["spikes"] == [] and data["gaps"] == []

        path = save_chart(chart, str(tmp_path / "chart.json"))
        loaded = json.loads(open(path).read())
        assert loaded == json.loads(json.dumps(data))

    def test_bins_carry_slack(self):
        from repro.gantt import chart_result
        from repro.io import chart_to_dict

        result = schedule(fig1_problem())
        data = chart_to_dict(chart_result(result))
        slacks = [b["slack"] for row in data["rows"]
                  for b in row["bins"]]
        assert all(isinstance(s, int) and s >= 0 for s in slacks)


class TestDsl:
    GOOD = """
    # comment line
    problem demo pmax 16 pmin 14 baseline 1.5

    resource motor idle 0.5 kind mechanical
    task a motor 5 7.0
    task b laser 10 6.0

    precedence a b 2
    window a b 7 30
    release a 3
    deadline b 40
    """

    def test_parse_complete_problem(self):
        problem = parse_problem(self.GOOD)
        assert problem.name == "demo"
        assert problem.p_max == 16.0
        assert problem.p_min == 14.0
        assert problem.baseline == 1.5
        g = problem.graph
        assert g.task("a").power == 7.0
        assert g.resources["motor"].idle_power == 0.5
        assert g.separation("a", "b") == 7
        assert g.separation("b", "a") == -30

    def test_parse_solves(self):
        result = schedule(parse_problem(self.GOOD))
        assert result.metrics.spikes == 0

    def test_file_loading(self, tmp_path):
        path = tmp_path / "demo.txt"
        path.write_text(self.GOOD)
        assert load_problem_dsl(str(path)).name == "demo"

    def test_missing_header_rejected(self):
        with pytest.raises(SerializationError, match="problem"):
            parse_problem("task a R 5 1.0")

    def test_missing_pmax_rejected(self):
        with pytest.raises(SerializationError, match="pmax"):
            parse_problem("problem p\ntask a R 5 1.0")

    def test_unknown_statement_reports_line(self):
        text = "problem p pmax 10\nfrobnicate a b"
        with pytest.raises(SerializationError, match="line 2"):
            parse_problem(text)

    def test_malformed_task_reports_line(self):
        text = "problem p pmax 10\ntask a R five 1.0"
        with pytest.raises(SerializationError, match="line 2"):
            parse_problem(text)

    def test_empty_text_rejected(self):
        with pytest.raises(SerializationError):
            parse_problem("   \n# only comments\n")
