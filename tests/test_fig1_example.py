"""Narrative tests for the reconstructed Fig. 1 running example.

Every statement the paper makes about Figs. 1/2/5/7 must hold on the
reconstruction (see the derivation in ``repro.examples_data``).
"""

import pytest

from repro.core.task import ANCHOR_NAME
from repro.examples_data import (FIG1_P_MAX, FIG1_P_MIN, FIG1_TAU,
                                 fig1_graph, fig1_options, fig1_problem)
from repro.scheduling import PowerAwareScheduler


@pytest.fixture(scope="module")
def pipeline():
    return PowerAwareScheduler(fig1_options()).solve_pipeline(
        fig1_problem())


class TestFig1Structure:
    def test_nine_tasks_named_a_to_i(self):
        graph = fig1_graph()
        assert sorted(graph.task_names()) == list("abcdefghi")

    def test_three_resources(self):
        graph = fig1_graph()
        assert sorted(graph.resources.names) == ["A", "B", "C"]

    def test_rows(self):
        graph = fig1_graph()
        rows = {res: sorted(t.name for t in graph.tasks_on(res))
                for res in graph.resources.names}
        assert rows == {"A": ["a", "d", "g"], "B": ["b", "e", "h"],
                        "C": ["c", "f", "i"]}


class TestFig2TimeValid:
    def test_exactly_one_power_spike(self, pipeline):
        spikes = pipeline.timing.profile.spikes(FIG1_P_MAX)
        assert len(spikes) == 1
        assert spikes[0].extremum > FIG1_P_MAX

    def test_several_power_gaps(self, pipeline):
        """'Several' gaps: at least two distinct sub-P_min plateaus."""
        profile = pipeline.timing.profile
        low_segments = [seg for seg in profile.segments
                        if seg[2] < FIG1_P_MIN - 1e-9]
        assert len(low_segments) >= 2

    def test_finish_time(self, pipeline):
        assert pipeline.timing.finish_time == FIG1_TAU


class TestFig5MaxPower:
    def test_valid_after_max_power(self, pipeline):
        assert pipeline.max_power.metrics.spikes == 0

    def test_exactly_h_and_f_delayed(self, pipeline):
        """Paper: 'Tasks h and f are delayed to remove the power
        spike.'  The delay edges the scheduler added target exactly
        those two tasks."""
        graph = pipeline.max_power.extra["graph"]
        delayed = sorted(e.dst for e in graph.edges()
                         if e.src == ANCHOR_NAME and e.tag == "delay")
        assert delayed == ["f", "h"]

    def test_h_and_f_moved_relative_to_fig2(self, pipeline):
        before = pipeline.timing.schedule
        after = pipeline.max_power.schedule
        moved = {name for name, _, _ in before.differences(after)}
        assert moved == {"f", "h"}

    def test_performance_preserved(self, pipeline):
        assert pipeline.max_power.finish_time == FIG1_TAU


class TestFig7Improved:
    def test_full_min_power_utilization(self, pipeline):
        assert pipeline.min_power.utilization == pytest.approx(1.0)

    def test_utilization_strictly_improved(self, pipeline):
        assert pipeline.min_power.utilization \
            > pipeline.max_power.utilization

    def test_energy_cost_reduced_at_same_performance(self, pipeline):
        assert pipeline.min_power.finish_time == FIG1_TAU
        assert pipeline.min_power.energy_cost \
            < pipeline.max_power.energy_cost

    def test_validity_range_matches_paper(self, pipeline):
        """'The same schedule can be directly applied to all cases
        with P_max >= 16, P_min <= 14.'"""
        profile = pipeline.min_power.profile
        assert profile.peak() <= FIG1_P_MAX + 1e-9   # valid for >= 16
        assert profile.floor() >= FIG1_P_MIN - 1e-9  # full use for <= 14

    def test_final_profile_is_flat_14w(self, pipeline):
        """The reconstruction lands on the perfectly flat packing."""
        assert pipeline.min_power.profile.segments \
            == [(0, FIG1_TAU, pytest.approx(14.0))]
