"""Unit tests for the mission environment, policies, and simulator."""

import pytest

from repro.errors import ReproError
from repro.mission import (IterationPlan, JPLPolicy, MarsRover,
                           MissionEnvironment, MissionPolicy,
                           MissionSimulator, PowerAwarePolicy, SolarCase,
                           compare_reports, paper_mission_environment)
from repro.power import IdealBattery, StepSolar
from repro import PowerProfile


@pytest.fixture(scope="module")
def rover() -> MarsRover:
    return MarsRover.standard()


class TestEnvironment:
    def test_case_mapping_follows_solar(self):
        env = paper_mission_environment()
        assert env.case_at(0) is SolarCase.BEST
        assert env.case_at(600) is SolarCase.TYPICAL
        assert env.case_at(1200) is SolarCase.WORST
        assert env.case_at(99999) is SolarCase.WORST

    def test_nearest_case_for_intermediate_levels(self):
        env = MissionEnvironment(StepSolar([(0, 13.5)]))
        assert env.case_at(0) is SolarCase.BEST  # 13.5 closer to 14.9

    def test_constraints_track_solar(self):
        env = paper_mission_environment()
        assert env.constraints_at(0) == (pytest.approx(24.9),
                                         pytest.approx(14.9))
        assert env.constraints_at(1500) == (pytest.approx(19.0),
                                            pytest.approx(9.0))

    def test_invalid_battery_capacity_rejected(self):
        with pytest.raises(ReproError):
            paper_mission_environment(battery_capacity=0)


class TestPolicies:
    def test_jpl_plan_is_case_independent_in_time(self, rover):
        policy = JPLPolicy(rover)
        plans = [policy.next_iteration(case, 0.0) for case in SolarCase]
        assert len({p.duration for p in plans}) == 1
        # but the *power* differs with temperature
        energies = {round(p.profile.energy(), 1) for p in plans}
        assert len(energies) == 3

    def test_power_aware_plans_differ_by_case(self, rover):
        policy = PowerAwarePolicy(rover)
        typical = policy.next_iteration(SolarCase.TYPICAL, 0.0)
        worst = policy.next_iteration(SolarCase.WORST, 0.0)
        assert typical.duration < worst.duration

    def test_best_case_first_vs_steady(self, rover):
        policy = PowerAwarePolicy(rover)
        first = policy.next_iteration(SolarCase.BEST, 0.0)
        steady = policy.next_iteration(SolarCase.BEST, 50.0)
        assert first.label.endswith("first")
        assert steady.label.endswith("steady")
        policy.reset()
        again = policy.next_iteration(SolarCase.BEST, 0.0)
        assert again.label.endswith("first")

    def test_iteration_plan_validation(self):
        profile = PowerProfile([(0, 5, 1.0)])
        with pytest.raises(ReproError):
            IterationPlan(label="x", duration=0, steps=2,
                          profile=profile)
        with pytest.raises(ReproError):
            IterationPlan(label="x", duration=5, steps=0,
                          profile=profile)


class _ConstantPolicy(MissionPolicy):
    """Test double: fixed 10 s / 2 step iterations at constant power."""

    name = "constant"

    def __init__(self, power: float = 12.0):
        self.profile = PowerProfile([(0, 10, power)])

    def next_iteration(self, case, mission_time):
        return IterationPlan(label="const", duration=10, steps=2,
                             profile=self.profile)


class TestSimulator:
    def test_runs_until_target(self):
        env = paper_mission_environment()
        report = MissionSimulator(env, _ConstantPolicy(), 10).run()
        assert report.total_steps == 10
        assert report.total_time == pytest.approx(50.0)
        assert report.completed

    def test_energy_cost_respects_solar_trace(self):
        env = MissionEnvironment(StepSolar([(0, 14.9), (20, 9.0)]))
        report = MissionSimulator(env, _ConstantPolicy(12.0), 8).run()
        # first 20 s free (12 < 14.9), last 20 s draw 3 W above solar
        assert report.total_energy_cost == pytest.approx(3.0 * 20)

    def test_battery_depletion_aborts(self):
        env = MissionEnvironment(StepSolar([(0, 0.0)]),
                                 IdealBattery(capacity=50.0,
                                              max_power=20.0))
        report = MissionSimulator(env, _ConstantPolicy(10.0), 100).run()
        assert report.battery_depleted
        assert not report.completed

    def test_invalid_target_rejected(self):
        with pytest.raises(ReproError):
            MissionSimulator(paper_mission_environment(),
                             _ConstantPolicy(), 0)

    def test_phase_grouping(self):
        env = paper_mission_environment()
        report = MissionSimulator(env, _ConstantPolicy(), 300).run()
        phases = report.phases()
        assert [p.solar for p in phases] == [14.9, 12.0, 9.0]
        assert sum(p.steps for p in phases) == report.total_steps

    def test_compare_reports_math(self):
        env = paper_mission_environment()
        a = MissionSimulator(env, _ConstantPolicy(14.0), 40).run()
        b = MissionSimulator(paper_mission_environment(),
                             _ConstantPolicy(14.0), 40).run()
        comparison = compare_reports(a, b)
        assert comparison["time_improvement_pct"] == pytest.approx(0.0)
        assert comparison["energy_improvement_pct"] == pytest.approx(0.0)

    def test_compare_rejects_empty_baseline(self):
        report = MissionSimulator(paper_mission_environment(),
                                  _ConstantPolicy(), 2).run()
        empty = MissionSimulator(paper_mission_environment(),
                                 _ConstantPolicy(), 2).run()
        empty.iterations.clear()
        with pytest.raises(ReproError):
            compare_reports(empty, report)

    def test_summary_text(self):
        report = MissionSimulator(paper_mission_environment(),
                                  _ConstantPolicy(), 4).run()
        assert "completed" in report.summary()
