"""Unit tests for the min-power scheduler (paper Fig. 6)."""

import pytest

from repro import (ConstraintGraph, MaxPowerScheduler, MinPowerScheduler,
                   SchedulerOptions, SchedulingProblem,
                   check_power_valid, min_power_schedule)
from repro.examples_data import fig1_options, fig1_problem


def gap_problem() -> SchedulingProblem:
    """A movable task can fill the gap behind a fixed chain.

    Chain x(6W) -> y(6W) occupies [0,10) on resource A; task m (6 W,
    slack-rich) idles the interval [10, 20) unless delayed; with
    P_min = 6 the min-power scheduler should slide m right to keep the
    profile at the free level longer.
    """
    g = ConstraintGraph("gap")
    g.new_task("x", duration=5, power=6.0, resource="A")
    g.new_task("y", duration=5, power=6.0, resource="A")
    g.add_precedence("x", "y")
    g.new_task("m", duration=5, power=6.0, resource="B")
    g.new_task("end", duration=5, power=6.0, resource="A")
    g.add_precedence("y", "end", gap=5)  # hole in [10, 15)
    return SchedulingProblem(g, p_max=20.0, p_min=6.0)


class TestGapFilling:
    def test_gap_filled_and_cost_reduced(self):
        problem = gap_problem()
        base = MaxPowerScheduler().solve(problem)
        improved = MinPowerScheduler().improve(problem, base)
        assert improved.utilization >= base.utilization
        assert improved.energy_cost <= base.energy_cost + 1e-9
        # m should have been moved into the [10, 15) hole
        assert improved.schedule.start("m") == 10

    def test_finish_time_never_increases(self):
        problem = gap_problem()
        base = MaxPowerScheduler().solve(problem)
        improved = MinPowerScheduler().improve(problem, base)
        assert improved.finish_time <= base.finish_time

    def test_result_stays_valid(self):
        problem = gap_problem()
        result = min_power_schedule(problem)
        assert check_power_valid(result.schedule, problem.p_max).ok

    def test_no_op_when_p_min_zero(self):
        problem = gap_problem().with_power_constraints(p_max=20.0,
                                                       p_min=0.0)
        base = MaxPowerScheduler().solve(problem)
        improved = MinPowerScheduler().improve(problem, base)
        assert improved.schedule == base.schedule

    def test_no_op_at_full_utilization(self):
        g = ConstraintGraph()
        g.new_task("a", duration=5, power=6.0, resource="A")
        problem = SchedulingProblem(g, p_max=10.0, p_min=6.0)
        result = min_power_schedule(problem)
        assert result.utilization == pytest.approx(1.0)

    def test_stage_label(self):
        result = min_power_schedule(gap_problem())
        assert result.stage == "min_power"


class TestHeuristicConfigurations:
    def test_single_scan_not_better_than_multi(self):
        problem = gap_problem()
        single = min_power_schedule(
            problem, SchedulerOptions(min_power_scans=1,
                                      scan_orders=("forward",),
                                      slot_heuristics=("start_at_gap",)))
        multi = min_power_schedule(
            problem, SchedulerOptions(min_power_scans=9))
        assert multi.utilization >= single.utilization - 1e-12

    def test_deterministic_for_fixed_seed(self):
        a = min_power_schedule(gap_problem(), SchedulerOptions(seed=11))
        b = min_power_schedule(gap_problem(), SchedulerOptions(seed=11))
        assert a.schedule == b.schedule

    def test_random_slot_heuristic_valid(self):
        options = SchedulerOptions(slot_heuristics=("random",), seed=3)
        result = min_power_schedule(gap_problem(), options)
        problem = gap_problem()
        assert check_power_valid(result.schedule, problem.p_max).ok

    def test_reverse_scan_order_valid(self):
        options = SchedulerOptions(scan_orders=("reverse",))
        result = min_power_schedule(gap_problem(), options)
        assert result.metrics.spikes == 0


class TestPaperExample:
    def test_fig7_reaches_full_utilization(self):
        result = min_power_schedule(fig1_problem(), fig1_options())
        assert result.utilization == pytest.approx(1.0)
        assert result.profile.floor() == pytest.approx(14.0)
        assert result.metrics.peak_power <= 16.0 + 1e-9
