"""Unit tests for solar models, batteries, and the hybrid supply."""

import pytest

from repro.errors import ReproError
from repro.power import (AbsorbReport, BatteryDepletedError,
                         ConstantSolar, DiurnalSolar, IdealBattery,
                         PowerSystem, RateCapacityBattery, StepSolar)
from repro import PowerProfile


class TestSolarModels:
    def test_constant(self):
        solar = ConstantSolar(12.0)
        assert solar.power(0) == 12.0
        assert solar.power(1e6) == 12.0
        assert solar.energy(0, 10) == pytest.approx(120.0)

    def test_negative_level_rejected(self):
        with pytest.raises(ReproError):
            ConstantSolar(-1.0)

    def test_step_levels_and_breakpoints(self):
        solar = StepSolar([(0, 14.9), (600, 12.0), (1200, 9.0)])
        assert solar.power(0) == 14.9
        assert solar.power(599.9) == 14.9
        assert solar.power(600) == 12.0
        assert solar.power(5000) == 9.0
        assert solar.breakpoints(0, 1800) == [600, 1200]
        assert solar.breakpoints(700, 1100) == []

    def test_step_energy_across_boundary(self):
        solar = StepSolar([(0, 10.0), (10, 5.0)])
        assert solar.energy(5, 15) == pytest.approx(10 * 5 + 5 * 5)

    def test_step_must_start_at_zero(self):
        with pytest.raises(ReproError):
            StepSolar([(5, 10.0)])

    def test_paper_mission_trace(self):
        solar = StepSolar.paper_mission()
        assert solar.power(0) == 14.9
        assert solar.power(600) == 12.0
        assert solar.power(1200) == 9.0

    def test_diurnal_shape(self):
        solar = DiurnalSolar(peak=20.0, dawn=0, dusk=100)
        assert solar.power(0) == 0.0
        assert solar.power(50) == pytest.approx(20.0)
        assert solar.power(100) == 0.0
        assert 0 < solar.power(25) < 20.0

    def test_diurnal_energy_positive(self):
        solar = DiurnalSolar(peak=10.0, dawn=0, dusk=100, resolution=1)
        energy = solar.energy(0, 100)
        # integral of a half sine: 2/pi * peak * span ~ 636
        assert energy == pytest.approx(2 / 3.141592653589793 * 1000,
                                       rel=0.01)


class TestBatteries:
    def test_ideal_draw_and_remaining(self):
        battery = IdealBattery(capacity=100.0, max_power=10.0)
        used = battery.draw(5.0, 10.0)
        assert used == pytest.approx(50.0)
        assert battery.remaining == pytest.approx(50.0)

    def test_ideal_depletion(self):
        battery = IdealBattery(capacity=10.0)
        with pytest.raises(BatteryDepletedError):
            battery.draw(5.0, 10.0)

    def test_max_power_enforced(self):
        battery = IdealBattery(capacity=1000.0, max_power=10.0)
        with pytest.raises(ReproError):
            battery.draw(12.0, 1.0)

    def test_rate_capacity_penalty_above_rated(self):
        battery = RateCapacityBattery(capacity=1000.0, max_power=10.0,
                                      rated_power=5.0, alpha=0.5)
        assert battery.inefficiency(5.0) == 1.0
        assert battery.inefficiency(10.0) == pytest.approx(1.5)
        charge = battery.draw(10.0, 10.0)  # delivers 100 J
        assert charge == pytest.approx(150.0)

    def test_rate_capacity_lossless_below_rated(self):
        battery = RateCapacityBattery(capacity=100.0, rated_power=5.0,
                                      alpha=0.5)
        assert battery.draw(4.0, 10.0) == pytest.approx(40.0)

    def test_flat_draw_cheaper_than_spiky_same_energy(self):
        """The jitter argument: same delivered energy, less charge."""
        flat = RateCapacityBattery(capacity=1000.0, rated_power=5.0,
                                   alpha=1.0)
        spiky = RateCapacityBattery(capacity=1000.0, rated_power=5.0,
                                    alpha=1.0)
        flat.draw(5.0, 20.0)            # 100 J at rated power
        spiky.draw(10.0, 10.0)          # 100 J at double rated power
        assert flat.used < spiky.used


class TestPowerSystem:
    def test_constraints(self):
        system = PowerSystem(ConstantSolar(12.0),
                             IdealBattery(capacity=100.0,
                                          max_power=10.0))
        assert system.p_max(0) == pytest.approx(22.0)
        assert system.p_min(0) == pytest.approx(12.0)
        assert system.constraints_at(0) == (22.0, 12.0)

    def test_absorb_splits_free_and_costly(self):
        system = PowerSystem(ConstantSolar(10.0),
                             IdealBattery(capacity=1000.0,
                                          max_power=10.0))
        profile = PowerProfile([(0, 5, 14.0), (5, 10, 6.0)])
        report = system.absorb(profile)
        assert isinstance(report, AbsorbReport)
        assert report.consumed == pytest.approx(100.0)
        assert report.battery_delivered == pytest.approx(20.0)
        assert report.free_used == pytest.approx(80.0)
        assert report.free_wasted == pytest.approx(20.0)
        assert report.utilization == pytest.approx(0.8)

    def test_absorb_honours_solar_steps(self):
        system = PowerSystem(StepSolar([(0, 10.0), (5, 2.0)]),
                             IdealBattery(capacity=1000.0,
                                          max_power=10.0))
        profile = PowerProfile([(0, 10, 8.0)])
        report = system.absorb(profile)
        # first 5 s fully solar, last 5 s draws 6 W from battery
        assert report.battery_delivered == pytest.approx(30.0)

    def test_absorb_rejects_overdraw(self):
        system = PowerSystem(ConstantSolar(5.0),
                             IdealBattery(capacity=1000.0,
                                          max_power=3.0))
        profile = PowerProfile([(0, 5, 10.0)])  # needs 5 W above solar
        with pytest.raises(ReproError):
            system.absorb(profile)

    def test_absorb_depletes_battery(self):
        system = PowerSystem(ConstantSolar(0.0),
                             IdealBattery(capacity=10.0,
                                          max_power=10.0))
        profile = PowerProfile([(0, 10, 5.0)])
        with pytest.raises(BatteryDepletedError):
            system.absorb(profile)
