"""Unit tests for the simulated-annealing improver."""

import pytest

from repro import (ConstraintGraph, Schedule, SchedulingProblem,
                   ValidationError, check_power_valid, schedule,
                   serial_schedule)
from repro.errors import ReproError
from repro.scheduling import AnnealingImprover, anneal
from repro.workloads import independent


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ReproError):
            AnnealingImprover(iterations=0)
        with pytest.raises(ReproError):
            AnnealingImprover(cooling=1.0)
        with pytest.raises(ReproError):
            AnnealingImprover(initial_temperature=0)

    def test_rejects_invalid_start(self):
        g = ConstraintGraph()
        g.new_task("a", duration=5, power=6.0, resource="R")
        g.new_task("b", duration=5, power=6.0, resource="R")
        problem = SchedulingProblem(g, p_max=10.0)
        overlap = Schedule(g, {"a": 0, "b": 2})
        with pytest.raises(ValidationError):
            anneal(problem, overlap, iterations=10)


class TestImprovement:
    def test_never_worse_than_start(self):
        problem = independent(4, duration=5, power=4.0, p_max=10.0,
                              p_min=4.0)
        base = serial_schedule(problem)
        result = anneal(problem, base.schedule, iterations=800)
        assert (result.finish_time, result.energy_cost) \
            <= (base.finish_time, base.energy_cost + 1e-9)

    def test_finds_parallel_packing_from_serial(self):
        """From the 20 s serial schedule of four 4 W tasks under a
        10 W budget, annealing should discover 2-at-a-time packing
        (10 s), which the serial baseline cannot."""
        problem = independent(4, duration=5, power=4.0, p_max=10.0)
        base = serial_schedule(problem)
        assert base.finish_time == 20
        result = anneal(problem, base.schedule, iterations=3000,
                        seed=5)
        assert result.finish_time <= 15
        assert check_power_valid(result.schedule, problem.p_max).ok

    def test_result_always_valid(self):
        problem = independent(5, duration=3, power=3.0, p_max=7.0,
                              p_min=3.0)
        base = schedule(problem)
        result = anneal(problem, base.schedule, iterations=500)
        report = check_power_valid(result.schedule, problem.p_max)
        assert report.ok

    def test_deterministic_per_seed(self):
        problem = independent(4, duration=5, power=4.0, p_max=10.0)
        base = serial_schedule(problem)
        a = anneal(problem, base.schedule, iterations=400, seed=3)
        b = anneal(problem, base.schedule, iterations=400, seed=3)
        assert a.schedule == b.schedule

    def test_respects_constraints_while_reordering(self):
        g = ConstraintGraph("c")
        g.new_task("a", duration=4, power=5.0, resource="R")
        g.new_task("b", duration=4, power=5.0, resource="S")
        g.add_separation_window("a", "b", 2, 10)
        problem = SchedulingProblem(g, p_max=8.0, p_min=0.0)
        base = schedule(problem)
        result = anneal(problem, base.schedule, iterations=600)
        start_gap = result.schedule.start("b") \
            - result.schedule.start("a")
        assert 2 <= start_gap <= 10

    def test_empty_problem(self):
        problem = SchedulingProblem(ConstraintGraph("e"), p_max=5.0)
        base = schedule(problem)
        result = anneal(problem, base.schedule, iterations=5)
        assert result.finish_time == 0

    def test_stage_and_keys(self):
        problem = independent(3, duration=2, power=2.0, p_max=6.0)
        base = schedule(problem)
        result = anneal(problem, base.schedule, iterations=50)
        assert result.stage == "annealed"
        assert result.extra["best_key"] <= result.extra["start_key"]
