"""Cross-cutting edge cases: degenerate problems through the full
pipeline.

These are the inputs a downstream user will eventually feed the
library: empty graphs, single tasks, milestones, exactly-tight budgets,
P_min == P_max, huge separations.  Each must either work or fail with
the library's own exception types — never an internal error.
"""

import pytest

from repro import (ConstraintGraph, GraphError, PowerProfile, Schedule,
                   SchedulerOptions, SchedulingFailure,
                   SchedulingProblem, schedule, serial_schedule)

FAST = SchedulerOptions(max_power_restarts=1, min_power_scans=1, seed=2)


class TestDegenerateProblems:
    def test_empty_graph(self):
        problem = SchedulingProblem(ConstraintGraph("empty"), p_max=5.0)
        result = schedule(problem, FAST)
        assert result.finish_time == 0
        assert result.metrics.total_energy == 0.0

    def test_single_task(self):
        g = ConstraintGraph()
        g.new_task("only", duration=7, power=3.0, resource="R")
        result = schedule(SchedulingProblem(g, p_max=5.0), FAST)
        assert result.schedule.start("only") == 0
        assert result.finish_time == 7

    def test_milestones_only(self):
        g = ConstraintGraph()
        g.new_task("m1", duration=0)
        g.new_task("m2", duration=0)
        g.add_min_separation("m1", "m2", 10)
        result = schedule(SchedulingProblem(g, p_max=5.0), FAST)
        assert result.schedule.start("m2") >= 10
        assert result.metrics.total_energy == 0.0

    def test_exactly_tight_budget(self):
        """Task power + baseline == P_max: legal, zero headroom."""
        g = ConstraintGraph()
        g.new_task("t", duration=4, power=4.0, resource="R")
        result = schedule(SchedulingProblem(g, p_max=5.0, baseline=1.0),
                          FAST)
        assert result.metrics.spikes == 0

    def test_p_min_equals_p_max(self):
        g = ConstraintGraph()
        g.new_task("a", duration=5, power=5.0, resource="A")
        g.new_task("b", duration=5, power=5.0, resource="B")
        problem = SchedulingProblem(g, p_max=5.0, p_min=5.0)
        result = schedule(problem, FAST)
        # the only valid shape is serial, which exactly rides P_min
        assert result.finish_time == 10
        assert result.utilization == pytest.approx(1.0)

    def test_zero_p_max_with_powerless_tasks(self):
        g = ConstraintGraph()
        g.new_task("a", duration=3, power=0.0)
        result = schedule(SchedulingProblem(g, p_max=0.0), FAST)
        assert result.finish_time == 3

    def test_huge_separation_is_fine(self):
        g = ConstraintGraph()
        g.new_task("a", duration=1, power=1.0)
        g.new_task("b", duration=1, power=1.0)
        g.add_min_separation("a", "b", 10_000)
        result = schedule(SchedulingProblem(g, p_max=5.0, p_min=0.0),
                          FAST)
        assert result.schedule.start("b") == 10_000

    def test_infeasible_window_fails_cleanly(self):
        g = ConstraintGraph()
        g.new_task("a", duration=5, power=4.0, resource="R")
        g.new_task("b", duration=5, power=4.0, resource="R")
        g.add_separation_window("a", "b", 0, 3)  # same resource: d=5
        with pytest.raises(SchedulingFailure):
            schedule(SchedulingProblem(g, p_max=10.0), FAST)

    def test_serial_on_empty_graph(self):
        problem = SchedulingProblem(ConstraintGraph("empty"), p_max=5.0)
        assert serial_schedule(problem, FAST).finish_time == 0


class TestGraphEdgeCases:
    def test_merge_name_clash_rejected(self):
        a = ConstraintGraph("a")
        a.new_task("x", duration=1)
        b = ConstraintGraph("b")
        b.new_task("x", duration=1)
        with pytest.raises(GraphError):
            a.merge(b)  # no prefix -> duplicate name

    def test_merge_same_graph_twice_with_prefixes(self):
        base = ConstraintGraph("base")
        base.new_task("x", duration=2, power=1.0, resource="R")
        combined = ConstraintGraph("combined")
        combined.merge(base, prefix="i1_")
        combined.merge(base, prefix="i2_")
        assert len(combined) == 2
        assert "i1_x" in combined and "i2_x" in combined

    def test_profile_of_milestone_only_schedule(self):
        g = ConstraintGraph()
        g.new_task("m", duration=0)
        profile = PowerProfile.from_schedule(Schedule(g, {"m": 5}))
        # milestone at t=5 still defines a 5-unit horizon of silence
        assert profile.horizon in (0, 5)
        assert profile.energy() == 0.0

    def test_schedule_power_at_beyond_horizon(self):
        g = ConstraintGraph()
        g.new_task("a", duration=2, power=3.0)
        s = Schedule(g, {"a": 0})
        assert s.power_at(99) == 0.0
