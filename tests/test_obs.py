"""Unit tests for the instrumentation layer (repro.obs)."""

import json

import pytest

from repro import ConstraintGraph, SchedulingProblem
from repro.engine import (BatchRunner, RunnerConfig, SolveJob,
                          load_trace, read_trace)
from repro.engine.trace import RunTrace
from repro.errors import ReproError
from repro.obs import (HISTOGRAM_LIMIT, OBS, Capture, MetricsRegistry,
                       Span, absorb_scheduler_stats, chrome_trace,
                       jsonl_lines, prometheus_text, quantile,
                       spans_from_doc, summarize_trace)
from repro.scheduling import SchedulerStats


@pytest.fixture(autouse=True)
def _clean_recorder():
    """Every test starts and ends with the singleton disabled+empty."""
    OBS.reset()
    yield
    OBS.reset()


def tiny_problem(p_max: float = 14.0) -> SchedulingProblem:
    g = ConstraintGraph("tiny")
    g.new_task("a", duration=5, power=8.0, resource="A")
    g.new_task("b", duration=10, power=6.0, resource="B")
    g.add_precedence("a", "b")
    return SchedulingProblem(g, p_max=p_max, p_min=10.0, baseline=1.0)


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------

class TestSpans:
    def test_disabled_is_noop(self):
        assert not OBS.enabled
        with OBS.span("a", key="v") as sp:
            sp.set(more=1)
            OBS.event("evt")
        assert OBS.collect() == []
        assert len(OBS.metrics) == 0

    def test_nesting_builds_a_tree(self):
        OBS.enable()
        with OBS.span("outer") as outer:
            with OBS.span("inner.1"):
                OBS.event("tick", n=1)
            with OBS.span("inner.2") as inner:
                inner.set(label="x")
        [root] = OBS.collect()
        assert root is outer
        assert [c.name for c in root.children] == ["inner.1", "inner.2"]
        assert root.children[0].events[0]["name"] == "tick"
        assert root.children[1].attrs["label"] == "x"
        assert root.end is not None
        assert all(c.start >= root.start and c.end <= root.end
                   for c in root.children)

    def test_exception_closes_span_and_marks_error(self):
        OBS.enable()
        with pytest.raises(ValueError):
            with OBS.span("will.fail"):
                raise ValueError("boom")
        [root] = OBS.collect()
        assert root.attrs["error"] == "ValueError"
        assert root.end is not None

    def test_walk_is_depth_first(self):
        root = Span("r", 0.0, 3.0)
        root.children = [Span("a", 0.0, 1.0), Span("b", 1.0, 2.0)]
        root.children[0].children = [Span("a1", 0.0, 0.5)]
        names = [(depth, sp.name) for depth, sp in root.walk()]
        assert names == [(0, "r"), (1, "a"), (2, "a1"), (1, "b")]

    def test_shift_translates_subtree_and_events(self):
        root = Span("r", 1.0, 2.0)
        root.events = [{"name": "e", "at": 1.5, "attrs": {}}]
        root.children = [Span("c", 1.2, 1.8)]
        root.shift(10.0)
        assert root.start == 11.0 and root.end == 12.0
        assert root.events[0]["at"] == 11.5
        assert root.children[0].start == 11.2

    def test_round_trip_dict(self):
        root = Span("r", 0.25, 1.5, attrs={"k": "v"})
        root.events = [{"name": "e", "at": 0.5, "attrs": {"n": 1}}]
        root.children = [Span("c", 0.3, 0.9)]
        clone = Span.from_dict(root.to_dict())
        assert clone.to_dict() == root.to_dict()

    def test_capture_isolates_and_restores(self):
        OBS.enable()
        with OBS.span("outer.before"):
            pass
        with Capture(OBS) as cap:
            with OBS.span("inside"):
                OBS.metrics.counter("inside.count").inc()
        # the capture's spans/metrics never leak into the outer session
        assert [sp.name for sp in cap.spans] == ["inside"]
        assert cap.metrics_data["counters"] == {"inside.count": 1}
        assert cap.wall0 > 0
        assert [sp.name for sp in OBS.collect()] == ["outer.before"]
        assert "inside.count" not in OBS.metrics

    def test_capture_works_when_disabled(self):
        assert not OBS.enabled
        with OBS.capture() as cap:
            assert OBS.enabled
            with OBS.span("w"):
                pass
        assert not OBS.enabled
        assert [sp.name for sp in cap.spans] == ["w"]


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------

class TestMetrics:
    def test_quantiles_nearest_rank(self):
        values = sorted(float(v) for v in range(1, 101))
        assert quantile(values, 0.50) == 51.0
        assert quantile(values, 0.95) == 95.0
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 100.0
        assert quantile([], 0.5) == 0.0

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        h = registry.histogram("h")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        summary = h.summary()
        assert summary["count"] == 4 and summary["sum"] == 10.0
        assert summary["min"] == 1.0 and summary["max"] == 4.0

    def test_histogram_bounds_raw_values(self):
        h = MetricsRegistry().histogram("h")
        for v in range(HISTOGRAM_LIMIT + 10):
            h.observe(float(v))
        assert h.count == HISTOGRAM_LIMIT + 10
        assert len(h.values) == HISTOGRAM_LIMIT
        assert h.maximum == float(HISTOGRAM_LIMIT + 9)

    def test_name_collision_across_kinds_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_merge_data_is_exact(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        a.histogram("h").observe(1.0)
        b.counter("c").inc(3)
        b.gauge("g").set(7.0)
        b.histogram("h").observe(2.0)
        a.merge_data(b.data())
        assert a.counter("c").value == 5
        assert a.gauge("g").value == 7.0
        assert a.histogram("h").summary()["count"] == 2
        assert a.histogram("h").summary()["sum"] == 3.0

    def test_absorb_scheduler_stats_naming(self):
        registry = MetricsRegistry()
        stats = SchedulerStats(lp_full_runs=4, timing_backtracks=2)
        stats.stage_seconds["timing"] = 0.25
        absorb_scheduler_stats(registry, stats.as_dict())
        assert registry.counter("sched.lp.full_runs").value == 4
        assert registry.counter("sched.timing.backtracks").value == 2
        assert registry.histogram("sched.stage.timing.seconds") \
            .summary()["sum"] == 0.25


class TestSchedulerStatsMerge:
    def test_stage_seconds_accumulate_across_nested_runs(self):
        total = SchedulerStats()
        for seconds in (0.5, 0.25, 0.125):
            inner = SchedulerStats(longest_path_runs=1)
            inner.stage_seconds["timing"] = seconds
            inner.stage_seconds["max_power"] = 2 * seconds
            total.merge(inner)
        assert total.longest_path_runs == 3
        assert total.stage_seconds["timing"] == pytest.approx(0.875)
        assert total.stage_seconds["max_power"] == pytest.approx(1.75)

    def test_merge_keeps_disjoint_stages(self):
        left = SchedulerStats()
        left.stage_seconds["timing"] = 1.0
        right = SchedulerStats()
        right.stage_seconds["min_power"] = 2.0
        left.merge(right)
        assert left.stage_seconds == {"timing": 1.0, "min_power": 2.0}


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------

def _sample_spans():
    """Serialized span forest, the exporters' input form."""
    root = Span("engine.run", 0.0, 2.0, attrs={"jobs": 2})
    job = Span("engine.job", 0.1, 1.0, attrs={"position": 0})
    job.events = [{"name": "tick", "at": 0.5, "attrs": {"n": 1}}]
    root.children = [job]
    return [root.to_dict()]


def _sample_metrics():
    registry = MetricsRegistry()
    registry.counter("engine.run.jobs").inc(2)
    registry.gauge("engine.cache.entries").set(2)
    registry.histogram("engine.job.seconds").observe(0.9)
    return registry.snapshot()


class TestExporters:
    def test_chrome_trace_events(self):
        doc = chrome_trace(_sample_spans(), _sample_metrics())
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {e["name"] for e in complete} == \
            {"engine.run", "engine.job"}
        assert [e["name"] for e in instants] == ["tick"]
        # microseconds, with durations attached to complete events
        run = next(e for e in complete if e["name"] == "engine.run")
        assert run["ts"] == 0 and run["dur"] == 2_000_000
        # the job span gets its own lane from its position attr
        job = next(e for e in complete if e["name"] == "engine.job")
        assert job["tid"] != run["tid"]
        assert doc["otherData"]["engine.run.jobs"] == 2

    def test_jsonl_stream(self):
        records = [json.loads(line) for line in
                   jsonl_lines(_sample_spans(), _sample_metrics())]
        spans = [r for r in records if r["type"] == "span"]
        assert [s["name"] for s in spans] == ["engine.run", "engine.job"]
        assert spans[1]["parent"] == "engine.run"
        assert spans[1]["depth"] == 1
        kinds = {r["type"] for r in records}
        assert {"counter", "gauge", "histogram", "event"} <= kinds

    def test_prometheus_text(self):
        text = prometheus_text(_sample_metrics())
        assert "# TYPE repro_engine_run_jobs counter" in text
        assert "repro_engine_run_jobs 2" in text
        assert "# TYPE repro_engine_job_seconds summary" in text
        assert 'repro_engine_job_seconds{quantile="0.50"} 0.9' in text
        assert "repro_engine_job_seconds_count 1" in text


# ----------------------------------------------------------------------
# trace schema v2
# ----------------------------------------------------------------------

class TestTraceSchemaV2:
    def _run_instrumented(self, tmp_path, workers=0):
        path = str(tmp_path / f"trace_w{workers}.json")
        runner = BatchRunner(RunnerConfig(workers=workers,
                                          trace_path=path,
                                          instrument=True))
        jobs = [SolveJob(problem=tiny_problem(p_max=p))
                for p in (14.0, 15.0, 16.0)]
        runner.run(jobs)
        return path

    def test_v2_round_trip_identical_span_tree(self, tmp_path):
        path = self._run_instrumented(tmp_path)
        trace = read_trace(path)
        assert trace.to_dict()["version"] == 2
        rewritten = str(tmp_path / "rewritten.json")
        trace.write(rewritten)
        again = read_trace(rewritten)
        assert again.to_dict() == trace.to_dict()
        # the span tree survives a full decode into Span objects
        [run_doc] = spans_from_doc(trace.to_dict())
        run_span = Span.from_dict(run_doc)
        assert run_span.name == "engine.run"
        assert [c.name for c in run_span.children] == \
            ["engine.job"] * 3
        assert run_span.to_dict() == run_doc

    def test_v1_documents_still_readable(self, tmp_path):
        v1 = {
            "format": "repro-trace",
            "version": 1,
            "run": {"jobs": 1, "unique_solved": 1, "cache_hits": 0,
                    "failed": 0, "mode": "serial", "workers": 0,
                    "elapsed_s": 0.1},
            "cache": {"hits": 0, "misses": 1, "entries": 1},
            "stage_seconds": {"timing": 0.05},
            "counters": {"lp_full_runs": 3},
            "jobs": [{"position": 0, "key": "abc", "cached": False,
                      "ok": True, "attempts": 1, "elapsed_s": 0.1,
                      "stage_seconds": {"timing": 0.05},
                      "counters": {}}],
        }
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(v1))
        trace = read_trace(str(path))
        assert trace.run["jobs"] == 1
        assert trace.spans == [] and trace.metrics == {}
        assert load_trace(v1).jobs[0].key == "abc"
        # and the summarizer copes with the span-free document
        digest = summarize_trace(v1)
        assert "repro-trace v1" in digest

    def test_unknown_version_rejected(self):
        with pytest.raises(ReproError):
            RunTrace.from_dict({"format": "repro-trace", "version": 99})
        with pytest.raises(ReproError):
            RunTrace.from_dict({"format": "other", "version": 2})

    def test_serial_and_parallel_agree(self, tmp_path):
        serial = json.loads(open(
            self._run_instrumented(tmp_path, workers=0)).read())
        parallel = json.loads(open(
            self._run_instrumented(tmp_path, workers=2)).read())

        def tree_shape(span_doc):
            return (span_doc["name"],
                    tuple(sorted(tree_shape(c) for c in
                                 span_doc.get("children", []))))

        def job_trees(doc):
            [run] = doc["spans"]
            return sorted(tree_shape(job) for job in run["children"])

        assert job_trees(serial) == job_trees(parallel)

        def counters(doc):
            return {name: m["value"]
                    for name, m in doc["metrics"].items()
                    if m["type"] == "counter"}

        assert counters(serial) == counters(parallel)

        def histogram_counts(doc):
            return {name: m["count"]
                    for name, m in doc["metrics"].items()
                    if m["type"] == "histogram"}

        assert histogram_counts(serial) == histogram_counts(parallel)

    def test_uninstrumented_trace_has_no_spans(self, tmp_path):
        path = str(tmp_path / "plain.json")
        runner = BatchRunner(RunnerConfig(trace_path=path))
        runner.run([SolveJob(problem=tiny_problem())])
        doc = json.loads(open(path).read())
        assert doc["version"] == 2
        assert doc["run"]["instrumented"] is False
        assert doc["spans"] == [] and doc["metrics"] == {}

    def test_enabled_singleton_adopts_run_span(self, tmp_path):
        OBS.enable()
        runner = BatchRunner(RunnerConfig())
        runner.run([SolveJob(problem=tiny_problem())])
        roots = OBS.collect()
        assert any(sp.name == "engine.run" for sp in roots)


# ----------------------------------------------------------------------
# reservoir sampling + sharded metrics-merge equivalence
# ----------------------------------------------------------------------

class TestReservoirHistograms:
    def test_reservoir_is_uniform_not_first_n(self):
        """Past the limit, retained samples must span the whole
        stream, not just its first HISTOGRAM_LIMIT values."""
        h = MetricsRegistry().histogram("lat")
        n = 4 * HISTOGRAM_LIMIT
        for v in range(n):
            h.observe(float(v))
        late = sum(1 for v in h.values if v >= n / 2)
        # The old first-N capture kept zero late samples; a uniform
        # reservoir keeps about half (allow a wide deterministic band).
        assert 0.3 * HISTOGRAM_LIMIT < late < 0.7 * HISTOGRAM_LIMIT
        assert h.count == n
        assert h.summary()["max"] == float(n - 1)

    def test_reservoir_deterministic_per_name(self):
        a = MetricsRegistry().histogram("x")
        b = MetricsRegistry().histogram("x")
        for v in range(3 * HISTOGRAM_LIMIT):
            a.observe(float(v))
            b.observe(float(v))
        assert a.values == b.values

    def test_exemplar_tracks_largest_value(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(1.0, trace_id="aa")
        h.observe(5.0, trace_id="bb")
        h.observe(2.0, trace_id="cc")
        assert h.summary()["exemplar"] == {"trace_id": "bb",
                                           "value": 5.0}
        text = prometheus_text({"lat": h.summary()})
        assert '# EXEMPLAR repro_lat trace_id="bb" value=5.0' in text

    def test_sharded_merge_equivalence(self):
        """Merging 3 per-shard registries == one serial registry:
        counters and histogram count/sum exactly, quantiles within
        reservoir tolerance."""
        values = [float(v) for v in range(3 * HISTOGRAM_LIMIT)]
        serial = MetricsRegistry()
        merged = MetricsRegistry()
        shards = [MetricsRegistry() for _ in range(3)]
        for i, v in enumerate(values):
            serial.counter("jobs").inc()
            serial.histogram("lat").observe(v)
            shards[i % 3].counter("jobs").inc()
            shards[i % 3].histogram("lat").observe(v)
        for shard in shards:
            merged.merge_data(shard.data())
        assert merged.counter("jobs").value \
            == serial.counter("jobs").value
        m, s = merged.histogram("lat"), serial.histogram("lat")
        assert m.summary()["count"] == s.summary()["count"]
        assert m.summary()["sum"] == pytest.approx(
            s.summary()["sum"])
        assert m.summary()["min"] == s.summary()["min"]
        assert m.summary()["max"] == s.summary()["max"]
        spread = max(values) - min(values)
        for q in ("p50", "p95", "p99"):
            assert abs(m.summary()[q] - s.summary()[q]) \
                <= 0.1 * spread, (q, m.summary()[q], s.summary()[q])

    def test_legacy_list_form_still_merges(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(1.0)
        registry.merge_data({"histograms": {"h": [2.0, 3.0]}})
        summary = registry.histogram("h").summary()
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(6.0)
