"""Unit tests for the constraint graph."""

import pytest

from repro import ConstraintGraph, GraphError, Resource
from repro.core.task import ANCHOR_NAME


@pytest.fixture
def two_tasks() -> ConstraintGraph:
    g = ConstraintGraph("g")
    g.new_task("u", duration=5, power=1.0, resource="R")
    g.new_task("v", duration=3, power=2.0, resource="S")
    return g


class TestVertices:
    def test_anchor_exists_by_default(self):
        g = ConstraintGraph()
        assert g.anchor.is_anchor
        assert len(g) == 0

    def test_new_task_registers_resource(self, two_tasks):
        assert "R" in two_tasks.resources
        assert "S" in two_tasks.resources

    def test_duplicate_task_rejected(self, two_tasks):
        with pytest.raises(GraphError):
            two_tasks.new_task("u", duration=1)

    def test_unknown_task_lookup_raises(self, two_tasks):
        with pytest.raises(GraphError):
            two_tasks.task("w")

    def test_task_names_exclude_anchor_by_default(self, two_tasks):
        assert two_tasks.task_names() == ["u", "v"]
        assert ANCHOR_NAME in two_tasks.task_names(include_anchor=True)

    def test_tasks_on_resource(self, two_tasks):
        two_tasks.new_task("w", duration=2, resource="R")
        assert [t.name for t in two_tasks.tasks_on("R")] == ["u", "w"]

    def test_resource_conflicts_pairs(self, two_tasks):
        two_tasks.new_task("w", duration=2, resource="R")
        pairs = [(a.name, b.name)
                 for a, b in two_tasks.resource_conflicts()]
        assert pairs == [("u", "w")]

    def test_declare_resource_sets_idle_power(self):
        g = ConstraintGraph()
        g.declare_resource(Resource(name="cpu", idle_power=3.1))
        g.new_task("t", duration=1, resource="cpu")
        assert g.resources["cpu"].idle_power == 3.1


class TestEdges:
    def test_add_edge_keeps_tightest(self, two_tasks):
        assert two_tasks.add_edge("u", "v", 3)
        assert not two_tasks.add_edge("u", "v", 2)  # looser: no-op
        assert two_tasks.separation("u", "v") == 3
        assert two_tasks.add_edge("u", "v", 7)      # tighter: replaces
        assert two_tasks.separation("u", "v") == 7

    def test_unknown_endpoint_rejected(self, two_tasks):
        with pytest.raises(GraphError):
            two_tasks.add_edge("u", "nope", 1)

    def test_non_integer_weight_rejected(self, two_tasks):
        with pytest.raises(GraphError):
            two_tasks.add_edge("u", "v", 1.5)

    def test_positive_self_edge_rejected(self, two_tasks):
        with pytest.raises(GraphError):
            two_tasks.add_edge("u", "u", 1)

    def test_nonpositive_self_edge_is_noop(self, two_tasks):
        assert not two_tasks.add_edge("u", "u", 0)
        assert two_tasks.separation("u", "u") is None

    def test_min_separation(self, two_tasks):
        two_tasks.add_min_separation("u", "v", 4)
        assert two_tasks.separation("u", "v") == 4

    def test_negative_min_separation_rejected(self, two_tasks):
        with pytest.raises(GraphError):
            two_tasks.add_min_separation("u", "v", -1)

    def test_max_separation_is_reverse_negative_edge(self, two_tasks):
        two_tasks.add_max_separation("u", "v", 10)
        assert two_tasks.separation("v", "u") == -10

    def test_window_adds_both(self, two_tasks):
        two_tasks.add_separation_window("u", "v", 2, 9)
        assert two_tasks.separation("u", "v") == 2
        assert two_tasks.separation("v", "u") == -9

    def test_empty_window_rejected(self, two_tasks):
        with pytest.raises(GraphError):
            two_tasks.add_separation_window("u", "v", 5, 4)

    def test_precedence_uses_duration(self, two_tasks):
        two_tasks.add_precedence("u", "v", gap=2)
        assert two_tasks.separation("u", "v") == 7  # d(u)=5 + 2

    def test_release_and_deadlines(self, two_tasks):
        two_tasks.add_release("u", 4)
        two_tasks.add_start_deadline("u", 9)
        assert two_tasks.separation(ANCHOR_NAME, "u") == 4
        assert two_tasks.separation("u", ANCHOR_NAME) == -9

    def test_finish_deadline_subtracts_duration(self, two_tasks):
        two_tasks.add_finish_deadline("u", 12)  # d(u)=5 -> start <= 7
        assert two_tasks.separation("u", ANCHOR_NAME) == -7

    def test_finish_deadline_shorter_than_duration_rejected(
            self, two_tasks):
        with pytest.raises(GraphError):
            two_tasks.add_finish_deadline("u", 3)

    def test_lock_start_pins_both_sides(self, two_tasks):
        two_tasks.lock_start("u", 6)
        assert two_tasks.separation(ANCHOR_NAME, "u") == 6
        assert two_tasks.separation("u", ANCHOR_NAME) == -6

    def test_successors_are_forward_edges_only(self, two_tasks):
        two_tasks.add_min_separation("u", "v", 3)
        two_tasks.add_max_separation("u", "v", 9)  # backward edge v->u
        assert two_tasks.successors("u") == ["v"]
        assert two_tasks.successors("v") == []

    def test_out_and_in_edges(self, two_tasks):
        two_tasks.add_min_separation("u", "v", 3)
        assert [e.dst for e in two_tasks.out_edges("u")] == ["v"]
        assert [e.src for e in two_tasks.in_edges("v")] == ["u"]

    def test_edge_tag_stored(self, two_tasks):
        two_tasks.add_edge("u", "v", 1, tag="serialize")
        assert two_tasks.edge_tag("u", "v") == "serialize"
        assert two_tasks.edge_tag("v", "u") is None

    def test_remove_edge(self, two_tasks):
        two_tasks.add_edge("u", "v", 1)
        assert two_tasks.remove_edge("u", "v")
        assert two_tasks.separation("u", "v") is None
        assert not two_tasks.remove_edge("u", "v")


class TestCheckpointRollback:
    def test_rollback_removes_new_edges(self, two_tasks):
        token = two_tasks.checkpoint()
        two_tasks.add_edge("u", "v", 5)
        two_tasks.rollback(token)
        assert two_tasks.separation("u", "v") is None
        assert two_tasks.out_edges("u") == []

    def test_rollback_restores_tightened_edges(self, two_tasks):
        two_tasks.add_edge("u", "v", 2, tag="user")
        token = two_tasks.checkpoint()
        two_tasks.add_edge("u", "v", 8, tag="delay")
        two_tasks.rollback(token)
        assert two_tasks.separation("u", "v") == 2
        assert two_tasks.edge_tag("u", "v") == "user"

    def test_rollback_restores_removed_edges(self, two_tasks):
        two_tasks.add_edge("u", "v", 2)
        token = two_tasks.checkpoint()
        two_tasks.remove_edge("u", "v")
        two_tasks.rollback(token)
        assert two_tasks.separation("u", "v") == 2
        assert [e.dst for e in two_tasks.out_edges("u")] == ["v"]

    def test_remove_then_readd_rolls_back_cleanly(self, two_tasks):
        two_tasks.add_edge("u", "v", 9)
        token = two_tasks.checkpoint()
        two_tasks.remove_edge("u", "v")
        two_tasks.add_edge("u", "v", 3)
        two_tasks.rollback(token)
        assert two_tasks.separation("u", "v") == 9

    def test_nested_checkpoints(self, two_tasks):
        outer = two_tasks.checkpoint()
        two_tasks.add_edge("u", "v", 1)
        inner = two_tasks.checkpoint()
        two_tasks.add_edge("v", "u", -5)
        two_tasks.rollback(inner)
        assert two_tasks.separation("u", "v") == 1
        assert two_tasks.separation("v", "u") is None
        two_tasks.rollback(outer)
        assert two_tasks.separation("u", "v") is None

    def test_invalid_token_rejected(self, two_tasks):
        with pytest.raises(GraphError):
            two_tasks.rollback(999)


class TestCopyMerge:
    def test_copy_is_independent(self, two_tasks):
        two_tasks.add_edge("u", "v", 4)
        clone = two_tasks.copy()
        clone.add_edge("v", "u", -9)
        assert two_tasks.separation("v", "u") is None
        assert clone.separation("u", "v") == 4

    def test_copy_preserves_resources(self):
        g = ConstraintGraph()
        g.declare_resource(Resource(name="cpu", idle_power=2.0))
        g.new_task("t", duration=1, resource="cpu")
        assert g.copy().resources["cpu"].idle_power == 2.0

    def test_merge_with_prefix(self, two_tasks):
        other = ConstraintGraph("other")
        other.new_task("x", duration=2, power=1.0, resource="R")
        other.add_release("x", 7)
        two_tasks.merge(other, prefix="it2_")
        assert "it2_x" in two_tasks
        assert two_tasks.separation(ANCHOR_NAME, "it2_x") == 7

    def test_strip_tags(self, two_tasks):
        two_tasks.add_edge("u", "v", 1, tag="delay")
        two_tasks.add_edge("v", "u", -9, tag="user")
        assert two_tasks.strip_tags(["delay"]) == 1
        assert two_tasks.separation("u", "v") is None
        assert two_tasks.separation("v", "u") == -9
