"""Unit tests for the timing scheduler (paper Fig. 3)."""

import pytest

from repro import (ConstraintGraph, SchedulerOptions, SchedulingFailure,
                   SchedulingProblem, TimingScheduler, check_time_valid,
                   timing_schedule)
from repro.scheduling.timing import asap_schedule


def solve(graph, **kwargs) -> "tuple":
    problem = SchedulingProblem(graph, p_max=1000.0)
    result = timing_schedule(problem, SchedulerOptions(**kwargs))
    return result.schedule, result


class TestBasics:
    def test_single_task_at_zero(self):
        g = ConstraintGraph()
        g.new_task("a", duration=5)
        schedule, _ = solve(g)
        assert schedule.start("a") == 0

    def test_precedence_respected(self):
        g = ConstraintGraph()
        g.new_task("a", duration=5)
        g.new_task("b", duration=5)
        g.add_precedence("a", "b")
        schedule, _ = solve(g)
        assert schedule.start("b") >= 5

    def test_result_is_time_valid(self, small_graph):
        schedule, _ = solve(small_graph)
        assert check_time_valid(schedule).ok

    def test_result_is_asap_of_decorated_graph(self, small_graph):
        problem = SchedulingProblem(small_graph, p_max=1000.0)
        result = timing_schedule(problem)
        graph = result.extra["graph"]
        assert asap_schedule(graph) == result.schedule

    def test_stage_label(self, small_graph):
        _, result = solve(small_graph)
        assert result.stage == "timing"


class TestSerialization:
    def test_same_resource_tasks_serialized(self):
        g = ConstraintGraph()
        g.new_task("u", duration=5, resource="R")
        g.new_task("v", duration=5, resource="R")
        schedule, _ = solve(g)
        assert {schedule.start("u"), schedule.start("v")} == {0, 5}

    def test_three_way_serialization(self):
        g = ConstraintGraph()
        for name in ("u", "v", "w"):
            g.new_task(name, duration=4, resource="R")
        schedule, _ = solve(g)
        starts = sorted(schedule.start(n) for n in ("u", "v", "w"))
        assert starts == [0, 4, 8]

    def test_different_resources_run_in_parallel(self):
        g = ConstraintGraph()
        g.new_task("u", duration=5, resource="R")
        g.new_task("v", duration=5, resource="S")
        schedule, _ = solve(g)
        assert schedule.start("u") == 0
        assert schedule.start("v") == 0


class TestBacktracking:
    def test_window_forces_serialization_order(self):
        """u must run in [0, 2] after v starts — so u goes second only
        if v starts late; the only valid order is u before... the
        scheduler must find whichever order satisfies the window."""
        g = ConstraintGraph()
        g.new_task("u", duration=5, resource="R")
        g.new_task("v", duration=5, resource="R")
        # v at most 2 after u starts: serializing u after v would put
        # u at v+5 > v+2 -> positive cycle -> must pick u first.
        g.add_separation_window("u", "v", 0, 5)
        schedule, result = solve(g)
        assert schedule.start("u") == 0
        assert schedule.start("v") == 5
        assert check_time_valid(schedule).ok

    def test_deadline_forces_nondefault_order(self):
        """A start deadline on the alphabetically-later task forces the
        scheduler to schedule it first, requiring backtracking past the
        name-ordered default."""
        g = ConstraintGraph()
        g.new_task("a", duration=10, resource="R")
        g.new_task("z", duration=10, resource="R")
        g.add_start_deadline("z", 0)  # z must start at 0
        schedule, _ = solve(g)
        assert schedule.start("z") == 0
        assert schedule.start("a") == 10

    def test_infeasible_serialization_fails(self):
        """Two same-resource tasks that must both start at 0."""
        g = ConstraintGraph()
        g.new_task("u", duration=5, resource="R")
        g.new_task("v", duration=5, resource="R")
        g.add_start_deadline("u", 0)
        g.add_start_deadline("v", 0)
        with pytest.raises(SchedulingFailure):
            solve(g)

    def test_backtrack_budget_exhaustion_reports_failure(self):
        g = ConstraintGraph()
        for i in range(6):
            g.new_task(f"t{i}", duration=5, resource="R")
            g.add_start_deadline(f"t{i}", 0)  # impossible
        with pytest.raises(SchedulingFailure):
            solve(g, max_backtracks=3)

    def test_stats_count_work(self, small_graph):
        problem = SchedulingProblem(small_graph, p_max=1000.0)
        scheduler = TimingScheduler()
        result = scheduler.solve(problem)
        assert result.stats.longest_path_runs > 0
        assert result.stats.serializations >= 1


class TestCompleteness:
    def test_finds_schedule_when_one_exists_windowed_chain(self):
        """Tight windows over a shared resource: only one order works."""
        g = ConstraintGraph()
        g.new_task("a", duration=3, resource="R")
        g.new_task("b", duration=3, resource="R")
        g.new_task("c", duration=3, resource="R")
        g.add_separation_window("a", "b", 3, 4)
        g.add_separation_window("b", "c", 3, 4)
        schedule, _ = solve(g)
        assert check_time_valid(schedule).ok
        assert schedule.start("a") < schedule.start("b") \
            < schedule.start("c")

    def test_problem_graph_not_mutated(self, small_graph):
        before = small_graph.edge_count()
        solve(small_graph)
        assert small_graph.edge_count() == before
