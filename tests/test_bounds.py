"""Unit tests for the makespan lower bounds."""

import pytest

from repro import ConstraintGraph, SchedulingProblem, schedule
from repro.analysis import lower_bound, makespan_bounds
from repro.errors import ReproError
from repro.workloads import chain, fork_join, independent, random_problem


class TestIndividualBounds:
    def test_critical_path_bound(self):
        problem = chain(4, duration=5, power=1.0, p_max=100.0)
        bounds = makespan_bounds(problem)
        assert bounds.critical_path == 20
        assert bounds.best == 20
        assert bounds.binding() == "critical-path"

    def test_resource_load_bound(self):
        g = ConstraintGraph()
        for i in range(3):
            g.new_task(f"t{i}", duration=4, power=1.0, resource="R")
        problem = SchedulingProblem(g, p_max=100.0)
        bounds = makespan_bounds(problem)
        assert bounds.resource_load == 12
        assert bounds.best == 12

    def test_resource_load_includes_release(self):
        g = ConstraintGraph()
        g.new_task("a", duration=4, power=1.0, resource="R")
        g.new_task("b", duration=4, power=1.0, resource="R")
        g.add_release("a", 10)
        g.add_release("b", 10)
        problem = SchedulingProblem(g, p_max=100.0)
        assert makespan_bounds(problem).resource_load == 18

    def test_energy_bound(self):
        # 4 tasks x 5 s x 4 W = 80 J under 8 W headroom -> >= 10 s
        problem = independent(4, duration=5, power=4.0, p_max=8.0)
        bounds = makespan_bounds(problem)
        assert bounds.energy_over_headroom == 10
        assert bounds.binding() == "energy-over-headroom"

    def test_energy_bound_accounts_for_baseline(self):
        problem = independent(4, duration=5, power=4.0, p_max=8.0)
        scaled = SchedulingProblem(problem.graph, p_max=8.0,
                                   baseline=4.0)
        assert makespan_bounds(scaled).energy_over_headroom == 20

    def test_zero_headroom_rejected(self):
        base = independent(1, duration=5, power=4.0, p_max=2.0)
        problem = SchedulingProblem(base.graph, p_max=2.0, baseline=2.0)
        with pytest.raises(ReproError):
            makespan_bounds(problem)

    def test_powerless_tasks_have_zero_energy_bound(self):
        problem = chain(3, duration=5, power=0.0, p_max=1.0)
        assert makespan_bounds(problem).energy_over_headroom == 0


class TestBoundVsSchedulers:
    def test_bound_never_exceeds_any_valid_schedule(self):
        for seed in (20, 21, 22, 23, 24):
            problem = random_problem(seed)
            bound = lower_bound(problem)
            result = schedule(problem)
            assert result.finish_time >= bound

    def test_bound_is_tight_on_easy_instances(self):
        problem = independent(4, duration=5, power=4.0, p_max=8.0)
        result = schedule(problem)
        assert result.finish_time == lower_bound(problem)

    def test_fork_join_combines_chain_and_energy(self):
        problem = fork_join(width=6, duration=5, power=3.0, p_max=7.0)
        bound = lower_bound(problem)
        result = schedule(problem)
        assert bound <= result.finish_time
        # the bound is meaningful: well above the bare critical path
        assert bound > 15 or result.finish_time == 15
