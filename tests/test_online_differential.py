"""The quiescence theorem, differentially enforced.

An online session that sees every task up front (mission clock at 0,
nothing committed) and then quiesces must produce a schedule
**bit-identical** to the offline solve of the same problem — identical
start times, power profile, and IEEE-754-exact energy.  The online
engine adds admission control and history freezing; it must never add
arithmetic.

The theorem is checked on the paper's Fig. 1 workload and on
randomized :mod:`repro.workloads` graphs, under every kernel path the
core exposes (pure-Python oracle and the numpy fast path) and with the
warm-start journal machinery both off and on — the same certification
matrix ``test_core_kernel.py`` applies to the kernel itself.
"""

from __future__ import annotations

from contextlib import contextmanager

import pytest

from repro.core.arrays import HAVE_NUMPY
from repro.core.kernel import clear_warm_pool, set_kernel, set_warm
from repro.examples_data import fig1_problem, fig1_options
from repro.online import replay_script, script_from_problem
from repro.scheduling.base import SchedulerOptions
from repro.scheduling.max_power import MaxPowerScheduler
from repro.scheduling.min_power import MinPowerScheduler
from repro.workloads import RandomWorkloadConfig, random_problem

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY,
                                 reason="numpy not installed")

SCHEDULERS = {
    "min_power": MinPowerScheduler,
    "max_power": MaxPowerScheduler,
}

#: The kernel x warm certification matrix.
MODES = [
    pytest.param("oracle", False, id="oracle-cold"),
    pytest.param("oracle", True, id="oracle-warm"),
    pytest.param("numpy", False, id="numpy-cold",
                 marks=needs_numpy),
    pytest.param("numpy", True, id="numpy-warm",
                 marks=needs_numpy),
]

#: Seeds whose generated problems the offline heuristics solve
#: outright — the quiescence theorem's premise.  (Seed 11, for
#: example, generates a workload the max-power stage cannot clear
#: under its attempt budget; sessions *reject* the offending arrival
#: instead, which ``test_rejecting_session_still_converges`` covers.)
RANDOM_SEEDS = [3, 7, 13]


@contextmanager
def core_mode(kernel: str, warm: bool):
    """Pin kernel + warm selection, restoring the previous state."""
    prev_kernel = set_kernel(kernel)
    prev_warm = set_warm(warm)
    clear_warm_pool()
    try:
        yield
    finally:
        set_kernel(prev_kernel)
        set_warm(prev_warm)
        clear_warm_pool()


def assert_bit_identical(problem, scheduler: str, seed: int) -> None:
    """Feed ``problem`` to a session one arrival at a time, quiesce,
    and compare against the offline solve of the same problem."""
    script = script_from_problem(problem, scheduler=scheduler,
                                 seed=seed)
    session, _events = replay_script(script)
    online = session.result
    assert online is not None

    offline = SCHEDULERS[scheduler](
        SchedulerOptions(seed=seed)).solve(problem)

    # start times: the strongest claim — Schedule equality is the
    # starts dict, exactly
    assert online.schedule == offline.schedule, (
        f"online {online.schedule.as_dict()} != "
        f"offline {offline.schedule.as_dict()}")
    # power profile and scalar metrics, IEEE-754-exact
    assert online.profile.segments == offline.profile.segments
    assert online.metrics.energy_cost == offline.metrics.energy_cost
    assert online.metrics.peak_power == offline.metrics.peak_power
    assert online.metrics.finish_time == offline.metrics.finish_time
    assert online.metrics.utilization == offline.metrics.utilization


class TestFig1Quiescence:
    @pytest.mark.parametrize("kernel,warm", MODES)
    @pytest.mark.parametrize("scheduler", list(SCHEDULERS))
    def test_fig1_bit_identical(self, scheduler, kernel, warm):
        with core_mode(kernel, warm):
            assert_bit_identical(fig1_problem(), scheduler,
                                 seed=fig1_options().seed)


class TestRandomQuiescence:
    @pytest.mark.parametrize("kernel,warm", MODES)
    @pytest.mark.parametrize("seed", RANDOM_SEEDS)
    def test_random_min_power_bit_identical(self, seed, kernel, warm):
        problem = random_problem(seed)
        with core_mode(kernel, warm):
            assert_bit_identical(problem, "min_power", seed=2001)

    @pytest.mark.parametrize("seed", RANDOM_SEEDS)
    def test_random_max_power_bit_identical(self, seed):
        problem = random_problem(seed)
        with core_mode("auto", True):
            assert_bit_identical(problem, "max_power", seed=2001)

    @pytest.mark.parametrize("seed", [1, 9])
    def test_larger_workload_bit_identical(self, seed):
        problem = random_problem(
            seed, RandomWorkloadConfig(tasks=30, resources=5))
        with core_mode("auto", True):
            assert_bit_identical(problem, "min_power", seed=2001)

    def test_rejecting_session_still_converges(self):
        """A workload the offline heuristic cannot fully solve: the
        session rejects the offending arrival(s) and quiesces to the
        offline solve of exactly the *admitted* sub-problem."""
        problem = random_problem(11)
        script = script_from_problem(problem, seed=2001)
        session, events = replay_script(script)
        rejects = [e for e in events if e["event"] == "reject"]
        assert rejects, "seed 11 is expected to force a rejection"
        offline = MinPowerScheduler(
            SchedulerOptions(seed=2001)).solve(session.problem())
        assert session.result.schedule == offline.schedule


class TestQuiescenceIsIdempotent:
    def test_double_quiesce_stable(self):
        script = script_from_problem(fig1_problem())
        session, _ = replay_script(script)
        first = session.result.schedule
        second = session.quiesce().schedule
        assert first == second

    def test_quiesce_after_noop_advance_to_zero(self):
        problem = fig1_problem()
        script = script_from_problem(problem, quiesce=False)
        session, _ = replay_script(script)
        session.advance(0)   # clock does not move; nothing commits
        online = session.quiesce()
        offline = MinPowerScheduler(
            SchedulerOptions(seed=2001)).solve(problem)
        assert online.schedule == offline.schedule


class TestKernelAgreementWithinOnline:
    """The two kernels must agree with *each other* through the whole
    online path as well (arrivals are incremental re-solves, so this
    exercises the warm journal machinery harder than one-shot
    solves)."""

    @needs_numpy
    @pytest.mark.parametrize("seed", RANDOM_SEEDS)
    def test_oracle_vs_numpy_whole_session(self, seed):
        problem = random_problem(seed)
        script = script_from_problem(problem, seed=2001)
        results = {}
        for kernel in ("oracle", "numpy"):
            with core_mode(kernel, True):
                session, events = replay_script(script)
                results[kernel] = (
                    session.result.schedule.as_dict(),
                    [e["event"] for e in events],
                    session.result.metrics.energy_cost,
                )
        assert results["oracle"] == results["numpy"]
