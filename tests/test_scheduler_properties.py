"""Property-based tests for scheduler-level invariants."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (SchedulerOptions, SchedulingFailure,
                   check_power_valid, serial_schedule)
from repro.scheduling import MaxPowerScheduler
from tests.test_properties import precedence_problems

NO_EXTRAS = SchedulerOptions(max_power_restarts=1, compaction=False,
                             serial_fallback=False,
                             max_spike_attempts=300, seed=1)
WITH_COMPACTION = SchedulerOptions(max_power_restarts=1,
                                   compaction=True,
                                   serial_fallback=False,
                                   max_spike_attempts=300, seed=1)


class TestCompactionProperties:
    @given(precedence_problems())
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_compaction_never_lengthens_and_stays_valid(self, problem):
        try:
            raw = MaxPowerScheduler(NO_EXTRAS).solve(problem)
            packed = MaxPowerScheduler(WITH_COMPACTION).solve(problem)
        except SchedulingFailure:
            return
        assert packed.finish_time <= raw.finish_time
        assert check_power_valid(packed.schedule, problem.p_max,
                                 baseline=problem.baseline).ok

    @given(precedence_problems())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_compaction_is_idempotent(self, problem):
        """Compacting an already-compacted graph moves nothing."""
        try:
            result = MaxPowerScheduler(WITH_COMPACTION).solve(problem)
        except SchedulingFailure:
            return
        scheduler = MaxPowerScheduler(WITH_COMPACTION)
        graph = result.extra["graph"]
        again = scheduler.compact(graph, problem.p_max,
                                  problem.total_baseline)
        assert again == result.schedule


class TestSerialProperties:
    @given(precedence_problems())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_serial_is_packed_and_single_file(self, problem):
        """Without max windows or releases the serial schedule packs
        back to back: makespan == sum of durations, and at most one
        task is ever active."""
        try:
            result = serial_schedule(problem, SchedulerOptions(
                max_backtracks=2_000))
        except SchedulingFailure:
            return
        total = sum(t.duration for t in problem.graph.tasks())
        assert result.finish_time == total
        for t in range(result.finish_time):
            assert len(result.schedule.active_tasks(t)) <= 1

    @given(precedence_problems())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_serial_peak_is_single_task_peak(self, problem):
        try:
            result = serial_schedule(problem, SchedulerOptions(
                max_backtracks=2_000))
        except SchedulingFailure:
            return
        max_power = max((t.power for t in problem.graph.tasks()
                         if t.duration > 0), default=0.0)
        assert result.metrics.peak_power \
            <= max_power + problem.total_baseline + 1e-9