"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.examples_data import fig1_problem
from repro.io import problem_to_dict


@pytest.fixture
def problem_json(tmp_path) -> str:
    path = tmp_path / "fig1.json"
    path.write_text(json.dumps(problem_to_dict(fig1_problem())))
    return str(path)


@pytest.fixture
def problem_dsl(tmp_path) -> str:
    path = tmp_path / "tiny.txt"
    path.write_text(
        "problem tiny pmax 10 pmin 4\n"
        "task a R 5 4.0\n"
        "task b S 5 4.0\n"
        "precedence a b\n")
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_args(self):
        args = build_parser().parse_args(["solve", "x.json",
                                          "--seed", "7"])
        assert args.command == "solve"
        assert args.seed == 7


class TestSolve:
    def test_solve_json(self, problem_json, capsys):
        assert main(["solve", problem_json, "--no-chart"]) == 0
        out = capsys.readouterr().out
        assert "fig1-example" in out
        assert "time-valid" in out

    def test_solve_dsl_with_chart(self, problem_dsl, capsys):
        assert main(["solve", problem_dsl]) == 0
        out = capsys.readouterr().out
        assert "power view" in out

    def test_solve_writes_artifacts(self, problem_dsl, tmp_path,
                                    capsys):
        svg = str(tmp_path / "out.svg")
        sched = str(tmp_path / "out.json")
        assert main(["solve", problem_dsl, "--no-chart",
                     "--svg", svg, "--out", sched]) == 0
        assert open(svg).read().startswith("<svg")
        data = json.loads(open(sched).read())
        assert data["format"] == "repro-schedule"

    def test_missing_file_is_clean_error(self, capsys):
        with pytest.raises((SystemExit, OSError)):
            main(["solve", "/nonexistent/file.json"])


class TestExample:
    def test_example_walks_three_figures(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        for fig in ("Fig. 2", "Fig. 5", "Fig. 7"):
            assert fig in out


class TestRover:
    def test_single_case_table(self, capsys):
        assert main(["rover", "--case", "typical"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "typical" in out
        assert "power-aware" in out


class TestDiagnose:
    @pytest.fixture
    def bad_problem(self, tmp_path) -> str:
        path = tmp_path / "bad.txt"
        path.write_text(
            "problem bad pmax 10\n"
            "task a R 5 4.0\n"
            "task b S 5 4.0\n"
            "min a b 10\n"
            "max a b 6\n")
        return str(path)

    def test_contradiction_explained(self, bad_problem, capsys):
        assert main(["diagnose", bad_problem]) == 1
        out = capsys.readouterr().out
        assert "infeasible" in out
        assert "sigma(b) >= sigma(a) + 10" in out

    def test_consistent_problem_reports_ok(self, problem_dsl, capsys):
        assert main(["diagnose", problem_dsl]) == 0
        assert "consistent" in capsys.readouterr().out

    def test_power_warning_surfaces(self, tmp_path, capsys):
        path = tmp_path / "hot.txt"
        path.write_text("problem hot pmax 5\ntask a R 5 9.0\n")
        assert main(["diagnose", str(path)]) == 1
        assert "power warning" in capsys.readouterr().out


class TestSweep:
    def test_default_budget_grid(self, problem_dsl, capsys):
        assert main(["sweep", problem_dsl]) == 0
        out = capsys.readouterr().out
        assert "P_max sweep" in out
        assert "knee" in out

    def test_explicit_budgets(self, problem_dsl, capsys):
        assert main(["sweep", problem_dsl, "--budgets", "5,9,20"]) == 0
        out = capsys.readouterr().out
        assert "20" in out

    def test_levels_run_the_full_grid(self, problem_dsl, capsys):
        assert main(["sweep", problem_dsl, "--budgets", "8,10",
                     "--levels", "4,6"]) == 0
        out = capsys.readouterr().out
        assert "(P_max, P_min) grid sweep" in out
        assert "engine: 4 points" in out

    def test_trace_written_with_schema(self, problem_dsl, tmp_path,
                                       capsys):
        trace = str(tmp_path / "trace.json")
        assert main(["sweep", problem_dsl, "--budgets", "8,10",
                     "--levels", "4,6", "--trace", trace]) == 0
        assert trace in capsys.readouterr().out
        doc = json.loads(open(trace).read())
        assert doc["format"] == "repro-trace"
        assert doc["run"]["jobs"] == 4
        assert {"hits", "misses"} <= set(doc["cache"])
        assert {"timing", "max_power", "min_power"} <= \
            set(doc["stage_seconds"])

    def test_parallel_flag_matches_serial_output(self, problem_dsl,
                                                 capsys):
        assert main(["sweep", problem_dsl, "--budgets", "8,10"]) == 0
        serial = capsys.readouterr().out
        assert main(["sweep", problem_dsl, "--budgets", "8,10",
                     "--parallel", "2"]) == 0
        parallel = capsys.readouterr().out
        # identical sweep tables; only the engine summary line differs
        strip = lambda s: [ln for ln in s.splitlines()
                           if not ln.startswith("engine:")]
        assert strip(parallel) == strip(serial)

    def test_trace_creates_parent_dirs(self, problem_dsl, tmp_path):
        trace = str(tmp_path / "deep" / "nested" / "trace.json")
        assert main(["sweep", problem_dsl, "--budgets", "8,10",
                     "--trace", trace]) == 0
        assert json.loads(open(trace).read())["format"] == "repro-trace"

    def test_trace_refuses_overwrite_without_force(self, problem_dsl,
                                                   tmp_path, capsys):
        trace = str(tmp_path / "trace.json")
        assert main(["sweep", problem_dsl, "--budgets", "8,10",
                     "--trace", trace]) == 0
        capsys.readouterr()
        assert main(["sweep", problem_dsl, "--budgets", "8,10",
                     "--trace", trace]) == 1
        err = capsys.readouterr().err
        assert "already exists" in err and "--force" in err

    def test_trace_force_overwrites(self, problem_dsl, tmp_path,
                                    capsys):
        trace = str(tmp_path / "trace.json")
        assert main(["sweep", problem_dsl, "--budgets", "8,10",
                     "--trace", trace]) == 0
        assert main(["sweep", problem_dsl, "--budgets", "8",
                     "--trace", trace, "--force"]) == 0
        doc = json.loads(open(trace).read())
        assert doc["run"]["jobs"] == 1

    def test_instrument_flag_embeds_spans(self, problem_dsl, tmp_path):
        trace = str(tmp_path / "trace.json")
        assert main(["sweep", problem_dsl, "--budgets", "8,10",
                     "--instrument", "--trace", trace]) == 0
        doc = json.loads(open(trace).read())
        assert doc["version"] == 2
        assert doc["run"]["instrumented"] is True
        [root] = doc["spans"]
        assert root["name"] == "engine.run"
        assert doc["metrics"]["engine.run.jobs"]["value"] == 2


@pytest.fixture
def instrumented_trace(problem_dsl, tmp_path) -> str:
    path = str(tmp_path / "run_trace.json")
    assert main(["sweep", problem_dsl, "--budgets", "8,10",
                 "--levels", "4,6", "--instrument",
                 "--trace", path]) == 0
    return path


class TestTraceVerbs:
    def test_summarize(self, instrumented_trace, capsys):
        capsys.readouterr()
        assert main(["trace", "summarize", instrumented_trace]) == 0
        out = capsys.readouterr().out
        assert "repro-trace v2" in out
        assert "slowest jobs" in out
        assert "hit rate" in out
        assert "histograms" in out

    def test_summarize_missing_file_is_clean_error(self, tmp_path,
                                                   capsys):
        missing = str(tmp_path / "nope.json")
        assert main(["trace", "summarize", missing]) == 1
        assert "error:" in capsys.readouterr().err

    def test_export_chrome(self, instrumented_trace, tmp_path, capsys):
        out_path = str(tmp_path / "sub" / "chrome.json")
        assert main(["trace", "export", instrumented_trace,
                     "--format", "chrome", "--out", out_path]) == 0
        doc = json.loads(open(out_path).read())
        events = doc["traceEvents"]
        assert events and all(e["ph"] in ("X", "i") for e in events)
        assert any(e["name"] == "engine.run" for e in events)

    def test_export_prom_to_stdout(self, instrumented_trace, capsys):
        capsys.readouterr()
        assert main(["trace", "export", instrumented_trace,
                     "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_engine_run_jobs counter" in out
        assert "repro_engine_run_jobs 4" in out

    def test_export_jsonl(self, instrumented_trace, capsys):
        capsys.readouterr()
        assert main(["trace", "export", instrumented_trace,
                     "--format", "jsonl"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert {"span", "counter", "histogram"} <= \
            {r["type"] for r in records}
