"""Unit tests for idle-shutdown power management."""

import pytest

from repro import ConstraintGraph, Schedule
from repro.errors import ReproError
from repro.power import (AlwaysOn, IdleInterval, OracleShutdown,
                         TimeoutShutdown, idle_energy_report,
                         idle_intervals)


@pytest.fixture
def schedule() -> Schedule:
    """Resource R busy [5,10) and [30,35); idle [0,5), [10,30), [35,40)."""
    g = ConstraintGraph("s")
    g.new_task("a", duration=5, power=2.0, resource="R")
    g.new_task("b", duration=5, power=2.0, resource="R")
    g.new_task("pad", duration=40, power=1.0, resource="other")
    return Schedule(g, {"a": 5, "b": 30, "pad": 0})


class TestIdleIntervals:
    def test_gaps_found(self, schedule):
        gaps = idle_intervals(schedule, "R")
        assert [(g.start, g.end) for g in gaps] \
            == [(0, 5), (10, 30), (35, 40)]

    def test_busy_resource_has_no_gaps(self, schedule):
        assert idle_intervals(schedule, "other") == []

    def test_custom_horizon(self, schedule):
        gaps = idle_intervals(schedule, "R", horizon=50)
        assert gaps[-1].end == 50

    def test_interval_length(self):
        assert IdleInterval("R", 10, 30).length == 20


class TestPolicies:
    def test_always_on(self):
        gap = IdleInterval("R", 10, 30)
        assert AlwaysOn().idle_energy(gap, 2.0) == pytest.approx(40.0)

    def test_timeout_short_gap_stays_on(self):
        policy = TimeoutShutdown(timeout=10, wake_energy=5.0)
        assert policy.idle_energy(IdleInterval("R", 0, 8), 2.0) \
            == pytest.approx(16.0)

    def test_timeout_long_gap_shuts_down(self):
        policy = TimeoutShutdown(timeout=10, wake_energy=5.0)
        # 10 ticks at 2 W + one wake
        assert policy.idle_energy(IdleInterval("R", 10, 30), 2.0) \
            == pytest.approx(25.0)

    def test_oracle_picks_cheaper_side(self):
        policy = OracleShutdown(wake_energy=5.0)
        assert policy.idle_energy(IdleInterval("R", 0, 2), 2.0) \
            == pytest.approx(4.0)   # staying on is cheaper
        assert policy.idle_energy(IdleInterval("R", 0, 20), 2.0) \
            == pytest.approx(5.0)   # shutting down is cheaper

    def test_validation(self):
        with pytest.raises(ReproError):
            TimeoutShutdown(timeout=-1, wake_energy=0.0)
        with pytest.raises(ReproError):
            OracleShutdown(wake_energy=-1.0)


class TestReport:
    def test_policy_ordering(self, schedule):
        """oracle <= timeout <= always-on, for the same inputs."""
        powers = {"R": 2.0}
        on = idle_energy_report(schedule, AlwaysOn(), powers)
        timeout = idle_energy_report(
            schedule, TimeoutShutdown(timeout=5, wake_energy=4.0),
            powers)
        oracle = idle_energy_report(
            schedule, OracleShutdown(wake_energy=4.0), powers)
        assert oracle["total"] <= timeout["total"] <= on["total"]

    def test_always_on_total(self, schedule):
        report = idle_energy_report(schedule, AlwaysOn(), {"R": 2.0})
        assert report["R"] == pytest.approx(2.0 * (5 + 20 + 5))
        assert report["total"] == report["R"]

    def test_zero_idle_power_resources_skipped(self, schedule):
        report = idle_energy_report(schedule, AlwaysOn(), {})
        assert report["total"] == 0.0

    def test_trailing_gap_pays_no_wake(self, schedule):
        policy = TimeoutShutdown(timeout=2, wake_energy=100.0)
        report = idle_energy_report(schedule, policy, {"R": 2.0})
        # gaps: lead (0,5): 2*2+100; middle (10,30): 2*2+100;
        # trailing (35,40): timeout ticks only, no wake
        assert report["R"] == pytest.approx((4 + 100) * 2 + 4)
