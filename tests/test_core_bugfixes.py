"""Regression tests for the hot-path bugfix sweep.

Each test pins one of the defects fixed alongside the array-core
refactor:

* ``weaken_edge`` — the compaction and unlock passes used to
  ``remove_edge`` pairs where a scheduler edge had *overwritten* a user
  constraint (the graph keeps one edge per ordered pair), silently
  dropping the user's release or deadline;
* ``_extend_interval`` — scanned every segment from t=0 per
  ``first_spike``/``first_gap`` call instead of bisecting to the
  covering segment;
* ``PowerProfile.__init__`` — merged neighbour segments with exact
  float ``==`` while every validity check uses ``POWER_TOL``, so
  summation-order jitter could change segment counts across backends;
* boundary behaviour of ``restricted``/``concatenate``/``energy_above``
  — these are the oracle the vectorized integrator is certified
  against, so their edges must be nailed down.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ANCHOR_NAME, ConstraintGraph, PowerProfile, Schedule
from repro.core.kernel import set_kernel, set_warm
from repro.errors import ValidationError
from repro.scheduling.max_power import MaxPowerScheduler


@pytest.fixture(autouse=True)
def _oracle_mode():
    """Pin the pure-Python oracle: these tests certify the reference."""
    prev_kernel = set_kernel("oracle")
    prev_warm = set_warm(False)
    yield
    set_kernel(prev_kernel)
    set_warm(prev_warm)


# ----------------------------------------------------------------------
# weaken_edge: user constraints survive scheduler-edge cleanup
# ----------------------------------------------------------------------

def _graph_with(name: str = "A", duration: int = 2) -> ConstraintGraph:
    g = ConstraintGraph("weaken")
    g.new_task(name, duration=duration, power=4.0)
    return g


def _as_scheduler_input(g: ConstraintGraph) -> None:
    """Mark the current edge set as the user's baseline.

    Schedulers always operate on ``copy()``-fresh graphs whose journal
    is empty — user edges predate the journal, so the first journaled
    entry for a pair is the scheduler's own mutation.  Tests build user
    edges directly, so they reset the journal the same way.
    """
    g._journal.clear()


class TestWeakenEdge:
    def test_restores_overwritten_user_release(self):
        g = _graph_with()
        g.add_release("A", 3)
        _as_scheduler_input(g)
        g.add_edge(ANCHOR_NAME, "A", 6, tag="delay")  # overwrites
        assert g.weaken_edge(ANCHOR_NAME, "A") is True
        assert g.separation(ANCHOR_NAME, "A") == 3
        assert g.edge_tag(ANCHOR_NAME, "A") == "user"

    def test_removes_edge_created_from_nothing(self):
        g = _graph_with()
        g.add_edge(ANCHOR_NAME, "A", 6, tag="delay")
        assert g.weaken_edge(ANCHOR_NAME, "A") is True
        assert g.separation(ANCHOR_NAME, "A") is None

    def test_no_edge_is_a_noop(self):
        g = _graph_with()
        assert g.weaken_edge(ANCHOR_NAME, "A") is False

    def test_unjournaled_pair_falls_back_to_removal(self):
        g = _graph_with()
        g.add_release("A", 3)
        g._journal.clear()  # e.g. a fresh copy: no history
        assert g.weaken_edge(ANCHOR_NAME, "A") is True
        assert g.separation(ANCHOR_NAME, "A") is None

    def test_already_original_is_a_noop(self):
        g = _graph_with()
        g.add_release("A", 3)
        _as_scheduler_input(g)
        g.add_edge(ANCHOR_NAME, "A", 6, tag="delay")
        g.weaken_edge(ANCHOR_NAME, "A")
        assert g.weaken_edge(ANCHOR_NAME, "A") is False
        assert g.separation(ANCHOR_NAME, "A") == 3

    def test_weaken_is_journaled_and_rolls_back(self):
        g = _graph_with()
        g.add_release("A", 3)
        _as_scheduler_input(g)
        token = g.checkpoint()
        g.add_edge(ANCHOR_NAME, "A", 6, tag="delay")
        g.weaken_edge(ANCHOR_NAME, "A")
        assert g.separation(ANCHOR_NAME, "A") == 3
        g.rollback(token)
        assert g.separation(ANCHOR_NAME, "A") == 3
        assert g.edge_tag(ANCHOR_NAME, "A") == "user"

    def test_restores_oldest_journaled_value_through_chain(self):
        g = _graph_with()
        g.add_release("A", 3)
        _as_scheduler_input(g)
        g.add_edge(ANCHOR_NAME, "A", 6, tag="delay")
        g.add_edge(ANCHOR_NAME, "A", 9, tag="delay")  # tightens again
        g.weaken_edge(ANCHOR_NAME, "A")
        assert g.separation(ANCHOR_NAME, "A") == 3


class TestSchedulerUserConstraintLoss:
    def test_compaction_respects_overwritten_user_release(self):
        """Compaction used to remove the (anchor, task) pair outright,
        dropping a user release the delay edge had overwritten — the
        task then compacted to t=0, violating the user constraint."""
        g = _graph_with()
        g.add_release("A", 3)
        _as_scheduler_input(g)
        g.add_edge(ANCHOR_NAME, "A", 6, tag="delay")
        schedule = MaxPowerScheduler().compact(g, p_max=100.0,
                                               baseline=0.0)
        assert schedule.start("A") == 3
        assert g.separation(ANCHOR_NAME, "A") == 3
        assert g.edge_tag(ANCHOR_NAME, "A") == "user"

    def test_unlock_restores_overwritten_user_deadline(self):
        """A lock landing on a task with a *tighter* user start deadline
        overwrites it; lifting the lock must restore the deadline, not
        drop the pair."""
        g = _graph_with("B", duration=1)
        g.add_start_deadline("B", 8)          # (B, anchor, -8, user)
        _as_scheduler_input(g)
        g.lock_start("B", 4)                  # max side: (B, anchor, -4)
        assert g.edge_tag("B", ANCHOR_NAME) == "lock"
        schedule = Schedule(g, {"B": 4})
        scheduler = MaxPowerScheduler()
        assert scheduler._unlock_one(g, schedule, 4, set()) is True
        assert g.separation("B", ANCHOR_NAME) == -8
        assert g.edge_tag("B", ANCHOR_NAME) == "user"


# ----------------------------------------------------------------------
# _extend_interval: bisect jump equals the full scan
# ----------------------------------------------------------------------

class TestExtendIntervalBisect:
    def _sawtooth(self, teeth: int = 40) -> PowerProfile:
        segments = []
        t = 0
        for i in range(teeth):
            segments.append((t, t + 2, 2.0 if i % 2 else 8.0))
            t += 2
        return PowerProfile(segments)

    def test_first_spike_matches_spikes_head(self):
        profile = self._sawtooth()
        for p_max in (1.0, 3.0, 7.9):
            spikes = profile.spikes(p_max)
            first = profile.first_spike(p_max)
            if spikes:
                assert first == spikes[0]
            else:
                assert first is None

    def test_first_gap_matches_gaps_head(self):
        profile = self._sawtooth()
        for p_min in (2.1, 5.0, 9.0):
            gaps = profile.gaps(p_min)
            first = profile.first_gap(p_min)
            if gaps:
                assert first == gaps[0]
            else:
                assert first is None

    def test_late_violation_found_after_bisect_jump(self):
        # long quiet prefix, violation only in the final segment
        profile = PowerProfile(
            [(i, i + 1, 1.0) for i in range(50)] + [(50, 55, 9.0)])
        spike = profile.first_spike(5.0)
        assert spike is not None
        assert (spike.start, spike.end, spike.extremum) == (50, 55, 9.0)

    def test_extend_from_mid_segment_boundary(self):
        profile = PowerProfile([(0, 4, 9.0), (4, 8, 1.0), (8, 12, 9.0)])
        # start exactly at a segment boundary inside the domain
        interval = profile._extend_interval(8, lambda p: p > 5.0, max)
        assert (interval.start, interval.end) == (8, 12)
        # start strictly inside a violating segment
        interval = profile._extend_interval(1, lambda p: p > 5.0, max)
        assert (interval.start, interval.end) == (1, 4)

    def test_randomized_equivalence_with_linear_reference(self):
        rng = random.Random(7)
        for _ in range(25):
            segments, t = [], 0
            for _ in range(rng.randint(1, 30)):
                end = t + rng.randint(1, 5)
                segments.append((t, end, rng.choice([1.0, 4.0, 9.0])))
                t = end
            profile = PowerProfile(segments)
            threshold = rng.choice([0.5, 2.0, 5.0, 8.0])
            predicate = lambda p: p > threshold  # noqa: E731

            def linear_reference(start):
                ext, end = None, start
                for t0, t1, power in profile._segments:
                    if t1 <= start:
                        continue
                    if predicate(power):
                        ext = power if ext is None else max(ext, power)
                        end = t1
                    elif end > start:
                        break
                from repro.core.profile import Interval
                return Interval(start, end,
                                ext if ext is not None else 0.0)

            for start in range(profile.horizon):
                assert profile._extend_interval(start, predicate, max) \
                    == linear_reference(start)


# ----------------------------------------------------------------------
# tolerance-consistent neighbour merging
# ----------------------------------------------------------------------

class TestToleranceMerge:
    def test_ulp_jitter_does_not_split_a_plateau(self):
        parts = [0.1] * 10
        forward = sum(parts)
        chunked = sum(parts[:5]) + sum(parts[5:])
        assert forward != chunked  # the classic 0.1 accumulation gap
        profile = PowerProfile([(0, 5, forward), (5, 10, chunked)])
        assert len(profile.segments) == 1
        # the merged plateau keeps the first-seen power
        assert profile.segments[0] == (0, 10, forward)

    def test_distinct_powers_still_split(self):
        profile = PowerProfile([(0, 5, 1.0), (5, 10, 1.1)])
        assert len(profile.segments) == 2

    @settings(max_examples=60, deadline=None)
    @given(powers=st.lists(
        st.floats(min_value=0.01, max_value=10.0,
                  allow_nan=False, allow_infinity=False),
        min_size=2, max_size=8),
        seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_permuted_summation_orders_agree_on_segment_count(
            self, powers, seed):
        """Two neighbouring levels that are the same set of task powers
        summed in different orders must merge into one segment — the
        summation-order jitter is below POWER_TOL by construction."""
        rng = random.Random(seed)
        permuted = list(powers)
        rng.shuffle(permuted)
        a, b = sum(powers), sum(permuted)
        assert abs(a - b) <= PowerProfile.POWER_TOL
        profile = PowerProfile([(0, 3, a), (3, 6, b)])
        assert len(profile.segments) == 1
        assert profile.segments[0][2] == a

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_from_schedule_segment_count_invariant_under_task_order(
            self, seed):
        """Building the same schedule with permuted task insertion
        orders must give profiles with identical segment counts and
        POWER_TOL-close powers."""
        rng = random.Random(seed)
        count = rng.randint(2, 6)
        tasks = [(f"t{i}", rng.randint(1, 6), rng.randint(0, 8),
                  rng.uniform(0.1, 5.0)) for i in range(count)]

        def build(order):
            g = ConstraintGraph("perm")
            for name, duration, _start, power in order:
                g.new_task(name, duration=duration, power=power)
            starts = {name: start for name, _d, start, _p in order}
            return PowerProfile.from_schedule(Schedule(g, starts))

        base = build(tasks)
        shuffled = list(tasks)
        rng.shuffle(shuffled)
        other = build(shuffled)
        assert len(base.segments) == len(other.segments)
        for (a0, a1, ap), (b0, b1, bp) in zip(base.segments,
                                              other.segments):
            assert (a0, a1) == (b0, b1)
            assert abs(ap - bp) <= PowerProfile.POWER_TOL


# ----------------------------------------------------------------------
# restricted / concatenate / energy_above boundary cases
# ----------------------------------------------------------------------

class TestProfileBoundaries:
    def test_zero_length_restriction_at_horizon_rejected(self):
        profile = PowerProfile([(0, 5, 2.0)])
        with pytest.raises(ValidationError, match="outside domain"):
            profile.restricted(5, 5)
        with pytest.raises(ValidationError, match="outside domain"):
            profile.restricted(0, 0)

    def test_restriction_touching_horizon(self):
        profile = PowerProfile([(0, 5, 2.0), (5, 9, 4.0)])
        tail = profile.restricted(4, 9)
        assert tail.segments == [(0, 1, 2.0), (1, 5, 4.0)]
        assert tail.horizon == 5
        full = profile.restricted(0, 9)
        assert full.segments == profile.segments

    def test_single_segment_restriction_and_concat(self):
        single = PowerProfile([(0, 7, 3.0)])
        mid = single.restricted(2, 5)
        assert mid.segments == [(0, 3, 3.0)]
        joined = PowerProfile.concatenate([single, single])
        # equal powers merge across the junction
        assert joined.segments == [(0, 14, 3.0)]
        assert joined.horizon == 14

    def test_concatenate_empty_and_single(self):
        empty = PowerProfile([])
        single = PowerProfile([(0, 4, 2.5)])
        assert PowerProfile.concatenate([]).segments == []
        assert PowerProfile.concatenate([empty, single]).segments == \
            [(0, 4, 2.5)]
        assert PowerProfile.concatenate([single]).segments == \
            single.segments

    def test_energy_above_level_exactly_at_segment_power(self):
        profile = PowerProfile([(0, 4, 3.0), (4, 6, 5.0)])
        # strict >: a segment AT the level contributes nothing
        assert profile.energy_above(3.0) == pytest.approx(2 * 2.0)
        assert profile.energy_above(5.0) == 0.0
        assert profile.energy_above(0.0) == pytest.approx(
            profile.energy())

    def test_energy_above_single_segment_and_empty(self):
        assert PowerProfile([]).energy_above(1.0) == 0
        single = PowerProfile([(0, 3, 2.0)])
        assert single.energy_above(2.0) == 0.0
        assert single.energy_above(1.5) == pytest.approx(1.5)
