"""Unit tests for single-source longest path and ASAP/ALAP analysis."""

import pytest

from repro import (ConstraintGraph, PositiveCycleError, earliest_starts,
                   latest_starts, longest_paths)
from repro.core.task import ANCHOR_NAME


def make_chain() -> ConstraintGraph:
    g = ConstraintGraph("chain")
    g.new_task("a", duration=5)
    g.new_task("b", duration=3)
    g.new_task("c", duration=4)
    g.add_precedence("a", "b")
    g.add_precedence("b", "c")
    return g


class TestLongestPaths:
    def test_chain_distances(self):
        dist = longest_paths(make_chain()).distance
        assert dist["a"] == 0
        assert dist["b"] == 5
        assert dist["c"] == 8

    def test_unconstrained_tasks_start_at_zero(self):
        g = ConstraintGraph()
        g.new_task("x", duration=7)
        assert longest_paths(g).distance["x"] == 0

    def test_release_raises_distance(self):
        g = make_chain()
        g.add_release("a", 10)
        dist = longest_paths(g).distance
        assert dist["a"] == 10
        assert dist["c"] == 18

    def test_max_separation_alone_does_not_move_tasks(self):
        g = ConstraintGraph()
        g.new_task("u", duration=5)
        g.new_task("v", duration=5)
        g.add_max_separation("u", "v", 10)
        dist = longest_paths(g).distance
        assert dist["u"] == 0
        assert dist["v"] == 0

    def test_max_separation_can_push_earlier_task(self):
        # v released at 60, u must be within 50 before v:
        # sigma(u) >= 60 - 50 = 10.
        g = ConstraintGraph()
        g.new_task("u", duration=5)
        g.new_task("v", duration=5)
        g.add_release("v", 60)
        g.add_max_separation("u", "v", 50)
        assert longest_paths(g).distance["u"] == 10

    def test_positive_cycle_detected(self):
        g = ConstraintGraph()
        g.new_task("u", duration=5)
        g.new_task("v", duration=5)
        g.add_min_separation("u", "v", 10)
        g.add_max_separation("u", "v", 8)  # contradiction
        with pytest.raises(PositiveCycleError):
            longest_paths(g)

    def test_positive_cycle_reports_cycle_vertices(self):
        g = ConstraintGraph()
        g.new_task("u", duration=5)
        g.new_task("v", duration=5)
        g.add_min_separation("u", "v", 10)
        g.add_max_separation("u", "v", 8)
        with pytest.raises(PositiveCycleError) as excinfo:
            longest_paths(g)
        cycle = excinfo.value.cycle
        assert cycle  # non-empty trace

    def test_critical_path_chain(self):
        result = longest_paths(make_chain())
        assert result.critical_path("c") == ["a", "b", "c"]

    def test_anchor_distance_zero(self):
        assert longest_paths(make_chain()).distance[ANCHOR_NAME] == 0


class TestAsapAlap:
    def test_earliest_starts_match_distances(self):
        assert earliest_starts(make_chain()) == {"a": 0, "b": 5, "c": 8}

    def test_latest_starts_against_horizon(self):
        late = latest_starts(make_chain(), horizon=20)
        # c must finish by 20 -> start <= 16; b <= 13; a <= 8.
        assert late["c"] == 16
        assert late["b"] == 13
        assert late["a"] == 8

    def test_alap_window_contains_asap(self):
        g = make_chain()
        early = earliest_starts(g)
        late = latest_starts(g, horizon=30)
        for name in early:
            assert early[name] <= late[name]

    def test_alap_detects_infeasible_horizon(self):
        from repro import InfeasibleError
        g = make_chain()
        g.add_release("a", 25)
        with pytest.raises(InfeasibleError):
            latest_starts(g, horizon=10)


class TestAddLogTrim:
    """The bounded add log: configurable trim factor + eviction counter."""

    def _seeded_graph(self) -> ConstraintGraph:
        g = ConstraintGraph("trim")
        for index in range(4):
            g.new_task(f"t{index}", duration=2)
        g.add_precedence("t0", "t1")
        longest_paths(g)  # populate the incremental cache
        return g

    def test_set_add_log_factor_returns_previous(self):
        from repro.core import (ADD_LOG_FACTOR, add_log_factor,
                                set_add_log_factor)
        previous = set_add_log_factor(7)
        try:
            assert previous == ADD_LOG_FACTOR
            assert add_log_factor() == 7
            assert set_add_log_factor(None) == 7
            assert add_log_factor() == ADD_LOG_FACTOR
        finally:
            set_add_log_factor(None)

    def test_set_add_log_factor_validates(self):
        from repro.core import set_add_log_factor
        from repro.errors import GraphError
        for bad in (0, -1, True, 2.5, "4"):
            with pytest.raises(GraphError):
                set_add_log_factor(bad)

    def test_trim_bound_respects_factor(self):
        from repro.core import set_add_log_factor
        set_add_log_factor(1)
        try:
            g = self._seeded_graph()
            bound = 1 * (len(g._tasks) + 8)
            for index in range(3 * bound):
                g.add_edge("t2", "t3", index - 100)
                assert len(g._add_log) <= bound
        finally:
            set_add_log_factor(None)

    def test_stale_cache_eviction_is_counted_not_wrong(self):
        from repro.core import set_add_log_factor
        from repro.core.longest_path import (lp_counter_snapshot,
                                             lp_counters_delta)
        set_add_log_factor(1)
        try:
            g = self._seeded_graph()
            bound = 1 * (len(g._tasks) + 8)
            # push enough additions past the cached version that the
            # trimmed log no longer covers it
            for index in range(bound + 4):
                g.add_edge("t2", "t3", index - 100)
            snapshot = lp_counter_snapshot()
            result = longest_paths(g)
            delta = lp_counters_delta(snapshot)
            # the fast path was declined (log window lost) and counted;
            # the answer comes from exactly one slower layer — a journal
            # replay when warm mode is on, a full recompute otherwise
            assert delta["log_evictions"] == 1
            assert delta["full_runs"] + delta["state_restores"] == 1
            assert delta["incremental_runs"] == 0
            # correctness unaffected: distances match a cold graph
            fresh = ConstraintGraph("fresh")
            for index in range(4):
                fresh.new_task(f"t{index}", duration=2)
            fresh.add_precedence("t0", "t1")
            for index in range(bound + 4):
                fresh.add_edge("t2", "t3", index - 100)
            assert result.distance == longest_paths(fresh).distance
        finally:
            set_add_log_factor(None)

    def test_default_factor_keeps_incremental_path(self):
        from repro.core.longest_path import (lp_counter_snapshot,
                                             lp_counters_delta)
        g = self._seeded_graph()
        g.add_edge("t2", "t3", 1)
        snapshot = lp_counter_snapshot()
        longest_paths(g)
        delta = lp_counters_delta(snapshot)
        assert delta["incremental_runs"] == 1
        assert delta["log_evictions"] == 0

    def test_runner_config_passthrough_sets_and_restores(self):
        from repro.core import add_log_factor
        from repro.engine import BatchRunner, RunnerConfig, SweepSpec
        from repro.examples_data import fig1_problem

        before = add_log_factor()
        runner = BatchRunner(RunnerConfig(lp_log_factor=2))
        results = runner.run(
            SweepSpec.grid(fig1_problem(), [10, 12], [4]).jobs())
        assert all(result.ok for result in results)
        # the override is scoped to each job, not leaked process-wide
        assert add_log_factor() == before
        counters = (results[0].stats or {})["counters"]
        assert "lp_cache_log_evictions" in counters
