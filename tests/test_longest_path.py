"""Unit tests for single-source longest path and ASAP/ALAP analysis."""

import pytest

from repro import (ConstraintGraph, PositiveCycleError, earliest_starts,
                   latest_starts, longest_paths)
from repro.core.task import ANCHOR_NAME


def make_chain() -> ConstraintGraph:
    g = ConstraintGraph("chain")
    g.new_task("a", duration=5)
    g.new_task("b", duration=3)
    g.new_task("c", duration=4)
    g.add_precedence("a", "b")
    g.add_precedence("b", "c")
    return g


class TestLongestPaths:
    def test_chain_distances(self):
        dist = longest_paths(make_chain()).distance
        assert dist["a"] == 0
        assert dist["b"] == 5
        assert dist["c"] == 8

    def test_unconstrained_tasks_start_at_zero(self):
        g = ConstraintGraph()
        g.new_task("x", duration=7)
        assert longest_paths(g).distance["x"] == 0

    def test_release_raises_distance(self):
        g = make_chain()
        g.add_release("a", 10)
        dist = longest_paths(g).distance
        assert dist["a"] == 10
        assert dist["c"] == 18

    def test_max_separation_alone_does_not_move_tasks(self):
        g = ConstraintGraph()
        g.new_task("u", duration=5)
        g.new_task("v", duration=5)
        g.add_max_separation("u", "v", 10)
        dist = longest_paths(g).distance
        assert dist["u"] == 0
        assert dist["v"] == 0

    def test_max_separation_can_push_earlier_task(self):
        # v released at 60, u must be within 50 before v:
        # sigma(u) >= 60 - 50 = 10.
        g = ConstraintGraph()
        g.new_task("u", duration=5)
        g.new_task("v", duration=5)
        g.add_release("v", 60)
        g.add_max_separation("u", "v", 50)
        assert longest_paths(g).distance["u"] == 10

    def test_positive_cycle_detected(self):
        g = ConstraintGraph()
        g.new_task("u", duration=5)
        g.new_task("v", duration=5)
        g.add_min_separation("u", "v", 10)
        g.add_max_separation("u", "v", 8)  # contradiction
        with pytest.raises(PositiveCycleError):
            longest_paths(g)

    def test_positive_cycle_reports_cycle_vertices(self):
        g = ConstraintGraph()
        g.new_task("u", duration=5)
        g.new_task("v", duration=5)
        g.add_min_separation("u", "v", 10)
        g.add_max_separation("u", "v", 8)
        with pytest.raises(PositiveCycleError) as excinfo:
            longest_paths(g)
        cycle = excinfo.value.cycle
        assert cycle  # non-empty trace

    def test_critical_path_chain(self):
        result = longest_paths(make_chain())
        assert result.critical_path("c") == ["a", "b", "c"]

    def test_anchor_distance_zero(self):
        assert longest_paths(make_chain()).distance[ANCHOR_NAME] == 0


class TestAsapAlap:
    def test_earliest_starts_match_distances(self):
        assert earliest_starts(make_chain()) == {"a": 0, "b": 5, "c": 8}

    def test_latest_starts_against_horizon(self):
        late = latest_starts(make_chain(), horizon=20)
        # c must finish by 20 -> start <= 16; b <= 13; a <= 8.
        assert late["c"] == 16
        assert late["b"] == 13
        assert late["a"] == 8

    def test_alap_window_contains_asap(self):
        g = make_chain()
        early = earliest_starts(g)
        late = latest_starts(g, horizon=30)
        for name in early:
            assert early[name] <= late[name]

    def test_alap_detects_infeasible_horizon(self):
        from repro import InfeasibleError
        g = make_chain()
        g.add_release("a", 25)
        with pytest.raises(InfeasibleError):
            latest_starts(g, horizon=10)
