"""Sweep planning: job lists and shard plans for (P_max, P_min) grids.

The planner is the first of the engine's three layers (plan → execute →
merge).  It turns a *sweep spec* — one or more workloads crossed with a
``budgets x levels`` power grid — into the ordered
:class:`~repro.engine.jobs.SolveJob` list a
:class:`~repro.engine.runner.BatchRunner` consumes, and partitions any
job list into N *shard manifests* for distributed execution
(:class:`~repro.engine.backends.SubprocessShardBackend`,
:class:`~repro.engine.backends.RemoteBackend`, the ``repro shard``
CLI).

Partition strategies
--------------------
``"tile"`` (default)
    Locality-aware: jobs are grouped by workload (their
    :func:`~repro.engine.hashing.problem_base_key`), each workload's
    points are ordered along the power plane ``(p_max, p_min)``, and
    every workload is cut into N *contiguous* runs — one tile per
    shard.  Contiguity is what makes the per-shard
    :class:`~repro.engine.schedule_store.ScheduleStore` effective: a
    schedule solved at one point of a tile has a validity rectangle
    ``[peak, inf) x (-inf, floor]`` that preferentially covers the
    tile's *neighbouring* points, so keeping neighbours on the same
    shard maximizes in-shard range hits.  Tiles rotate across shards
    per workload so multi-workload sweeps still balance.
``"round_robin"``
    Position ``i`` goes to shard ``i % N`` — the locality-blind
    fallback (and the benchmark's control arm).

Both strategies produce a true partition: every job lands on exactly
one shard, shards keep their jobs in ascending global-position order,
and merging shard results by position restores the original submission
order exactly (property-tested in ``tests/test_planner.py``).

Shard manifests serialize as the documented ``repro-shard-manifest``
v1 JSON format — see :mod:`repro.io.shards` and ``docs/formats.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..core.problem import SchedulingProblem
from ..scheduling.base import SchedulerOptions
from .hashing import problem_base_key
from .jobs import SolveJob

__all__ = ["PARTITION_STRATEGIES", "SweepSpec", "ShardManifest",
           "ShardPlan", "plan_shards"]

#: Partition strategies :func:`plan_shards` understands.
PARTITION_STRATEGIES = ("tile", "round_robin")


@dataclass(frozen=True)
class SweepSpec:
    """One or more workloads crossed with a power grid.

    ``budgets`` are the ``P_max`` values, ``levels`` the ``P_min``
    values; like :func:`repro.analysis.sweep.sweep_grid`, each pair is
    clamped to the physically meaningful ``p_min <= p_max`` corner
    (``(budget, min(level, budget))``) and the resulting duplicate
    corner jobs are kept — the runner's dedup serves them from the
    first occurrence, so planned results match ``sweep_grid`` output
    point for point.

    ``freq_levels`` adds the DVFS axis: when non-empty, every planned
    job's problem gets a uniform operating-point ladder over those
    frequency rungs (:func:`repro.core.dvfs.attach_ladder`), so the
    power-aware pipeline's ``freq_select`` front-end may slow tasks.
    The ladder flows into :func:`~repro.engine.hashing.
    problem_base_key`, so tile partitioning keeps ladder and
    ladder-free variants of the same workload in separate groups, and
    such jobs are schedule-store-exempt (DESIGN.md 5f).
    """

    problems: "tuple[SchedulingProblem, ...]"
    budgets: "tuple[float, ...]"
    levels: "tuple[float, ...]"
    options: "SchedulerOptions | None" = None
    kind: str = "sweep_point"
    name: str = "sweep"
    freq_levels: "tuple[float, ...]" = ()

    @staticmethod
    def grid(problem: "SchedulingProblem | Iterable[SchedulingProblem]",
             budgets: "Iterable[float]", levels: "Iterable[float]",
             options: "SchedulerOptions | None" = None,
             kind: str = "sweep_point", name: str = "sweep",
             freq_levels: "Iterable[float]" = ()) \
            -> "SweepSpec":
        """Build a spec from one problem or an iterable of problems."""
        if isinstance(problem, SchedulingProblem):
            problems: "tuple[SchedulingProblem, ...]" = (problem,)
        else:
            problems = tuple(problem)
        return SweepSpec(problems=problems, budgets=tuple(budgets),
                         levels=tuple(levels), options=options,
                         kind=kind, name=name,
                         freq_levels=tuple(freq_levels))

    def points(self) -> "list[tuple[float, float]]":
        """Row-major (budget-outer) clamped ``(p_max, p_min)`` pairs."""
        return [(budget, min(level, budget))
                for budget in self.budgets for level in self.levels]

    def jobs(self) -> "list[SolveJob]":
        """The ordered job list: problems outer, grid points inner."""
        pairs = self.points()
        problems = self.problems
        if self.freq_levels:
            from ..core.dvfs import attach_ladder
            problems = tuple(attach_ladder(problem, self.freq_levels)
                             for problem in problems)
        return [SolveJob(problem=problem.with_power_constraints(p_max,
                                                                p_min),
                         kind=self.kind, options=self.options)
                for problem in problems
                for p_max, p_min in pairs]


@dataclass
class ShardManifest:
    """One shard's slice of a planned sweep.

    ``jobs`` are ``(global_position, job)`` pairs in ascending position
    order; positions index into the *full* planned job list, so merged
    shard results interleave back into submission order.  ``runner``
    carries the execution knobs a shard worker should honour
    (``retries``, ``reuse_schedules``, ``reuse_policy``,
    ``instrument``, ``lp_log_factor``); ``store`` optionally carries
    the parent's schedule-store document so shards start from the
    already-primed entries.
    """

    index: int
    of: int
    strategy: str
    jobs: "list[tuple[int, SolveJob]]"
    sweep: str = "sweep"
    runner: "dict[str, Any]" = field(default_factory=dict)
    store: "dict[str, Any] | None" = None

    def positions(self) -> "list[int]":
        """The global positions this shard covers, in order."""
        return [position for position, _job in self.jobs]

    def __len__(self) -> int:
        return len(self.jobs)


@dataclass
class ShardPlan:
    """A full partition of one planned job list."""

    strategy: str
    manifests: "list[ShardManifest]"

    @property
    def shards(self) -> int:
        return len(self.manifests)

    def positions(self) -> "list[int]":
        """All covered global positions, ascending."""
        return sorted(position for manifest in self.manifests
                      for position in manifest.positions())

    def __iter__(self):
        return iter(self.manifests)

    def __len__(self) -> int:
        return len(self.manifests)


def plan_shards(jobs: "Sequence[SolveJob] | Sequence[tuple[int, SolveJob]]",
                shards: int, strategy: str = "tile", *,
                sweep: str = "sweep",
                runner: "dict[str, Any] | None" = None,
                store: "dict[str, Any] | None" = None) -> ShardPlan:
    """Partition a job list into ``shards`` manifests.

    ``jobs`` is either a plain job sequence (positions are the
    indices) or already-positioned ``(position, job)`` pairs (the
    backends pass their deduplicated entries this way, where cache
    hits have left holes in the position space).  Empty shards are
    legal — a 4-shard plan of 2 jobs has two empty manifests.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if strategy not in PARTITION_STRATEGIES:
        raise ValueError(
            f"unknown partition strategy {strategy!r}; "
            f"pick from {PARTITION_STRATEGIES}")
    pairs: "list[tuple[int, SolveJob]]" = []
    for index, item in enumerate(jobs):
        if isinstance(item, SolveJob):
            pairs.append((index, item))
        else:
            position, job = item
            pairs.append((int(position), job))
    if strategy == "round_robin":
        buckets = _round_robin_partition(pairs, shards)
    else:
        buckets = _tile_partition(pairs, shards)
    manifests = [ShardManifest(index=index, of=shards,
                               strategy=strategy,
                               jobs=sorted(bucket),
                               sweep=sweep,
                               runner=dict(runner or {}),
                               store=store)
                 for index, bucket in enumerate(buckets)]
    return ShardPlan(strategy=strategy, manifests=manifests)


def _round_robin_partition(pairs, shards):
    """Submission-order dealing: pair ``i`` goes to shard ``i % N``."""
    buckets: "list[list[tuple[int, SolveJob]]]" = \
        [[] for _ in range(shards)]
    for index, pair in enumerate(pairs):
        buckets[index % shards].append(pair)
    return buckets


def _tile_partition(pairs, shards):
    """Contiguous power-plane tiles per workload, rotated across shards.

    Jobs are grouped by workload base key (first-seen order kept for
    determinism), each group is ordered along ``(p_max, p_min,
    position)``, and split into ``shards`` balanced contiguous runs;
    group ``g``'s run ``r`` lands on shard ``(r + g) % shards`` so a
    multi-workload sweep spreads every workload's tiles over all
    shards instead of piling workload 0's cheap corner onto shard 0.
    """
    groups: "dict[str, list[tuple[int, SolveJob]]]" = {}
    for pair in pairs:
        _position, job = pair
        base = problem_base_key(job.problem, job.options, kind=job.kind)
        groups.setdefault(base, []).append(pair)
    buckets: "list[list[tuple[int, SolveJob]]]" = \
        [[] for _ in range(shards)]
    for group_index, members in enumerate(groups.values()):
        ordered = sorted(
            members,
            key=lambda pair: (pair[1].problem.p_max,
                              pair[1].problem.p_min, pair[0]))
        for run_index, run in enumerate(_balanced_runs(ordered, shards)):
            buckets[(run_index + group_index) % shards].extend(run)
    return buckets


def _balanced_runs(ordered, shards):
    """Cut a list into ``shards`` contiguous runs of near-equal size."""
    base, extra = divmod(len(ordered), shards)
    runs = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        runs.append(ordered[start:start + size])
        start += size
    return runs
