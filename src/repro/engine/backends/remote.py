"""Remote execution: drive ``repro serve`` instances over HTTP.

The batch's deduplicated jobs are partitioned exactly like the
subprocess backend's (same planner, same strategies), but each shard is
submitted to a running :class:`~repro.serving.server.SolveServer`
through :class:`~repro.serving.client.ServingClient` instead of a
worker process.  Within a shard, jobs sharing a workload collapse into
one ``POST /v1/sweep`` request (one problem document, many points), so
an N-point power sweep costs one upload of the problem, not N.

Wire-protocol constraint: a solve request carries only the workload,
the points, and an optional ``seed`` — not a full
:class:`~repro.scheduling.base.SchedulerOptions`.  The backend
therefore refuses (with :class:`BackendError`, before anything is
submitted) any batch whose options do not reduce to
``SchedulerOptions(seed=...)``: silently dropping options like
``max_power_restarts`` would return answers a local run of the same
jobs would not produce.

Fault handling: a shard whose server dies mid-stream
(:class:`~repro.serving.client.TruncatedStreamError`, connection
errors) or sheds load (``queue_full``/HTTP 429,
``shutting_down``/HTTP 503) is retried up to ``config.retries`` times,
*reassigned* to the next server in the rotation on each retry; a shard
that exhausts its retries degrades to per-job failed results, never an
exception.  Hard request rejections (``bad_request`` and friends) fail
the shard immediately — re-sending an invalid document is pointless.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

from ...obs import (LOG, current_trace_context, reset_trace_context,
                    set_trace_context)
from ...scheduling.base import SchedulerOptions
from ..hashing import options_fingerprint, problem_base_key
from ..jobs import JobResult, SolveJob
from ..planner import PARTITION_STRATEGIES, ShardManifest, plan_shards
from .base import BackendError, ExecutionBackend

__all__ = ["RemoteBackend"]

#: Error codes worth re-sending to another instance.  Everything else
#: (``bad_request``, ``payload_too_large``, ...) would fail identically
#: wherever it lands.
RETRYABLE_CODES = ("queue_full", "shutting_down", "internal",
                   "truncated_stream", "deadline_exceeded",
                   "bad_gateway")


class RemoteBackend(ExecutionBackend):
    """Fan a batch out over running ``repro serve`` instances."""

    name = "remote"

    def __init__(self, servers: "Sequence[Any]",
                 shards: "int | None" = None, strategy: str = "tile",
                 timeout: float = 300.0):
        from ...serving.client import ServingClient

        if not servers:
            raise BackendError("remote backend needs at least one "
                               "server URL or client")
        self.clients = [server if isinstance(server, ServingClient)
                        else ServingClient(str(server), timeout=timeout)
                        for server in servers]
        self.shards = shards if shards is not None else len(self.clients)
        if self.shards < 1:
            raise BackendError(
                f"shards must be >= 1, got {self.shards}")
        if strategy not in PARTITION_STRATEGIES:
            raise BackendError(
                f"unknown partition strategy {strategy!r}; "
                f"pick from {PARTITION_STRATEGIES}")
        self.strategy = strategy
        #: The plan of the most recent :meth:`run`.
        self.last_plan = None

    def run(self, entries: "Sequence[tuple[int, str, SolveJob]]",
            results: "dict[int, JobResult]", *,
            config, store=None, instrument: bool = False,
            on_result: "Callable[[JobResult], None] | None" = None) \
            -> str:
        for _position, _key, job in entries:
            self._check_wire_representable(job)
        plan = plan_shards([(position, job)
                            for position, _key, job in entries],
                           self.shards, self.strategy)
        self.last_plan = plan
        key_of = {position: key for position, key, _job in entries}
        busy = [manifest for manifest in plan if manifest.jobs]
        if not busy:
            return "remote"
        # ContextVars do not cross ThreadPoolExecutor threads: capture
        # the runner's ambient trace context here and re-install it in
        # each shard thread so the outgoing traceparent headers carry
        # the originating request's ids.
        context = current_trace_context()
        with ThreadPoolExecutor(max_workers=len(busy)) as pool:
            futures = [
                pool.submit(self._run_shard, manifest, config,
                            key_of, store is not None, context)
                for manifest in busy]
            for future in futures:
                for result in future.result():
                    results[result.position] = result
                    if on_result is not None:
                        on_result(result)
        return "remote"

    # ------------------------------------------------------------------

    @staticmethod
    def _check_wire_representable(job: SolveJob) -> None:
        """Refuse options the solve-request wire format cannot carry."""
        if job.kind != "sweep_point":
            raise BackendError(
                f"remote backend only serves 'sweep_point' jobs, "
                f"got kind {job.kind!r}")
        if job.options is None:
            return
        seed = job.options.seed
        reference = SchedulerOptions() if seed is None \
            else SchedulerOptions(seed=seed)
        if options_fingerprint(job.options) \
                != options_fingerprint(reference):
            raise BackendError(
                "remote backend cannot represent these scheduler "
                "options on the wire: solve requests carry only a "
                "seed, and this batch sets non-default options "
                "beyond it — run it with the local or shards backend "
                "instead")

    def _run_shard(self, manifest: ShardManifest, config, key_of,
                   track_reuse: bool,
                   context: "tuple[str, str | None] | None" = None) \
            -> "list[JobResult]":
        """One shard: per-workload sweeps with retry-and-reassign."""
        from ...serving.client import ServingError

        token = set_trace_context(context) if context is not None \
            else None
        try:
            attempts = 0
            error = ""
            while True:
                client = self.clients[
                    (manifest.index + attempts) % len(self.clients)]
                try:
                    return self._submit_shard(client, manifest, key_of,
                                              track_reuse,
                                              attempts=attempts + 1)
                except ServingError as exc:
                    error = str(exc)
                    if exc.code not in RETRYABLE_CODES:
                        break
                except OSError as exc:
                    error = f"{type(exc).__name__}: {exc}"
                attempts += 1
                if attempts > config.retries:
                    break
                if LOG.enabled:
                    LOG.emit("remote.retry",
                             trace_id=context[0] if context else None,
                             shard=manifest.index, attempt=attempts,
                             error=error)
        finally:
            if token is not None:
                reset_trace_context(token)
        if LOG.enabled:
            LOG.emit("remote.degraded",
                     trace_id=context[0] if context else None,
                     shard=manifest.index, attempts=attempts + 1,
                     error=error)
        return [JobResult(position=position,
                          key=key_of.get(position, ""),
                          ok=False,
                          error=f"remote shard {manifest.index} "
                                f"failed: {error}",
                          attempts=attempts + 1)
                for position, _job in manifest.jobs]

    def _submit_shard(self, client, manifest: ShardManifest, key_of,
                      track_reuse: bool, attempts: int) \
            -> "list[JobResult]":
        """Submit one shard to one server; raises to trigger retry."""
        groups: "dict[str, list[tuple[int, SolveJob]]]" = {}
        for position, job in manifest.jobs:
            base = problem_base_key(job.problem, job.options,
                                    kind=job.kind)
            groups.setdefault(base, []).append((position, job))
        out: "list[JobResult]" = []
        for members in groups.values():
            _pos0, first = members[0]
            seed = first.options.seed if first.options is not None \
                else None
            acknowledgement = client.sweep(
                first.problem,
                points=[(job.problem.p_max, job.problem.p_min)
                        for _position, job in members],
                seed=seed)
            status = client.wait(acknowledgement["job"])
            out.extend(self._collect(status, members, key_of,
                                     track_reuse, attempts))
        return out

    def _collect(self, status, members, key_of, track_reuse,
                 attempts) -> "list[JobResult]":
        from ...analysis.sweep import SweepPoint
        from ...serving.client import ServingError

        if status.get("status") != "done":
            error = status.get("error") or {}
            raise ServingError(error.get("code", "internal"),
                               error.get("message",
                                         f"job ended with status "
                                         f"{status.get('status')!r}"),
                               0)
        rows = status.get("points") or []
        if len(rows) != len(members):
            raise ServingError(
                "internal",
                f"server returned {len(rows)} points for "
                f"{len(members)} requested", 0)
        out = []
        for row, (position, job) in zip(rows, members):
            if (row.get("p_max") != job.problem.p_max
                    or row.get("p_min") != job.problem.p_min):
                raise ServingError(
                    "internal",
                    f"point order mismatch at position {position}: "
                    f"asked ({job.problem.p_max}, "
                    f"{job.problem.p_min}), got ({row.get('p_max')}, "
                    f"{row.get('p_min')})", 0)
            # Rebuild the payload on the *request's* exact power pair:
            # the wire normalizes points to float, and bit-for-bit
            # parity with a local run matters more than echoing the
            # server's representation.
            value = SweepPoint(
                p_max=job.problem.p_max, p_min=job.problem.p_min,
                feasible=bool(row.get("feasible")),
                finish_time=row.get("finish_time"),
                energy_cost=row.get("energy_cost"),
                utilization=row.get("utilization"),
                peak_power=row.get("peak_power"))
            stats: "dict[str, Any]" = {}
            if track_reuse:
                # The server ran against its own store; mirror its
                # reuse verdict so the parent's trace and counters
                # reflect what actually happened remotely.
                stats["reuse"] = {"hit": bool(row.get("reused"))}
            out.append(JobResult(position=position,
                                 key=key_of.get(position, ""),
                                 value=value, ok=True,
                                 attempts=attempts,
                                 stats=stats))
        return out
