"""Sharded execution: one subprocess per shard manifest.

The batch's deduplicated jobs are partitioned by the planner
(:func:`~repro.engine.planner.plan_shards`), each shard's manifest is
written to disk, and one ``repro shard run <manifest>`` worker process
executes it, writing a self-contained ``repro-shard-artifact``
(results + the shard's own trace v2 + schedule-store delta + cache
contents + metrics).  The backend waits for all workers, loads the
artifacts, and feeds the results straight back into the owning
:class:`~repro.engine.runner.BatchRunner` — per-job reuse markers and
``new_entries`` deltas ride in ``JobResult.stats`` exactly as they do
for process-pool workers, so settlement and trace assembly are
unchanged.

Failure containment mirrors the local pool: a shard whose worker exits
non-zero, times out, or writes an unreadable artifact is retried up to
``config.retries`` times and then reported as per-job failures — one
dead shard never raises out of a batch.

:func:`run_manifest` is the worker-side entry point (shared with the
``repro shard run`` CLI verb): it replays a manifest through a serial
:class:`BatchRunner` and assembles the artifact.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from typing import Callable, Sequence

from ...errors import ReproError
from ...obs import LOG, current_trace_context
from ..jobs import JobResult, SolveJob
from ..planner import PARTITION_STRATEGIES, plan_shards
from ..schedule_store import ScheduleStore
from .base import BackendError, ExecutionBackend

__all__ = ["SubprocessShardBackend", "run_manifest"]


def run_manifest(manifest):
    """Execute one shard manifest; returns its ShardArtifact.

    Runs the manifest's jobs through a serial in-process
    :class:`~repro.engine.runner.BatchRunner` configured from the
    manifest's ``runner`` section (the parent's store document, when
    shipped, seeds the shard store), then re-tags results and job
    traces with their *global* positions and bundles everything into a
    :class:`~repro.io.shards.ShardArtifact`.
    """
    from ...io.shards import ShardArtifact
    from ..runner import BatchRunner, RunnerConfig

    knobs = manifest.runner or {}
    reuse_policy = knobs.get("reuse_policy", "identical")
    store = None
    if knobs.get("reuse_schedules") or manifest.store is not None:
        if manifest.store is not None:
            store = ScheduleStore.from_dict(manifest.store,
                                            policy=reuse_policy)
        else:
            store = ScheduleStore(policy=reuse_policy)
    config = RunnerConfig(
        workers=0,
        retries=int(knobs.get("retries", 1)),
        reuse_schedules=store is not None,
        reuse_policy=reuse_policy,
        instrument=bool(knobs.get("instrument")),
        lp_log_factor=knobs.get("lp_log_factor"),
        core_kernel=knobs.get("core_kernel", "auto"),
        warm_start=bool(knobs.get("warm_start", True)))
    runner = BatchRunner(config, store=store)
    trace_ctx = knobs.get("trace") or {}
    if trace_ctx.get("trace_id"):
        # The parent runner's trace context rode the manifest; adopt it
        # so this shard's run trace stitches under the same trace_id.
        runner.trace_context = (trace_ctx["trace_id"],
                                trace_ctx.get("parent_span_id"))
    results = runner.run([job for _position, job in manifest.jobs])
    # Results and job traces come back in shard-local order; re-tag
    # them with the manifest's global positions so the merged run
    # interleaves correctly.
    for (position, _job), result in zip(manifest.jobs, results):
        result.position = position
    trace = runner.last_trace
    if trace is not None:
        for (position, _job), job_trace in zip(manifest.jobs,
                                               trace.jobs):
            job_trace.position = position
    store_delta = []
    for result in results:
        store_delta.extend(
            ((result.stats or {}).get("reuse") or {})
            .get("new_entries") or [])
    cache_entries = runner.cache.entries() \
        if runner.cache is not None else []
    return ShardArtifact(
        index=manifest.index,
        of=manifest.of,
        results=results,
        trace=trace,
        store_delta=store_delta,
        cache_stats=runner.cache.stats()
        if runner.cache is not None else {},
        cache_entries=cache_entries,
        metrics=dict(trace.metrics) if trace is not None else {})


class SubprocessShardBackend(ExecutionBackend):
    """Fan a batch out over N ``repro shard run`` worker processes."""

    name = "shards"

    def __init__(self, shards: int = 2, strategy: str = "tile",
                 workdir: "str | None" = None,
                 keep_artifacts: bool = False,
                 python: "str | None" = None):
        if shards < 1:
            raise BackendError(f"shards must be >= 1, got {shards}")
        if strategy not in PARTITION_STRATEGIES:
            raise BackendError(
                f"unknown partition strategy {strategy!r}; "
                f"pick from {PARTITION_STRATEGIES}")
        self.shards = shards
        self.strategy = strategy
        self.workdir = workdir
        self.keep_artifacts = keep_artifacts or workdir is not None
        self.python = python or sys.executable
        #: The plan and artifacts of the most recent :meth:`run`.
        self.last_plan = None
        self.last_artifacts: "list" = []

    def run(self, entries: "Sequence[tuple[int, str, SolveJob]]",
            results: "dict[int, JobResult]", *,
            config, store=None, instrument: bool = False,
            on_result: "Callable[[JobResult], None] | None" = None) \
            -> str:
        key_of = {position: key for position, key, _job in entries}
        runner_doc = {
            "retries": config.retries,
            "reuse_schedules": store is not None,
            "reuse_policy": config.reuse_policy,
            "instrument": bool(instrument),
            "lp_log_factor": config.lp_log_factor,
            "core_kernel": config.core_kernel,
            "warm_start": config.warm_start,
        }
        context = current_trace_context()
        if context is not None:
            runner_doc["trace"] = {"trace_id": context[0],
                                   "parent_span_id": context[1]}
        store_doc = store.snapshot().to_dict() \
            if store is not None else None
        plan = plan_shards([(position, job)
                            for position, _key, job in entries],
                           self.shards, self.strategy,
                           runner=runner_doc, store=store_doc)
        self.last_plan = plan
        self.last_artifacts = []
        workdir = self.workdir or tempfile.mkdtemp(prefix="repro-shards-")
        if self.workdir:
            os.makedirs(workdir, exist_ok=True)
        try:
            self._run_plan(plan, workdir, config, key_of, results,
                           on_result)
        finally:
            if not self.keep_artifacts:
                import shutil
                shutil.rmtree(workdir, ignore_errors=True)
        return "shards"

    # ------------------------------------------------------------------

    def _run_plan(self, plan, workdir, config, key_of, results,
                  on_result) -> None:
        from ...io.shards import save_manifest

        paths = {}
        for manifest in plan:
            if not manifest.jobs:
                continue
            manifest_path = os.path.join(
                workdir, f"shard_{manifest.index}.json")
            artifact_path = os.path.join(
                workdir, f"artifact_{manifest.index}.json")
            log_path = os.path.join(
                workdir, f"shard_{manifest.index}.log")
            save_manifest(manifest, manifest_path)
            paths[manifest.index] = (manifest_path, artifact_path,
                                     log_path)
        pending = [(manifest, 0) for manifest in plan if manifest.jobs]
        while pending:
            procs = []
            for manifest, attempt in pending:
                manifest_path, artifact_path, log_path = \
                    paths[manifest.index]
                log = open(log_path, "ab")
                try:
                    proc = subprocess.Popen(
                        [self.python, "-m", "repro.cli", "shard",
                         "run", manifest_path,
                         "--artifact", artifact_path],
                        stdout=log, stderr=subprocess.STDOUT,
                        env=self._worker_env())
                except OSError as exc:
                    proc = None
                    log.write(f"spawn failed: {exc}\n".encode())
                log.close()
                procs.append((proc, manifest, attempt))
            pending = []
            for proc, manifest, attempt in procs:
                error = self._await_worker(proc, manifest, config)
                artifact = None
                if error is None:
                    _mp, artifact_path, _lp = paths[manifest.index]
                    try:
                        from ...io.shards import load_artifact
                        artifact = load_artifact(artifact_path)
                    except ReproError as exc:
                        error = f"unreadable shard artifact: {exc}"
                if error is None:
                    self.last_artifacts.append(artifact)
                    for result in artifact.results:
                        results[result.position] = result
                        if on_result is not None:
                            on_result(result)
                elif attempt < config.retries:
                    if LOG.enabled:
                        trace_doc = (manifest.runner or {}) \
                            .get("trace") or {}
                        LOG.emit("shard.retry",
                                 trace_id=trace_doc.get("trace_id"),
                                 shard=manifest.index,
                                 attempt=attempt + 1, error=error)
                    pending.append((manifest, attempt + 1))
                else:
                    detail = self._log_tail(paths[manifest.index][2])
                    if detail:
                        error = f"{error}: {detail}"
                    for position, _job in manifest.jobs:
                        results[position] = JobResult(
                            position=position,
                            key=key_of.get(position, ""),
                            ok=False, error=error,
                            attempts=attempt + 1)
                        if on_result is not None:
                            on_result(results[position])

    def _await_worker(self, proc, manifest, config) -> "str | None":
        if proc is None:
            return "shard worker could not be spawned"
        budget = None if config.timeout_s is None \
            else config.timeout_s * len(manifest.jobs)
        try:
            code = proc.wait(budget)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            return (f"shard timed out after {budget:g}s "
                    f"({len(manifest.jobs)} jobs)")
        if code != 0:
            return f"shard worker exited with status {code}"
        return None

    def _worker_env(self) -> "dict[str, str]":
        """The worker environment: this package importable via spawn."""
        import repro
        src_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_dir if not existing \
            else os.pathsep.join([src_dir, existing])
        return env

    @staticmethod
    def _log_tail(log_path: str, limit: int = 300) -> str:
        try:
            with open(log_path, "rb") as handle:
                data = handle.read()
        except OSError:
            return ""
        tail = data[-limit:].decode("utf-8", "replace").strip()
        return tail.splitlines()[-1] if tail else ""
