"""Execution backends: where a :class:`BatchRunner`'s jobs run.

The runner owns batch *policy* — keying, dedup, caching, schedule-store
settlement, trace assembly; a backend owns *dispatch* — actually
executing the deduplicated jobs.  The :class:`ExecutionBackend`
protocol is the seam between the two:

* :class:`LocalBackend` — the original in-process serial loop and
  ``ProcessPoolExecutor`` path (with its silent serial fallback),
* :class:`SubprocessShardBackend` — N ``repro shard run`` worker
  processes, one per planner manifest, exchanging JSON artifacts,
* :class:`RemoteBackend` — running ``repro serve`` instances driven
  over the documented HTTP wire protocol.

All three feed results through the same per-position contract, so the
runner cannot tell them apart — which is exactly what the
shard-count-invariance differential tests assert.
"""

from .base import SNAPSHOT_MODES, BackendError, ExecutionBackend
from .local import LocalBackend
from .remote import RemoteBackend
from .shards import SubprocessShardBackend, run_manifest

__all__ = ["ExecutionBackend", "BackendError", "SNAPSHOT_MODES",
           "LocalBackend", "SubprocessShardBackend", "RemoteBackend",
           "run_manifest"]
