"""The execution-backend seam: *where* the unique jobs of a batch run.

:class:`~repro.engine.runner.BatchRunner` owns the policy around a
batch — keying, dedup, the exact-key result cache, schedule-store
priming and delta settlement, trace assembly.  An
:class:`ExecutionBackend` owns only the mechanism in the middle: given
the deduplicated ``(position, key, job)`` entries, produce one
:class:`~repro.engine.jobs.JobResult` per entry.  Everything before and
after the dispatch is backend-independent, which is what makes the
sharded and remote execution paths drop-in: they fill the same
``results`` dict and ship per-job reuse/obs payloads in the same
``JobResult.stats`` slots the process-pool workers always used.

Contract
--------
``run(entries, results, ...)`` must

* put exactly one :class:`JobResult` into ``results`` for every entry,
  keyed by the entry's *global* position (failures become ``ok=False``
  results, never exceptions — one bad shard must not sink a batch);
* call ``on_result`` (when given) once per produced result, in
  completion order, from the calling thread;
* return its *mode string* — recorded in the run trace and used by
  ``BatchRunner._settle_reuse`` to decide whether schedule-store deltas
  need merging: any mode in :data:`SNAPSHOT_MODES` means the jobs ran
  against store *snapshots* (worker processes, shard subprocesses,
  remote servers) whose new entries ship back through
  ``stats["reuse"]["new_entries"]``; serial modes share the live store
  and need no merge.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence

from ...errors import ReproError
from ..jobs import JobResult, SolveJob

__all__ = ["ExecutionBackend", "BackendError", "SNAPSHOT_MODES"]

#: Mode strings indicating jobs ran against schedule-store snapshots
#: (their new entries must be merged back into the parent store).
SNAPSHOT_MODES = ("process", "shards", "remote")


class BackendError(ReproError):
    """A backend could not be set up or driven at all.

    Per-job and per-shard failures are *results* (``ok=False``), not
    exceptions; this error is reserved for configuration-level problems
    — no servers given, a job mix the backend cannot express, a
    partition request it cannot satisfy.
    """


class ExecutionBackend(ABC):
    """Pluggable dispatch strategy for a batch's unique jobs."""

    #: Short name, used as the default mode string and in CLI flags.
    name = "backend"

    @abstractmethod
    def run(self, entries: "Sequence[tuple[int, str, SolveJob]]",
            results: "dict[int, JobResult]", *,
            config, store=None, instrument: bool = False,
            on_result: "Callable[[JobResult], None] | None" = None) \
            -> str:
        """Execute ``entries``; fill ``results`` by global position.

        ``config`` is the owning runner's
        :class:`~repro.engine.runner.RunnerConfig`; ``store`` its live
        :class:`~repro.engine.schedule_store.ScheduleStore` (already
        primed for every entry), or ``None``.  Returns the mode string
        (see the module docstring for the full contract).
        """

    def empty_mode(self, config) -> str:
        """Mode string reported for a batch with no unique jobs."""
        return self.name
