"""In-process execution: the serial loop and the process pool.

This is the batch runner's original dispatch mechanism, extracted
verbatim behind the :class:`~repro.engine.backends.base.
ExecutionBackend` seam.  ``workers <= 1`` selects the serial loop;
otherwise jobs go through a ``ProcessPoolExecutor`` in chunks, with a
per-job timeout budget and capped chunk retries, degrading silently to
the serial loop when worker processes cannot be created at all
(``"serial-fallback"``) — same results, one process.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..jobs import JobResult, SolveJob, run_chunk, run_job
from .base import ExecutionBackend

__all__ = ["LocalBackend"]


class _PoolUnavailable(RuntimeError):
    """Worker processes could not be created; fall back to serial."""


class LocalBackend(ExecutionBackend):
    """Serial or process-pool execution inside the calling process."""

    name = "local"

    def run(self, entries: "Sequence[tuple[int, str, SolveJob]]",
            results: "dict[int, JobResult]", *,
            config, store=None, instrument: bool = False,
            on_result: "Callable[[JobResult], None] | None" = None) \
            -> str:
        if not entries:
            return self.empty_mode(config)
        if config.workers <= 1:
            self._run_serial(entries, results, config, store,
                             instrument, on_result)
            return "serial"
        try:
            self._run_pool(entries, results, config, store,
                           instrument, on_result)
            return "process"
        except _PoolUnavailable:
            self._run_serial(entries, results, config, store,
                             instrument, on_result)
            return "serial-fallback"

    def empty_mode(self, config) -> str:
        return "serial" if config.workers <= 1 else "process"

    def _run_serial(self, entries, results, config, store,
                    instrument=False, on_result=None) -> None:
        for position, key, job in entries:
            results[position] = run_job(
                job, position=position, key=key,
                retries=config.retries, instrument=instrument,
                store=store, lp_log_factor=config.lp_log_factor,
                core_kernel=config.core_kernel,
                warm_start=config.warm_start)
            if on_result is not None:
                on_result(results[position])

    def _run_pool(self, entries, results, config, store,
                  instrument=False, on_result=None) -> None:
        """Chunked dispatch over a process pool with timeout + retry.

        Raises :class:`_PoolUnavailable` only when the pool cannot be
        *created* — once dispatch has begun, failures are retried and
        finally reported per-job, never raised.
        """
        cfg = config
        try:
            from concurrent.futures import (ProcessPoolExecutor,
                                            TimeoutError as FutureTimeout)
            from concurrent.futures.process import BrokenProcessPool
            pool = ProcessPoolExecutor(max_workers=cfg.workers)
        except Exception as exc:  # noqa: BLE001 - degrade to serial
            raise _PoolUnavailable(str(exc)) from exc

        # Workers get a snapshot of the schedule store (pre-primed by
        # the runner); their new entries return via the job results and
        # are merged by BatchRunner._settle_reuse.
        snapshot = store.snapshot() if store is not None else None
        chunks = [list(entries[i:i + cfg.chunksize])
                  for i in range(0, len(entries), cfg.chunksize)]
        pending = [(chunk, 0) for chunk in chunks]
        clean = True
        try:
            while pending:
                submitted = []
                for chunk, attempt in pending:
                    try:
                        future = pool.submit(run_chunk, chunk,
                                             cfg.retries, instrument,
                                             snapshot,
                                             cfg.lp_log_factor,
                                             cfg.core_kernel,
                                             cfg.warm_start)
                    except Exception:  # noqa: BLE001 - pool is gone
                        future = None
                    submitted.append((future, chunk, attempt))
                pending = []
                for future, chunk, attempt in submitted:
                    error = None
                    if future is None:
                        error = "worker pool rejected the chunk"
                    else:
                        budget = None if cfg.timeout_s is None \
                            else cfg.timeout_s * len(chunk)
                        try:
                            for job_result in future.result(budget):
                                results[job_result.position] = job_result
                                if on_result is not None:
                                    on_result(job_result)
                        except FutureTimeout:
                            future.cancel()
                            clean = False
                            error = (f"timed out after {budget:g}s "
                                     f"(chunk of {len(chunk)})")
                        except BrokenProcessPool:
                            clean = False
                            error = "worker process died"
                        except Exception as exc:  # noqa: BLE001
                            error = f"{type(exc).__name__}: {exc}"
                    if error is None:
                        continue
                    if attempt < cfg.retries:
                        pending.append((chunk, attempt + 1))
                    else:
                        for position, key, _job in chunk:
                            results[position] = JobResult(
                                position=position, key=key, ok=False,
                                error=error, attempts=attempt + 1)
                            if on_result is not None:
                                on_result(results[position])
        finally:
            # A timed-out worker may still be running its job; waiting
            # for it would defeat the timeout, so release the pool
            # without joining in that case.
            pool.shutdown(wait=clean, cancel_futures=True)
