"""Parallel exploration engine for independent solve jobs.

The paper's stated purpose is "to enable the exploration of many more
points in the design space"; this package is the machinery that makes
that exploration cheap and measurable at scale:

* :class:`~repro.engine.runner.BatchRunner` — executes independent
  solve jobs (sweep grids, workload batches, Monte Carlo robustness
  trials) across a ``concurrent.futures.ProcessPoolExecutor`` with
  deterministic per-job seeding, chunked dispatch, per-chunk timeout
  with capped retry, and graceful degradation to a serial in-process
  loop when worker processes are unavailable;
* :class:`~repro.engine.cache.ResultCache` — a solve-result cache keyed
  by a canonical problem hash, so duplicate design points (e.g. the
  clamped ``p_min`` values a ``sweep_p_max`` grid produces) are solved
  exactly once, in the serial path and the parallel path alike;
* :class:`~repro.engine.schedule_store.ScheduleStore` — the
  validity-range layer above the exact cache (paper Section 5.3): a
  solved schedule is reusable for every environment inside its
  ``[peak, inf) x (-inf, floor]`` rectangle, so a ``(P_max, P_min)``
  sweep solves strictly fewer points than it reports; stores serialize
  to JSON and their entries travel across worker processes;
* :class:`~repro.engine.trace.RunTrace` — a structured JSON trace per
  run (schema v2): per-job wall times, cache hit/miss/eviction
  counters, the per-stage scheduler timings threaded through
  :class:`~repro.scheduling.base.SchedulerStats`, and — when the run
  is instrumented (``RunnerConfig(instrument=True)``) — the
  :mod:`repro.obs` span tree and metric snapshot, with worker-process
  spans re-parented under their job spans.

Since PR 5 the engine is layered as **plan → execute → merge**:
:mod:`~repro.engine.planner` turns sweep specs into ordered job lists
and partitions them into shard manifests (locality-aware ``tile`` or
``round_robin``); :mod:`~repro.engine.backends` is the dispatch seam —
the in-process :class:`~repro.engine.backends.LocalBackend` (default),
the :class:`~repro.engine.backends.SubprocessShardBackend`, and the
HTTP-driving :class:`~repro.engine.backends.RemoteBackend`; and
:mod:`~repro.engine.merge` folds per-shard artifacts back into one
run — results interleaved by position, traces re-rooted, store and
cache deltas deduped.

Determinism contract: for the same jobs and the same seeds, a parallel
run returns results identical to a serial run — parallelism and caching
only change *when* a point is solved, never *what* it resolves to.
The differential tests extend this across backends: merged shard runs
are indistinguishable from serial runs, point for point.
"""

from .backends import (SNAPSHOT_MODES, BackendError, ExecutionBackend,
                       LocalBackend, RemoteBackend,
                       SubprocessShardBackend)
from .cache import ResultCache
from .hashing import (options_fingerprint, problem_base_key,
                      problem_key)
from .jobs import (JobResult, SolveJob, derive_seed, register_kind,
                   run_job, solve_problems)
from .merge import (MergedRun, canonical_store_doc, merge_artifacts,
                    merge_results, merge_store_deltas, merge_traces)
from .planner import (PARTITION_STRATEGIES, ShardManifest, ShardPlan,
                      SweepSpec, plan_shards)
from .runner import BatchRunner, RunnerConfig
from .schedule_store import (REUSE_POLICIES, ScheduleStore,
                             StoredSchedule)
from .trace import JobTrace, RunTrace, load_trace, read_trace

__all__ = [
    "BackendError",
    "BatchRunner",
    "ExecutionBackend",
    "JobResult",
    "JobTrace",
    "LocalBackend",
    "MergedRun",
    "PARTITION_STRATEGIES",
    "REUSE_POLICIES",
    "RemoteBackend",
    "ResultCache",
    "RunTrace",
    "RunnerConfig",
    "SNAPSHOT_MODES",
    "ScheduleStore",
    "ShardManifest",
    "ShardPlan",
    "SolveJob",
    "StoredSchedule",
    "SubprocessShardBackend",
    "SweepSpec",
    "canonical_store_doc",
    "derive_seed",
    "load_trace",
    "merge_artifacts",
    "merge_results",
    "merge_store_deltas",
    "merge_traces",
    "options_fingerprint",
    "plan_shards",
    "problem_base_key",
    "problem_key",
    "read_trace",
    "register_kind",
    "run_job",
    "solve_problems",
]
