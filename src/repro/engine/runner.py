"""The batch runner: parallel execution of independent solve jobs.

Execution model
---------------
``BatchRunner.run`` takes an ordered list of :class:`SolveJob` and
returns one :class:`JobResult` per job, in order.  Internally it

1. **keys** every job with its canonical problem hash,
2. **dedups**: jobs sharing a key are solved once (first occurrence is
   the *primary*; the rest are served from the in-run memo), and a
   persistent :class:`ResultCache` — when attached — short-circuits
   points already solved by earlier runs,
3. **dispatches** the unique jobs either serially in-process
   (``workers <= 1``) or across a ``ProcessPoolExecutor`` in chunks of
   ``chunksize`` jobs, with a per-job timeout budget and a capped
   number of chunk retries, and
4. **degrades gracefully**: if worker processes cannot be created (no
   ``fork``/``spawn`` support, sandboxing, resource limits) the batch
   silently falls back to the serial loop — same results, one process.

Determinism: job seeds are fixed inputs (see
:meth:`SolveJob.reseeded` / ``RunnerConfig.reseed_base``), dedup serves
byte-identical payloads, and result order is the submission order — so
a parallel run is indistinguishable from a serial run of the same jobs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from ..core.kernel import KERNEL_MODES
from ..obs import (LOG, OBS, MetricsRegistry, Span, absorb_cache_stats,
                   absorb_scheduler_stats, absorb_store_stats,
                   current_trace_context, new_span_id, new_trace_id,
                   reset_trace_context, set_trace_context)
from .backends.base import SNAPSHOT_MODES, ExecutionBackend
from .backends.local import LocalBackend
from .cache import ResultCache
from .jobs import JobResult, SolveJob
from .schedule_store import REUSE_POLICIES, ScheduleStore
from .trace import JobTrace, RunTrace

__all__ = ["RunnerConfig", "BatchRunner"]


@dataclass
class RunnerConfig:
    """Tunable knobs of a :class:`BatchRunner`.

    Attributes
    ----------
    workers:
        Worker processes; ``0`` or ``1`` selects the in-process serial
        loop (the default — parallelism is opt-in).
    chunksize:
        Jobs per dispatched chunk.  Larger chunks amortize IPC for
        very cheap jobs; 1 (default) gives the finest timeout/retry
        granularity.
    timeout_s:
        Per-job wall-clock budget; a chunk's budget is
        ``timeout_s * len(chunk)``.  ``None`` (default) waits forever.
    retries:
        Capped retry budget, applied both in-worker (re-running a job
        whose kind function raised) and at chunk level (re-submitting a
        chunk that timed out or whose worker died).
    cache_max_entries:
        Size bound of the attached result cache (``None`` = unbounded).
    use_cache:
        Attach a persistent :class:`ResultCache` to the runner.  In-run
        dedup of identical jobs happens regardless; the cache extends
        that memo across successive ``run`` calls.
    reseed_base:
        When set, every job is reseeded with
        ``derive_seed(reseed_base, position)`` before keying — one
        deterministic seed per batch position (Monte Carlo batches).
    reuse_schedules:
        Attach a validity-range :class:`ScheduleStore`: jobs whose
        power environment falls inside a stored schedule's validity
        rectangle are served without running the pipeline (paper
        Section 5.3).  Orthogonal to the exact-key ``use_cache`` memo —
        the cache serves *identical* jobs, the store serves the same
        workload under *different* ``(P_max, P_min)``.
    reuse_policy:
        ``"identical"`` (default) serves only certified entries that
        provably reproduce a fresh solve bit-for-bit;``"valid"`` serves
        any covering entry (power-valid, full utilization — the paper's
        Fig. 7 semantics) even when a fresh solve might beat it.
    lp_log_factor:
        When set, overrides the constraint graph's add-log trim bound
        multiplier (:data:`repro.core.graph.ADD_LOG_FACTOR`) for every
        job of the batch — serial, pooled, and sharded workers alike.
        Larger factors keep stale longest-path caches on the
        incremental fast path longer on big synthetic workloads (watch
        the ``lp_cache_log_evictions`` counter to see whether the
        window is the bottleneck); ``None`` (default) keeps the
        process-wide setting.
    core_kernel:
        Solver-core selection for every job of the batch (serial,
        pooled, and sharded workers alike): ``"auto"`` (default) uses
        the numpy fast path when numpy is importable, ``"numpy"``
        forces it, ``"oracle"`` forces the pure-Python reference
        implementation.  The fast path is certified bit-identical to
        the oracle (see ``repro.core.kernel``), so this is a speed
        knob, never a results knob.
    warm_start:
        Warm-started re-solves (default True): longest-path fixpoints
        are memoized across checkpoints/rollbacks and carried across
        graph copies and neighbouring sweep points, so a re-solve of a
        shared edge set starts from the solved distances instead of
        cold.  Exact — an identical edge set has an identical unique
        fixpoint — and surfaced in the ``lp_state_restores`` /
        ``lp_warm_hits`` counters.  Disable to measure cold-solve cost.
    trace_path:
        When set, every run writes its JSON :class:`RunTrace` here.
    instrument:
        Record the run through :mod:`repro.obs`: hierarchical spans
        (the run, each job, the pipeline stages and longest-path
        recomputes inside each solve — worker-process spans shipped
        back and re-parented under their job span) plus the metrics
        registry snapshot, both embedded in the ``repro-trace`` v2
        document.  Off by default; a run with the process-wide
        :data:`repro.obs.OBS` recorder already enabled is instrumented
        regardless, and its span tree is additionally attached to that
        session.
    """

    workers: int = 0
    chunksize: int = 1
    timeout_s: "float | None" = None
    retries: int = 1
    cache_max_entries: "int | None" = 4096
    use_cache: bool = True
    reseed_base: "int | None" = None
    reuse_schedules: bool = False
    reuse_policy: str = "identical"
    lp_log_factor: "int | None" = None
    core_kernel: str = "auto"
    warm_start: bool = True
    trace_path: "str | None" = None
    instrument: bool = False

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.lp_log_factor is not None and self.lp_log_factor < 1:
            raise ValueError(
                f"lp_log_factor must be >= 1 or None, "
                f"got {self.lp_log_factor}")
        if self.core_kernel not in KERNEL_MODES:
            raise ValueError(
                f"core_kernel must be one of {KERNEL_MODES}, "
                f"got {self.core_kernel!r}")
        if self.chunksize < 1:
            raise ValueError(
                f"chunksize must be >= 1, got {self.chunksize}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(
                f"timeout_s must be positive or None, got {self.timeout_s}")
        if self.reuse_policy not in REUSE_POLICIES:
            raise ValueError(
                f"reuse_policy must be one of {REUSE_POLICIES}, "
                f"got {self.reuse_policy!r}")


class BatchRunner:
    """Execute independent solve jobs, in parallel when asked to.

    ``backend`` selects *where* the deduplicated jobs run (see
    :mod:`repro.engine.backends`): the default
    :class:`~repro.engine.backends.LocalBackend` reproduces the
    original serial/process-pool behaviour; sharded and remote backends
    plug into the same seam without changing keying, dedup, caching,
    store settlement, or trace assembly.
    """

    def __init__(self, config: "RunnerConfig | None" = None,
                 cache: "ResultCache | None" = None,
                 store: "ScheduleStore | None" = None,
                 backend: "ExecutionBackend | None" = None):
        self.config = config or RunnerConfig()
        self.backend: ExecutionBackend = backend or LocalBackend()
        if cache is not None:
            self.cache: "ResultCache | None" = cache
        elif self.config.use_cache:
            self.cache = ResultCache(self.config.cache_max_entries)
        else:
            self.cache = None
        if store is not None:
            self.store: "ScheduleStore | None" = store
        elif self.config.reuse_schedules:
            self.store = ScheduleStore(policy=self.config.reuse_policy)
        else:
            self.store = None
        #: Trace of the most recent :meth:`run` (also written to
        #: ``config.trace_path`` when that is set).
        self.last_trace: "RunTrace | None" = None
        #: Execution mode of the most recent run:
        #: ``"serial"`` | ``"process"`` | ``"serial-fallback"``.
        self.last_mode: "str | None" = None
        #: Explicit distributed trace context
        #: ``(trace_id, parent_span_id)`` for the next run; when unset
        #: the ambient context (:func:`repro.obs.current_trace_context`)
        #: is used, and failing that a fresh trace id is minted — every
        #: run belongs to exactly one distributed trace.
        self.trace_context: "tuple[str, str | None] | None" = None

    # ------------------------------------------------------------------

    def run(self, jobs: "Iterable[SolveJob]",
            on_result: "Callable[[JobResult], None] | None" = None) \
            -> "list[JobResult]":
        """Execute ``jobs``; results come back in submission order.

        ``on_result`` is the streaming hook the serving front-end
        builds on: it is invoked once per job, in *completion* order
        (cache hits first, then solved primaries as they land, then
        dedup copies), from whatever thread is executing ``run`` —
        callbacks must be cheap and must not raise.  The returned list
        is still the authoritative, submission-ordered result.
        """
        t_start = time.perf_counter()
        instrument = self.config.instrument or OBS.enabled
        cache_before = self.cache.stats() if self.cache is not None \
            else None
        store_before = self.store.counters() \
            if self.store is not None else None
        ordered = list(jobs)
        if self.config.reseed_base is not None:
            ordered = [job.reseeded(self.config.reseed_base, position)
                       for position, job in enumerate(ordered)]
        keyed = [(position, job.key(), job)
                 for position, job in enumerate(ordered)]

        results: "dict[int, JobResult]" = {}
        cache_hits = 0
        dedup_hits = 0
        # primaries: first job per distinct key that must be solved
        primaries: "dict[str, tuple[int, SolveJob]]" = {}
        duplicates: "list[tuple[int, str]]" = []
        for position, key, job in keyed:
            if self.cache is not None:
                # peek(): classification must not disturb accounting —
                # a job that ends up range-served by the schedule store
                # was never a cache miss, and duplicate occurrences of
                # one uncached key are one miss, not many.
                hit, value = self.cache.peek(key)
                if hit:
                    self.cache.lookup(key)  # record hit, refresh LRU
                    cache_hits += 1
                    results[position] = JobResult(
                        position=position, key=key, value=value,
                        cached=True)
                    if on_result is not None:
                        on_result(results[position])
                    continue
            if key in primaries:
                duplicates.append((position, key))
                dedup_hits += 1
                continue
            primaries[key] = (position, job)

        entries = [(position, key, job)
                   for key, (position, job) in primaries.items()]
        if self.store is not None:
            # Prime the certified timing-stage entries in the parent so
            # every worker snapshot already carries them; idempotent per
            # base key, so serial jobs find the work done too.
            for _position, _key, job in entries:
                self.store.ensure_primed(job.problem, job.options,
                                         kind=job.kind)
        context = self.trace_context or current_trace_context()
        trace_id, parent_span_id = context if context is not None \
            else (new_trace_id(), None)
        run_span_id = new_span_id()
        run_wall0 = time.time()
        # Backends read the ambient context on this thread and carry it
        # across their process/machine boundary (wire header, manifest).
        token = set_trace_context((trace_id, run_span_id))
        try:
            mode = self._execute(entries, results, instrument,
                                 on_result=on_result)
        finally:
            reset_trace_context(token)

        range_hits = self._settle_reuse(entries, results, mode,
                                        trace_id=trace_id)

        for position, key in duplicates:
            primary = results[primaries[key][0]]
            results[position] = JobResult(
                position=position, key=key, value=primary.value,
                ok=primary.ok, error=primary.error, cached=True)
            if on_result is not None:
                on_result(results[position])
        if self.cache is not None:
            for key, (position, _job) in primaries.items():
                primary = results[position]
                if primary.ok:
                    reuse = (primary.stats or {}).get("reuse") or {}
                    if not reuse.get("hit"):
                        # The solve is committed: record the miss the
                        # classification peek deferred.
                        self.cache.lookup(key)
                    self.cache.put(key, primary.value)

        final = [results[position] for position in range(len(ordered))]
        elapsed_s = time.perf_counter() - t_start
        spans: "list[dict]" = []
        metrics: "dict[str, dict]" = {}
        if instrument:
            spans, metrics = self._assemble_obs(
                final, entries, mode, run_wall0, elapsed_s,
                cache_hits=cache_hits + dedup_hits,
                cache_before=cache_before, store_before=store_before,
                trace_id=trace_id, span_id=run_span_id,
                parent_span_id=parent_span_id)
        self.last_mode = mode
        self.last_trace = self._build_trace(
            final, mode, unique_solved=len(entries),
            cache_hits=cache_hits + dedup_hits,
            range_hits=range_hits,
            elapsed_s=elapsed_s, spans=spans, metrics=metrics,
            trace_id=trace_id, span_id=run_span_id,
            parent_span_id=parent_span_id)
        if self.config.trace_path:
            self.last_trace.write(self.config.trace_path)
        return final

    def _settle_reuse(self, entries, results: "dict[int, JobResult]",
                      mode: str, trace_id: "str | None" = None) -> int:
        """Post-execution schedule-store bookkeeping.

        Credits the parent store's hit/miss counters from the per-job
        reuse markers (:meth:`ScheduleStore.probe` is side-effect-free,
        so serial and parallel runs account identically here), and —
        when the jobs ran in worker processes against snapshots — merges
        the shipped new entries back into the parent store.  Returns the
        number of range-served jobs for the run trace.
        """
        if self.store is None:
            return 0
        range_hits = 0
        for position, _key, _job in entries:
            result = results.get(position)
            if result is None:
                continue
            reuse = (result.stats or {}).get("reuse")
            if not reuse:
                continue
            if reuse.get("hit"):
                range_hits += 1
                self.store.range_hits += 1
            else:
                self.store.misses += 1
            if mode in SNAPSHOT_MODES and reuse.get("new_entries"):
                # Serial runs insert into the live store directly; only
                # snapshot-running modes (pool workers, shard
                # subprocesses, remote servers) need their deltas
                # folded back.
                self.store.merge_delta(reuse["new_entries"])
                if LOG.enabled:
                    LOG.emit("store.merge", trace_id=trace_id,
                             position=position, mode=mode,
                             entries=len(reuse["new_entries"]))
        return range_hits

    def run_values(self, jobs: "Iterable[SolveJob]") -> "list[Any]":
        """Like :meth:`run` but returns just the payloads (``None`` for
        jobs that ultimately failed)."""
        return [result.value for result in self.run(jobs)]

    async def arun(self, jobs: "Iterable[SolveJob]",
                   on_result: "Callable[[JobResult], None] | None"
                   = None) -> "list[JobResult]":
        """Async submission hook: :meth:`run` off the event loop.

        The batch executes in a worker thread (``asyncio.to_thread``),
        so an asyncio server stays responsive while solves run; one
        runner must only ever execute one batch at a time (the cache
        and store are not guarded for concurrent ``run`` calls), which
        the serving layer's micro-batching loop guarantees by design.
        ``on_result`` fires on the worker thread — marshal back onto
        the loop with ``call_soon_threadsafe`` before touching asyncio
        state.
        """
        import asyncio
        return await asyncio.to_thread(self.run, jobs,
                                       on_result=on_result)

    # ------------------------------------------------------------------

    def _execute(self, entries: "Sequence[tuple[int, str, SolveJob]]",
                 results: "dict[int, JobResult]",
                 instrument: bool = False,
                 on_result=None) -> str:
        """Solve the unique jobs; fills ``results`` keyed by position.

        Delegates to the configured :class:`ExecutionBackend` — the
        seam between batch policy (this class) and dispatch mechanism
        (serial/pool/shards/remote).
        """
        if not entries:
            return self.backend.empty_mode(self.config)
        return self.backend.run(entries, results, config=self.config,
                                store=self.store, instrument=instrument,
                                on_result=on_result)

    # ------------------------------------------------------------------
    # observability assembly
    # ------------------------------------------------------------------

    def _assemble_obs(self, final: "list[JobResult]", entries,
                      mode: str, run_wall0: float, elapsed_s: float,
                      cache_hits: int, cache_before,
                      store_before=None, trace_id: "str | None" = None,
                      span_id: "str | None" = None,
                      parent_span_id: "str | None" = None) \
            -> "tuple[list[dict], dict[str, dict]]":
        """Build the run's span tree and metric snapshot.

        Every solved job shipped its own span subtree (recorded inside
        :func:`repro.engine.jobs.run_job`'s capture, times relative to
        the job start) plus its metric increments.  Here each subtree
        is re-based onto the run timeline via the shared wall clock and
        re-parented under a per-job ``engine.job`` span beneath the
        single ``engine.run`` root — so serial and parallel runs yield
        the same tree shape and identical metric totals, parallel runs
        merely overlap their job spans in time.
        """
        registry = MetricsRegistry()
        run_span = Span("engine.run", 0.0, elapsed_s, attrs={
            "jobs": len(final), "mode": mode,
            "workers": self.config.workers})
        if trace_id is not None:
            run_span.attrs["trace_id"] = trace_id
        if span_id is not None:
            run_span.attrs["span_id"] = span_id
        if parent_span_id is not None:
            run_span.attrs["parent_span_id"] = parent_span_id
        solved_by_position = {position: True
                              for position, _key, _job in entries}
        for result in final:
            absorb_scheduler_stats(registry, result.stats or {})
            if result.position not in solved_by_position:
                continue
            obs_payload = (result.stats or {}).pop("obs", None)
            start = 0.0
            if obs_payload is not None:
                start = max(0.0, obs_payload["wall0"] - run_wall0)
            job_span = Span(
                "engine.job", start, start + result.elapsed_s,
                attrs={"position": result.position,
                       "key": result.key[:12],
                       "ok": result.ok,
                       "attempts": result.attempts})
            if not result.ok and result.error:
                job_span.attrs["error"] = result.error
            if obs_payload is not None:
                for span_doc in obs_payload.get("spans", []):
                    job_span.children.append(
                        Span.from_dict(span_doc).shift(start))
                registry.merge_data(obs_payload.get("metrics", {}))
            run_span.children.append(job_span)
            registry.histogram("engine.job.seconds") \
                .observe(result.elapsed_s)
            if not result.ok:
                registry.counter("engine.jobs.failed").inc()
        run_span.end = max(
            [elapsed_s] + [child.end for child in run_span.children
                           if child.end is not None])
        registry.counter("engine.run.jobs").inc(len(final))
        registry.counter("engine.run.unique_solved").inc(
            len(run_span.children))
        registry.counter("engine.run.cache_hits").inc(cache_hits)
        if self.cache is not None and cache_before is not None:
            absorb_cache_stats(registry, cache_before,
                               self.cache.stats())
        if self.store is not None and store_before is not None:
            absorb_store_stats(registry, store_before,
                               self.store.counters())
        spans_doc = [run_span.to_dict()]
        if OBS.enabled:
            # A surrounding obs session (e.g. a mission simulation
            # driving batch solves) sees this run in its own stream,
            # shifted onto the session timeline.
            OBS.attach(run_span.shift(
                max(0.0, OBS.now() - (run_span.end or 0.0))))
        return spans_doc, registry.snapshot()

    # ------------------------------------------------------------------

    def _build_trace(self, final: "list[JobResult]", mode: str,
                     unique_solved: int, cache_hits: int,
                     elapsed_s: float,
                     range_hits: int = 0,
                     spans: "list[dict] | None" = None,
                     metrics: "dict[str, dict] | None" = None,
                     trace_id: "str | None" = None,
                     span_id: "str | None" = None,
                     parent_span_id: "str | None" = None) \
            -> RunTrace:
        cfg = self.config
        reuse_doc = None
        if self.store is not None:
            reuse_doc = {"policy": self.store.policy,
                         "range_hits": range_hits,
                         "solved": unique_solved - range_hits,
                         **self.store.counters()}
        run_doc = {
            "jobs": len(final),
            "unique_solved": unique_solved,
            "workers": cfg.workers,
            "mode": mode,
            "chunksize": cfg.chunksize,
            "timeout_s": cfg.timeout_s,
            "retries": cfg.retries,
            "instrumented": bool(spans),
            "elapsed_s": round(elapsed_s, 6),
        }
        if trace_id is not None:
            run_doc["trace_id"] = trace_id
        if span_id is not None:
            run_doc["span_id"] = span_id
        if parent_span_id is not None:
            run_doc["parent_span_id"] = parent_span_id
        trace = RunTrace(
            run=run_doc,
            cache={"hits": cache_hits, "misses": unique_solved,
                   **({"evictions": self.cache.evictions,
                       "entries": len(self.cache)}
                      if self.cache is not None else {})},
            spans=list(spans or []),
            metrics=dict(metrics or {}),
            reuse=reuse_doc)
        for result in final:
            stats = result.stats or {}
            reuse = stats.get("reuse") or {}
            trace.add_job(JobTrace(
                position=result.position,
                key=result.key,
                cached=result.cached,
                ok=result.ok,
                attempts=result.attempts,
                elapsed_s=result.elapsed_s,
                error=result.error,
                stage_seconds=dict(stats.get("stage_seconds", {})),
                counters=dict(stats.get("counters", {})),
                reused=bool(reuse.get("hit"))))
        return trace
