"""Solve-result cache keyed by canonical problem hashes.

A small LRU memo shared by the batch runner: duplicate design points
(clamped sweep corners, repeated Monte Carlo corners, re-runs of the
same grid) are solved once and served from memory afterwards.  Values
are whatever a job kind returns (sweep points, metric rows) — small,
immutable payloads, never live scheduler state.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

__all__ = ["ResultCache"]

_MISS = object()


class ResultCache:
    """In-memory LRU cache with hit/miss accounting."""

    def __init__(self, max_entries: "int | None" = 4096):
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1 or None, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, key: str) -> "tuple[bool, Any]":
        """``(hit, value)`` — counts the access either way."""
        value = self._entries.get(key, _MISS)
        if value is _MISS:
            self.misses += 1
            return False, None
        self._entries.move_to_end(key)
        self.hits += 1
        return True, value

    def peek(self, key: str) -> "tuple[bool, Any]":
        """``(hit, value)`` without touching counters or LRU order.

        The validity-range schedule store probes the exact cache before
        deciding whether a job needs a solve at all; counting that probe
        as a miss (as :meth:`lookup` does) would charge the cache for
        jobs it was never asked to serve.  Callers that act on the
        answer should follow up with :meth:`lookup` (on a hit, to record
        it and refresh recency) or count the miss at the point the solve
        is actually committed.
        """
        value = self._entries.get(key, _MISS)
        if value is _MISS:
            return False, None
        return True, value

    def contains(self, key: str) -> bool:
        """Membership probe *without* touching the counters."""
        return key in self._entries

    def put(self, key: str, value: Any) -> None:
        """Insert (or refresh) an entry, evicting the oldest if full."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def entries(self) -> "list[tuple[str, Any]]":
        """``(key, value)`` pairs in LRU order (oldest first).

        The export half of shard artifacts: a worker ships its cache
        contents so the merged run's cache serves everything any shard
        solved.  Iteration order is the insertion/recency order, so
        replaying the pairs through :meth:`put` reproduces the cache.
        """
        return list(self._entries.items())

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> "dict[str, int]":
        """Counters for traces and reports."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries)}

    def __repr__(self) -> str:
        return (f"ResultCache(entries={len(self._entries)}, "
                f"hits={self.hits}, misses={self.misses}, "
                f"evictions={self.evictions})")
