"""Merging per-shard artifacts back into one run.

The third engine layer (plan → execute → merge): given the
:class:`~repro.io.shards.ShardArtifact` each ``repro shard run``
produced, rebuild what a single unsharded
:class:`~repro.engine.runner.BatchRunner` run would have reported —

* one position-ordered :class:`~repro.engine.jobs.JobResult` list
  (strict: a position claimed by two shards is a planner/merge bug and
  raises),
* one re-rooted ``repro-trace`` v2 document: a fresh ``engine.run``
  root with one ``engine.shard`` child per shard wrapping that shard's
  own span forest, job records interleaved back into submission order,
  cache counters and metric counters summed,
* one merged :class:`~repro.engine.schedule_store.ScheduleStore` built
  by folding every shard's journal delta through the store's existing
  :meth:`~repro.engine.schedule_store.ScheduleStore.merge_delta`
  dedupe path, and one merged :class:`~repro.engine.cache.ResultCache`
  from the shard caches (dedup ran before sharding, so shard key sets
  are disjoint and insertion order cannot conflict).

Metric merging note: shard artifacts carry the *snapshot* form of the
metrics registry, so counters merge exactly (summed — the
"reconciled" totals the run trace reports) and gauges take the last
shard's value, but histogram quantiles cannot be recombined from
summaries; merged histograms keep exact ``count``/``sum``/``min``/
``max`` and report each quantile as the maximum across shards (a
conservative upper bound).  The ``sweep --backend shards`` path does
not pay this approximation: there the parent runner rebuilds its
metrics from the per-job observations the artifacts ship, exactly as
it does for process-pool workers.

Store equality across shard counts is checked with
:func:`canonical_store_doc`: shards discover entries in
partition-dependent *order*, so the canonical form sorts each bucket's
entries and drops run counters — two stores holding the same schedules
compare equal regardless of how the sweep was partitioned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..errors import ReproError
from ..obs import Span
from .cache import ResultCache
from .jobs import JobResult
from .schedule_store import ScheduleStore
from .trace import RunTrace

__all__ = ["MergedRun", "merge_artifacts", "merge_results",
           "merge_traces", "merge_store_deltas", "canonical_store_doc"]


@dataclass
class MergedRun:
    """The single-run view assembled from per-shard artifacts."""

    results: "list[JobResult]"
    trace: RunTrace
    store: "ScheduleStore | None" = None
    cache: "ResultCache | None" = None
    metrics: "dict[str, Any]" = field(default_factory=dict)


def merge_results(artifacts: "Sequence[Any]") -> "list[JobResult]":
    """Interleave shard results back into global submission order.

    Positions must partition cleanly: any position reported by two
    shards raises (the planner guarantees disjointness, so a collision
    means mismatched artifacts were mixed).
    """
    by_position: "dict[int, JobResult]" = {}
    for artifact in artifacts:
        for result in artifact.results:
            if result.position in by_position:
                raise ReproError(
                    f"shard artifacts overlap at position "
                    f"{result.position} (shard {artifact.index} "
                    "duplicates an already-merged result)")
            by_position[result.position] = result
    return [by_position[position]
            for position in sorted(by_position)]


def merge_traces(artifacts: "Sequence[Any]",
                 strategy: "str | None" = None) -> RunTrace:
    """One re-rooted trace v2 document covering every shard.

    The merged span forest is a single ``engine.run`` root (mode
    ``"shards"``) with one ``engine.shard`` child per shard; each
    shard's own span forest (its ``engine.run`` and everything below)
    hangs unmodified beneath its shard span, so per-stage flamegraphs
    still work — they are simply grouped by shard.  Wall-clock spans of
    different shards overlap (they ran concurrently); the merged run's
    ``elapsed_s`` is therefore the *maximum* shard elapsed, while cache
    counters and job totals are sums.
    """
    jobs_total = 0
    unique_total = 0
    elapsed = 0.0
    cache_totals: "dict[str, int]" = {}
    reuse_totals: "dict[str, Any] | None" = None
    shard_spans: "list[Span]" = []
    job_traces = []
    instrumented = False
    trace_ids: "set[str]" = set()
    parent_ids: "set[str]" = set()
    for artifact in artifacts:
        trace = artifact.trace
        if trace is None:
            continue
        run = trace.run
        if run.get("trace_id"):
            trace_ids.add(run["trace_id"])
        if run.get("parent_span_id"):
            parent_ids.add(run["parent_span_id"])
        jobs_total += run.get("jobs", 0)
        unique_total += run.get("unique_solved", 0)
        elapsed = max(elapsed, run.get("elapsed_s", 0.0))
        instrumented = instrumented or bool(run.get("instrumented"))
        for key, count in trace.cache.items():
            cache_totals[key] = cache_totals.get(key, 0) + count
        if trace.reuse is not None:
            if reuse_totals is None:
                reuse_totals = {"policy": trace.reuse.get("policy")}
            for key, value in trace.reuse.items():
                if key == "policy":
                    continue
                reuse_totals[key] = reuse_totals.get(key, 0) + value
        job_traces.extend(trace.jobs)
        shard_span = Span("engine.shard", 0.0,
                          run.get("elapsed_s", 0.0),
                          attrs={"shard": artifact.index,
                                 "of": artifact.of,
                                 "jobs": run.get("jobs", 0)})
        shard_span.children = [Span.from_dict(span_doc)
                               for span_doc in trace.spans]
        shard_spans.append(shard_span)
    run_span = Span("engine.run", 0.0, elapsed,
                    attrs={"jobs": jobs_total, "mode": "shards",
                           "shards": len(list(artifacts))})
    run_span.children = shard_spans
    # When every shard ran under the same distributed trace (the
    # parent runner's context rode the manifests), the merged run IS
    # that trace: stitch the shared ids onto the root instead of
    # leaving a synthetic, id-less root.
    stitched_trace_id = trace_ids.pop() if len(trace_ids) == 1 \
        else None
    stitched_parent_id = parent_ids.pop() \
        if stitched_trace_id is not None and len(parent_ids) == 1 \
        else None
    if stitched_trace_id is not None:
        run_span.attrs["trace_id"] = stitched_trace_id
        if stitched_parent_id is not None:
            run_span.attrs["parent_span_id"] = stitched_parent_id
    merged = RunTrace(
        run={"jobs": jobs_total,
             "unique_solved": unique_total,
             "workers": len(list(artifacts)),
             "mode": "shards",
             "shards": len(list(artifacts)),
             **({"strategy": strategy} if strategy else {}),
             **({"trace_id": stitched_trace_id}
                if stitched_trace_id is not None else {}),
             **({"parent_span_id": stitched_parent_id}
                if stitched_parent_id is not None else {}),
             "instrumented": instrumented,
             "elapsed_s": round(elapsed, 6)},
        cache=cache_totals,
        spans=[run_span.to_dict()] if instrumented or shard_spans
        else [],
        metrics=_merge_metric_snapshots(
            [artifact.metrics for artifact in artifacts]),
        reuse=reuse_totals)
    for job in sorted(job_traces, key=lambda job: job.position):
        merged.add_job(job)
    return merged


def merge_store_deltas(artifacts: "Sequence[Any]",
                       policy: str = "identical",
                       base: "ScheduleStore | None" = None) \
        -> ScheduleStore:
    """Fold every shard's journal delta into one store.

    Reuses :meth:`ScheduleStore.merge_delta`, so duplicate schedules
    (the certified timing entry every shard re-primes, identical
    solves at shared tile borders) are suppressed exactly as pool
    worker deltas always were.
    """
    store = base if base is not None else ScheduleStore(policy=policy)
    for artifact in artifacts:
        store.merge_delta(artifact.store_delta)
    return store


def merge_artifacts(artifacts: "Iterable[Any]",
                    policy: str = "identical",
                    strategy: "str | None" = None) -> MergedRun:
    """The full merge: results + trace + store + cache in one pass."""
    artifacts = list(artifacts)
    results = merge_results(artifacts)
    trace = merge_traces(artifacts, strategy=strategy)
    store = merge_store_deltas(artifacts, policy=policy)
    cache = ResultCache(max_entries=None)
    for artifact in artifacts:
        for key, value in artifact.cache_entries:
            cache.put(key, value)
    return MergedRun(results=results, trace=trace, store=store,
                     cache=cache, metrics=trace.metrics)


def canonical_store_doc(store: ScheduleStore) -> "dict[str, Any]":
    """A partition-order-independent view of a store's contents.

    Counters are dropped (they describe a run, not the stored data)
    and each bucket's entries are sorted by their full serialized
    form, so stores assembled in different insertion orders — one
    shard vs four — compare equal iff they hold the same schedules.
    """
    doc = store.to_dict()
    doc.pop("counters", None)
    for bucket in doc.get("problems", {}).values():
        bucket["entries"] = sorted(
            bucket["entries"],
            key=lambda entry: (entry["stage"], entry["label"],
                               sorted(entry["starts"].items())))
    return doc


def _merge_metric_snapshots(snapshots: "Sequence[dict[str, Any]]") \
        -> "dict[str, Any]":
    """Combine metric *snapshot* documents (see module docstring)."""
    merged: "dict[str, dict[str, Any]]" = {}
    for snapshot in snapshots:
        for name, summary in (snapshot or {}).items():
            current = merged.get(name)
            if current is None:
                merged[name] = dict(summary)
                continue
            kind = summary.get("type")
            if kind == "counter":
                current["value"] = current.get("value", 0) \
                    + summary.get("value", 0)
            elif kind == "gauge":
                current["value"] = summary.get("value", 0.0)
            elif kind == "histogram":
                current["count"] = current.get("count", 0) \
                    + summary.get("count", 0)
                current["sum"] = round(current.get("sum", 0.0)
                                       + summary.get("sum", 0.0), 6)
                current["min"] = min(current.get("min", 0.0),
                                     summary.get("min", 0.0))
                current["max"] = max(current.get("max", 0.0),
                                     summary.get("max", 0.0))
                for quantile_key in ("p50", "p95", "p99"):
                    current[quantile_key] = max(
                        current.get(quantile_key, 0.0),
                        summary.get(quantile_key, 0.0))
                incoming = summary.get("exemplar")
                if incoming is not None and (
                        current.get("exemplar") is None
                        or incoming.get("value", 0)
                        >= current["exemplar"].get("value", 0)):
                    current["exemplar"] = dict(incoming)
    return dict(sorted(merged.items()))
