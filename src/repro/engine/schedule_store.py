"""Cross-process reuse of solved schedules via validity ranges.

The paper's Section 5.3 observation — the improved Fig. 7 schedule
"can be directly applied to all cases with a range of constraints where
``P_max >= 16``, ``P_min <= 14``, without recomputing a schedule for
each case" — is what :class:`~repro.scheduling.runtime.ScheduleEntry`
implements for one in-process :class:`RuntimeScheduler`.  This module
lifts the same validity-range math into the batch engine so *sweep and
Monte Carlo jobs* skip solves whose environment falls inside an
already-stored schedule's range, across worker processes and across
runs (the store round-trips through JSON).

Indexing: entries are grouped by :func:`~repro.engine.hashing.
problem_base_key` — the canonical problem hash *minus* the power
constraints, plus the options fingerprint and job kind — so reuse can
only ever pair a query with the exact same workload solved under a
different ``(P_max, P_min)``.

Two reuse policies, chosen per store:

``"identical"`` (default)
    Serve only entries certified to be *bit-for-bit identical* to what
    a fresh solve at the query point would return.  The certified
    entries are the timing-stage schedules: the timing scheduler never
    reads the power constraints, so its schedule ``sigma_t`` is one
    fixed function of (workload, options); and for any query with
    ``P_max >= peak(sigma_t)`` and ``P_min <= floor(sigma_t)`` the
    max-power stage finds no spikes (every restart returns ``sigma_t``
    unchanged, compaction has nothing to relax, and the serial fallback
    cannot strictly beat it — see :meth:`ScheduleStore.ensure_primed`),
    and the min-power stage sees utilization 1 and makes no move.  The
    full pipeline is therefore constant over the rectangle
    ``[peak, inf) x (-inf, floor]``, and serving the stored schedule
    reproduces a fresh solve exactly — metrics included.

``"valid"``
    The paper's Fig. 7 semantics: serve the best (earliest-finishing)
    stored schedule whose rectangle covers the query, whatever stage
    produced it.  Every served schedule is provably time- and
    power-valid with full utilization at the query point, but a fresh
    heuristic solve with a looser budget might have found a *faster*
    schedule — this mode trades exactness for more reuse and is
    opt-in (``sweep --reuse-policy valid``).

Accounting: :meth:`probe` is side-effect-free; hit/miss counters are
owned by whoever orchestrates the probes (the
:class:`~repro.engine.runner.BatchRunner` credits its parent store from
per-job reuse markers, so serial and parallel runs account identically)
— the same discipline :meth:`ResultCache.peek` brings to the exact
cache.  Worker processes receive a snapshot of the store, record new
entries into their copy, and ship the delta back inside
``JobResult.stats["reuse"]``; the parent merges the deltas with
duplicate suppression, mirroring how worker span forests are re-based
into the parent trace.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..core.problem import SchedulingProblem
from ..core.profile import PowerProfile
from ..core.schedule import Schedule
from ..errors import SerializationError
from ..scheduling.runtime import in_validity_range
from .hashing import problem_base_key

__all__ = ["StoredSchedule", "ScheduleStore", "REUSE_POLICIES"]

STORE_FORMAT = "repro-schedule-store"
STORE_VERSION = 1

#: Reuse policies a store can run under.
REUSE_POLICIES = ("identical", "valid")

#: Stage label of entries certified for identical-policy reuse.
CERTIFIED_STAGE = "timing"


@dataclass(frozen=True)
class StoredSchedule:
    """One reusable schedule with its validity rectangle.

    ``starts`` is the plain start-time map (the only part a worker
    needs to rebuild the schedule against its own copy of the problem
    graph); ``peak``/``floor`` are the profile extrema that define the
    validity rectangle ``[peak, inf) x (-inf, floor]``; ``stage`` is
    ``"timing"`` for entries certified for identical-policy reuse and
    the producing pipeline stage otherwise.
    """

    label: str
    stage: str
    starts: "tuple[tuple[str, int], ...]"
    makespan: int
    peak: float
    floor: float
    solved_p_max: "float | None" = None
    solved_p_min: "float | None" = None

    @property
    def min_p_max(self) -> float:
        """Smallest budget this schedule is power-valid under."""
        return self.peak

    @property
    def max_full_p_min(self) -> float:
        """Largest free-power level at which utilization is still 1."""
        return self.floor

    def covers(self, p_max: float, p_min: float) -> bool:
        """Is ``(p_max, p_min)`` inside the validity rectangle?"""
        return in_validity_range(self.peak, self.floor, p_max, p_min)

    def rebuild(self, problem: SchedulingProblem) -> Schedule:
        """The stored schedule materialized against ``problem``'s graph."""
        return Schedule(problem.graph, dict(self.starts))

    def describe(self) -> str:
        """Human-readable validity range, Fig.-7 style."""
        return (f"{self.label}: valid for P_max >= {self.peak:g} W, "
                f"full utilization for P_min <= {self.floor:g} W, "
                f"tau = {self.makespan} s [{self.stage}]")

    def to_dict(self) -> "dict[str, Any]":
        return {
            "label": self.label,
            "stage": self.stage,
            "starts": dict(self.starts),
            "makespan": self.makespan,
            "peak": self.peak,
            "floor": self.floor,
            "solved_p_max": self.solved_p_max,
            "solved_p_min": self.solved_p_min,
        }

    @classmethod
    def from_dict(cls, doc: "Mapping[str, Any]") -> "StoredSchedule":
        try:
            starts = tuple(sorted(
                (str(name), int(start))
                for name, start in doc["starts"].items()))
            return cls(label=doc.get("label", ""),
                       stage=doc.get("stage", "min_power"),
                       starts=starts,
                       makespan=int(doc["makespan"]),
                       peak=float(doc["peak"]),
                       floor=float(doc["floor"]),
                       solved_p_max=doc.get("solved_p_max"),
                       solved_p_min=doc.get("solved_p_min"))
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise SerializationError(
                f"malformed schedule-store entry: {exc}") from exc

    @staticmethod
    def from_schedule(label: str, stage: str, schedule: Schedule,
                      baseline: float = 0.0,
                      solved_p_max: "float | None" = None,
                      solved_p_min: "float | None" = None) \
            -> "StoredSchedule":
        """Build an entry from a live schedule (range derived)."""
        profile = PowerProfile.from_schedule(schedule, baseline=baseline)
        starts = tuple(sorted((name, schedule.start(name))
                              for name in schedule))
        return StoredSchedule(label=label, stage=stage, starts=starts,
                              makespan=schedule.makespan,
                              peak=profile.peak(), floor=profile.floor(),
                              solved_p_max=solved_p_max,
                              solved_p_min=solved_p_min)


@dataclass
class _ProblemEntry:
    """All stored schedules of one base problem."""

    name: str = ""
    entries: "list[StoredSchedule]" = field(default_factory=list)


class ScheduleStore:
    """Validity-range schedule cache keyed by problem base hashes."""

    def __init__(self, policy: str = "identical"):
        if policy not in REUSE_POLICIES:
            raise ValueError(
                f"unknown reuse policy {policy!r}; "
                f"pick from {REUSE_POLICIES}")
        self.policy = policy
        self._problems: "dict[str, _ProblemEntry]" = {}
        #: Base keys whose timing-stage entry has been computed (or
        #: deliberately skipped); primed state ships with snapshots so
        #: workers never repeat the priming solve.
        self._primed: "set[str]" = set()
        #: Entries added since the last :meth:`drain_journal` — the
        #: delta a worker ships back to the parent.
        self._journal: "list[tuple[str, str, StoredSchedule]]" = []
        # Counters.  ``range_hits``/``misses`` are credited by the
        # orchestrator (see module docstring); the insertion counters
        # are maintained by the store itself.
        self.range_hits = 0
        self.misses = 0
        self.primes = 0
        self.inserted = 0
        self.deduped = 0

    # ------------------------------------------------------------------
    # lookup / insert
    # ------------------------------------------------------------------

    def base_key(self, problem: SchedulingProblem, options=None,
                 kind: str = "sweep_point") -> str:
        """The store's index key for a job's workload."""
        return problem_base_key(problem, options, kind=kind)

    def probe(self, base_key: str, p_max: float, p_min: float) \
            -> "StoredSchedule | None":
        """Best stored schedule covering ``(p_max, p_min)``, or None.

        Side-effect-free: counters are the orchestrator's job.  Under
        the ``"identical"`` policy only certified (timing-stage)
        entries are eligible; under ``"valid"`` every covering entry
        competes and the earliest-finishing one wins (all covering
        entries have full utilization at the query, so for a fixed task
        set the finish time alone orders their energy costs too).
        """
        bucket = self._problems.get(base_key)
        if bucket is None:
            return None
        best = None
        for entry in bucket.entries:
            if self.policy == "identical" \
                    and entry.stage != CERTIFIED_STAGE:
                continue
            if not entry.covers(p_max, p_min):
                continue
            if best is None or entry.makespan < best.makespan:
                best = entry
        return best

    def insert(self, base_key: str, entry: StoredSchedule,
               problem_name: str = "") -> bool:
        """Add an entry; duplicates (same start times) are suppressed.

        Returns True when the entry was actually inserted.
        """
        bucket = self._problems.setdefault(
            base_key, _ProblemEntry(name=problem_name))
        if not bucket.name and problem_name:
            bucket.name = problem_name
        if any(existing.starts == entry.starts
               for existing in bucket.entries):
            self.deduped += 1
            return False
        bucket.entries.append(entry)
        self.inserted += 1
        self._journal.append((base_key, bucket.name, entry))
        return True

    def record_result(self, base_key: str, problem: SchedulingProblem,
                      result) -> bool:
        """Store a pipeline-final :class:`ScheduleResult` on a miss.

        Final schedules are kept at their producing stage label; the
        ``"identical"`` policy never serves them (only the certified
        timing entry), but they power the ``"valid"`` policy and the
        ``table show`` inventory.
        """
        label = (f"solved@Pmax={problem.p_max:g}/"
                 f"Pmin={problem.p_min:g}")
        entry = StoredSchedule.from_schedule(
            label, result.stage, result.schedule,
            baseline=problem.baseline,
            solved_p_max=problem.p_max, solved_p_min=problem.p_min)
        return self.insert(base_key, entry, problem_name=problem.name)

    # ------------------------------------------------------------------
    # priming (the certified timing-stage entry)
    # ------------------------------------------------------------------

    def ensure_primed(self, problem: SchedulingProblem, options=None,
                      kind: str = "sweep_point") -> str:
        """Compute and store the certified timing entry once per base.

        The timing scheduler ignores the power constraints, so one
        timing solve certifies the whole rectangle
        ``[peak(sigma_t), inf) x (-inf, floor(sigma_t)]`` for
        identical-policy reuse — with one guard: the max-power stage's
        serial fallback could in principle produce a schedule that
        finishes *strictly earlier* than ``sigma_t`` (a different
        serialization of a timing-heuristic-hostile instance), in which
        case a fresh solve inside the rectangle would return the serial
        schedule instead.  The guard solves the serial candidate once
        and skips certification when it wins; ties are safe because the
        pipeline keeps its first candidate (``sigma_t``) on ties.

        Returns the base key.  Idempotent per base key, and the primed
        set ships with worker snapshots, so the priming cost is one
        timing + one bounded serial solve per distinct workload.

        DVFS exemption (DESIGN.md section 5f): problems carrying
        operating-point ladders are never certified.  The pipeline
        fronting them (``freq_select``) reads ``P_max`` to choose a
        configuration, so its output is *not* constant over a power
        rectangle, and stored starts would reference scaled durations
        that a rebuild against the unscaled graph cannot reproduce.
        The base key is still computed (ladders are part of the
        canonical hash, so it can never collide with a speed-fixed
        workload) and marked primed so the check is paid once.
        """
        base_key = self.base_key(problem, options, kind=kind)
        if base_key in self._primed:
            return base_key
        if problem.has_operating_points:
            self._primed.add(base_key)
            return base_key
        self._primed.add(base_key)
        self.primes += 1
        import dataclasses

        from ..errors import SchedulingFailure
        from ..scheduling.base import SchedulerOptions
        from ..scheduling.serial import SerialScheduler
        from ..scheduling.timing import TimingScheduler
        opts = options or SchedulerOptions()
        try:
            timing = TimingScheduler(opts).solve(problem)
        except SchedulingFailure:
            # Timing infeasibility is power-independent: no environment
            # can be served, so there is nothing to certify.
            return base_key
        serial_tau = None
        try:
            serial_opts = dataclasses.replace(opts, max_backtracks=200)
            serial = SerialScheduler(serial_opts).solve(problem)
            serial_tau = serial.schedule.makespan
        except SchedulingFailure:
            pass
        if serial_tau is not None \
                and serial_tau < timing.schedule.makespan:
            return base_key
        entry = StoredSchedule.from_schedule(
            f"timing@{problem.name or 'problem'}", CERTIFIED_STAGE,
            timing.schedule, baseline=problem.baseline)
        self.insert(base_key, entry, problem_name=problem.name)
        return base_key

    # ------------------------------------------------------------------
    # cross-process plumbing
    # ------------------------------------------------------------------

    def drain_journal(self) -> "list[dict[str, Any]]":
        """Entries inserted since the last drain, as shippable dicts."""
        delta = [{"base_key": base_key, "name": name,
                  "entry": entry.to_dict()}
                 for base_key, name, entry in self._journal]
        self._journal.clear()
        return delta

    def merge_delta(self, delta: "Iterable[Mapping[str, Any]]") -> int:
        """Fold a worker's journal into this store; returns inserts."""
        merged = 0
        for item in delta:
            entry = StoredSchedule.from_dict(item["entry"])
            if self.insert(item["base_key"], entry,
                           problem_name=item.get("name", "")):
                merged += 1
        return merged

    def snapshot(self) -> "ScheduleStore":
        """A counter-free copy to ship to worker processes."""
        clone = ScheduleStore(policy=self.policy)
        for base_key, bucket in self._problems.items():
            clone._problems[base_key] = _ProblemEntry(
                name=bucket.name, entries=list(bucket.entries))
        clone._primed = set(self._primed)
        return clone

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(bucket.entries)
                   for bucket in self._problems.values())

    @property
    def problems(self) -> "dict[str, _ProblemEntry]":
        """Read-only view of the ``base_key -> bucket`` map."""
        return dict(self._problems)

    def counters(self) -> "dict[str, int]":
        """Counter snapshot for traces, metrics, and CLI summaries."""
        return {"range_hits": self.range_hits, "misses": self.misses,
                "primes": self.primes, "inserted": self.inserted,
                "deduped": self.deduped, "entries": len(self)}

    def describe(self) -> "list[str]":
        """Fig.-7-style validity lines for every stored schedule."""
        lines = []
        for base_key, bucket in sorted(self._problems.items()):
            title = bucket.name or "problem"
            lines.append(f"{title} [{base_key[:12]}]:")
            for entry in bucket.entries:
                lines.append(f"  {entry.describe()}")
        return lines

    def __repr__(self) -> str:
        return (f"ScheduleStore(policy={self.policy!r}, "
                f"problems={len(self._problems)}, entries={len(self)}, "
                f"range_hits={self.range_hits}, misses={self.misses})")

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------

    def to_dict(self) -> "dict[str, Any]":
        return {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "policy": self.policy,
            "problems": {
                base_key: {
                    "name": bucket.name,
                    "entries": [entry.to_dict()
                                for entry in bucket.entries],
                }
                for base_key, bucket in sorted(self._problems.items())
            },
            "counters": self.counters(),
        }

    @classmethod
    def from_dict(cls, doc: "Mapping[str, Any]",
                  policy: "str | None" = None) -> "ScheduleStore":
        """Rebuild a store from its JSON document.

        ``policy`` overrides the document's recorded policy (the policy
        governs lookups, not the stored data, so a store written under
        one policy is freely reusable under the other).  Counters are
        *not* restored — they describe past runs, not the store.
        """
        if doc.get("format") != STORE_FORMAT:
            raise SerializationError(
                f"expected a {STORE_FORMAT!r} document, found "
                f"{doc.get('format')!r}")
        version = doc.get("version", 0)
        if version > STORE_VERSION:
            raise SerializationError(
                f"schedule-store version {version} is newer than "
                f"supported ({STORE_VERSION})")
        store = cls(policy=policy or doc.get("policy", "identical"))
        for base_key, bucket in doc.get("problems", {}).items():
            for entry_doc in bucket.get("entries", []):
                store.insert(base_key, StoredSchedule.from_dict(entry_doc),
                             problem_name=bucket.get("name", ""))
        # Loaded entries are history, not this process's delta, and
        # insertion counters restart at zero for the same reason.
        store._journal.clear()
        store.inserted = 0
        store.deduped = 0
        return store

    def write(self, path: str) -> str:
        """Write the store as pretty-printed JSON; returns ``path``."""
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")
        return path

    @classmethod
    def read(cls, path: str,
             policy: "str | None" = None) -> "ScheduleStore":
        """Read a store JSON file."""
        try:
            with open(path, encoding="utf-8") as handle:
                doc = json.load(handle)
        except OSError as exc:
            raise SerializationError(
                f"cannot read schedule store {path!r}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise SerializationError(
                f"schedule store {path!r} is not valid JSON: "
                f"{exc}") from exc
        return cls.from_dict(doc, policy=policy)
