"""Structured JSON traces of batch-engine runs.

One :class:`RunTrace` per :meth:`BatchRunner.run`: how the batch was
executed (mode, workers, chunking), what the cache did (hits, misses,
evictions, dedup), how long each job took, the per-stage scheduler
timings and longest-path counters each job's :class:`SchedulerStats`
reported — and, when the run was instrumented, the hierarchical span
tree and the metric snapshot from :mod:`repro.obs`.  The document is
plain JSON so sweep dashboards and CI diff tooling can consume it
without importing the package.

Schema (``format: "repro-trace", version: 2``)::

    {
      "format": "repro-trace", "version": 2,
      "run": {"jobs": 20, "unique_solved": 5, "workers": 4,
              "mode": "process", "chunksize": 1, "timeout_s": null,
              "retries": 1, "instrumented": true, "elapsed_s": 0.93},
      "cache": {"hits": 15, "misses": 5, "evictions": 0, "entries": 5},
      "stage_seconds": {"timing": ..., "max_power": ..., "min_power": ...},
      "counters": {"longest_path_runs": ..., "lp_cache_hits": ..., ...},
      "jobs": [{"position": 0, "key": "ab12...", "cached": false,
                "ok": true, "attempts": 1, "elapsed_s": 0.11,
                "error": null, "reused": false, "stage_seconds": {...},
                "counters": {...}}, ...],
      "spans": [{"name": "engine.run", "start": 0.0, "duration": 0.93,
                 "attrs": {...}, "children": [...]}, ...],
      "metrics": {"engine.cache.hits": {"type": "counter", "value": 15},
                  "engine.job.seconds": {"type": "histogram",
                                         "count": 5, "p50": ..., ...}},
      "reuse": {"policy": "identical", "range_hits": 12, "solved": 3,
                "misses": 3, "primes": 1, "inserted": 4, "deduped": 0,
                "entries": 4}
    }

The ``reuse`` section appears only when the run carried a validity-range
schedule store (``reuse_schedules``); per-job ``reused`` flags mark the
jobs it served.  Both are additive to schema v2 — absent in older
documents, tolerated by this reader.

Version 1 documents (no ``spans`` / ``metrics`` sections, no eviction
accounting) are still accepted by :func:`read_trace` — they load with
an empty span forest and metric snapshot.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import ReproError

__all__ = ["JobTrace", "RunTrace", "read_trace", "load_trace"]

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 2

#: Versions :func:`read_trace` accepts.
READABLE_VERSIONS = (1, 2)


@dataclass
class JobTrace:
    """The trace record of one job."""

    position: int
    key: str
    cached: bool
    ok: bool
    attempts: int
    elapsed_s: float
    error: "str | None" = None
    stage_seconds: "dict[str, float]" = field(default_factory=dict)
    counters: "dict[str, int]" = field(default_factory=dict)
    #: Served from the validity-range schedule store (no solve ran).
    reused: bool = False

    def to_dict(self) -> "dict[str, Any]":
        return {
            "position": self.position,
            "key": self.key,
            "cached": self.cached,
            "ok": self.ok,
            "attempts": self.attempts,
            "elapsed_s": round(self.elapsed_s, 6),
            "error": self.error,
            "reused": self.reused,
            "stage_seconds": {stage: round(seconds, 6)
                              for stage, seconds
                              in self.stage_seconds.items()},
            "counters": dict(self.counters),
        }

    @classmethod
    def from_dict(cls, doc: "Mapping[str, Any]") -> "JobTrace":
        return cls(position=doc["position"], key=doc["key"],
                   cached=doc.get("cached", False),
                   ok=doc.get("ok", True),
                   attempts=doc.get("attempts", 0),
                   elapsed_s=doc.get("elapsed_s", 0.0),
                   error=doc.get("error"),
                   stage_seconds=dict(doc.get("stage_seconds", {})),
                   counters=dict(doc.get("counters", {})),
                   reused=doc.get("reused", False))


@dataclass
class RunTrace:
    """The trace of one complete batch run."""

    run: "dict[str, Any]" = field(default_factory=dict)
    cache: "dict[str, int]" = field(default_factory=dict)
    jobs: "list[JobTrace]" = field(default_factory=list)
    #: Span forest (serialized :class:`repro.obs.Span` dicts); empty
    #: when the run was not instrumented.
    spans: "list[dict[str, Any]]" = field(default_factory=list)
    #: Metric snapshot (:meth:`MetricsRegistry.snapshot` form).
    metrics: "dict[str, Any]" = field(default_factory=dict)
    #: Schedule-store summary (policy + counters); ``None`` when the
    #: run carried no store.
    reuse: "dict[str, Any] | None" = None

    def add_job(self, trace: JobTrace) -> None:
        self.jobs.append(trace)

    def aggregate_stage_seconds(self) -> "dict[str, float]":
        """Total scheduler seconds per pipeline stage across all jobs."""
        totals: "dict[str, float]" = {}
        for job in self.jobs:
            for stage, seconds in job.stage_seconds.items():
                totals[stage] = totals.get(stage, 0.0) + seconds
        return totals

    def aggregate_counters(self) -> "dict[str, int]":
        """Summed scheduler/cache counters across all jobs."""
        totals: "dict[str, int]" = {}
        for job in self.jobs:
            for name, count in job.counters.items():
                totals[name] = totals.get(name, 0) + count
        return totals

    def to_dict(self) -> "dict[str, Any]":
        doc = {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "run": dict(self.run),
            "cache": dict(self.cache),
            "stage_seconds": {stage: round(seconds, 6)
                              for stage, seconds
                              in self.aggregate_stage_seconds().items()},
            "counters": self.aggregate_counters(),
            "jobs": [job.to_dict() for job in self.jobs],
            "spans": list(self.spans),
            "metrics": dict(self.metrics),
        }
        if self.reuse is not None:
            doc["reuse"] = dict(self.reuse)
        return doc

    @classmethod
    def from_dict(cls, doc: "Mapping[str, Any]") -> "RunTrace":
        """Rebuild a trace from its JSON document (v1 or v2)."""
        if doc.get("format") != TRACE_FORMAT:
            raise ReproError(
                f"not a {TRACE_FORMAT} document "
                f"(format={doc.get('format')!r})")
        version = doc.get("version")
        if version not in READABLE_VERSIONS:
            raise ReproError(
                f"unsupported {TRACE_FORMAT} version {version!r}; "
                f"this reader accepts {READABLE_VERSIONS}")
        reuse = doc.get("reuse")
        return cls(run=dict(doc.get("run", {})),
                   cache=dict(doc.get("cache", {})),
                   jobs=[JobTrace.from_dict(job)
                         for job in doc.get("jobs", [])],
                   spans=list(doc.get("spans", [])),
                   metrics=dict(doc.get("metrics", {})),
                   reuse=dict(reuse) if reuse is not None else None)

    def write(self, path: str) -> str:
        """Write the trace as pretty-printed JSON; returns ``path``.

        Missing parent directories are created.
        """
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")
        return path


def load_trace(doc: "Mapping[str, Any]") -> RunTrace:
    """Alias of :meth:`RunTrace.from_dict` for symmetry with readers."""
    return RunTrace.from_dict(doc)


def read_trace(path: str) -> RunTrace:
    """Read a trace JSON file (schema v1 or v2)."""
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise ReproError(f"cannot read trace {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"trace {path!r} is not valid JSON: "
                         f"{exc}") from exc
    return RunTrace.from_dict(doc)
