"""Structured JSON traces of batch-engine runs.

One :class:`RunTrace` per :meth:`BatchRunner.run`: how the batch was
executed (mode, workers, chunking), what the cache did (hits, misses,
dedup), how long each job took, and the per-stage scheduler timings and
longest-path counters each job's :class:`SchedulerStats` reported.  The
document is plain JSON so sweep dashboards and CI diff tooling can
consume it without importing the package.

Schema (``format: "repro-trace", version: 1``)::

    {
      "format": "repro-trace", "version": 1,
      "run": {"jobs": 20, "unique_solved": 5, "workers": 4,
              "mode": "process", "chunksize": 1, "timeout_s": null,
              "retries": 1, "elapsed_s": 0.93},
      "cache": {"hits": 15, "misses": 5, "entries": 5},
      "stage_seconds": {"timing": ..., "max_power": ..., "min_power": ...},
      "counters": {"longest_path_runs": ..., "lp_cache_hits": ..., ...},
      "jobs": [{"position": 0, "key": "ab12...", "cached": false,
                "ok": true, "attempts": 1, "elapsed_s": 0.11,
                "error": null, "stage_seconds": {...},
                "counters": {...}}, ...]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

__all__ = ["JobTrace", "RunTrace"]

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1


@dataclass
class JobTrace:
    """The trace record of one job."""

    position: int
    key: str
    cached: bool
    ok: bool
    attempts: int
    elapsed_s: float
    error: "str | None" = None
    stage_seconds: "dict[str, float]" = field(default_factory=dict)
    counters: "dict[str, int]" = field(default_factory=dict)

    def to_dict(self) -> "dict[str, Any]":
        return {
            "position": self.position,
            "key": self.key,
            "cached": self.cached,
            "ok": self.ok,
            "attempts": self.attempts,
            "elapsed_s": round(self.elapsed_s, 6),
            "error": self.error,
            "stage_seconds": {stage: round(seconds, 6)
                              for stage, seconds
                              in self.stage_seconds.items()},
            "counters": dict(self.counters),
        }


@dataclass
class RunTrace:
    """The trace of one complete batch run."""

    run: "dict[str, Any]" = field(default_factory=dict)
    cache: "dict[str, int]" = field(default_factory=dict)
    jobs: "list[JobTrace]" = field(default_factory=list)

    def add_job(self, trace: JobTrace) -> None:
        self.jobs.append(trace)

    def aggregate_stage_seconds(self) -> "dict[str, float]":
        """Total scheduler seconds per pipeline stage across all jobs."""
        totals: "dict[str, float]" = {}
        for job in self.jobs:
            for stage, seconds in job.stage_seconds.items():
                totals[stage] = totals.get(stage, 0.0) + seconds
        return totals

    def aggregate_counters(self) -> "dict[str, int]":
        """Summed scheduler/cache counters across all jobs."""
        totals: "dict[str, int]" = {}
        for job in self.jobs:
            for name, count in job.counters.items():
                totals[name] = totals.get(name, 0) + count
        return totals

    def to_dict(self) -> "dict[str, Any]":
        return {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "run": dict(self.run),
            "cache": dict(self.cache),
            "stage_seconds": {stage: round(seconds, 6)
                              for stage, seconds
                              in self.aggregate_stage_seconds().items()},
            "counters": self.aggregate_counters(),
            "jobs": [job.to_dict() for job in self.jobs],
        }

    def write(self, path: str) -> str:
        """Write the trace as pretty-printed JSON; returns ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")
        return path
