"""Solve jobs: the unit of work the batch runner dispatches.

A :class:`SolveJob` is a picklable description of one independent solve
— a problem, a full options configuration (seed included), and a *kind*
naming the worker function that turns the problem into a small result
payload.  Kinds are registered in a module-level registry so the
callable itself never has to cross a process boundary; worker processes
resolve the name locally (inherited via fork, re-imported via spawn).

Built-in kinds
--------------
``"sweep_point"``
    Run the full power-aware pipeline and return a
    :class:`~repro.analysis.sweep.SweepPoint` (infeasible problems give
    a ``feasible=False`` point rather than an error).

Schedule reuse: kind functions may accept an optional second parameter
— a :class:`~repro.engine.schedule_store.ScheduleStore` — and consult
it before solving.  A job served from the store marks
``stats["reuse"]["hit"] = True`` and skips the pipeline entirely; a job
that solved records its final schedule into the store and ships any new
entries back through ``stats["reuse"]["new_entries"]`` so the parent
process can merge them (:func:`run_job` drains the store journal after
each job).  Single-parameter kind functions remain valid: the registry
inspects the signature at registration and never passes them a store.

Determinism: a job's randomness flows entirely from ``options.seed``.
:func:`derive_seed` produces stable per-job seeds from a base seed and
a job index — the same arithmetic on every platform and process, so
serial and parallel executions of the same batch are identical.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Mapping

from ..core.problem import SchedulingProblem
from ..scheduling.base import SchedulerOptions
from .hashing import problem_key

__all__ = ["SolveJob", "JobResult", "derive_seed", "register_kind",
           "run_job", "run_chunk", "solve_problems"]


def derive_seed(base_seed: int, index: int) -> int:
    """A stable, well-spread per-job seed (no Python ``hash()``)."""
    mixed = (base_seed * 1_000_003 + index * 7919 + 12345) & 0x7FFFFFFF
    return mixed


@dataclass(frozen=True)
class SolveJob:
    """One independent solve: problem + options + worker kind."""

    problem: SchedulingProblem
    kind: str = "sweep_point"
    options: "SchedulerOptions | None" = None
    tags: "Mapping[str, Any]" = field(default_factory=dict)

    def key(self) -> str:
        """Canonical cache key for this job's complete input."""
        return problem_key(self.problem, self.options, kind=self.kind)

    def reseeded(self, base_seed: int, index: int) -> "SolveJob":
        """A copy whose options carry :func:`derive_seed` of ``index``."""
        opts = self.options or SchedulerOptions()
        return SolveJob(problem=self.problem, kind=self.kind,
                        options=replace(opts,
                                        seed=derive_seed(base_seed,
                                                         index)),
                        tags=dict(self.tags))


@dataclass
class JobResult:
    """Outcome of one job: payload plus execution bookkeeping."""

    position: int
    key: str
    value: Any = None
    ok: bool = True
    error: "str | None" = None
    attempts: int = 0
    elapsed_s: float = 0.0
    cached: bool = False
    stats: "dict[str, Any]" = field(default_factory=dict)


# ----------------------------------------------------------------------
# worker-kind registry
# ----------------------------------------------------------------------

_KINDS: "dict[str, Callable[..., tuple[Any, dict]]]" = {}

#: Kind names whose function accepts the optional store parameter.
_STORE_AWARE: "set[str]" = set()


def register_kind(name: str,
                  fn: "Callable[..., tuple[Any, dict]]") -> None:
    """Register a worker function ``job -> (value, stats_dict)``.

    Must be called at import time of a real module so that spawned
    worker processes see the registration too; with the default ``fork``
    start method the parent's registry is inherited directly.

    A function taking a second parameter is treated as store-aware and
    called as ``fn(job, store)`` (``store`` may be None); one-parameter
    functions keep the original ``fn(job)`` contract.
    """
    _KINDS[name] = fn
    try:
        params = inspect.signature(fn).parameters
    except (TypeError, ValueError):
        params = {}
    if len(params) >= 2:
        _STORE_AWARE.add(name)
    else:
        _STORE_AWARE.discard(name)


def _solve_sweep_point(job: SolveJob, store=None) -> "tuple[Any, dict]":
    from ..analysis.sweep import SweepPoint
    from ..errors import SchedulingFailure
    from ..scheduling.power_aware import PowerAwareScheduler

    problem = job.problem
    options = job.options or SchedulerOptions()
    # DVFS problems are store-exempt (DESIGN.md 5f): the freq_select
    # front-end reads P_max, so neither serving from nor recording into
    # the validity-rectangle store is sound for them.
    use_store = store is not None and not problem.has_operating_points
    if use_store:
        base_key = store.ensure_primed(problem, options, kind=job.kind)
        entry = store.probe(base_key, problem.p_max, problem.p_min)
        if entry is not None:
            return _serve_stored_point(problem, entry)
    try:
        result = PowerAwareScheduler(options).solve(problem)
    except SchedulingFailure:
        stats = {"reuse": {"hit": False}} if store is not None else {}
        return (SweepPoint(p_max=problem.p_max, p_min=problem.p_min,
                           feasible=False), stats)
    stats = result.stats.as_dict()
    if use_store:
        store.record_result(base_key, problem, result)
        stats["reuse"] = {"hit": False}
    elif store is not None:
        stats["reuse"] = {"hit": False}
    point = SweepPoint(
        p_max=problem.p_max, p_min=problem.p_min, feasible=True,
        finish_time=result.finish_time,
        energy_cost=result.energy_cost,
        utilization=result.utilization,
        peak_power=result.metrics.peak_power)
    return point, stats


def _serve_stored_point(problem: SchedulingProblem, entry) \
        -> "tuple[Any, dict]":
    """Materialize a stored schedule as this environment's SweepPoint.

    The stored start times are rebuilt against the job's own graph and
    re-evaluated under the job's ``(p_max, p_min)`` — metrics are
    *computed*, never copied, so a served point carries exactly the
    numbers a fresh solve of the same schedule would report.
    """
    from ..analysis.sweep import SweepPoint
    from ..core.metrics import evaluate

    schedule = entry.rebuild(problem)
    metrics = evaluate(schedule, problem.p_max, problem.p_min,
                       baseline=problem.baseline)
    point = SweepPoint(
        p_max=problem.p_max, p_min=problem.p_min, feasible=True,
        finish_time=metrics.finish_time,
        energy_cost=metrics.energy_cost,
        utilization=metrics.utilization,
        peak_power=metrics.peak_power)
    stats = {"reuse": {"hit": True, "label": entry.label,
                       "stage": entry.stage,
                       "peak": entry.peak, "floor": entry.floor}}
    return point, stats


register_kind("sweep_point", _solve_sweep_point)


# ----------------------------------------------------------------------
# execution (runs in workers and in the serial fallback alike)
# ----------------------------------------------------------------------

def run_job(job: SolveJob, position: int = 0, key: "str | None" = None,
            retries: int = 0, instrument: bool = False,
            store=None, lp_log_factor: "int | None" = None,
            core_kernel: "str | None" = None,
            warm_start: "bool | None" = None) -> JobResult:
    """Execute one job with capped in-place retry.

    Scheduler-level infeasibility is a *result* (the kind functions
    encode it in their payload); only unexpected exceptions trigger a
    retry, and after ``retries + 1`` attempts the error is reported in
    the :class:`JobResult` rather than raised, so one bad point never
    sinks a batch.

    With ``instrument=True`` the job runs inside an isolated
    :func:`repro.obs.capture` session: every span the solve records
    (pipeline stages, longest-path recomputes) plus any metrics land in
    ``result.stats["obs"]`` — span times relative to the job start,
    anchored by a ``wall0`` wall-clock timestamp — so the parent
    process (serial caller and pool worker alike) can re-parent the
    tree under its own job span and merge the metric increments.

    ``store`` (a :class:`~repro.engine.schedule_store.ScheduleStore`)
    is forwarded to store-aware kinds; entries the job inserted are
    drained from the store journal into
    ``result.stats["reuse"]["new_entries"]`` so pool workers ship them
    back to the parent (the serial path shares the live store, where the
    drained delta is simply redundant with what is already in it).

    ``lp_log_factor`` overrides the constraint graph's add-log trim
    bound multiplier (:data:`repro.core.graph.ADD_LOG_FACTOR`) for the
    duration of the job — the ``RunnerConfig.lp_log_factor``
    passthrough.  The previous factor is restored on exit.

    ``core_kernel`` and ``warm_start`` are the solver-core passthroughs
    of ``RunnerConfig.core_kernel`` / ``RunnerConfig.warm_start``
    (see :mod:`repro.core.kernel`): applied for the duration of the
    job, previous per-process settings restored on exit.  ``None``
    leaves the process-wide setting untouched.
    """
    fn = _KINDS.get(job.kind)
    key = key if key is not None else job.key()
    if fn is None:
        return JobResult(position=position, key=key, ok=False,
                         error=f"unknown job kind {job.kind!r}")
    use_store = store is not None and job.kind in _STORE_AWARE
    last_error = ""
    capture_ctx = None
    restore_factor: "int | None" = None
    if lp_log_factor is not None:
        from ..core.graph import set_add_log_factor
        restore_factor = set_add_log_factor(lp_log_factor)
    restore_kernel: "str | None" = None
    restore_warm: "bool | None" = None
    if core_kernel is not None:
        from ..core.kernel import set_kernel
        restore_kernel = set_kernel(core_kernel)
    if warm_start is not None:
        from ..core.kernel import set_warm
        restore_warm = set_warm(warm_start)
    if instrument:
        from ..obs import capture
        capture_ctx = capture()
        capture_ctx.__enter__()
    t0 = time.perf_counter()
    result: "JobResult | None" = None
    try:
        for attempt in range(1, max(1, retries + 1) + 1):
            try:
                if use_store:
                    value, stats = fn(job, store)
                else:
                    value, stats = fn(job)
            except Exception as exc:  # noqa: BLE001 - reported, not raised
                last_error = f"{type(exc).__name__}: {exc}"
                continue
            result = JobResult(position=position, key=key, value=value,
                               ok=True, attempts=attempt,
                               elapsed_s=time.perf_counter() - t0,
                               stats=stats)
            break
        if result is None:
            result = JobResult(position=position, key=key, ok=False,
                               error=last_error,
                               attempts=max(1, retries + 1),
                               elapsed_s=time.perf_counter() - t0)
    finally:
        if capture_ctx is not None:
            capture_ctx.__exit__(None, None, None)
        if restore_factor is not None:
            from ..core.graph import set_add_log_factor
            set_add_log_factor(restore_factor)
        if restore_kernel is not None:
            from ..core.kernel import set_kernel
            set_kernel(restore_kernel)
        if restore_warm is not None:
            from ..core.kernel import set_warm
            set_warm(restore_warm)
    if capture_ctx is not None:
        result.stats = dict(result.stats)
        result.stats["obs"] = {
            "wall0": capture_ctx.wall0,
            "spans": [span.to_dict() for span in capture_ctx.spans],
            "metrics": capture_ctx.metrics_data,
        }
    # A service-backed store keeps its journal: the serving batcher
    # pushes it wholesale after the batch (RemoteScheduleStore.sync);
    # draining it into per-job stats here would strand every solved
    # entry on this instance — only snapshot modes need the delta
    # shipped through the result.
    if use_store and not getattr(store, "remote", False):
        new_entries = store.drain_journal()
        if new_entries:
            result.stats = dict(result.stats)
            reuse = dict(result.stats.get("reuse") or {})
            reuse["new_entries"] = new_entries
            result.stats["reuse"] = reuse
    return result


def run_chunk(jobs: "list[tuple[int, str, SolveJob]]",
              retries: int = 0,
              instrument: bool = False,
              store=None,
              lp_log_factor: "int | None" = None,
              core_kernel: "str | None" = None,
              warm_start: "bool | None" = None) -> "list[JobResult]":
    """Worker entry point: execute a chunk of keyed jobs in order.

    ``store`` is the worker's private snapshot of the parent's schedule
    store: jobs in the chunk build on each other's entries locally, and
    each job's freshly-inserted entries travel back to the parent in its
    result's ``stats["reuse"]["new_entries"]``.  ``lp_log_factor``,
    ``core_kernel``, and ``warm_start`` are the per-job solver knob
    passthroughs (see :func:`run_job`) — applied here per job so worker
    processes honour them too.
    """
    return [run_job(job, position=position, key=key, retries=retries,
                    instrument=instrument, store=store,
                    lp_log_factor=lp_log_factor, core_kernel=core_kernel,
                    warm_start=warm_start)
            for position, key, job in jobs]


def solve_problems(problems: "Iterable[SchedulingProblem]",
                   options: "SchedulerOptions | None" = None,
                   runner=None) -> "list[Any]":
    """Batch-solve a workload set into sweep points.

    Convenience front-end for workload batches (e.g.
    :func:`repro.workloads.random_problems` output): one
    ``"sweep_point"`` job per problem through ``runner`` (a
    :class:`~repro.engine.runner.BatchRunner`; a serial one is created
    when omitted).
    """
    from .runner import BatchRunner
    jobs = [SolveJob(problem=problem, options=options)
            for problem in problems]
    runner = runner or BatchRunner()
    return runner.run_values(jobs)
