"""Solve jobs: the unit of work the batch runner dispatches.

A :class:`SolveJob` is a picklable description of one independent solve
— a problem, a full options configuration (seed included), and a *kind*
naming the worker function that turns the problem into a small result
payload.  Kinds are registered in a module-level registry so the
callable itself never has to cross a process boundary; worker processes
resolve the name locally (inherited via fork, re-imported via spawn).

Built-in kinds
--------------
``"sweep_point"``
    Run the full power-aware pipeline and return a
    :class:`~repro.analysis.sweep.SweepPoint` (infeasible problems give
    a ``feasible=False`` point rather than an error).

Determinism: a job's randomness flows entirely from ``options.seed``.
:func:`derive_seed` produces stable per-job seeds from a base seed and
a job index — the same arithmetic on every platform and process, so
serial and parallel executions of the same batch are identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Mapping

from ..core.problem import SchedulingProblem
from ..scheduling.base import SchedulerOptions
from .hashing import problem_key

__all__ = ["SolveJob", "JobResult", "derive_seed", "register_kind",
           "run_job", "run_chunk", "solve_problems"]


def derive_seed(base_seed: int, index: int) -> int:
    """A stable, well-spread per-job seed (no Python ``hash()``)."""
    mixed = (base_seed * 1_000_003 + index * 7919 + 12345) & 0x7FFFFFFF
    return mixed


@dataclass(frozen=True)
class SolveJob:
    """One independent solve: problem + options + worker kind."""

    problem: SchedulingProblem
    kind: str = "sweep_point"
    options: "SchedulerOptions | None" = None
    tags: "Mapping[str, Any]" = field(default_factory=dict)

    def key(self) -> str:
        """Canonical cache key for this job's complete input."""
        return problem_key(self.problem, self.options, kind=self.kind)

    def reseeded(self, base_seed: int, index: int) -> "SolveJob":
        """A copy whose options carry :func:`derive_seed` of ``index``."""
        opts = self.options or SchedulerOptions()
        return SolveJob(problem=self.problem, kind=self.kind,
                        options=replace(opts,
                                        seed=derive_seed(base_seed,
                                                         index)),
                        tags=dict(self.tags))


@dataclass
class JobResult:
    """Outcome of one job: payload plus execution bookkeeping."""

    position: int
    key: str
    value: Any = None
    ok: bool = True
    error: "str | None" = None
    attempts: int = 0
    elapsed_s: float = 0.0
    cached: bool = False
    stats: "dict[str, Any]" = field(default_factory=dict)


# ----------------------------------------------------------------------
# worker-kind registry
# ----------------------------------------------------------------------

_KINDS: "dict[str, Callable[[SolveJob], tuple[Any, dict]]]" = {}


def register_kind(name: str,
                  fn: "Callable[[SolveJob], tuple[Any, dict]]") -> None:
    """Register a worker function ``job -> (value, stats_dict)``.

    Must be called at import time of a real module so that spawned
    worker processes see the registration too; with the default ``fork``
    start method the parent's registry is inherited directly.
    """
    _KINDS[name] = fn


def _solve_sweep_point(job: SolveJob) -> "tuple[Any, dict]":
    from ..analysis.sweep import SweepPoint
    from ..errors import SchedulingFailure
    from ..scheduling.power_aware import PowerAwareScheduler

    problem = job.problem
    options = job.options or SchedulerOptions()
    try:
        result = PowerAwareScheduler(options).solve(problem)
    except SchedulingFailure:
        return (SweepPoint(p_max=problem.p_max, p_min=problem.p_min,
                           feasible=False), {})
    point = SweepPoint(
        p_max=problem.p_max, p_min=problem.p_min, feasible=True,
        finish_time=result.finish_time,
        energy_cost=result.energy_cost,
        utilization=result.utilization,
        peak_power=result.metrics.peak_power)
    return point, result.stats.as_dict()


register_kind("sweep_point", _solve_sweep_point)


# ----------------------------------------------------------------------
# execution (runs in workers and in the serial fallback alike)
# ----------------------------------------------------------------------

def run_job(job: SolveJob, position: int = 0, key: "str | None" = None,
            retries: int = 0, instrument: bool = False) -> JobResult:
    """Execute one job with capped in-place retry.

    Scheduler-level infeasibility is a *result* (the kind functions
    encode it in their payload); only unexpected exceptions trigger a
    retry, and after ``retries + 1`` attempts the error is reported in
    the :class:`JobResult` rather than raised, so one bad point never
    sinks a batch.

    With ``instrument=True`` the job runs inside an isolated
    :func:`repro.obs.capture` session: every span the solve records
    (pipeline stages, longest-path recomputes) plus any metrics land in
    ``result.stats["obs"]`` — span times relative to the job start,
    anchored by a ``wall0`` wall-clock timestamp — so the parent
    process (serial caller and pool worker alike) can re-parent the
    tree under its own job span and merge the metric increments.
    """
    fn = _KINDS.get(job.kind)
    key = key if key is not None else job.key()
    if fn is None:
        return JobResult(position=position, key=key, ok=False,
                         error=f"unknown job kind {job.kind!r}")
    last_error = ""
    capture_ctx = None
    if instrument:
        from ..obs import capture
        capture_ctx = capture()
        capture_ctx.__enter__()
    t0 = time.perf_counter()
    result: "JobResult | None" = None
    try:
        for attempt in range(1, max(1, retries + 1) + 1):
            try:
                value, stats = fn(job)
            except Exception as exc:  # noqa: BLE001 - reported, not raised
                last_error = f"{type(exc).__name__}: {exc}"
                continue
            result = JobResult(position=position, key=key, value=value,
                               ok=True, attempts=attempt,
                               elapsed_s=time.perf_counter() - t0,
                               stats=stats)
            break
        if result is None:
            result = JobResult(position=position, key=key, ok=False,
                               error=last_error,
                               attempts=max(1, retries + 1),
                               elapsed_s=time.perf_counter() - t0)
    finally:
        if capture_ctx is not None:
            capture_ctx.__exit__(None, None, None)
    if capture_ctx is not None:
        result.stats = dict(result.stats)
        result.stats["obs"] = {
            "wall0": capture_ctx.wall0,
            "spans": [span.to_dict() for span in capture_ctx.spans],
            "metrics": capture_ctx.metrics_data,
        }
    return result


def run_chunk(jobs: "list[tuple[int, str, SolveJob]]",
              retries: int = 0,
              instrument: bool = False) -> "list[JobResult]":
    """Worker entry point: execute a chunk of keyed jobs in order."""
    return [run_job(job, position=position, key=key, retries=retries,
                    instrument=instrument)
            for position, key, job in jobs]


def solve_problems(problems: "Iterable[SchedulingProblem]",
                   options: "SchedulerOptions | None" = None,
                   runner=None) -> "list[Any]":
    """Batch-solve a workload set into sweep points.

    Convenience front-end for workload batches (e.g.
    :func:`repro.workloads.random_problems` output): one
    ``"sweep_point"`` job per problem through ``runner`` (a
    :class:`~repro.engine.runner.BatchRunner`; a serial one is created
    when omitted).
    """
    from .runner import BatchRunner
    jobs = [SolveJob(problem=problem, options=options)
            for problem in problems]
    runner = runner or BatchRunner()
    return runner.run_values(jobs)
