"""Canonical hashing of solve jobs.

Two jobs that would provably produce the same answer must hash equal,
and any input the schedulers read must be part of the hash: the full
problem (tasks, user edges, resources, power constraints, baseline) and
the complete :class:`~repro.scheduling.base.SchedulerOptions` including
the seed.  Dict iteration order is normalized away by sorting, so the
key is stable across processes and across Python hash randomization.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

from ..core.problem import SchedulingProblem
from ..scheduling.base import SchedulerOptions

__all__ = ["canonical_problem_dict", "options_fingerprint",
           "problem_key", "problem_base_key"]


def canonical_problem_dict(problem: SchedulingProblem) \
        -> "dict[str, Any]":
    """A sorted, schedulers-eye view of a problem.

    Only *user* constraints matter (schedulers work on a fresh copy of
    the graph, so derived decorations never survive into a job), but a
    caller may hand the engine an already-decorated graph; every stored
    edge is therefore included.
    """
    graph = problem.graph
    return {
        "name": problem.name,
        "p_max": problem.p_max,
        "p_min": problem.p_min,
        "baseline": problem.baseline,
        "tasks": sorted(
            # A DVFS ladder extends the tuple only when present, so
            # every ladder-free problem hashes exactly as before (the
            # keys of existing stores and journals stay valid).
            (task.name, task.duration, task.power, task.resource,
             sorted(task.meta.items()))
            + ((tuple(point.key for point in task.operating_points),)
               if task.operating_points else ())
            for task in graph.tasks()),
        "resources": sorted(
            (res.name, res.idle_power, res.kind)
            for res in graph.resources),
        "edges": sorted(
            (edge.src, edge.dst, edge.weight, edge.tag)
            for edge in graph.edges()),
    }


def options_fingerprint(options: "SchedulerOptions | None") -> str:
    """A stable string identifying a full options configuration."""
    opts = options or SchedulerOptions()
    return json.dumps(dataclasses.asdict(opts), sort_keys=True,
                      default=repr)


def problem_key(problem: SchedulingProblem,
                options: "SchedulerOptions | None" = None,
                kind: str = "",
                extra: "Any | None" = None) -> str:
    """SHA-256 key identifying one solve job's complete input.

    ``kind`` namespaces the worker function (two job kinds over the
    same problem are distinct cache entries); ``extra`` folds in any
    additional job parameters.
    """
    payload = {
        "kind": kind,
        "problem": canonical_problem_dict(problem),
        "options": options_fingerprint(options),
        "extra": extra,
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def problem_base_key(problem: SchedulingProblem,
                     options: "SchedulerOptions | None" = None,
                     kind: str = "") -> str:
    """SHA-256 key identifying a problem *up to its power constraints*.

    Two jobs that differ only in ``(p_max, p_min)`` share a base key:
    the workload (tasks, edges, resources, baseline), the complete
    options configuration, and the job kind all match.  This is the
    grouping the validity-range schedule store
    (:mod:`repro.engine.schedule_store`) indexes by — a schedule solved
    under one power environment can only ever be reused for *the same
    workload* under a different environment.
    """
    canonical = canonical_problem_dict(problem)
    canonical.pop("p_max", None)
    canonical.pop("p_min", None)
    payload = {
        "scope": "schedule-store",
        "kind": kind,
        "problem": canonical,
        "options": options_fingerprint(options),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
