"""The Mars rover case study (paper Sections 3 and 6).

Everything needed to reproduce Tables 1-4 and Figs. 8-11: the rover's
constraint-graph model, the decaying-solar mission environment, the
JPL-serial and power-aware policies, and the mission simulator that
compares them.
"""

from .baselines import (AdaptivePolicy, IterationPlan, JPLPolicy,
                        MissionPolicy, PowerAwarePolicy)
from .environment import MissionEnvironment, paper_mission_environment
from .heating_synthesis import (SynthesisOutcome, strip_heating,
                                synthesize_heating)
from .rover import (BATTERY_MAX_POWER, HEAT_MAX_LEAD, HEAT_MIN_LEAD,
                    POWER_TABLE, STEP_CM, CasePowers, MarsRover,
                    SolarCase)
from .simulator import (IterationRecord, MissionReport, MissionSimulator,
                        PhaseRow, compare_reports)
from .thermal import (ThermalParams, ThermalViolation, check_thermal,
                      feasible_lead_window, motor_temperature)
from .uav import LegRecord, SolarUav, UavConfig, UavMissionReport

__all__ = [
    "AdaptivePolicy",
    "LegRecord",
    "SynthesisOutcome",
    "ThermalParams",
    "ThermalViolation",
    "check_thermal",
    "feasible_lead_window",
    "motor_temperature",
    "strip_heating",
    "synthesize_heating",
    "SolarUav",
    "UavConfig",
    "UavMissionReport",
    "BATTERY_MAX_POWER",
    "CasePowers",
    "HEAT_MAX_LEAD",
    "HEAT_MIN_LEAD",
    "IterationPlan",
    "IterationRecord",
    "JPLPolicy",
    "MarsRover",
    "MissionEnvironment",
    "MissionPolicy",
    "MissionReport",
    "MissionSimulator",
    "PhaseRow",
    "POWER_TABLE",
    "PowerAwarePolicy",
    "STEP_CM",
    "SolarCase",
    "compare_reports",
    "paper_mission_environment",
]
