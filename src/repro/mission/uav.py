"""A second case study: a solar-electric survey UAV.

The paper's framework is not rover-specific — any system with a free,
unstorable power source, a costly reserve, heterogeneous consumers, and
min/max timing windows fits.  This module instantiates it for a
fixed-wing solar UAV flying a pipeline-inspection mission across a
morning:

* **Resources** — camera, gimbal, radio, de-icer; propulsion is a
  constant cruise load (the problem baseline, like the rover's CPU).
* **Per survey leg** — aim the gimbal (window [1, 30] s before the
  scan, like the rover's heating windows), scan the pipeline, downlink
  the data within a bounded buffer window after the scan; legs chain
  with a transit separation.
* **Environment** — a :class:`~repro.power.solar.DiurnalSolar` arc:
  early legs fly under weak slanting light (tight ``P_max``, schedules
  serialize), midday legs enjoy abundant free power (schedules
  parallelize and soak solar).  A finite battery covers the deficit.

The mission planner re-derives ``(P_max, P_min)`` from the sun at each
leg's start — exactly the paper's "statically computed schedules,
selected by the dynamically changing constraints" loop, driven here by
a continuous (not three-point) environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.graph import ConstraintGraph
from ..core.problem import SchedulingProblem
from ..errors import ReproError, SchedulingFailure
from ..power.accounting import split_energy_against_solar
from ..power.battery import Battery, IdealBattery
from ..power.solar import DiurnalSolar, SolarModel
from ..scheduling.base import SchedulerOptions
from ..scheduling.power_aware import PowerAwareScheduler

__all__ = ["UavConfig", "LegRecord", "UavMissionReport", "SolarUav"]

#: Gimbal aim must precede each scan by [1, 30] s (stabilized optics).
AIM_MIN_LEAD = 1
AIM_MAX_LEAD = 30

#: Downlink must start within this window after its scan completes
#: (the capture buffer is small).
DOWNLINK_MAX_WAIT = 60


@dataclass
class UavConfig:
    """Airframe and payload parameters (watts / seconds)."""

    cruise_power: float = 30.0      # propulsion + avionics baseline
    scan_duration: int = 20
    scan_power: float = 18.0
    aim_duration: int = 3
    aim_power: float = 6.0
    downlink_duration: int = 12
    downlink_power: float = 22.0
    deice_duration: int = 8
    deice_power: float = 15.0       # leading-edge de-icer, cold legs
    transit_separation: int = 25    # scan-to-next-aim travel time
    battery_output: float = 40.0    # max battery power (W)

    def __post_init__(self) -> None:
        for name in ("cruise_power", "scan_power", "aim_power",
                     "downlink_power", "deice_power", "battery_output"):
            if getattr(self, name) < 0:
                raise ReproError(f"{name} must be >= 0")


@dataclass(frozen=True)
class LegRecord:
    """One flown survey leg."""

    index: int
    start_time: float
    duration: int
    solar: float
    p_max: float
    energy_cost: float
    utilization: float
    deiced: bool


@dataclass
class UavMissionReport:
    """Outcome of a flown mission."""

    legs: "list[LegRecord]" = field(default_factory=list)
    battery_depleted: bool = False

    @property
    def total_time(self) -> float:
        return sum(leg.duration for leg in self.legs)

    @property
    def total_energy_cost(self) -> float:
        return sum(leg.energy_cost for leg in self.legs)

    def rows(self) -> "list[dict[str, object]]":
        return [{"leg": leg.index,
                 "t_start_s": round(leg.start_time),
                 "solar_W": round(leg.solar, 1),
                 "P_max_W": round(leg.p_max, 1),
                 "dur_s": leg.duration,
                 "Ec_J": round(leg.energy_cost, 1),
                 "rho_pct": round(100 * leg.utilization, 1),
                 "deice": leg.deiced}
                for leg in self.legs]


class SolarUav:
    """Builder and planner for the UAV survey mission."""

    def __init__(self, config: "UavConfig | None" = None,
                 solar: "SolarModel | None" = None,
                 battery: "Battery | None" = None,
                 options: "SchedulerOptions | None" = None):
        self.config = config or UavConfig()
        self.solar = solar if solar is not None else DiurnalSolar(
            peak=90.0, dawn=0.0, dusk=36_000.0)
        self.battery = battery if battery is not None else IdealBattery(
            capacity=float("inf"),
            max_power=self.config.battery_output)
        self.options = options or SchedulerOptions()

    # ------------------------------------------------------------------
    # problem construction
    # ------------------------------------------------------------------

    def leg_graph(self, deice: bool) -> ConstraintGraph:
        """One survey leg: aim -> scan -> downlink (+ optional de-ice).

        The de-icer (cold early-morning legs) must finish before the
        scan starts — vibration ruins the imagery — and may not run
        concurrently with the downlink (EMI), expressed by sharing the
        radio-bay power bus resource.
        """
        cfg = self.config
        g = ConstraintGraph("uav-leg" + ("-deice" if deice else ""))
        g.new_task("aim", duration=cfg.aim_duration,
                   power=cfg.aim_power, resource="gimbal")
        g.new_task("scan", duration=cfg.scan_duration,
                   power=cfg.scan_power, resource="camera")
        g.new_task("downlink", duration=cfg.downlink_duration,
                   power=cfg.downlink_power, resource="radio_bay")
        g.add_separation_window("aim", "scan",
                                cfg.aim_duration + AIM_MIN_LEAD - 1,
                                AIM_MAX_LEAD)
        g.add_precedence("scan", "downlink")
        g.add_max_separation("scan", "downlink",
                             cfg.scan_duration + DOWNLINK_MAX_WAIT)
        if deice:
            g.new_task("deice", duration=cfg.deice_duration,
                       power=cfg.deice_power, resource="radio_bay")
            g.add_precedence("deice", "scan")
        return g

    def leg_problem(self, at_time: float, deice: bool) \
            -> SchedulingProblem:
        """The leg's problem under the sun at mission time ``at_time``."""
        solar = self.solar.power(at_time)
        p_max = solar + self.battery.max_power
        return SchedulingProblem(
            graph=self.leg_graph(deice=deice),
            p_max=p_max,
            p_min=min(solar, p_max),
            baseline=self.config.cruise_power,
            name=f"uav-leg@{at_time:g}",
            meta={"solar": solar})

    # ------------------------------------------------------------------
    # mission
    # ------------------------------------------------------------------

    def fly(self, legs: int, start_time: float = 3_600.0,
            deice_below: float = 30.0,
            wait_step: float = 300.0) -> UavMissionReport:
        """Fly ``legs`` survey legs starting at ``start_time``.

        A leg flies with the de-icer while the solar level (a proxy for
        air temperature) is below ``deice_below`` watts.  If a leg is
        power-infeasible under the current sun (too early), the planner
        loiters in ``wait_step`` increments until it fits — the most
        literal form of power awareness.  The battery is drawn for
        every joule above the instantaneous solar output; depletion
        aborts the mission.
        """
        if legs < 1:
            raise ReproError(f"legs must be >= 1, got {legs}")
        report = UavMissionReport()
        t = start_time
        for index in range(legs):
            solar = self.solar.power(t)
            deice = solar < deice_below
            problem = self.leg_problem(t, deice=deice)
            waited = 0
            while problem.feasible_power_check():
                t += wait_step
                waited += 1
                if waited > 200:
                    raise SchedulingFailure(
                        "the sun never rises high enough for this leg")
                solar = self.solar.power(t)
                deice = solar < deice_below
                problem = self.leg_problem(t, deice=deice)
            result = PowerAwareScheduler(self.options).solve(problem)
            split = split_energy_against_solar(result.profile,
                                               self.solar,
                                               start_time=t)
            draw = split.battery_drawn
            try:
                if draw > 0:
                    self.battery.draw(draw / result.finish_time,
                                      result.finish_time)
            except Exception:
                report.battery_depleted = True
                break
            report.legs.append(LegRecord(
                index=index, start_time=t,
                duration=result.finish_time, solar=solar,
                p_max=problem.p_max, energy_cost=draw,
                utilization=split.utilization, deiced=deice))
            t += result.finish_time + self.config.transit_separation
        return report
