"""Mission-level scheduling policies: JPL baseline vs power-aware.

A *policy* decides, at the start of each rover iteration, which schedule
to execute given the current operating case.  Two policies reproduce
the paper's Table 4 comparison:

* :class:`JPLPolicy` — the hand-crafted baseline: one fixed, fully
  serialized schedule executed identically in every case ("JPL uses a
  fixed, fully serialized schedule, without tracking available solar
  power").  Its power *draw* still varies with temperature (the motors
  cost more at -80 C), but its timing never does.
* :class:`PowerAwarePolicy` — the paper's approach: a statically
  computed power-aware schedule per case, selected at run time.  In the
  best case the unrolled two-iteration schedule is used: the first
  iteration pre-warms the steering motors for the second, and the
  (cheaper) second iteration repeats while the case persists.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.profile import PowerProfile
from ..errors import ReproError
from ..scheduling.base import SchedulerOptions
from .rover import MarsRover, SolarCase

__all__ = ["AdaptivePolicy", "IterationPlan", "JPLPolicy",
           "MissionPolicy", "PowerAwarePolicy"]


@dataclass(frozen=True)
class IterationPlan:
    """What one rover iteration looks like to the mission simulator."""

    label: str
    duration: int
    steps: int
    profile: PowerProfile

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ReproError(
                f"iteration duration must be positive, got {self.duration}")
        if self.steps <= 0:
            raise ReproError(
                f"iteration steps must be positive, got {self.steps}")


class MissionPolicy:
    """Interface: produce the next iteration's plan."""

    name = "policy"

    def next_iteration(self, case: SolarCase, mission_time: float) \
            -> IterationPlan:
        """The plan to execute starting at ``mission_time``."""
        raise NotImplementedError

    def observe(self, environment) -> None:
        """Called by the simulator before each iteration with the
        current environment (battery state, solar model).  Default:
        ignore — the paper's policies are open-loop."""

    def reset(self) -> None:
        """Forget per-mission state (for reuse across simulations)."""


class JPLPolicy(MissionPolicy):
    """Fixed serial schedule, identical timing in every case."""

    name = "jpl"

    def __init__(self, rover: "MarsRover | None" = None):
        self.rover = rover or MarsRover.standard()
        self._plans: "dict[SolarCase, IterationPlan]" = {}

    def next_iteration(self, case: SolarCase, mission_time: float) \
            -> IterationPlan:
        if case not in self._plans:
            result = self.rover.jpl_result(case)
            self._plans[case] = IterationPlan(
                label=f"jpl-{case.value}",
                duration=result.finish_time,
                steps=self.rover.steps_per_iteration,
                profile=result.profile)
        return self._plans[case]


class PowerAwarePolicy(MissionPolicy):
    """Per-case power-aware schedules; unrolled pre-warm in the best
    case (the paper's Fig. 9 optimization)."""

    name = "power-aware"

    def __init__(self, rover: "MarsRover | None" = None,
                 options: "SchedulerOptions | None" = None,
                 use_unrolled_best: bool = True):
        if rover is not None:
            self.rover = rover
        elif options is not None:
            self.rover = MarsRover(options=options)
        else:
            self.rover = MarsRover.standard()
        self.use_unrolled_best = use_unrolled_best
        self._plans: "dict[str, IterationPlan]" = {}
        self._best_started = False

    def reset(self) -> None:
        self._best_started = False

    def next_iteration(self, case: SolarCase, mission_time: float) \
            -> IterationPlan:
        if case is SolarCase.BEST and self.use_unrolled_best:
            plan = self._best_case_plan(first=not self._best_started)
            self._best_started = True
            return plan
        self._best_started = False
        key = case.value
        if key not in self._plans:
            result = self.rover.power_aware_result(case)
            self._plans[key] = IterationPlan(
                label=f"power-aware-{case.value}",
                duration=result.finish_time,
                steps=self.rover.steps_per_iteration,
                profile=result.profile)
        return self._plans[key]

    def _best_case_plan(self, first: bool) -> IterationPlan:
        """Iteration 1 (with pre-warm heats) or the repeatable steady
        iteration of the unrolled best-case schedule.

        A three-iteration unroll is scheduled once; the slice up to the
        second iteration's first task is the start-up plan, and the
        middle iteration (from iteration 2's first task to iteration
        3's) is the steady state — the pre-warm pipelining makes tasks
        overlap iteration boundaries, so the steady period is shorter
        than any single iteration's span.
        """
        key = "best-first" if first else "best-steady"
        if key not in self._plans:
            result = self.rover.unrolled_result(SolarCase.BEST,
                                                iterations=3,
                                                prewarm=True)
            starts = result.schedule.as_dict()
            b2 = min(s for name, s in starts.items()
                     if name.startswith("i2_"))
            b3 = min(s for name, s in starts.items()
                     if name.startswith("i3_"))
            first_profile = result.profile.restricted(0, b2)
            steady_profile = result.profile.restricted(b2, b3)
            self._plans["best-first"] = IterationPlan(
                label="power-aware-best-first",
                duration=first_profile.horizon,
                steps=self.rover.steps_per_iteration,
                profile=first_profile)
            self._plans["best-steady"] = IterationPlan(
                label="power-aware-best-steady",
                duration=steady_profile.horizon,
                steps=self.rover.steps_per_iteration,
                profile=steady_profile)
        return self._plans[key]


class AdaptivePolicy(MissionPolicy):
    """Battery-aware hybrid: spend when rich, scrimp when poor.

    The lifetime benchmark exposes a crossover the paper does not
    discuss: with a small battery the frugal serial schedule outlives
    the power-aware one (buying speed with battery is a bad deal when
    the battery is the binding constraint).  This policy closes the
    loop the obvious way: fly power-aware while the battery holds more
    than ``reserve`` joules, then fall back to the serial schedule to
    stretch the remainder.  It observes the battery through the
    simulator's :meth:`MissionPolicy.observe` hook — the feedback step
    the paper's open-loop policies lack.
    """

    name = "adaptive"

    def __init__(self, rover: "MarsRover | None" = None,
                 reserve: float = 1_000.0):
        self.rover = rover or MarsRover.standard()
        self.reserve = reserve
        self._fast = PowerAwarePolicy(self.rover)
        self._frugal = JPLPolicy(self.rover)
        self._remaining = float("inf")

    def observe(self, environment) -> None:
        self._remaining = environment.battery.remaining

    def reset(self) -> None:
        self._fast.reset()
        self._remaining = float("inf")

    def next_iteration(self, case: SolarCase, mission_time: float) \
            -> IterationPlan:
        if self._remaining > self.reserve:
            return self._fast.next_iteration(case, mission_time)
        return self._frugal.next_iteration(case, mission_time)
