"""Mission environment: time-varying solar supply and operating case.

The paper's Table 4 scenario: the mission starts at maximum solar power
(14.9 W), drops to 12 W after 10 minutes, and falls to the 9 W worst
case 10 minutes later.  Temperature — and therefore the power draw of
every rover subsystem — tracks the sunlight, so the operating
:class:`~repro.mission.rover.SolarCase` is a function of the current
solar level.
"""

from __future__ import annotations

from ..errors import ReproError
from ..power.battery import Battery, IdealBattery
from ..power.solar import SolarModel, StepSolar
from .rover import POWER_TABLE, SolarCase

__all__ = ["MissionEnvironment", "paper_mission_environment"]


class MissionEnvironment:
    """Solar trace + case mapping + (optional) battery state."""

    def __init__(self, solar: SolarModel,
                 battery: "Battery | None" = None):
        self.solar = solar
        self.battery = battery if battery is not None \
            else IdealBattery(capacity=float("inf"), max_power=10.0)

    def solar_at(self, t: float) -> float:
        """Solar output in watts at mission time ``t``."""
        return self.solar.power(t)

    def case_at(self, t: float) -> SolarCase:
        """The operating case whose nominal solar level is nearest the
        current output (temperature tracks sunlight intensity)."""
        level = self.solar_at(t)
        return min(POWER_TABLE,
                   key=lambda case: abs(POWER_TABLE[case].solar - level))

    def constraints_at(self, t: float) -> "tuple[float, float]":
        """``(P_max, P_min)`` the scheduler sees at mission time ``t``."""
        level = self.solar_at(t)
        return level + self.battery.max_power, level

    def __repr__(self) -> str:
        return f"MissionEnvironment({self.solar!r}, {self.battery!r})"


def paper_mission_environment(battery_capacity: float = float("inf")) \
        -> MissionEnvironment:
    """The Table 4 scenario: 14.9 W -> 12 W @ 600 s -> 9 W @ 1200 s."""
    if battery_capacity <= 0:
        raise ReproError(
            f"battery capacity must be positive, got {battery_capacity}")
    return MissionEnvironment(
        solar=StepSolar.paper_mission(),
        battery=IdealBattery(capacity=battery_capacity, max_power=10.0))
