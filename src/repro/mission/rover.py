"""The NASA/JPL Mars Pathfinder rover model (paper Section 3, Fig. 8).

Reconstructed from Tables 1 and 2 and the prose:

* **Resources** — five thermal heaters (one heater warms two motors: the
  four steering motors form two heater groups, the six wheel motors form
  three), one steering mechanical unit, one driving mechanical unit, one
  laser hazard-detection unit.  The CPU is a constant background load
  (Table 2 lists it as "constant"), modelled as the problem baseline.
* **Tasks per step** (7 cm of travel) — hazard detection (10 s), then
  steering (5 s), then driving (10 s), chained by the Table 1 min
  separations; driving must precede the *next* step's hazard detection
  by at least 10 s.
* **Heating** — each heater fires once per iteration (5 s) and must be
  at least 5 s and at most 50 s (start-to-start) before *every*
  steering/driving it warms the motors for.  One iteration covers two
  steps (14 cm), matching "during each iteration of the schedule, the
  rover moves two steps".
* **Power constraints** — ``P_max = solar + 10 W`` (battery max output),
  ``P_min = solar``; per-case powers from Table 2.

This reconstruction reproduces the paper's JPL column of Table 3
*exactly* (75 s and 0 J / 55 J / 388 J energy cost at 60% / 91% / 100%
utilization), which validates it against the unpublished Fig. 8 drawing.

The *unrolled* variant reproduces the paper's best-case manual
optimization: "we manually unroll the loop and insert two heating tasks
to improve solar energy utilization.  Therefore the second iteration can
be repeated with less energy cost."  Iteration 1 carries two extra
steering-heater firings that pre-warm the motors for iteration 2, whose
own steering heatings are then dropped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.graph import ConstraintGraph
from ..core.problem import SchedulingProblem
from ..errors import ReproError
from ..scheduling.base import ScheduleResult, SchedulerOptions, make_result
from ..scheduling.power_aware import PowerAwareScheduler
from ..scheduling.serial import SerialScheduler

__all__ = ["SolarCase", "CasePowers", "MarsRover",
           "HEAT_MIN_LEAD", "HEAT_MAX_LEAD"]

#: Table 1: heating must lead steering/driving by at least 5 s.
HEAT_MIN_LEAD = 5
#: Table 1: heating must lead steering/driving by at most 50 s.
HEAT_MAX_LEAD = 50

#: Task durations (Table 1), in seconds.
_D_HEAT = 5
_D_HAZARD = 10
_D_STEER = 5
_D_DRIVE = 10

#: Distance covered per step, in centimetres.
STEP_CM = 7


class SolarCase(enum.Enum):
    """The three operating cases of Table 2 (temperature tracks sun)."""

    BEST = "best"        # noon, -40 C, 14.9 W solar
    TYPICAL = "typical"  # -60 C, 12 W solar
    WORST = "worst"      # dusk, -80 C, 9 W solar

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class CasePowers:
    """One column of Table 2: power levels in watts."""

    solar: float
    cpu: float
    heating: float   # one heater warming two motors
    driving: float
    steering: float
    hazard: float


#: Table 2 verbatim.
POWER_TABLE: "dict[SolarCase, CasePowers]" = {
    SolarCase.BEST: CasePowers(solar=14.9, cpu=2.5, heating=7.6,
                               driving=7.5, steering=4.3, hazard=5.1),
    SolarCase.TYPICAL: CasePowers(solar=12.0, cpu=3.1, heating=9.5,
                                  driving=10.9, steering=6.2, hazard=6.1),
    SolarCase.WORST: CasePowers(solar=9.0, cpu=3.7, heating=11.3,
                                driving=13.8, steering=8.1, hazard=7.3),
}

#: Table 2: battery pack maximum output, watts.
BATTERY_MAX_POWER = 10.0

#: Resource names.
_STEER_HEATERS = ("heater_s1", "heater_s2")
_WHEEL_HEATERS = ("heater_w1", "heater_w2", "heater_w3")
_STEERING = "steering"
_DRIVING = "driving"
_HAZARD = "hazard"


class MarsRover:
    """Builder and solver for the rover's scheduling problems."""

    def __init__(self, steps_per_iteration: int = 2,
                 options: "SchedulerOptions | None" = None):
        if steps_per_iteration < 1:
            raise ReproError(
                f"steps_per_iteration must be >= 1, "
                f"got {steps_per_iteration}")
        if steps_per_iteration > 2:
            # A single heater firing cannot cover three steps within the
            # 50 s window; the paper's iteration is two steps.
            raise ReproError(
                "the heating window [5, 50] s supports at most two "
                "steps per heater firing; use unrolled iterations "
                "instead of steps_per_iteration > 2")
        self.steps_per_iteration = steps_per_iteration
        self.options = options or SchedulerOptions()
        self._serial_starts: "dict[str, int] | None" = None

    @staticmethod
    def standard() -> "MarsRover":
        """The paper's configuration: two steps per iteration."""
        return MarsRover(steps_per_iteration=2)

    # ------------------------------------------------------------------
    # graph construction
    # ------------------------------------------------------------------

    def iteration_graph(self, case: SolarCase) -> ConstraintGraph:
        """One schedule iteration (Fig. 8): 2 steps + 5 heater firings."""
        graph = ConstraintGraph(f"mars-rover-{case.value}")
        powers = POWER_TABLE[case]
        self._add_iteration(graph, powers, prefix="",
                            include_steering_heat=True,
                            prev_drive=None)
        return graph

    def unrolled_graph(self, case: SolarCase, iterations: int = 2,
                       prewarm: bool = True) -> ConstraintGraph:
        """``iterations`` concatenated iterations in one graph.

        With ``prewarm`` (the paper's best-case manual optimization),
        every non-final iteration carries two *extra* steering-heater
        firings windowed for the **next** iteration's steering, and
        every non-first iteration drops its own steering heatings.
        """
        if iterations < 1:
            raise ReproError(f"iterations must be >= 1, got {iterations}")
        graph = ConstraintGraph(
            f"mars-rover-{case.value}-x{iterations}"
            + ("-prewarm" if prewarm else ""))
        powers = POWER_TABLE[case]
        prev_drive = None
        pending_prewarm: "list[str]" = []
        for index in range(1, iterations + 1):
            prefix = f"i{index}_"
            include_steer_heat = not (prewarm and index > 1)
            last_drive, steer_names = self._add_iteration(
                graph, powers, prefix=prefix,
                include_steering_heat=include_steer_heat,
                prev_drive=prev_drive)
            # Last iteration's prewarm heats point at this iteration's
            # steering tasks.
            for heat_name in pending_prewarm:
                for steer in steer_names:
                    graph.add_separation_window(
                        heat_name, steer, HEAT_MIN_LEAD, HEAT_MAX_LEAD)
            pending_prewarm = []
            if prewarm and index < iterations:
                pending_prewarm = self._add_prewarm_heats(
                    graph, powers, prefix)
            prev_drive = last_drive
        return graph

    def _add_iteration(self, graph: ConstraintGraph, powers: CasePowers,
                       prefix: str, include_steering_heat: bool,
                       prev_drive: "str | None"):
        """Add one iteration's tasks/constraints; returns
        ``(last_drive_name, steering_task_names)``."""
        steer_names = []
        drive_names = []
        last_drive = prev_drive
        for step in range(1, self.steps_per_iteration + 1):
            hazard = f"{prefix}hazard_{step}"
            steer = f"{prefix}steer_{step}"
            drive = f"{prefix}drive_{step}"
            graph.new_task(hazard, duration=_D_HAZARD,
                           power=powers.hazard, resource=_HAZARD,
                           meta={"kind": "hazard", "step": step})
            graph.new_task(steer, duration=_D_STEER,
                           power=powers.steering, resource=_STEERING,
                           meta={"kind": "steer", "step": step})
            graph.new_task(drive, duration=_D_DRIVE,
                           power=powers.driving, resource=_DRIVING,
                           meta={"kind": "drive", "step": step})
            # Table 1 separations (start-to-start).
            graph.add_min_separation(hazard, steer, _D_HAZARD)
            graph.add_min_separation(steer, drive, _D_STEER)
            if last_drive is not None:
                graph.add_min_separation(last_drive, hazard, _D_DRIVE)
            steer_names.append(steer)
            drive_names.append(drive)
            last_drive = drive

        if include_steering_heat:
            for heater in _STEER_HEATERS:
                name = f"{prefix}heat_{heater[-2:]}"
                graph.new_task(name, duration=_D_HEAT,
                               power=powers.heating, resource=heater,
                               meta={"kind": "heat", "warms": "steering"})
                for steer in steer_names:
                    graph.add_separation_window(
                        name, steer, HEAT_MIN_LEAD, HEAT_MAX_LEAD)
        for heater in _WHEEL_HEATERS:
            name = f"{prefix}heat_{heater[-2:]}"
            graph.new_task(name, duration=_D_HEAT,
                           power=powers.heating, resource=heater,
                           meta={"kind": "heat", "warms": "driving"})
            for drive in drive_names:
                graph.add_separation_window(
                    name, drive, HEAT_MIN_LEAD, HEAT_MAX_LEAD)
        return last_drive, steer_names

    def _add_prewarm_heats(self, graph: ConstraintGraph,
                           powers: CasePowers, prefix: str) -> "list[str]":
        """The two inserted heating tasks of the best-case unroll."""
        names = []
        for heater in _STEER_HEATERS:
            name = f"{prefix}prewarm_{heater[-2:]}"
            graph.new_task(name, duration=_D_HEAT,
                           power=powers.heating, resource=heater,
                           meta={"kind": "heat", "warms": "steering",
                                 "prewarm": True})
            names.append(name)
        return names

    # ------------------------------------------------------------------
    # problems and schedules
    # ------------------------------------------------------------------

    def problem(self, case: SolarCase,
                graph: "ConstraintGraph | None" = None) \
            -> SchedulingProblem:
        """The scheduling problem for a case: ``P_max = solar + 10 W``,
        ``P_min = solar``, CPU as baseline."""
        powers = POWER_TABLE[case]
        graph = graph if graph is not None else self.iteration_graph(case)
        return SchedulingProblem(
            graph=graph,
            p_max=powers.solar + BATTERY_MAX_POWER,
            p_min=powers.solar,
            baseline=powers.cpu,
            name=graph.name,
            meta={"case": case.value})

    def power_aware_result(self, case: SolarCase) -> ScheduleResult:
        """The three-stage power-aware schedule for one iteration."""
        return PowerAwareScheduler(self.options).solve(self.problem(case))

    def unrolled_result(self, case: SolarCase, iterations: int = 2,
                        prewarm: bool = True) -> ScheduleResult:
        """Power-aware schedule of the unrolled multi-iteration graph."""
        graph = self.unrolled_graph(case, iterations=iterations,
                                    prewarm=prewarm)
        return PowerAwareScheduler(self.options).solve(
            self.problem(case, graph=graph))

    def jpl_result(self, case: SolarCase) -> ScheduleResult:
        """The JPL baseline: the *fixed* fully-serial schedule.

        The serial order is computed once — timing constraints do not
        depend on temperature, so the same start times apply to every
        case ("JPL uses a fixed, fully serialized schedule, without
        tracking available solar power") — then evaluated under the
        case's power table.
        """
        problem = self.problem(case)
        if self._serial_starts is None:
            serial = SerialScheduler(self.options).solve(problem)
            self._serial_starts = serial.schedule.as_dict()
        from ..core.schedule import Schedule
        schedule = Schedule(problem.graph, self._serial_starts)
        result = make_result(problem, schedule, stage="jpl-serial")
        return result

    def iteration_boundary(self, result: ScheduleResult) -> int:
        """Start time of iteration 2 inside an unrolled schedule
        (the earliest start among ``i2_*`` tasks)."""
        starts = [s for name, s in result.schedule.items()
                  if name.startswith("i2_")]
        if not starts:
            raise ReproError("result is not an unrolled schedule")
        return min(starts)
