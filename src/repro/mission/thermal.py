"""First-order thermal model for the rover's motors.

Table 1 *asserts* the heating windows — "at least 5 s, at most 50 s
before steering/driving" — as given timing constraints.  Physically
they encode a thermal requirement: a motor must be above its minimum
operating temperature when driven, heaters warm it up over a few
seconds, and on the -80 C Martian surface it cools back down within a
minute.  This module supplies that physics as a first-order (RC)
model:

* while a heater runs, the motor temperature rises exponentially
  toward ``heated_temperature`` with time constant ``heat_tau``;
* otherwise it decays exponentially toward ``ambient`` with time
  constant ``cool_tau``.

With the default calibration the *feasible lead times* of a heater
firing before the 10 s driving operation come out as exactly the
paper's [5, 50] s window — the lower edge because the heater occupies
the motor (an operation cannot start until its 5 s firing completes),
the upper edge because the motor cools back below the operating
threshold ~55 s after the firing ends.  The 5 s steering operation
projects to [5, 55], within 10 % of the paper's rounded common window.
Table 1's windows are thus the constraint-graph *projection* of this
model; ``tests/test_thermal.py`` asserts the derivation.

Beyond validating the reconstruction, :func:`check_thermal` verifies
any rover schedule directly against the physics (rather than the
projected windows), which catches schedules that satisfy the
constraint graph only degenerately.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.schedule import Schedule
from ..errors import ReproError

__all__ = ["ThermalParams", "motor_temperature", "feasible_lead_window",
           "ThermalViolation", "check_thermal"]


@dataclass(frozen=True)
class ThermalParams:
    """First-order thermal constants (degrees Celsius / seconds).

    Defaults are calibrated so the feasible heater-lead window of a
    5 s firing is exactly [5, 50] s at the worst-case (-80 C) ambient —
    the Table 1 constraint.
    """

    ambient: float = -80.0
    heated_temperature: float = 40.0
    operating_threshold: float = -45.0
    heat_tau: float = 1.8
    cool_tau: float = 47.5

    def __post_init__(self) -> None:
        if self.heat_tau <= 0 or self.cool_tau <= 0:
            raise ReproError("thermal time constants must be positive")
        if not self.ambient < self.operating_threshold \
                < self.heated_temperature:
            raise ReproError(
                "need ambient < operating threshold < heated "
                "temperature")


def motor_temperature(params: ThermalParams,
                      heat_intervals: "list[tuple[int, int]]",
                      t: float) -> float:
    """Motor temperature at time ``t`` given past heater firings.

    Piecewise integration of the two exponentials from ``ambient`` at
    time 0 through every (start, end) heater interval before ``t``.
    """
    temp = params.ambient
    clock = 0.0
    for start, end in sorted(heat_intervals):
        if start >= t:
            break
        # cool from `clock` to `start`
        temp = _decay(temp, params.ambient, start - clock,
                      params.cool_tau)
        heat_until = min(end, t)
        temp = _decay(temp, params.heated_temperature,
                      heat_until - start, params.heat_tau)
        clock = heat_until
        if end >= t:
            return temp
    return _decay(temp, params.ambient, t - clock, params.cool_tau)


def _decay(value: float, target: float, dt: float, tau: float) -> float:
    if dt <= 0:
        return value
    return target + (value - target) * math.exp(-dt / tau)


def feasible_lead_window(params: ThermalParams, heat_duration: int,
                         op_duration: int, horizon: int = 200,
                         op_blocks_heating: bool = True) \
        -> "tuple[int, int]":
    """The integer lead times (heater start to operation start) for
    which the motor stays above threshold through the *whole*
    operation.

    With ``op_blocks_heating`` (default) leads shorter than the firing
    itself are infeasible — a motor cannot be driven while its heater
    runs, which is what puts the paper's lower edge at the 5 s heater
    duration.  Returns ``(min_lead, max_lead)``; raises when no lead
    works.
    """
    feasible = []
    start_lead = heat_duration if op_blocks_heating else 0
    for lead in range(start_lead, horizon + 1):
        ok = True
        for offset in range(op_duration + 1):
            t = lead + offset
            temp = motor_temperature(params, [(0, heat_duration)], t)
            if temp < params.operating_threshold:
                ok = False
                break
        if ok:
            feasible.append(lead)
    if not feasible:
        raise ReproError(
            "no heater lead time keeps the motor warm through the "
            "operation — heater too weak for this calibration")
    return min(feasible), max(feasible)


@dataclass(frozen=True)
class ThermalViolation:
    """A motor operation executed below the operating threshold."""

    task: str
    time: int
    temperature: float

    def __repr__(self) -> str:
        return (f"{self.task} at t={self.time}: "
                f"{self.temperature:.1f} C below threshold")


def check_thermal(schedule: Schedule,
                  params: "ThermalParams | None" = None) \
        -> "list[ThermalViolation]":
    """Verify a rover schedule against the physics directly.

    Uses the rover model's task metadata: ``heat`` tasks warm either
    the steering or the driving motors; ``steer``/``drive`` tasks
    require their motor group to be at or above the operating
    threshold for their entire execution.  Returns all violations
    (empty == thermally sound).
    """
    params = params or ThermalParams()
    graph = schedule.graph
    heats: "dict[str, list[tuple[int, int]]]" = {"steering": [],
                                                 "driving": []}
    for task in graph.tasks():
        if task.meta.get("kind") == "heat":
            warms = task.meta.get("warms")
            if warms in heats:
                heats[warms].append((schedule.start(task.name),
                                     schedule.finish(task.name)))
    violations = []
    for task in graph.tasks():
        kind = task.meta.get("kind")
        group = {"steer": "steering", "drive": "driving"}.get(kind)
        if group is None:
            continue
        start = schedule.start(task.name)
        for offset in range(task.duration + 1):
            t = start + offset
            temp = motor_temperature(params, heats[group], t)
            if temp < params.operating_threshold:
                violations.append(ThermalViolation(
                    task=task.name, time=t, temperature=temp))
                break
    return violations
