"""Automatic heating-task synthesis from the thermal model.

The paper inserts heating tasks *by hand*: the rover graph carries five
pre-placed firings per iteration, and for the best case "we manually
unroll the loop and insert two heating tasks to improve solar energy
utilization".  With the thermal substrate
(:mod:`repro.mission.thermal`) that manual step becomes an algorithm:

1. schedule the mission graph with **no** heating tasks;
2. verify it against the motor physics (:func:`check_thermal`);
3. for every cold operation, insert one heater firing per motor group,
   window-constrained to the thermally-derived feasible lead
   (``feasible_lead_window``), onto the group's heater resources;
4. re-schedule and repeat until the physics check is clean.

The loop converges because each round only adds firings for operations
that are still cold, every operation can be warmed by a dedicated
firing, and firings already inserted persist.  On the rover's
iteration graph the synthesizer re-discovers the paper's hand-placed
allocation: five firings for two steps (one per heater, each shared by
both steps through the [5, 50] window).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.graph import ConstraintGraph
from ..errors import SchedulingFailure
from ..scheduling.base import ScheduleResult, SchedulerOptions
from ..scheduling.power_aware import PowerAwareScheduler
from .rover import HEAT_MAX_LEAD, HEAT_MIN_LEAD, POWER_TABLE, SolarCase
from .thermal import ThermalParams, check_thermal

__all__ = ["SynthesisOutcome", "strip_heating", "synthesize_heating"]

#: Heater resources per motor group (mirrors the rover model).
_GROUP_HEATERS = {
    "steering": ("heater_s1", "heater_s2"),
    "driving": ("heater_w1", "heater_w2", "heater_w3"),
}
_HEAT_DURATION = 5


@dataclass
class SynthesisOutcome:
    """Result of the synthesis loop."""

    graph: ConstraintGraph
    result: ScheduleResult
    rounds: int
    inserted: "list[str]" = field(default_factory=list)

    @property
    def firings(self) -> int:
        return len(self.inserted)


def strip_heating(graph: ConstraintGraph) -> ConstraintGraph:
    """A copy of a rover graph with every heating task removed.

    The synthesizer's natural starting point; also useful to measure
    what the hand-placed allocation costs.
    """
    clone = ConstraintGraph(graph.name + "-noheat")
    keep = [t for t in graph.tasks() if t.meta.get("kind") != "heat"]
    kept_names = {t.name for t in keep}
    for task in keep:
        clone.add_task(task)
    for edge in graph.edges():
        if edge.src in kept_names and edge.dst in kept_names:
            clone.add_edge(edge.src, edge.dst, edge.weight,
                           tag=edge.tag)
    return clone


def synthesize_heating(graph: ConstraintGraph, case: SolarCase,
                       params: "ThermalParams | None" = None,
                       options: "SchedulerOptions | None" = None,
                       max_rounds: int = 8) -> SynthesisOutcome:
    """Insert heater firings until the schedule is thermally sound.

    ``graph`` is a rover-style mission graph (tasks annotated with
    ``kind``/``warms`` metadata) — typically :func:`strip_heating` of a
    rover graph, or a hand-built variant.  Returns the decorated graph
    and the final power-aware schedule.

    Raises :class:`SchedulingFailure` when a round's scheduling fails
    or the loop does not converge within ``max_rounds``.
    """
    from ..core.problem import SchedulingProblem

    params = params or ThermalParams()
    powers = POWER_TABLE[case]
    work = graph.copy()
    inserted: "list[str]" = []

    for round_index in range(1, max_rounds + 1):
        problem = SchedulingProblem(
            graph=work,
            p_max=powers.solar + 10.0,
            p_min=powers.solar,
            baseline=powers.cpu,
            name=f"{graph.name}-r{round_index}")
        result = PowerAwareScheduler(options).solve(problem)
        violations = check_thermal(result.schedule, params)
        if not violations:
            return SynthesisOutcome(graph=work, result=result,
                                    rounds=round_index,
                                    inserted=inserted)
        # Group this round's cold operations by motor group and give
        # each group ONE new firing per heater, window-shared across
        # all of the group's cold operations — the paper's hand
        # allocation (5 firings serve both steps) re-derived.  If a
        # shared firing cannot cover an operation, that operation
        # resurfaces as a violation next round and receives its own.
        cold: "dict[str, list]" = {}
        progress = False
        for violation in violations:
            op = work.task(violation.task)
            group = {"steer": "steering",
                     "drive": "driving"}[op.meta["kind"]]
            cold.setdefault(group, []).append(op)
            progress = True
        for group, ops in cold.items():
            lead_by_op = {op.name: _feasible_lead(params, op.duration)
                          for op in ops}
            for heater in _GROUP_HEATERS[group]:
                name = f"heat_{heater[-2:]}_r{round_index}"
                work.new_task(name, duration=_HEAT_DURATION,
                              power=powers.heating, resource=heater,
                              meta={"kind": "heat", "warms": group,
                                    "synthesized": True})
                for op in ops:
                    lo, hi = lead_by_op[op.name]
                    work.add_separation_window(name, op.name, lo, hi)
                inserted.append(name)
        if not progress:  # pragma: no cover - defensive
            break
    raise SchedulingFailure(
        f"heating synthesis did not converge within {max_rounds} "
        f"rounds on {graph.name!r}")


def _feasible_lead(params: ThermalParams,
                   op_duration: int) -> "tuple[int, int]":
    """The thermally-derived window, clamped to the paper's bounds.

    The clamp keeps synthesized constraints within Table 1's published
    envelope so synthesized graphs stay comparable with the
    hand-placed ones.
    """
    from .thermal import feasible_lead_window
    lo, hi = feasible_lead_window(params, _HEAT_DURATION, op_duration)
    return max(lo, HEAT_MIN_LEAD), min(hi, HEAT_MAX_LEAD)
