"""Mission simulator — the paper's Table 4 case study.

Simulates a rover mission: travel ``target_steps`` steps while the
solar supply decays through the environment's trace.  At each iteration
boundary the policy picks a schedule for the current operating case;
the iteration's power profile is then integrated against the *actual*
(possibly mid-iteration-changing) solar output to charge the battery
with exactly the energy drawn above the free level.

The report aggregates iterations into phases (one per solar level, as
Table 4 does) and computes the headline improvements: total mission
time and total battery energy, power-aware vs JPL.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ReproError
from ..obs import OBS
from ..power.accounting import split_energy_against_solar
from ..power.battery import BatteryDepletedError
from .baselines import MissionPolicy
from .environment import MissionEnvironment
from .rover import SolarCase

__all__ = ["IterationRecord", "PhaseRow", "MissionReport",
           "MissionSimulator", "compare_reports"]

#: Safety cap on simulated iterations (a policy that makes no progress
#: would otherwise loop forever).
_MAX_ITERATIONS = 100_000


@dataclass(frozen=True)
class IterationRecord:
    """One executed rover iteration."""

    index: int
    start_time: float
    duration: float
    steps: int
    case: SolarCase
    label: str
    energy_consumed: float
    energy_cost: float
    free_used: float
    free_wasted: float

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration


@dataclass(frozen=True)
class PhaseRow:
    """One row of the Table 4 comparison (one solar level)."""

    solar: float
    steps: int
    time: float
    energy_cost: float


@dataclass
class MissionReport:
    """Outcome of one simulated mission."""

    policy: str
    target_steps: int
    iterations: "list[IterationRecord]" = field(default_factory=list)
    battery_depleted: bool = False

    @property
    def total_steps(self) -> int:
        return sum(it.steps for it in self.iterations)

    @property
    def total_time(self) -> float:
        return self.iterations[-1].end_time if self.iterations else 0.0

    @property
    def total_energy_cost(self) -> float:
        return sum(it.energy_cost for it in self.iterations)

    @property
    def completed(self) -> bool:
        return not self.battery_depleted \
            and self.total_steps >= self.target_steps

    def phases(self) -> "list[PhaseRow]":
        """Iterations grouped into consecutive equal-solar phases."""
        rows: "list[PhaseRow]" = []
        current_solar = None
        steps = 0
        elapsed = 0.0
        cost = 0.0
        for it in self.iterations:
            from ..mission.rover import POWER_TABLE
            solar = POWER_TABLE[it.case].solar
            if current_solar is None:
                current_solar = solar
            if solar != current_solar:
                rows.append(PhaseRow(solar=current_solar, steps=steps,
                                     time=elapsed, energy_cost=cost))
                current_solar, steps, elapsed, cost = solar, 0, 0.0, 0.0
            steps += it.steps
            elapsed += it.duration
            cost += it.energy_cost
        if current_solar is not None:
            rows.append(PhaseRow(solar=current_solar, steps=steps,
                                 time=elapsed, energy_cost=cost))
        return rows

    def summary(self) -> str:
        """One-line mission outcome."""
        state = "completed" if self.completed else (
            "battery depleted" if self.battery_depleted else "incomplete")
        return (f"{self.policy}: {self.total_steps} steps in "
                f"{self.total_time:g} s, battery cost "
                f"{self.total_energy_cost:.1f} J ({state})")


class MissionSimulator:
    """Drive a policy through an environment until the target is met."""

    def __init__(self, environment: MissionEnvironment,
                 policy: MissionPolicy, target_steps: int):
        if target_steps <= 0:
            raise ReproError(
                f"target_steps must be positive, got {target_steps}")
        self.environment = environment
        self.policy = policy
        self.target_steps = target_steps

    def run(self) -> MissionReport:
        """Execute the mission; returns the full report.

        The battery is drawn iteration by iteration; a depleted battery
        aborts the mission (``report.battery_depleted``), which is how
        the benchmarks explore mission lifetime vs schedule policy.
        """
        self.policy.reset()
        report = MissionReport(policy=self.policy.name,
                               target_steps=self.target_steps)
        with OBS.span("mission.run", policy=self.policy.name,
                      target_steps=self.target_steps) as mission_span:
            self._run_iterations(report)
            mission_span.set(steps=report.total_steps,
                             iterations=len(report.iterations),
                             depleted=report.battery_depleted)
        return report

    def _run_iterations(self, report: MissionReport) -> None:
        t = 0.0
        steps = 0
        for index in range(_MAX_ITERATIONS):
            if steps >= self.target_steps:
                break
            case = self.environment.case_at(t)
            self.policy.observe(self.environment)
            plan = self.policy.next_iteration(case, t)
            split = split_energy_against_solar(
                plan.profile, self.environment.solar, start_time=t)
            try:
                if split.battery_drawn > 0:
                    # Draw at the iteration's average excess power;
                    # per-segment accuracy is already captured in the
                    # energy split, the battery only tracks charge.
                    self.environment.battery.draw(
                        split.battery_drawn / plan.duration,
                        plan.duration)
            except BatteryDepletedError:
                report.battery_depleted = True
                OBS.event("mission.battery_depleted", at_time=t)
                break
            report.iterations.append(IterationRecord(
                index=index, start_time=t, duration=plan.duration,
                steps=plan.steps, case=case, label=plan.label,
                energy_consumed=split.consumed,
                energy_cost=split.battery_drawn,
                free_used=split.free_used,
                free_wasted=split.free_wasted))
            if OBS.enabled:
                OBS.event("mission.iteration", index=index,
                          case=case.value, steps=plan.steps,
                          energy_cost=round(split.battery_drawn, 3))
                OBS.metrics.counter("mission.iterations").inc()
                OBS.metrics.counter("mission.steps").inc(plan.steps)
            t += plan.duration
            steps += plan.steps
        else:  # pragma: no cover - defensive
            raise ReproError(
                f"mission did not terminate within {_MAX_ITERATIONS} "
                "iterations")


def compare_reports(baseline: MissionReport, candidate: MissionReport) \
        -> "dict[str, float]":
    """The paper's Table 4 bottom line: percentage improvements of
    ``candidate`` over ``baseline`` in mission time and energy cost."""
    if baseline.total_time <= 0 or baseline.total_energy_cost < 0:
        raise ReproError("baseline report is empty")
    time_gain = 100.0 * (baseline.total_time - candidate.total_time) \
        / baseline.total_time
    if baseline.total_energy_cost > 0:
        energy_gain = 100.0 * (baseline.total_energy_cost
                               - candidate.total_energy_cost) \
            / baseline.total_energy_cost
    else:
        energy_gain = 0.0
    return {
        "time_improvement_pct": time_gain,
        "energy_improvement_pct": energy_gain,
        "baseline_time_s": baseline.total_time,
        "candidate_time_s": candidate.total_time,
        "baseline_energy_J": baseline.total_energy_cost,
        "candidate_energy_J": candidate.total_energy_cost,
    }
