"""repro — power-aware scheduling under timing constraints.

A production-quality reproduction of:

    Jinfeng Liu, Pai H. Chou, Nader Bagherzadeh, Fadi Kurdahi.
    "Power-Aware Scheduling under Timing Constraints for
    Mission-Critical Embedded Systems", DAC 2001.

Public API tour
---------------

Build a problem::

    from repro import ConstraintGraph, SchedulingProblem, schedule

    g = ConstraintGraph("demo")
    a = g.new_task("a", duration=5, power=8.0, resource="motor")
    b = g.new_task("b", duration=10, power=6.0, resource="laser")
    g.add_precedence("a", "b")          # b after a finishes
    g.add_max_separation("a", "b", 20)  # ...but within 20 s
    problem = SchedulingProblem(g, p_max=12.0, p_min=6.0)

Solve it::

    result = schedule(problem)
    print(result.summary())
    print(result.schedule.as_dict())

Reproduce the paper's case study::

    from repro.mission import MarsRover, SolarCase
    rover = MarsRover.standard()
    result = rover.power_aware_result(SolarCase.TYPICAL)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .core import (ANCHOR_NAME, UNBOUNDED_SLACK, ConstraintGraph, Edge, Interval,
                   PowerProfile, Resource, ResourcePool, Schedule,
                   ScheduleMetrics, SchedulingProblem, Task,
                   assert_power_valid, assert_time_valid,
                   check_power_valid, check_time_valid, earliest_starts,
                   energy_cost, evaluate, latest_starts, longest_paths,
                   min_power_utilization, movable_window, power_jitter,
                   slack, slack_table)
from .errors import (GraphError, InfeasibleError, PositiveCycleError,
                     ReproError, SchedulingFailure, SerializationError,
                     ValidationError)
from .scheduling import (GreedyListScheduler, MaxPowerScheduler,
                         MinPowerScheduler, OptimalScheduler,
                         PipelineResult, PowerAwareScheduler,
                         RuntimeScheduler, ScheduleEntry, ScheduleResult,
                         ScheduleTable, SchedulerOptions, SchedulerStats,
                         SerialScheduler, TimingScheduler,
                         greedy_schedule, max_power_schedule,
                         min_power_schedule, optimal_schedule, schedule,
                         serial_schedule, timing_schedule)

#: Release version of the repro package.
__version__ = "1.0.0"

__all__ = [
    "ANCHOR_NAME",
    "ConstraintGraph",
    "Edge",
    "GraphError",
    "GreedyListScheduler",
    "InfeasibleError",
    "Interval",
    "MaxPowerScheduler",
    "MinPowerScheduler",
    "OptimalScheduler",
    "PipelineResult",
    "PositiveCycleError",
    "PowerAwareScheduler",
    "PowerProfile",
    "ReproError",
    "Resource",
    "ResourcePool",
    "RuntimeScheduler",
    "Schedule",
    "ScheduleEntry",
    "ScheduleMetrics",
    "ScheduleResult",
    "ScheduleTable",
    "SchedulerOptions",
    "SchedulerStats",
    "SchedulingFailure",
    "SchedulingProblem",
    "SerialScheduler",
    "SerializationError",
    "Task",
    "TimingScheduler",
    "UNBOUNDED_SLACK",
    "ValidationError",
    "__version__",
    "assert_power_valid",
    "assert_time_valid",
    "check_power_valid",
    "check_time_valid",
    "earliest_starts",
    "energy_cost",
    "evaluate",
    "greedy_schedule",
    "latest_starts",
    "longest_paths",
    "max_power_schedule",
    "min_power_schedule",
    "min_power_utilization",
    "movable_window",
    "optimal_schedule",
    "power_jitter",
    "schedule",
    "serial_schedule",
    "slack",
    "slack_table",
    "timing_schedule",
]
