"""Random constraint-graph workload generator.

The paper evaluates on one real application (the rover); the
reproduction bands call for synthetic benchmarks to exercise the
schedulers at scale.  This generator produces *feasible-by-construction*
instances with the same constraint vocabulary as the paper:

* a layered DAG of tasks with end-to-start precedences (min
  separations) between consecutive layers,
* optional max-separation windows layered on top of existing
  precedences (so they never contradict the min side),
* optional release times,
* a resource pool smaller than the task count, forcing serialization,
* a max power budget set as ``tightness`` x the ASAP-schedule peak — a
  tightness of 1.0 leaves the ASAP schedule barely valid; below 1.0 the
  schedulers must reshape the profile; ``p_min`` as a fraction of
  ``p_max``.

All randomness flows from an explicit seed, so benchmark instances are
reproducible across runs and machines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.graph import ConstraintGraph
from ..core.problem import SchedulingProblem
from ..core.profile import PowerProfile
from ..errors import ReproError, SchedulingFailure
from ..scheduling.timing import TimingScheduler

__all__ = ["RandomWorkloadConfig", "random_problem", "random_problems"]


@dataclass
class RandomWorkloadConfig:
    """Knobs for the random instance generator."""

    tasks: int = 20
    resources: int = 4
    layers: int = 4
    precedence_prob: float = 0.45
    window_prob: float = 0.25
    window_slack: "tuple[int, int]" = (5, 40)
    release_prob: float = 0.15
    duration_range: "tuple[int, int]" = (2, 10)
    power_range: "tuple[float, float]" = (1.0, 8.0)
    baseline: float = 1.0
    tightness: float = 0.75
    p_min_fraction: float = 0.6

    def __post_init__(self) -> None:
        if self.tasks < 1:
            raise ReproError(f"tasks must be >= 1, got {self.tasks}")
        if self.resources < 1:
            raise ReproError(
                f"resources must be >= 1, got {self.resources}")
        if self.layers < 1:
            raise ReproError(f"layers must be >= 1, got {self.layers}")
        if not 0 < self.tightness <= 2.0:
            raise ReproError(
                f"tightness must be in (0, 2], got {self.tightness}")
        if not 0 <= self.p_min_fraction <= 1:
            raise ReproError(
                f"p_min_fraction must be in [0, 1], "
                f"got {self.p_min_fraction}")


def random_problem(seed: int,
                   config: "RandomWorkloadConfig | None" = None) \
        -> SchedulingProblem:
    """Generate one reproducible random scheduling problem.

    The power budget is derived from the instance itself: the peak of
    the serialized time-valid schedule scaled by ``config.tightness``
    and floored at (baseline + max task power) so the instance is never
    trivially infeasible.

    Instances are feasible by construction *probabilistically*: a draw
    whose window combination defeats the (budgeted) timing probe is
    discarded and redrawn from a derived seed, so the function is total
    and still deterministic per input seed.
    """
    config = config or RandomWorkloadConfig()
    last_error: "Exception | None" = None
    for attempt in range(24):
        derived = seed + attempt * 7_919
        try:
            return _draw_problem(seed, derived, config)
        except SchedulingFailure as exc:
            last_error = exc
    raise SchedulingFailure(
        f"could not draw a timing-feasible instance for seed {seed} "
        f"after 24 attempts: {last_error}")


def _draw_problem(seed: int, derived_seed: int,
                  config: RandomWorkloadConfig) -> SchedulingProblem:
    rng = random.Random(derived_seed)
    graph = ConstraintGraph(f"random-{seed}")

    # layered task creation
    layer_of: "dict[str, int]" = {}
    layers: "list[list[str]]" = [[] for _ in range(config.layers)]
    for index in range(config.tasks):
        name = f"t{index:03d}"
        layer = min(index * config.layers // config.tasks,
                    config.layers - 1)
        duration = rng.randint(*config.duration_range)
        power = round(rng.uniform(*config.power_range), 1)
        resource = f"R{rng.randrange(config.resources)}"
        graph.new_task(name, duration=duration, power=power,
                       resource=resource, meta={"layer": layer})
        layer_of[name] = layer
        layers[layer].append(name)

    # precedences between consecutive layers
    for upper, lower in zip(layers, layers[1:]):
        for dst in lower:
            for src in upper:
                if rng.random() < config.precedence_prob:
                    graph.add_precedence(src, dst)

    # max-separation windows on top of existing precedences
    for edge in list(graph.edges()):
        if edge.tag != "user" or edge.weight < 0:
            continue
        if rng.random() < config.window_prob:
            slack = rng.randint(*config.window_slack)
            graph.add_max_separation(edge.src, edge.dst,
                                     edge.weight + slack)

    # release times for a few first-layer tasks
    for name in layers[0]:
        if rng.random() < config.release_prob:
            graph.add_release(name, rng.randint(1, 10))

    # derive the power constraints from the instance; the budgeted
    # probe doubles as the feasibility screen (SchedulingFailure here
    # makes the caller redraw)
    probe = graph.copy()
    from ..scheduling.base import SchedulerOptions
    from ..scheduling.timing import asap_schedule
    TimingScheduler(SchedulerOptions(max_backtracks=2_000)) \
        .schedule_graph(probe)
    schedule = asap_schedule(probe)
    profile = PowerProfile.from_schedule(schedule,
                                         baseline=config.baseline)
    peak = profile.peak()
    max_task_power = max((t.power for t in graph.tasks()), default=0.0)
    p_max = max(config.tightness * peak,
                config.baseline + max_task_power + 0.5)
    p_min = config.p_min_fraction * p_max
    return SchedulingProblem(graph=graph, p_max=round(p_max, 2),
                             p_min=round(p_min, 2),
                             baseline=config.baseline,
                             name=graph.name,
                             meta={"seed": seed,
                                   "tightness": config.tightness})


def random_problems(count: int, base_seed: int = 100,
                    config: "RandomWorkloadConfig | None" = None) \
        -> "list[SchedulingProblem]":
    """A reproducible batch of random problems."""
    return [random_problem(base_seed + i, config) for i in range(count)]
