"""Series-parallel task-graph generator (TGFF-style).

The EDA scheduling literature benchmarks on series-parallel task
graphs (the shape TGFF, the standard generator, produces): a graph is
either a single task, a *series* composition (run one sub-graph after
another), or a *parallel* composition (fork into sub-graphs, join).
Such graphs model structured dataflow — exactly the co-synthesis
workloads the paper's formulation targets — and their recursive
structure makes properties (critical path, total work) computable by
construction, which the tests exploit.

The generator is seed-deterministic and emits ordinary
:class:`~repro.core.problem.SchedulingProblem` instances with power
budgets derived the same way as :mod:`repro.workloads.random_graphs`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.graph import ConstraintGraph
from ..core.problem import SchedulingProblem
from ..core.profile import PowerProfile
from ..errors import ReproError

__all__ = ["SeriesParallelConfig", "series_parallel_problem"]


@dataclass
class SeriesParallelConfig:
    """Knobs for the recursive generator."""

    depth: int = 3
    max_branches: int = 3
    series_prob: float = 0.5
    resources: int = 4
    duration_range: "tuple[int, int]" = (2, 8)
    power_range: "tuple[float, float]" = (1.0, 6.0)
    baseline: float = 1.0
    tightness: float = 0.8
    p_min_fraction: float = 0.6

    def __post_init__(self) -> None:
        if self.depth < 0:
            raise ReproError(f"depth must be >= 0, got {self.depth}")
        if self.max_branches < 2:
            raise ReproError(
                f"max_branches must be >= 2, got {self.max_branches}")
        if not 0 <= self.series_prob <= 1:
            raise ReproError(
                f"series_prob must be in [0, 1], got {self.series_prob}")


def series_parallel_problem(seed: int,
                            config: "SeriesParallelConfig | None" = None) \
        -> SchedulingProblem:
    """Generate one series-parallel scheduling problem.

    Returns the problem; the graph's tasks carry
    ``meta["sp_path"]`` breadcrumbs describing their position in the
    composition tree, and the problem's ``meta`` records the
    analytically-known ``critical_path`` and ``total_work`` for test
    oracles.
    """
    config = config or SeriesParallelConfig()
    rng = random.Random(seed)
    graph = ConstraintGraph(f"sp-{seed}")
    counter = [0]

    def new_task(path: str) -> "tuple[str, int]":
        name = f"t{counter[0]:03d}"
        counter[0] += 1
        duration = rng.randint(*config.duration_range)
        graph.new_task(
            name, duration=duration,
            power=round(rng.uniform(*config.power_range), 1),
            resource=f"R{rng.randrange(config.resources)}",
            meta={"sp_path": path})
        return name, duration

    def build(depth: int, path: str) \
            -> "tuple[list[str], list[str], int]":
        """Returns (entry tasks, exit tasks, critical path length)."""
        if depth == 0:
            name, duration = new_task(path)
            return [name], [name], duration
        if rng.random() < config.series_prob:
            first_in, first_out, cp1 = build(depth - 1, path + "S0")
            second_in, second_out, cp2 = build(depth - 1, path + "S1")
            for src in first_out:
                for dst in second_in:
                    graph.add_precedence(src, dst)
            return first_in, second_out, cp1 + cp2
        branches = rng.randint(2, config.max_branches)
        entries, exits, cps = [], [], []
        for b in range(branches):
            b_in, b_out, cp = build(depth - 1, f"{path}P{b}")
            entries.extend(b_in)
            exits.extend(b_out)
            cps.append(cp)
        return entries, exits, max(cps)

    _, _, critical = build(config.depth, "")
    total_work = sum(t.duration for t in graph.tasks())

    # derive the power budget exactly as the random generator does
    from ..scheduling.base import SchedulerOptions
    from ..scheduling.timing import TimingScheduler, asap_schedule
    probe = graph.copy()
    TimingScheduler(SchedulerOptions(max_backtracks=2_000)) \
        .schedule_graph(probe)
    profile = PowerProfile.from_schedule(asap_schedule(probe),
                                         baseline=config.baseline)
    max_task_power = max(t.power for t in graph.tasks())
    p_max = max(config.tightness * profile.peak(),
                config.baseline + max_task_power + 0.5)
    return SchedulingProblem(
        graph=graph, p_max=round(p_max, 2),
        p_min=round(config.p_min_fraction * p_max, 2),
        baseline=config.baseline, name=graph.name,
        meta={"seed": seed, "critical_path": critical,
              "total_work": total_work})
