"""Parametric task-graph patterns.

Named topologies used throughout the tests and benchmarks.  Each
builder returns a :class:`~repro.core.problem.SchedulingProblem` whose
structure is obvious by construction, so expected schedules (and
therefore expected metrics) can be computed by hand:

* :func:`chain` — a serial dependency chain (no scheduling freedom);
* :func:`independent` — n unconstrained tasks on one resource each
  (maximum freedom: the power constraint alone shapes the schedule);
* :func:`fork_join` — a source task fans out to parallel workers that
  join into a sink, the classic DAG kernel;
* :func:`pipeline` — ``stages x width`` grid with stage-to-stage
  precedences and per-stage shared resources, a software-pipelining
  shape similar to the rover's unrolled iterations.
"""

from __future__ import annotations

from ..core.graph import ConstraintGraph
from ..core.problem import SchedulingProblem
from ..errors import ReproError

__all__ = ["chain", "independent", "fork_join", "pipeline"]


def chain(length: int, duration: int = 5, power: float = 4.0,
          p_max: float = 10.0, p_min: float = 0.0) -> SchedulingProblem:
    """A serial chain ``t0 -> t1 -> ... -> t(n-1)`` on one resource."""
    if length < 1:
        raise ReproError(f"length must be >= 1, got {length}")
    graph = ConstraintGraph(f"chain-{length}")
    prev = None
    for i in range(length):
        name = f"t{i}"
        graph.new_task(name, duration=duration, power=power,
                       resource="R0")
        if prev is not None:
            graph.add_precedence(prev, name)
        prev = name
    return SchedulingProblem(graph, p_max=p_max, p_min=p_min)


def independent(count: int, duration: int = 5, power: float = 4.0,
                p_max: float = 10.0, p_min: float = 0.0) \
        -> SchedulingProblem:
    """``count`` unconstrained tasks, each on its own resource.

    With ``p_max`` the only coupling, the optimal schedule packs
    ``floor((p_max - baseline) / power)`` tasks per time slot — an
    analytically checkable case for the max-power scheduler.
    """
    if count < 1:
        raise ReproError(f"count must be >= 1, got {count}")
    graph = ConstraintGraph(f"independent-{count}")
    for i in range(count):
        graph.new_task(f"t{i}", duration=duration, power=power,
                       resource=f"R{i}")
    return SchedulingProblem(graph, p_max=p_max, p_min=p_min)


def fork_join(width: int, duration: int = 5, power: float = 3.0,
              p_max: float = 12.0, p_min: float = 0.0) \
        -> SchedulingProblem:
    """``source -> width parallel workers -> sink``."""
    if width < 1:
        raise ReproError(f"width must be >= 1, got {width}")
    graph = ConstraintGraph(f"fork-join-{width}")
    graph.new_task("source", duration=duration, power=power,
                   resource="ctrl")
    graph.new_task("sink", duration=duration, power=power,
                   resource="ctrl")
    for i in range(width):
        name = f"w{i}"
        graph.new_task(name, duration=duration, power=power,
                       resource=f"R{i}")
        graph.add_precedence("source", name)
        graph.add_precedence(name, "sink")
    return SchedulingProblem(graph, p_max=p_max, p_min=p_min)


def pipeline(stages: int, width: int, duration: int = 5,
             power: float = 3.0, p_max: float = 12.0,
             p_min: float = 0.0) -> SchedulingProblem:
    """A ``stages x width`` precedence grid.

    Column ``j`` of stage ``s`` precedes column ``j`` of stage
    ``s + 1``; all tasks of a stage share one resource, so stages
    serialize internally but successive stages can overlap across
    columns — the shape that exercises slack analysis hardest.
    """
    if stages < 1 or width < 1:
        raise ReproError(
            f"stages and width must be >= 1, got {stages}x{width}")
    graph = ConstraintGraph(f"pipeline-{stages}x{width}")
    for s in range(stages):
        for j in range(width):
            name = f"s{s}_c{j}"
            graph.new_task(name, duration=duration, power=power,
                           resource=f"stage{s}")
            if s > 0:
                graph.add_precedence(f"s{s - 1}_c{j}", name)
    return SchedulingProblem(graph, p_max=p_max, p_min=p_min)
