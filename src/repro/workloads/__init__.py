"""Synthetic workload generators for tests and benchmarks.

Random layered-DAG instances (reproducible by seed) and parametric
named topologies (chain, independent, fork-join, pipeline).
"""

from .patterns import chain, fork_join, independent, pipeline
from .random_graphs import (RandomWorkloadConfig, random_problem,
                            random_problems)
from .series_parallel import (SeriesParallelConfig,
                              series_parallel_problem)

__all__ = [
    "RandomWorkloadConfig",
    "SeriesParallelConfig",
    "chain",
    "fork_join",
    "independent",
    "pipeline",
    "random_problem",
    "random_problems",
    "series_parallel_problem",
]
