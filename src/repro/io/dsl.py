"""A tiny line-oriented DSL for writing scheduling problems by hand.

The IMPACCT framework's designers "input a system-level behavioral
specification ... and constraints on processes and the system"; this
module provides the textual front door.  Example — the rover's step
chain in four lines per concept::

    problem rover-step pmax 19 pmin 9 baseline 3.7

    resource hazard kind digital
    task detect  hazard 10 7.3
    task steer   steering 5 8.1
    task drive   driving 10 13.8

    # Table-1 style constraints
    min detect steer 10        # steering >= 10 s after detection starts
    window heat steer 5 50     # heating 5..50 s before steering
    precedence steer drive     # drive after steering completes
    release detect 0
    deadline steer 60          # start deadline

Lines are ``#``-commented, blank lines ignored.  Durations and times
are integers; powers are floats.  Statements:

==========  =======================================  =================
statement   arguments                                meaning
==========  =======================================  =================
problem     name pmax <w> [pmin <w>] [baseline <w>]  header (required)
resource    name [idle <w>] [kind <k>]               declare resource
task        name resource duration power             add a task
min         src dst sep                              min separation
max         src dst sep                              max separation
window      src dst min max                          both bounds
precedence  src dst [gap]                            end-to-start
release     task time                                earliest start
deadline    task time                                latest start
==========  =======================================  =================
"""

from __future__ import annotations

from ..core.graph import ConstraintGraph
from ..core.problem import SchedulingProblem
from ..core.resource import Resource
from ..errors import SerializationError

__all__ = ["parse_problem", "load_problem_dsl"]


def parse_problem(text: str) -> SchedulingProblem:
    """Parse DSL text into a scheduling problem."""
    graph: "ConstraintGraph | None" = None
    header: "dict[str, float]" = {}
    name = "problem"

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        keyword = tokens[0].lower()
        try:
            if keyword == "problem":
                name, header = _parse_header(tokens)
                graph = ConstraintGraph(name)
            elif graph is None:
                raise SerializationError(
                    "the first statement must be 'problem'")
            elif keyword == "resource":
                _parse_resource(graph, tokens)
            elif keyword == "task":
                graph.new_task(tokens[1], resource=tokens[2],
                               duration=int(tokens[3]),
                               power=float(tokens[4]))
            elif keyword == "min":
                graph.add_min_separation(tokens[1], tokens[2],
                                         int(tokens[3]))
            elif keyword == "max":
                graph.add_max_separation(tokens[1], tokens[2],
                                         int(tokens[3]))
            elif keyword == "window":
                graph.add_separation_window(tokens[1], tokens[2],
                                            int(tokens[3]),
                                            int(tokens[4]))
            elif keyword == "precedence":
                gap = int(tokens[3]) if len(tokens) > 3 else 0
                graph.add_precedence(tokens[1], tokens[2], gap=gap)
            elif keyword == "release":
                graph.add_release(tokens[1], int(tokens[2]))
            elif keyword == "deadline":
                graph.add_start_deadline(tokens[1], int(tokens[2]))
            else:
                raise SerializationError(
                    f"unknown statement {keyword!r}")
        except (IndexError, ValueError) as exc:
            raise SerializationError(
                f"line {lineno}: malformed {keyword!r} statement "
                f"({raw.strip()!r}): {exc}") from exc
        except SerializationError as exc:
            raise SerializationError(f"line {lineno}: {exc}") from None

    if graph is None:
        raise SerializationError("empty problem text (no 'problem' line)")
    if "pmax" not in header:
        raise SerializationError("problem header must specify pmax")
    return SchedulingProblem(
        graph=graph,
        p_max=header["pmax"],
        p_min=header.get("pmin", 0.0),
        baseline=header.get("baseline", 0.0),
        name=name)


def load_problem_dsl(path: str) -> SchedulingProblem:
    """Parse a DSL file into a scheduling problem."""
    with open(path, encoding="utf-8") as handle:
        return parse_problem(handle.read())


def _parse_header(tokens: "list[str]") -> "tuple[str, dict[str, float]]":
    if len(tokens) < 2:
        raise SerializationError("problem statement needs a name")
    name = tokens[1]
    header: "dict[str, float]" = {}
    rest = tokens[2:]
    if len(rest) % 2 != 0:
        raise SerializationError(
            "problem header options must be key/value pairs")
    for key, value in zip(rest[::2], rest[1::2]):
        key = key.lower()
        if key not in ("pmax", "pmin", "baseline"):
            raise SerializationError(f"unknown header option {key!r}")
        header[key] = float(value)
    return name, header


def _parse_resource(graph: ConstraintGraph, tokens: "list[str]") -> None:
    name = tokens[1]
    idle = 0.0
    kind = "generic"
    rest = tokens[2:]
    if len(rest) % 2 != 0:
        raise SerializationError(
            "resource options must be key/value pairs")
    for key, value in zip(rest[::2], rest[1::2]):
        key = key.lower()
        if key == "idle":
            idle = float(value)
        elif key == "kind":
            kind = value
        else:
            raise SerializationError(f"unknown resource option {key!r}")
    graph.declare_resource(Resource(name=name, idle_power=idle,
                                    kind=kind))
