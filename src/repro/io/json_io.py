"""JSON serialization for problems, schedules, and results.

The on-disk format is a stable, versioned, human-inspectable document:

.. code-block:: json

    {
      "format": "repro-problem",
      "version": 1,
      "name": "demo",
      "p_max": 16.0, "p_min": 14.0, "baseline": 0.0,
      "resources": [{"name": "A", "idle_power": 0.0, "kind": "generic"}],
      "tasks": [{"name": "a", "duration": 5, "power": 7.0,
                 "resource": "A"}],
      "edges": [{"src": "a", "dst": "d", "weight": 5, "tag": "user"}]
    }

Only *user* edges are serialized from problems (scheduler decorations
are derived state); schedule documents carry plain start-time maps.
"""

from __future__ import annotations

import json
from typing import Any

from ..core.graph import ConstraintGraph
from ..core.problem import SchedulingProblem
from ..core.resource import Resource
from ..core.schedule import Schedule
from ..core.task import ANCHOR_NAME, OperatingPoint
from ..errors import SerializationError

__all__ = ["problem_to_dict", "problem_from_dict", "save_problem",
           "load_problem", "schedule_to_dict", "schedule_from_dict",
           "save_schedule", "load_schedule", "save_store",
           "load_store"]

_PROBLEM_FORMAT = "repro-problem"
_SCHEDULE_FORMAT = "repro-schedule"
# Problem documents negotiate their version per feature: a document is
# stamped with the *lowest* version that can express it, so every
# ladder-free problem keeps writing byte-identical v1 documents that
# old readers accept, while DVFS operating-point ladders (new in v2)
# bump only the documents that actually use them — and v1-only readers
# reject those cleanly instead of silently dropping the ladder.
_PROBLEM_VERSION = 2
_SCHEDULE_VERSION = 1
_VERSION = 1  # legacy alias (pre-v2 readers imported this)


def problem_to_dict(problem: SchedulingProblem,
                    include_derived_edges: bool = False) \
        -> "dict[str, Any]":
    """Serialize a problem to a plain dict.

    Ladder-free problems serialize as v1 documents, bit-identical to
    what previous releases wrote; a task with DVFS operating points
    gains an ``"operating_points"`` list and bumps the document to v2
    (see the version-negotiation note on ``_PROBLEM_VERSION``).
    """
    graph = problem.graph
    edges = []
    for edge in graph.edges():
        if not include_derived_edges and edge.tag != "user":
            continue
        edges.append({"src": edge.src, "dst": edge.dst,
                      "weight": edge.weight, "tag": edge.tag})
    tasks = []
    has_ladder = False
    for task in graph.tasks():
        doc = {"name": task.name, "duration": task.duration,
               "power": task.power, "resource": task.resource,
               "meta": dict(task.meta)}
        if task.operating_points:
            has_ladder = True
            doc["operating_points"] = [
                {"freq": point.freq, "cores": point.cores}
                for point in task.operating_points]
        tasks.append(doc)
    return {
        "format": _PROBLEM_FORMAT,
        "version": _PROBLEM_VERSION if has_ladder else 1,
        "name": problem.name,
        "p_max": problem.p_max,
        "p_min": problem.p_min,
        "baseline": problem.baseline,
        "meta": dict(problem.meta),
        "resources": [
            {"name": res.name, "idle_power": res.idle_power,
             "kind": res.kind}
            for res in graph.resources],
        "tasks": tasks,
        "edges": edges,
    }


def problem_from_dict(data: "dict[str, Any]") -> SchedulingProblem:
    """Rebuild a problem from its dict form."""
    _expect_format(data, _PROBLEM_FORMAT)
    graph = ConstraintGraph(data.get("name", "problem"))
    try:
        for res in data.get("resources", []):
            graph.declare_resource(Resource(
                name=res["name"],
                idle_power=res.get("idle_power", 0.0),
                kind=res.get("kind", "generic")))
        for task in data["tasks"]:
            points = tuple(
                OperatingPoint(freq=point["freq"],
                               cores=point.get("cores", 1))
                for point in task.get("operating_points") or ())
            graph.new_task(task["name"], duration=task["duration"],
                           power=task.get("power", 0.0),
                           resource=task.get("resource"),
                           meta=task.get("meta") or {},
                           operating_points=points)
        for edge in data.get("edges", []):
            src = edge.get("src", ANCHOR_NAME)
            dst = edge["dst"]
            graph.add_edge(src, dst, edge["weight"],
                           tag=edge.get("tag", "user"))
        return SchedulingProblem(
            graph=graph,
            p_max=data["p_max"],
            p_min=data.get("p_min", 0.0),
            baseline=data.get("baseline", 0.0),
            name=data.get("name", graph.name),
            meta=data.get("meta") or {})
    except KeyError as exc:
        raise SerializationError(
            f"problem document is missing field {exc}") from exc


def schedule_to_dict(schedule: Schedule,
                     problem_name: str = "") -> "dict[str, Any]":
    """Serialize a schedule (start times only)."""
    return {
        "format": _SCHEDULE_FORMAT,
        "version": _SCHEDULE_VERSION,
        "problem": problem_name or schedule.graph.name,
        "makespan": schedule.makespan,
        "starts": schedule.as_dict(),
    }


def schedule_from_dict(data: "dict[str, Any]",
                       graph: ConstraintGraph) -> Schedule:
    """Rebuild a schedule against a compatible graph."""
    _expect_format(data, _SCHEDULE_FORMAT)
    try:
        return Schedule(graph, data["starts"])
    except KeyError as exc:
        raise SerializationError(
            f"schedule document is missing field {exc}") from exc


def save_problem(problem: SchedulingProblem, path: str) -> str:
    """Write a problem JSON file; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(problem_to_dict(problem), handle, indent=2,
                  sort_keys=True)
    return path


def load_problem(path: str) -> SchedulingProblem:
    """Read a problem JSON file."""
    with open(path, encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise SerializationError(
                f"{path} is not valid JSON: {exc}") from exc
    return problem_from_dict(data)


def save_schedule(schedule: Schedule, path: str,
                  problem_name: str = "") -> str:
    """Write a schedule JSON file; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(schedule_to_dict(schedule, problem_name), handle,
                  indent=2, sort_keys=True)
    return path


def load_schedule(path: str, graph: ConstraintGraph) -> Schedule:
    """Read a schedule JSON file against a compatible graph."""
    with open(path, encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise SerializationError(
                f"{path} is not valid JSON: {exc}") from exc
    return schedule_from_dict(data, graph)


def _expect_format(data: "dict[str, Any]", expected: str) -> None:
    found = data.get("format")
    if found != expected:
        raise SerializationError(
            f"expected a {expected!r} document, found {found!r}")
    supported = _PROBLEM_VERSION if expected == _PROBLEM_FORMAT \
        else _SCHEDULE_VERSION
    version = data.get("version", 0)
    if version > supported:
        raise SerializationError(
            f"document version {version} is newer than supported "
            f"({supported})")


def save_store(store, path: str) -> str:
    """Write a schedule store (``repro-schedule-store`` v1 JSON).

    Thin persistence front-end over
    :meth:`repro.engine.schedule_store.ScheduleStore.write`, here so
    the :mod:`repro.io` package is the one place that knows every
    on-disk document the tool reads and writes.
    """
    return store.write(path)


def load_store(path: str, policy: "str | None" = None):
    """Read a schedule store JSON file.

    ``policy`` optionally overrides the document's recorded reuse
    policy; see
    :meth:`repro.engine.schedule_store.ScheduleStore.from_dict`.
    """
    from ..engine.schedule_store import ScheduleStore
    return ScheduleStore.read(path, policy=policy)
