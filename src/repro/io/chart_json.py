"""Chart-model JSON export for external front ends.

The power-aware Gantt chart is the paper's designer-facing surface; a
real deployment would render it in a GUI rather than a terminal.  This
module serializes the full dual-view model — rows of bins with slack,
the power-profile segments, the constraint levels, spikes and gaps —
as one self-contained document any front end can draw (and drag, using
the per-bin ``slack`` to bound the handles).

.. code-block:: json

    {
      "format": "repro-chart",
      "version": 1,
      "title": "fig1-example [min_power]",
      "p_max": 16.0, "p_min": 14.0, "baseline": 0.0,
      "horizon": 20,
      "rows": [{"resource": "A",
                "bins": [{"task": "a", "start": 0, "duration": 5,
                          "power": 7.0, "slack": 0}]}],
      "profile": [[0, 20, 14.0]],
      "spikes": [], "gaps": []
    }
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import SerializationError
from ..gantt.model import GanttChart

__all__ = ["chart_to_dict", "save_chart"]

_FORMAT = "repro-chart"
_VERSION = 1


def chart_to_dict(chart: GanttChart) -> "dict[str, Any]":
    """Serialize a chart to a plain dict."""
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "title": chart.title,
        "p_max": chart.p_max,
        "p_min": chart.p_min,
        "baseline": chart.baseline,
        "horizon": chart.horizon,
        "rows": [
            {"resource": resource,
             "bins": [{"task": item.task, "start": item.start,
                       "duration": item.duration, "power": item.power,
                       "slack": item.slack}
                      for item in bins]}
            for resource, bins in chart.rows.items()],
        "profile": [[t0, t1, power]
                    for t0, t1, power in chart.profile.segments],
        "spikes": [[s.start, s.end, s.extremum]
                   for s in chart.spikes()],
        "gaps": [[g.start, g.end, g.extremum] for g in chart.gaps()],
    }


def save_chart(chart: GanttChart, path: str) -> str:
    """Write the chart document; returns the path."""
    try:
        document = chart_to_dict(chart)
    except Exception as exc:  # pragma: no cover - defensive
        raise SerializationError(
            f"could not serialize chart: {exc}") from exc
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
    return path
