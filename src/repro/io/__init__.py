"""Problem/schedule persistence: JSON documents and a text DSL."""

from .chart_json import chart_to_dict, save_chart
from .dsl import load_problem_dsl, parse_problem
from .json_io import (load_problem, load_schedule, load_store,
                      problem_from_dict, problem_to_dict, save_problem,
                      save_schedule, save_store, schedule_from_dict,
                      schedule_to_dict)

__all__ = [
    "chart_to_dict",
    "save_chart",
    "load_problem",
    "load_problem_dsl",
    "load_schedule",
    "load_store",
    "parse_problem",
    "problem_from_dict",
    "problem_to_dict",
    "save_problem",
    "save_schedule",
    "save_store",
    "schedule_from_dict",
    "schedule_to_dict",
]
