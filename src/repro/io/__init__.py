"""Problem/schedule persistence (JSON + DSL) and wire schemas."""

from .chart_json import chart_to_dict, save_chart
from .dsl import load_problem_dsl, parse_problem
from .json_io import (load_problem, load_schedule, load_store,
                      problem_from_dict, problem_to_dict, save_problem,
                      save_schedule, save_store, schedule_from_dict,
                      schedule_to_dict)
from .requests import (ERROR_CODES, RequestError, SolvedPoint,
                       SolveRequest, error_envelope, response_envelope,
                       solve_request_from_dict, solve_request_to_dict)

__all__ = [
    "ERROR_CODES",
    "RequestError",
    "SolveRequest",
    "SolvedPoint",
    "chart_to_dict",
    "error_envelope",
    "load_problem",
    "load_problem_dsl",
    "load_schedule",
    "load_store",
    "parse_problem",
    "problem_from_dict",
    "problem_to_dict",
    "response_envelope",
    "save_chart",
    "save_problem",
    "save_schedule",
    "save_store",
    "schedule_from_dict",
    "schedule_to_dict",
    "solve_request_from_dict",
    "solve_request_to_dict",
]
