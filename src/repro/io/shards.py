"""Shard manifests and shard artifacts: the sharded-sweep wire formats.

Two documents connect the engine's plan → execute → merge layers across
process (and machine) boundaries:

``repro-shard-manifest`` v1 — *what one shard should run*::

    {
      "format": "repro-shard-manifest", "version": 1,
      "sweep": {"name": "fig1-grid", "strategy": "tile", "shards": 4},
      "shard": {"index": 1, "of": 4},
      "kind": "sweep_point",
      "options": {... SchedulerOptions fields ...} | null,
      "runner": {"retries": 1, "reuse_schedules": true,
                 "reuse_policy": "identical", "instrument": false,
                 "lp_log_factor": null, "core_kernel": "auto",
                 "warm_start": true,
                 "trace": {"trace_id": "...", "parent_span_id": "..."}},
      "problems": [{... repro-problem doc, p_max/p_min removed ...}],
      "jobs": [{"position": 7, "problem": 0,
                "p_max": 20.0, "p_min": 14.0},
               {"position": 9, "problem": 0, "p_max": 20.0,
                "p_min": 10.0, "options": {...}}, ...],
      "store": {... repro-schedule-store doc ...} | null
    }

  Each distinct workload is stored once in ``problems`` (its document
  *minus* the power constraints); a job is that workload index plus its
  own ``(p_max, p_min)`` — small manifests even for large grids.
  ``jobs[i].position`` is the job's index in the *full* planned sweep,
  so merged shard results restore submission order.  A per-job
  ``options`` object overrides the manifest default (reseeded Monte
  Carlo batches); ``store`` ships the parent's already-primed schedule
  store so shards never repeat priming work it already did.
  ``runner.trace`` (optional) is the orchestrating run's trace
  identity — workers adopt it so shard artifacts stitch back under
  the parent trace on merge (see docs/observability.md).

``repro-shard-artifact`` v1 — *what one shard produced*::

    {
      "format": "repro-shard-artifact", "version": 1,
      "shard": {"index": 1, "of": 4},
      "results": [{"position": 7, "key": "ab12...", "ok": true,
                   "error": null, "attempts": 1, "elapsed_s": 0.11,
                   "cached": false,
                   "value": {"__type__": "sweep_point", "p_max": 20.0,
                             ...},
                   "stats": {...}}, ...],
      "trace": {... repro-trace v2 doc of the shard's own run ...},
      "store_delta": [{"base_key": "...", "name": "...",
                       "entry": {...}}, ...],
      "cache": {"stats": {"hits": 0, "misses": 5, ...},
                "entries": [{"key": "...", "value": {...}}, ...]},
      "metrics": {... MetricsRegistry snapshot ...}
    }

  Self-contained: results (payloads re-hydrated to
  :class:`~repro.analysis.sweep.SweepPoint` on load), the shard's own
  trace-v2 document, the schedule-store journal delta, the shard
  cache's contents, and the metric snapshot — everything
  :func:`repro.engine.merge.merge_artifacts` needs, with no side
  channels.  ``stats`` rides along verbatim (it is already plain JSON:
  scheduler counters, reuse markers with ``new_entries``, shipped obs
  spans), which is what lets a sharded run feed the ordinary
  :class:`~repro.engine.runner.BatchRunner` settlement and trace
  assembly unchanged.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import SerializationError
from ..scheduling.base import SchedulerOptions
from .json_io import problem_from_dict, problem_to_dict

__all__ = ["MANIFEST_FORMAT", "MANIFEST_VERSION", "ARTIFACT_FORMAT",
           "ARTIFACT_VERSION", "ShardArtifact", "options_to_dict",
           "options_from_dict", "manifest_to_dict",
           "manifest_from_dict", "save_manifest", "load_manifest",
           "artifact_to_dict", "artifact_from_dict", "save_artifact",
           "load_artifact"]

MANIFEST_FORMAT = "repro-shard-manifest"
MANIFEST_VERSION = 1
ARTIFACT_FORMAT = "repro-shard-artifact"
ARTIFACT_VERSION = 1

_SWEEP_POINT_FIELDS = ("p_max", "p_min", "feasible", "finish_time",
                       "energy_cost", "utilization", "peak_power")


# ----------------------------------------------------------------------
# options round trip
# ----------------------------------------------------------------------

def options_to_dict(options: "SchedulerOptions | None") \
        -> "dict[str, Any] | None":
    """Serialize options (``None`` stays ``None`` — solver defaults)."""
    if options is None:
        return None
    return dataclasses.asdict(options)


def options_from_dict(doc: "Mapping[str, Any] | None") \
        -> "SchedulerOptions | None":
    """Rebuild options; tuple-typed fields are restored from lists."""
    if doc is None:
        return None
    data = dict(doc)
    try:
        for name in ("scan_orders", "slot_heuristics"):
            if name in data:
                data[name] = tuple(data[name])
        return SchedulerOptions(**data)
    except (TypeError, ValueError) as exc:
        raise SerializationError(
            f"malformed scheduler options: {exc}") from exc


# ----------------------------------------------------------------------
# manifest round trip
# ----------------------------------------------------------------------

def manifest_to_dict(manifest) -> "dict[str, Any]":
    """Serialize a :class:`~repro.engine.planner.ShardManifest`."""
    default_options = manifest.jobs[0][1].options if manifest.jobs \
        else None
    default_doc = options_to_dict(default_options)
    base_docs: "list[dict[str, Any]]" = []
    base_index: "dict[str, int]" = {}
    jobs_doc = []
    kind = manifest.jobs[0][1].kind if manifest.jobs else "sweep_point"
    for position, job in manifest.jobs:
        if job.kind != kind:
            raise SerializationError(
                "shard manifests carry a single job kind; found both "
                f"{kind!r} and {job.kind!r}")
        doc = problem_to_dict(job.problem)
        p_max = doc.pop("p_max")
        p_min = doc.pop("p_min")
        dedupe_key = json.dumps(doc, sort_keys=True, default=repr)
        index = base_index.get(dedupe_key)
        if index is None:
            index = base_index[dedupe_key] = len(base_docs)
            base_docs.append(doc)
        job_doc: "dict[str, Any]" = {"position": position,
                                     "problem": index,
                                     "p_max": p_max, "p_min": p_min}
        opts_doc = options_to_dict(job.options)
        if opts_doc != default_doc:
            job_doc["options"] = opts_doc
        jobs_doc.append(job_doc)
    return {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "sweep": {"name": manifest.sweep,
                  "strategy": manifest.strategy,
                  "shards": manifest.of},
        "shard": {"index": manifest.index, "of": manifest.of},
        "kind": kind,
        "options": default_doc,
        "runner": dict(manifest.runner),
        "problems": base_docs,
        "jobs": jobs_doc,
        "store": manifest.store,
    }


def manifest_from_dict(doc: "Mapping[str, Any]"):
    """Rebuild a :class:`~repro.engine.planner.ShardManifest`.

    Each workload's problem is rebuilt once and every job shares its
    graph through
    :meth:`~repro.core.problem.SchedulingProblem.with_power_constraints`
    — the same structure the planner produced.
    """
    from ..engine.jobs import SolveJob
    from ..engine.planner import ShardManifest

    _expect(doc, MANIFEST_FORMAT, MANIFEST_VERSION)
    kind = doc.get("kind", "sweep_point")
    default_options = options_from_dict(doc.get("options"))
    jobs_doc = doc.get("jobs", [])
    base_problems: "list[Any]" = []
    try:
        for index, base_doc in enumerate(doc.get("problems", [])):
            first = next(job for job in jobs_doc
                         if job["problem"] == index)
            base_problems.append(problem_from_dict(
                {**base_doc, "p_max": first["p_max"],
                 "p_min": first["p_min"]}))
        jobs: "list[tuple[int, SolveJob]]" = []
        for job_doc in jobs_doc:
            base = base_problems[job_doc["problem"]]
            problem = base.with_power_constraints(job_doc["p_max"],
                                                  job_doc["p_min"])
            options = options_from_dict(job_doc["options"]) \
                if "options" in job_doc else default_options
            jobs.append((int(job_doc["position"]),
                         SolveJob(problem=problem, kind=kind,
                                  options=options)))
    except (KeyError, IndexError, StopIteration, TypeError) as exc:
        raise SerializationError(
            f"malformed shard manifest jobs: {exc!r}") from exc
    shard = doc.get("shard", {})
    sweep = doc.get("sweep", {})
    return ShardManifest(
        index=int(shard.get("index", 0)),
        of=int(shard.get("of", 1)),
        strategy=sweep.get("strategy", "tile"),
        jobs=jobs,
        sweep=sweep.get("name", "sweep"),
        runner=dict(doc.get("runner", {})),
        store=doc.get("store"))


def save_manifest(manifest, path: str) -> str:
    """Write a shard manifest JSON file; returns the path."""
    return _write_json(manifest_to_dict(manifest), path)


def load_manifest(path: str):
    """Read a shard manifest JSON file."""
    return manifest_from_dict(_read_json(path, MANIFEST_FORMAT))


# ----------------------------------------------------------------------
# artifact round trip
# ----------------------------------------------------------------------

@dataclass
class ShardArtifact:
    """Everything one shard run produced, ready to merge.

    ``results`` carry *global* positions; ``trace`` is the shard's own
    ``repro-trace`` v2 run trace; ``store_delta`` the schedule-store
    journal entries the shard inserted; ``cache_stats`` /
    ``cache_entries`` the shard's exact-key result cache;
    ``metrics`` the shard trace's metric snapshot.
    """

    index: int
    of: int
    results: "list[Any]" = field(default_factory=list)
    trace: "Any | None" = None
    store_delta: "list[dict[str, Any]]" = field(default_factory=list)
    cache_stats: "dict[str, int]" = field(default_factory=dict)
    cache_entries: "list[tuple[str, Any]]" = field(default_factory=list)
    metrics: "dict[str, Any]" = field(default_factory=dict)


def _encode_value(value: Any) -> Any:
    from ..analysis.sweep import SweepPoint
    if isinstance(value, SweepPoint):
        doc = {"__type__": "sweep_point"}
        doc.update({name: getattr(value, name)
                    for name in _SWEEP_POINT_FIELDS})
        return doc
    if value is None or isinstance(value, (bool, int, float, str,
                                           list, dict)):
        return value
    raise SerializationError(
        f"shard artifacts cannot carry a {type(value).__name__} "
        "payload; supported: SweepPoint and plain JSON values")


def _decode_value(doc: Any) -> Any:
    if isinstance(doc, dict) and doc.get("__type__") == "sweep_point":
        from ..analysis.sweep import SweepPoint
        return SweepPoint(**{name: doc[name]
                             for name in _SWEEP_POINT_FIELDS})
    return doc


def artifact_to_dict(artifact: ShardArtifact) -> "dict[str, Any]":
    """Serialize a :class:`ShardArtifact`."""
    results_doc = []
    for result in artifact.results:
        results_doc.append({
            "position": result.position,
            "key": result.key,
            "ok": result.ok,
            "error": result.error,
            "attempts": result.attempts,
            "elapsed_s": round(result.elapsed_s, 6),
            "cached": result.cached,
            "value": _encode_value(result.value),
            "stats": result.stats or {},
        })
    return {
        "format": ARTIFACT_FORMAT,
        "version": ARTIFACT_VERSION,
        "shard": {"index": artifact.index, "of": artifact.of},
        "results": results_doc,
        "trace": artifact.trace.to_dict()
        if artifact.trace is not None else None,
        "store_delta": list(artifact.store_delta),
        "cache": {"stats": dict(artifact.cache_stats),
                  "entries": [{"key": key,
                               "value": _encode_value(value)}
                              for key, value in
                              artifact.cache_entries]},
        "metrics": dict(artifact.metrics),
    }


def artifact_from_dict(doc: "Mapping[str, Any]") -> ShardArtifact:
    """Rebuild a :class:`ShardArtifact` (payloads re-hydrated)."""
    from ..engine.jobs import JobResult
    from ..engine.trace import RunTrace

    _expect(doc, ARTIFACT_FORMAT, ARTIFACT_VERSION)
    shard = doc.get("shard", {})
    try:
        results = [JobResult(position=int(item["position"]),
                             key=item["key"],
                             value=_decode_value(item.get("value")),
                             ok=item.get("ok", True),
                             error=item.get("error"),
                             attempts=item.get("attempts", 0),
                             elapsed_s=item.get("elapsed_s", 0.0),
                             cached=item.get("cached", False),
                             stats=dict(item.get("stats") or {}))
                   for item in doc.get("results", [])]
    except (KeyError, TypeError) as exc:
        raise SerializationError(
            f"malformed shard artifact results: {exc!r}") from exc
    trace_doc = doc.get("trace")
    cache_doc = doc.get("cache", {})
    return ShardArtifact(
        index=int(shard.get("index", 0)),
        of=int(shard.get("of", 1)),
        results=results,
        trace=RunTrace.from_dict(trace_doc)
        if trace_doc is not None else None,
        store_delta=list(doc.get("store_delta", [])),
        cache_stats=dict(cache_doc.get("stats", {})),
        cache_entries=[(item["key"], _decode_value(item.get("value")))
                       for item in cache_doc.get("entries", [])],
        metrics=dict(doc.get("metrics", {})))


def save_artifact(artifact: ShardArtifact, path: str) -> str:
    """Write a shard artifact JSON file; returns the path."""
    return _write_json(artifact_to_dict(artifact), path)


def load_artifact(path: str) -> ShardArtifact:
    """Read a shard artifact JSON file."""
    return artifact_from_dict(_read_json(path, ARTIFACT_FORMAT))


# ----------------------------------------------------------------------
# shared plumbing
# ----------------------------------------------------------------------

def _expect(doc: "Mapping[str, Any]", fmt: str, version: int) -> None:
    if doc.get("format") != fmt:
        raise SerializationError(
            f"expected a {fmt!r} document, found {doc.get('format')!r}")
    found = doc.get("version", 0)
    if found > version:
        raise SerializationError(
            f"{fmt} version {found} is newer than supported "
            f"({version})")


def _write_json(doc: "dict[str, Any]", path: str) -> str:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def _read_json(path: str, fmt: str) -> "dict[str, Any]":
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except OSError as exc:
        raise SerializationError(
            f"cannot read {fmt} file {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SerializationError(
            f"{fmt} file {path!r} is not valid JSON: {exc}") from exc
