"""Wire schemas for the solve-serving front-end.

Two versioned JSON documents connect a client to a
:class:`repro.serving.server.SolveServer`:

* ``repro-solve-request`` (version 2) — one workload (an embedded
  ``repro-problem`` document) plus the power environment(s) to solve it
  under: either a single ``(p_max, p_min)`` pair (``POST /v1/solve``)
  or a ``budgets`` x ``levels`` grid / explicit ``points`` list
  (``POST /v1/sweep``).  Version 2 adds the DVFS axis: per-task
  ``operating_points`` inside the embedded problem (a v2
  ``repro-problem``) and/or a top-level ``freq_levels`` list that
  attaches a uniform frequency ladder server-side.  Clients that use
  neither keep sending version-1 documents bit-identical to before.
* ``repro-solve-response`` (version 1) — the envelope every endpoint
  answers with: a ``status`` (``done``/``queued``/``running``/
  ``cancelled``/``error``), the solved :class:`SolvedPoint` rows when
  the job finished, and a machine-readable :class:`RequestError`
  ``{code, message}`` object otherwise.

The online mission-session API (``POST /v1/sessions``) adds four more
documents under the same conventions: ``repro-session-request`` v1
(open a session), ``repro-session-commands`` v1 (a batch of arrival /
advance / fault / quiesce commands), ``repro-session-event`` v1 (the
NDJSON stream the server answers a command batch with), and
``repro-session-script`` v1 (a recorded session — config plus command
stream — replayed by the ``session`` CLI verb and the CI smoke probe).
``docs/online.md`` is their conformance-tested reference.

Version negotiation: a request's ``version`` must be ``<=`` the
server's :data:`REQUEST_VERSION`; newer documents are rejected with the
``unsupported_version`` error code (the server can always read older
minor shapes of version 1, because every field beyond ``format``,
``version`` and ``problem`` has a default).  Responses always carry the
server's own :data:`RESPONSE_VERSION`; clients apply the mirror-image
rule.  The full wire contract — endpoints, error codes, the NDJSON
event stream — is documented (and conformance-tested) in
``docs/serving.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..core.problem import SchedulingProblem
from ..errors import SerializationError
from .json_io import problem_from_dict, problem_to_dict

__all__ = ["SolveRequest", "SolvedPoint", "RequestError",
           "ERROR_CODES", "REQUEST_FORMAT", "REQUEST_VERSION",
           "RESPONSE_FORMAT", "RESPONSE_VERSION", "EVENTS_FORMAT",
           "EVENTS_VERSION", "DEBUG_REQUESTS_FORMAT",
           "DEBUG_REQUESTS_VERSION", "DEBUG_TRACE_FORMAT",
           "DEBUG_TRACE_VERSION", "solve_request_to_dict",
           "solve_request_from_dict", "response_envelope",
           "error_envelope", "SessionRequest",
           "SESSION_REQUEST_FORMAT", "SESSION_REQUEST_VERSION",
           "SESSION_COMMANDS_FORMAT", "SESSION_COMMANDS_VERSION",
           "SESSION_EVENT_FORMAT", "SESSION_EVENT_VERSION",
           "SESSION_SCRIPT_FORMAT", "SESSION_SCRIPT_VERSION",
           "session_request_to_dict", "session_request_from_dict",
           "session_command_from_dict", "session_commands_to_dict",
           "session_commands_from_dict", "session_script_from_dict",
           "StoreRequest", "STORE_REQUEST_FORMAT",
           "STORE_REQUEST_VERSION", "STORE_RESPONSE_FORMAT",
           "STORE_RESPONSE_VERSION", "STORE_OPS",
           "ROUTER_MEMBERS_FORMAT", "ROUTER_MEMBERS_VERSION",
           "store_request_to_dict", "store_request_from_dict",
           "store_response_envelope"]

#: ``format`` field of a solve request document.
REQUEST_FORMAT = "repro-solve-request"
#: Highest request schema version this library speaks.  Version 2
#: added DVFS operating points (embedded v2 problems, ``freq_levels``);
#: documents that use neither are still stamped (and accepted as)
#: version 1.
REQUEST_VERSION = 2
#: ``format`` field of a solve response document.
RESPONSE_FORMAT = "repro-solve-response"
#: Response schema version stamped on every server reply.
RESPONSE_VERSION = 1
#: ``format`` field of the NDJSON job event stream.
EVENTS_FORMAT = "repro-serve-events"
#: Event stream schema version.
EVENTS_VERSION = 1
#: ``format`` field of the flight-recorder listing
#: (``GET /v1/debug/requests``).
DEBUG_REQUESTS_FORMAT = "repro-debug-requests"
#: Flight-recorder listing schema version.
DEBUG_REQUESTS_VERSION = 1
#: ``format`` field of an assembled distributed trace
#: (``GET /v1/debug/trace/{trace_id}``).
DEBUG_TRACE_FORMAT = "repro-debug-trace"
#: Debug trace schema version.
DEBUG_TRACE_VERSION = 1
#: ``format`` field of a session-open document
#: (``POST /v1/sessions``).
SESSION_REQUEST_FORMAT = "repro-session-request"
#: Session request schema version.
SESSION_REQUEST_VERSION = 1
#: ``format`` field of a session command batch
#: (``POST /v1/sessions/{id}/events`` body).
SESSION_COMMANDS_FORMAT = "repro-session-commands"
#: Session command batch schema version.
SESSION_COMMANDS_VERSION = 1
#: ``format`` field of the session NDJSON event stream (the header
#: line of every ``POST /v1/sessions/{id}/events`` response).
SESSION_EVENT_FORMAT = "repro-session-event"
#: Session event stream schema version.
SESSION_EVENT_VERSION = 1
#: ``format`` field of a recorded arrival script
#: (``repro-schedule session``).
SESSION_SCRIPT_FORMAT = "repro-session-script"
#: Session script schema version.
SESSION_SCRIPT_VERSION = 1
#: ``format`` field of a schedule-store service request
#: (``POST /v1/store/get-range`` / ``POST /v1/store/put-delta``).
STORE_REQUEST_FORMAT = "repro-store-request"
#: Store request schema version.
STORE_REQUEST_VERSION = 1
#: ``format`` field of every schedule-store service reply.
STORE_RESPONSE_FORMAT = "repro-store-response"
#: Store response schema version.
STORE_RESPONSE_VERSION = 1
#: Operations a ``repro-store-request`` may name.
STORE_OPS = ("get-range", "put-delta")
#: ``format`` field of the router membership document
#: (``GET /v1/router/members``).
ROUTER_MEMBERS_FORMAT = "repro-router-members"
#: Router membership schema version.
ROUTER_MEMBERS_VERSION = 1

#: Machine-readable error codes, and the HTTP status each maps to.
#: ``docs/serving.md`` documents every row; the doc-conformance test
#: keeps the table and this mapping identical.
ERROR_CODES: "dict[str, int]" = {
    "bad_request": 400,
    "unsupported_version": 400,
    "not_found": 404,
    "method_not_allowed": 405,
    "payload_too_large": 413,
    "queue_full": 429,
    "internal": 500,
    "bad_gateway": 502,
    "shutting_down": 503,
    "deadline_exceeded": 504,
}


@dataclass(frozen=True)
class RequestError(Exception):
    """A rejected request: an :data:`ERROR_CODES` code + prose."""

    code: str
    message: str

    @property
    def http_status(self) -> int:
        return ERROR_CODES.get(self.code, 500)

    def to_dict(self) -> "dict[str, Any]":
        return {"code": self.code, "message": self.message}


@dataclass(frozen=True)
class SolvedPoint:
    """One solved ``(p_max, p_min)`` row of a response document.

    The numbers are exactly what a direct
    :meth:`~repro.scheduling.power_aware.PowerAwareScheduler.solve`
    of the same problem reports — serving adds transport, never
    arithmetic.
    """

    p_max: float
    p_min: float
    feasible: bool
    finish_time: "int | None" = None
    energy_cost: "float | None" = None
    utilization: "float | None" = None
    peak_power: "float | None" = None
    cached: bool = False
    reused: bool = False

    def to_dict(self) -> "dict[str, Any]":
        doc: "dict[str, Any]" = {
            "p_max": self.p_max, "p_min": self.p_min,
            "feasible": self.feasible,
        }
        if self.feasible:
            doc.update(finish_time=self.finish_time,
                       energy_cost=self.energy_cost,
                       utilization=self.utilization,
                       peak_power=self.peak_power)
        if self.cached:
            doc["cached"] = True
        if self.reused:
            doc["reused"] = True
        return doc

    @classmethod
    def from_sweep_point(cls, point, cached: bool = False,
                         reused: bool = False) -> "SolvedPoint":
        """Build from an :class:`~repro.analysis.sweep.SweepPoint`."""
        return cls(p_max=point.p_max, p_min=point.p_min,
                   feasible=point.feasible,
                   finish_time=point.finish_time,
                   energy_cost=point.energy_cost,
                   utilization=point.utilization,
                   peak_power=point.peak_power,
                   cached=cached, reused=reused)


@dataclass
class SolveRequest:
    """A parsed, validated solve request (one workload, >= 1 point)."""

    problem: SchedulingProblem
    points: "list[tuple[float, float]]"
    seed: "int | None" = None
    deadline_ms: "int | None" = None
    tags: "dict[str, Any]" = field(default_factory=dict)
    freq_levels: "tuple[float, ...]" = ()


def solve_request_to_dict(problem: SchedulingProblem,
                          p_max: "float | None" = None,
                          p_min: "float | None" = None,
                          budgets: "list[float] | None" = None,
                          levels: "list[float] | None" = None,
                          points: "list[tuple[float, float]] | None"
                          = None,
                          seed: "int | None" = None,
                          deadline_ms: "int | None" = None,
                          tags: "Mapping[str, Any] | None" = None,
                          freq_levels: "list[float] | None" = None) \
        -> "dict[str, Any]":
    """Assemble a ``repro-solve-request`` document (client side).

    Stamped with the lowest version that can express the request: 2
    only when it uses a DVFS feature (``freq_levels`` or an embedded
    problem whose tasks carry operating points), 1 otherwise — so
    pre-DVFS servers keep accepting every request that does not need
    the new axis.
    """
    problem_doc = problem_to_dict(problem)
    version = 2 if (freq_levels
                    or problem_doc.get("version", 1) >= 2) else 1
    doc: "dict[str, Any]" = {
        "format": REQUEST_FORMAT,
        "version": version,
        "problem": problem_doc,
    }
    if freq_levels:
        doc["freq_levels"] = [float(f) for f in freq_levels]
    if p_max is not None:
        doc["p_max"] = p_max
    if p_min is not None:
        doc["p_min"] = p_min
    if budgets is not None:
        doc["budgets"] = list(budgets)
    if levels is not None:
        doc["levels"] = list(levels)
    if points is not None:
        doc["points"] = [[pmax, pmin] for pmax, pmin in points]
    if seed is not None:
        doc["seed"] = seed
    if deadline_ms is not None:
        doc["deadline_ms"] = deadline_ms
    if tags:
        doc["tags"] = dict(tags)
    return doc


def _point_list(data: "Mapping[str, Any]",
                problem: SchedulingProblem) \
        -> "list[tuple[float, float]]":
    """The (p_max, p_min) pairs a request asks for.

    Priority: explicit ``points`` > ``budgets`` x ``levels`` grid >
    single ``p_max``/``p_min`` override > the problem's own pair.
    Levels are clamped to each budget so the constraint window never
    inverts (same rule as ``repro-schedule sweep``).
    """
    if "points" in data:
        pairs = []
        for row in data["points"]:
            if (not isinstance(row, (list, tuple)) or len(row) != 2
                    or not all(isinstance(v, (int, float))
                               and not isinstance(v, bool)
                               for v in row)):
                raise RequestError(
                    "bad_request",
                    "points must be [p_max, p_min] number pairs")
            pairs.append((float(row[0]), float(row[1])))
        if not pairs:
            raise RequestError("bad_request",
                               "points must not be empty")
        return pairs
    if "budgets" in data or "levels" in data:
        budgets = data.get("budgets") or [problem.p_max]
        levels = data.get("levels") or [problem.p_min]
        try:
            budgets = [float(b) for b in budgets]
            levels = [float(lv) for lv in levels]
        except (TypeError, ValueError) as exc:
            raise RequestError(
                "bad_request",
                f"budgets/levels must be numbers: {exc}") from exc
        if not budgets or not levels:
            raise RequestError("bad_request",
                               "budgets/levels must not be empty")
        return [(b, min(lv, b)) for b in budgets for lv in levels]
    p_max = data.get("p_max", problem.p_max)
    p_min = data.get("p_min", problem.p_min)
    if not all(isinstance(v, (int, float)) and not isinstance(v, bool)
               for v in (p_max, p_min)):
        raise RequestError("bad_request",
                           "p_max/p_min must be numbers")
    return [(float(p_max), min(float(p_min), float(p_max)))]


def solve_request_from_dict(data: Any) -> SolveRequest:
    """Validate and parse a request document (server side).

    Raises :class:`RequestError` — never a bare exception — so the
    server can map every rejection to its documented error code.
    """
    if not isinstance(data, Mapping):
        raise RequestError("bad_request",
                           "request body must be a JSON object")
    if data.get("format") != REQUEST_FORMAT:
        raise RequestError(
            "bad_request",
            f"format must be {REQUEST_FORMAT!r}, "
            f"got {data.get('format')!r}")
    version = data.get("version")
    if not isinstance(version, int) or version < 1:
        raise RequestError("bad_request",
                           f"version must be a positive integer, "
                           f"got {version!r}")
    if version > REQUEST_VERSION:
        raise RequestError(
            "unsupported_version",
            f"request version {version} is newer than this server's "
            f"{REQUEST_VERSION}; re-send as version "
            f"{REQUEST_VERSION}")
    if "problem" not in data:
        raise RequestError("bad_request",
                           "request is missing 'problem'")
    try:
        problem = problem_from_dict(data["problem"])
    except SerializationError as exc:
        raise RequestError("bad_request",
                           f"invalid problem document: {exc}") from exc
    except (TypeError, KeyError, AttributeError) as exc:
        raise RequestError(
            "bad_request",
            f"invalid problem document: {exc!r}") from exc
    freq_levels: "tuple[float, ...]" = ()
    if "freq_levels" in data and data["freq_levels"] is not None:
        raw = data["freq_levels"]
        if not isinstance(raw, (list, tuple)) or not raw or not all(
                isinstance(f, (int, float)) and not isinstance(f, bool)
                for f in raw):
            raise RequestError(
                "bad_request",
                "freq_levels must be a non-empty array of numbers")
        freq_levels = tuple(float(f) for f in raw)
        from ..core.dvfs import attach_ladder
        from ..errors import GraphError
        try:
            problem = attach_ladder(problem, freq_levels)
        except GraphError as exc:
            raise RequestError(
                "bad_request", f"invalid freq_levels: {exc}") from exc
    points = _point_list(data, problem)
    seed = data.get("seed")
    if seed is not None and (not isinstance(seed, int)
                             or isinstance(seed, bool)):
        raise RequestError("bad_request",
                           f"seed must be an integer, got {seed!r}")
    deadline_ms = data.get("deadline_ms")
    if deadline_ms is not None and (not isinstance(deadline_ms, int)
                                    or isinstance(deadline_ms, bool)
                                    or deadline_ms < 0):
        raise RequestError(
            "bad_request",
            f"deadline_ms must be a non-negative integer, "
            f"got {deadline_ms!r}")
    tags = data.get("tags") or {}
    if not isinstance(tags, Mapping):
        raise RequestError("bad_request", "tags must be an object")
    return SolveRequest(problem=problem, points=points, seed=seed,
                        deadline_ms=deadline_ms, tags=dict(tags),
                        freq_levels=freq_levels)


def response_envelope(status: str, **fields: Any) -> "dict[str, Any]":
    """A ``repro-solve-response`` document skeleton."""
    return {"format": RESPONSE_FORMAT, "version": RESPONSE_VERSION,
            "status": status, **fields}


def error_envelope(error: RequestError) -> "dict[str, Any]":
    """The error form of the response envelope."""
    return response_envelope("error", error=error.to_dict())


# ---------------------------------------------------------------------
# online mission sessions
# ---------------------------------------------------------------------

#: Scheduler names a session-open document may carry (mirrors
#: :data:`repro.online.session.SESSION_SCHEDULERS` without importing
#: the engine into the schema layer).
_SESSION_SCHEDULERS = ("min_power", "max_power")

#: Command kinds a ``repro-session-commands`` batch may contain.
SESSION_COMMAND_KINDS = ("arrival", "advance", "fault", "quiesce")

#: Constraint kinds an ``arrival`` command may carry.
SESSION_CONSTRAINT_KINDS = ("min", "max", "precedence", "release",
                            "deadline")


@dataclass
class SessionRequest:
    """A parsed, validated session-open document."""

    p_max: float
    p_min: float = 0.0
    baseline: float = 0.0
    scheduler: str = "min_power"
    seed: "int | None" = None
    name: str = "mission"
    tags: "dict[str, Any]" = field(default_factory=dict)


def _check_version(data: "Mapping[str, Any]", expected_format: str,
                   max_version: int) -> None:
    """Shared format/version gate for every session document."""
    if data.get("format") != expected_format:
        raise RequestError(
            "bad_request",
            f"format must be {expected_format!r}, "
            f"got {data.get('format')!r}")
    version = data.get("version")
    if not isinstance(version, int) or isinstance(version, bool) \
            or version < 1:
        raise RequestError(
            "bad_request",
            f"version must be a positive integer, got {version!r}")
    if version > max_version:
        raise RequestError(
            "unsupported_version",
            f"document version {version} is newer than this "
            f"server's {max_version}; re-send as version "
            f"{max_version}")


def _number(value: Any, name: str, default: "float | None" = None) \
        -> float:
    if value is None and default is not None:
        return default
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise RequestError("bad_request",
                           f"{name} must be a number, got {value!r}")
    return float(value)


def _nonneg_int(value: Any, name: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool) \
            or value < 0:
        raise RequestError(
            "bad_request",
            f"{name} must be a non-negative integer, got {value!r}")
    return value


def session_request_to_dict(p_max: float, p_min: float = 0.0,
                            baseline: float = 0.0,
                            scheduler: str = "min_power",
                            seed: "int | None" = None,
                            name: "str | None" = None,
                            tags: "Mapping[str, Any] | None" = None) \
        -> "dict[str, Any]":
    """Assemble a ``repro-session-request`` document (client side)."""
    doc: "dict[str, Any]" = {
        "format": SESSION_REQUEST_FORMAT,
        "version": SESSION_REQUEST_VERSION,
        "p_max": p_max,
    }
    if p_min:
        doc["p_min"] = p_min
    if baseline:
        doc["baseline"] = baseline
    if scheduler != "min_power":
        doc["scheduler"] = scheduler
    if seed is not None:
        doc["seed"] = seed
    if name is not None:
        doc["name"] = name
    if tags:
        doc["tags"] = dict(tags)
    return doc


def session_request_from_dict(data: Any) -> SessionRequest:
    """Validate and parse a session-open document (server side)."""
    if not isinstance(data, Mapping):
        raise RequestError("bad_request",
                           "request body must be a JSON object")
    _check_version(data, SESSION_REQUEST_FORMAT,
                   SESSION_REQUEST_VERSION)
    if "p_max" not in data:
        raise RequestError("bad_request",
                           "session request is missing 'p_max'")
    p_max = _number(data.get("p_max"), "p_max")
    p_min = _number(data.get("p_min"), "p_min", default=0.0)
    baseline = _number(data.get("baseline"), "baseline", default=0.0)
    scheduler = data.get("scheduler", "min_power")
    if scheduler not in _SESSION_SCHEDULERS:
        raise RequestError(
            "bad_request",
            f"scheduler must be one of {list(_SESSION_SCHEDULERS)}, "
            f"got {scheduler!r}")
    seed = data.get("seed")
    if seed is not None and (not isinstance(seed, int)
                             or isinstance(seed, bool)):
        raise RequestError("bad_request",
                           f"seed must be an integer, got {seed!r}")
    name = data.get("name", "mission")
    if not isinstance(name, str) or not name:
        raise RequestError("bad_request",
                           f"name must be a non-empty string, "
                           f"got {name!r}")
    tags = data.get("tags") or {}
    if not isinstance(tags, Mapping):
        raise RequestError("bad_request", "tags must be an object")
    return SessionRequest(p_max=p_max, p_min=p_min, baseline=baseline,
                          scheduler=scheduler, seed=seed, name=name,
                          tags=dict(tags))


def _session_constraint_from_dict(record: Any) -> "dict[str, Any]":
    """Validate one arrival constraint record (normalized copy)."""
    if not isinstance(record, Mapping):
        raise RequestError("bad_request",
                           "constraints must be objects")
    kind = record.get("kind")
    if kind not in SESSION_CONSTRAINT_KINDS:
        raise RequestError(
            "bad_request",
            f"constraint kind must be one of "
            f"{list(SESSION_CONSTRAINT_KINDS)}, got {kind!r}")
    out: "dict[str, Any]" = {"kind": kind}
    if kind in ("min", "max"):
        for endpoint in ("src", "dst"):
            value = record.get(endpoint)
            if not isinstance(value, str) or not value:
                raise RequestError(
                    "bad_request",
                    f"{kind} constraint needs string "
                    f"src/dst, got {endpoint}={value!r}")
            out[endpoint] = value
        sep = record.get("sep")
        if not isinstance(sep, int) or isinstance(sep, bool):
            raise RequestError(
                "bad_request",
                f"{kind} constraint sep must be an integer, "
                f"got {sep!r}")
        out["sep"] = sep
    elif kind == "precedence":
        src = record.get("src")
        if not isinstance(src, str) or not src:
            raise RequestError(
                "bad_request",
                f"precedence constraint needs a string src, "
                f"got {src!r}")
        out["src"] = src
        gap = record.get("gap", 0)
        if not isinstance(gap, int) or isinstance(gap, bool) \
                or gap < 0:
            raise RequestError(
                "bad_request",
                f"precedence gap must be a non-negative integer, "
                f"got {gap!r}")
        out["gap"] = gap
    else:  # release / deadline
        out["time"] = _nonneg_int(record.get("time"),
                                  f"{kind} constraint time")
    return out


def session_command_from_dict(data: Any) -> "dict[str, Any]":
    """Validate one session command; returns a normalized copy.

    Commands are the verbs of a mission session::

        {"event": "arrival", "task": {"name", "duration", "power"?,
         "resource"?}, "constraints"?: [...], "at"?: int}
        {"event": "advance", "to": int}
        {"event": "fault", "overruns": {task: extra_ticks},
         "at"?: int}
        {"event": "quiesce"}
    """
    if not isinstance(data, Mapping):
        raise RequestError("bad_request",
                           "each command must be a JSON object")
    kind = data.get("event")
    if kind not in SESSION_COMMAND_KINDS:
        raise RequestError(
            "bad_request",
            f"command event must be one of "
            f"{list(SESSION_COMMAND_KINDS)}, got {kind!r}")
    if kind == "quiesce":
        return {"event": "quiesce"}
    if kind == "advance":
        return {"event": "advance",
                "to": _nonneg_int(data.get("to"), "advance 'to'")}
    if kind == "fault":
        overruns = data.get("overruns")
        if not isinstance(overruns, Mapping) or not overruns:
            raise RequestError(
                "bad_request",
                "fault command needs a non-empty 'overruns' object")
        normalized: "dict[str, int]" = {}
        for task, extra in overruns.items():
            if not isinstance(task, str) or not task:
                raise RequestError(
                    "bad_request",
                    f"overrun keys must be task names, got {task!r}")
            normalized[task] = _nonneg_int(
                extra, f"overrun for {task!r}")
        out = {"event": "fault", "overruns": normalized}
        if "at" in data and data["at"] is not None:
            out["at"] = _nonneg_int(data["at"], "fault 'at'")
        return out
    # arrival
    task = data.get("task")
    if not isinstance(task, Mapping):
        raise RequestError("bad_request",
                           "arrival command needs a 'task' object")
    name = task.get("name")
    if not isinstance(name, str) or not name:
        raise RequestError(
            "bad_request",
            f"arrival task needs a non-empty string name, "
            f"got {name!r}")
    duration = task.get("duration")
    if not isinstance(duration, int) or isinstance(duration, bool) \
            or duration <= 0:
        raise RequestError(
            "bad_request",
            f"arrival task duration must be a positive integer, "
            f"got {duration!r}")
    normalized_task: "dict[str, Any]" = {"name": name,
                                         "duration": duration}
    power = task.get("power", 0.0)
    if not isinstance(power, (int, float)) or isinstance(power, bool) \
            or power < 0:
        raise RequestError(
            "bad_request",
            f"arrival task power must be a non-negative number, "
            f"got {power!r}")
    if power:
        normalized_task["power"] = float(power)
    resource = task.get("resource")
    if resource is not None:
        if not isinstance(resource, str) or not resource:
            raise RequestError(
                "bad_request",
                f"arrival task resource must be a string, "
                f"got {resource!r}")
        normalized_task["resource"] = resource
    out = {"event": "arrival", "task": normalized_task,
           "constraints": [_session_constraint_from_dict(record)
                           for record in data.get("constraints", [])]}
    if "at" in data and data["at"] is not None:
        out["at"] = _nonneg_int(data["at"], "arrival 'at'")
    return out


def session_commands_to_dict(commands: "list[Mapping[str, Any]]") \
        -> "dict[str, Any]":
    """Assemble a ``repro-session-commands`` batch (client side)."""
    return {"format": SESSION_COMMANDS_FORMAT,
            "version": SESSION_COMMANDS_VERSION,
            "commands": [dict(c) for c in commands]}


def session_commands_from_dict(data: Any) -> "list[dict[str, Any]]":
    """Validate a command batch (``POST /v1/sessions/{id}/events``)."""
    if not isinstance(data, Mapping):
        raise RequestError("bad_request",
                           "request body must be a JSON object")
    _check_version(data, SESSION_COMMANDS_FORMAT,
                   SESSION_COMMANDS_VERSION)
    commands = data.get("commands")
    if not isinstance(commands, (list, tuple)) or not commands:
        raise RequestError(
            "bad_request",
            "command batch needs a non-empty 'commands' array")
    return [session_command_from_dict(c) for c in commands]


def session_script_from_dict(data: Any):
    """Validate a ``repro-session-script`` document; returns a
    :class:`repro.online.script.SessionScript`."""
    from ..online.script import SessionScript
    if not isinstance(data, Mapping):
        raise RequestError("bad_request",
                           "script must be a JSON object")
    _check_version(data, SESSION_SCRIPT_FORMAT, SESSION_SCRIPT_VERSION)
    session = data.get("session")
    if not isinstance(session, Mapping):
        raise RequestError("bad_request",
                           "script needs a 'session' object")
    request = session_request_from_dict({
        "format": SESSION_REQUEST_FORMAT,
        "version": SESSION_REQUEST_VERSION,
        **session,
    })
    commands = data.get("commands")
    if not isinstance(commands, (list, tuple)):
        raise RequestError("bad_request",
                           "script needs a 'commands' array")
    parsed = [session_command_from_dict(c) for c in commands]
    seed = session.get("seed", 2001)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise RequestError("bad_request",
                           f"seed must be an integer, got {seed!r}")
    return SessionScript(p_max=request.p_max, p_min=request.p_min,
                         baseline=request.baseline,
                         scheduler=request.scheduler, seed=seed,
                         name=request.name, commands=parsed)


# ---------------------------------------------------------------------
# shared schedule-store service
# ---------------------------------------------------------------------


@dataclass
class StoreRequest:
    """A parsed, validated ``repro-store-request`` document.

    Two operations share the envelope:

    * ``get-range`` — probe the store for a schedule covering
      ``(p_max, p_min)`` under ``base_key``.  When both powers are
      omitted the request is a *prime probe*: "do you hold the
      certified timing-stage entry for this problem?", the question
      a :meth:`~repro.engine.schedule_store.ScheduleStore.ensure_primed`
      call asks before paying for a timing solve.
    * ``put-delta`` — merge a drained store journal (the
      ``{"base_key", "name", "entry"}`` records of
      :meth:`~repro.engine.schedule_store.ScheduleStore.drain_journal`)
      into the shared store.
    """

    op: str
    base_key: "str | None" = None
    p_max: "float | None" = None
    p_min: "float | None" = None
    delta: "list[dict[str, Any]]" = field(default_factory=list)


def store_request_to_dict(op: str,
                          base_key: "str | None" = None,
                          p_max: "float | None" = None,
                          p_min: "float | None" = None,
                          delta: "list[Mapping[str, Any]] | None"
                          = None) -> "dict[str, Any]":
    """Assemble a ``repro-store-request`` document (client side)."""
    doc: "dict[str, Any]" = {
        "format": STORE_REQUEST_FORMAT,
        "version": STORE_REQUEST_VERSION,
        "op": op,
    }
    if base_key is not None:
        doc["base_key"] = base_key
    if p_max is not None:
        doc["p_max"] = p_max
    if p_min is not None:
        doc["p_min"] = p_min
    if delta is not None:
        doc["delta"] = [dict(record) for record in delta]
    return doc


def store_request_from_dict(data: Any) -> StoreRequest:
    """Validate and parse a store request (service side)."""
    if not isinstance(data, Mapping):
        raise RequestError("bad_request",
                           "request body must be a JSON object")
    _check_version(data, STORE_REQUEST_FORMAT, STORE_REQUEST_VERSION)
    op = data.get("op")
    if op not in STORE_OPS:
        raise RequestError(
            "bad_request",
            f"op must be one of {list(STORE_OPS)}, got {op!r}")
    if op == "put-delta":
        delta = data.get("delta")
        if not isinstance(delta, (list, tuple)):
            raise RequestError(
                "bad_request",
                "put-delta needs a 'delta' array of journal records")
        for record in delta:
            if not isinstance(record, Mapping) \
                    or not isinstance(record.get("base_key"), str) \
                    or not isinstance(record.get("name"), str) \
                    or not isinstance(record.get("entry"), Mapping):
                raise RequestError(
                    "bad_request",
                    "each delta record needs string 'base_key' and "
                    "'name' plus an 'entry' object")
        return StoreRequest(op=op,
                            delta=[dict(record) for record in delta])
    base_key = data.get("base_key")
    if not isinstance(base_key, str) or not base_key:
        raise RequestError(
            "bad_request",
            f"get-range needs a non-empty string base_key, "
            f"got {base_key!r}")
    p_max = data.get("p_max")
    p_min = data.get("p_min")
    if (p_max is None) != (p_min is None):
        raise RequestError(
            "bad_request",
            "get-range needs both p_max and p_min, or neither "
            "(prime probe)")
    if p_max is not None:
        p_max = _number(p_max, "p_max")
        p_min = _number(p_min, "p_min")
    return StoreRequest(op=op, base_key=base_key,
                        p_max=p_max, p_min=p_min)


def store_response_envelope(op: str, **fields: Any) \
        -> "dict[str, Any]":
    """A ``repro-store-response`` document skeleton."""
    return {"format": STORE_RESPONSE_FORMAT,
            "version": STORE_RESPONSE_VERSION,
            "op": op, **fields}
