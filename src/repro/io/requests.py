"""Wire schemas for the solve-serving front-end.

Two versioned JSON documents connect a client to a
:class:`repro.serving.server.SolveServer`:

* ``repro-solve-request`` (version 1) — one workload (an embedded
  ``repro-problem`` document) plus the power environment(s) to solve it
  under: either a single ``(p_max, p_min)`` pair (``POST /v1/solve``)
  or a ``budgets`` x ``levels`` grid / explicit ``points`` list
  (``POST /v1/sweep``).
* ``repro-solve-response`` (version 1) — the envelope every endpoint
  answers with: a ``status`` (``done``/``queued``/``running``/
  ``cancelled``/``error``), the solved :class:`SolvedPoint` rows when
  the job finished, and a machine-readable :class:`RequestError`
  ``{code, message}`` object otherwise.

Version negotiation: a request's ``version`` must be ``<=`` the
server's :data:`REQUEST_VERSION`; newer documents are rejected with the
``unsupported_version`` error code (the server can always read older
minor shapes of version 1, because every field beyond ``format``,
``version`` and ``problem`` has a default).  Responses always carry the
server's own :data:`RESPONSE_VERSION`; clients apply the mirror-image
rule.  The full wire contract — endpoints, error codes, the NDJSON
event stream — is documented (and conformance-tested) in
``docs/serving.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..core.problem import SchedulingProblem
from ..errors import SerializationError
from .json_io import problem_from_dict, problem_to_dict

__all__ = ["SolveRequest", "SolvedPoint", "RequestError",
           "ERROR_CODES", "REQUEST_FORMAT", "REQUEST_VERSION",
           "RESPONSE_FORMAT", "RESPONSE_VERSION", "EVENTS_FORMAT",
           "EVENTS_VERSION", "DEBUG_REQUESTS_FORMAT",
           "DEBUG_REQUESTS_VERSION", "DEBUG_TRACE_FORMAT",
           "DEBUG_TRACE_VERSION", "solve_request_to_dict",
           "solve_request_from_dict", "response_envelope",
           "error_envelope"]

#: ``format`` field of a solve request document.
REQUEST_FORMAT = "repro-solve-request"
#: Highest request schema version this library speaks.
REQUEST_VERSION = 1
#: ``format`` field of a solve response document.
RESPONSE_FORMAT = "repro-solve-response"
#: Response schema version stamped on every server reply.
RESPONSE_VERSION = 1
#: ``format`` field of the NDJSON job event stream.
EVENTS_FORMAT = "repro-serve-events"
#: Event stream schema version.
EVENTS_VERSION = 1
#: ``format`` field of the flight-recorder listing
#: (``GET /v1/debug/requests``).
DEBUG_REQUESTS_FORMAT = "repro-debug-requests"
#: Flight-recorder listing schema version.
DEBUG_REQUESTS_VERSION = 1
#: ``format`` field of an assembled distributed trace
#: (``GET /v1/debug/trace/{trace_id}``).
DEBUG_TRACE_FORMAT = "repro-debug-trace"
#: Debug trace schema version.
DEBUG_TRACE_VERSION = 1

#: Machine-readable error codes, and the HTTP status each maps to.
#: ``docs/serving.md`` documents every row; the doc-conformance test
#: keeps the table and this mapping identical.
ERROR_CODES: "dict[str, int]" = {
    "bad_request": 400,
    "unsupported_version": 400,
    "not_found": 404,
    "method_not_allowed": 405,
    "payload_too_large": 413,
    "queue_full": 429,
    "internal": 500,
    "shutting_down": 503,
    "deadline_exceeded": 504,
}


@dataclass(frozen=True)
class RequestError(Exception):
    """A rejected request: an :data:`ERROR_CODES` code + prose."""

    code: str
    message: str

    @property
    def http_status(self) -> int:
        return ERROR_CODES.get(self.code, 500)

    def to_dict(self) -> "dict[str, Any]":
        return {"code": self.code, "message": self.message}


@dataclass(frozen=True)
class SolvedPoint:
    """One solved ``(p_max, p_min)`` row of a response document.

    The numbers are exactly what a direct
    :meth:`~repro.scheduling.power_aware.PowerAwareScheduler.solve`
    of the same problem reports — serving adds transport, never
    arithmetic.
    """

    p_max: float
    p_min: float
    feasible: bool
    finish_time: "int | None" = None
    energy_cost: "float | None" = None
    utilization: "float | None" = None
    peak_power: "float | None" = None
    cached: bool = False
    reused: bool = False

    def to_dict(self) -> "dict[str, Any]":
        doc: "dict[str, Any]" = {
            "p_max": self.p_max, "p_min": self.p_min,
            "feasible": self.feasible,
        }
        if self.feasible:
            doc.update(finish_time=self.finish_time,
                       energy_cost=self.energy_cost,
                       utilization=self.utilization,
                       peak_power=self.peak_power)
        if self.cached:
            doc["cached"] = True
        if self.reused:
            doc["reused"] = True
        return doc

    @classmethod
    def from_sweep_point(cls, point, cached: bool = False,
                         reused: bool = False) -> "SolvedPoint":
        """Build from an :class:`~repro.analysis.sweep.SweepPoint`."""
        return cls(p_max=point.p_max, p_min=point.p_min,
                   feasible=point.feasible,
                   finish_time=point.finish_time,
                   energy_cost=point.energy_cost,
                   utilization=point.utilization,
                   peak_power=point.peak_power,
                   cached=cached, reused=reused)


@dataclass
class SolveRequest:
    """A parsed, validated solve request (one workload, >= 1 point)."""

    problem: SchedulingProblem
    points: "list[tuple[float, float]]"
    seed: "int | None" = None
    deadline_ms: "int | None" = None
    tags: "dict[str, Any]" = field(default_factory=dict)


def solve_request_to_dict(problem: SchedulingProblem,
                          p_max: "float | None" = None,
                          p_min: "float | None" = None,
                          budgets: "list[float] | None" = None,
                          levels: "list[float] | None" = None,
                          points: "list[tuple[float, float]] | None"
                          = None,
                          seed: "int | None" = None,
                          deadline_ms: "int | None" = None,
                          tags: "Mapping[str, Any] | None" = None) \
        -> "dict[str, Any]":
    """Assemble a ``repro-solve-request`` document (client side)."""
    doc: "dict[str, Any]" = {
        "format": REQUEST_FORMAT,
        "version": REQUEST_VERSION,
        "problem": problem_to_dict(problem),
    }
    if p_max is not None:
        doc["p_max"] = p_max
    if p_min is not None:
        doc["p_min"] = p_min
    if budgets is not None:
        doc["budgets"] = list(budgets)
    if levels is not None:
        doc["levels"] = list(levels)
    if points is not None:
        doc["points"] = [[pmax, pmin] for pmax, pmin in points]
    if seed is not None:
        doc["seed"] = seed
    if deadline_ms is not None:
        doc["deadline_ms"] = deadline_ms
    if tags:
        doc["tags"] = dict(tags)
    return doc


def _point_list(data: "Mapping[str, Any]",
                problem: SchedulingProblem) \
        -> "list[tuple[float, float]]":
    """The (p_max, p_min) pairs a request asks for.

    Priority: explicit ``points`` > ``budgets`` x ``levels`` grid >
    single ``p_max``/``p_min`` override > the problem's own pair.
    Levels are clamped to each budget so the constraint window never
    inverts (same rule as ``repro-schedule sweep``).
    """
    if "points" in data:
        pairs = []
        for row in data["points"]:
            if (not isinstance(row, (list, tuple)) or len(row) != 2
                    or not all(isinstance(v, (int, float))
                               and not isinstance(v, bool)
                               for v in row)):
                raise RequestError(
                    "bad_request",
                    "points must be [p_max, p_min] number pairs")
            pairs.append((float(row[0]), float(row[1])))
        if not pairs:
            raise RequestError("bad_request",
                               "points must not be empty")
        return pairs
    if "budgets" in data or "levels" in data:
        budgets = data.get("budgets") or [problem.p_max]
        levels = data.get("levels") or [problem.p_min]
        try:
            budgets = [float(b) for b in budgets]
            levels = [float(lv) for lv in levels]
        except (TypeError, ValueError) as exc:
            raise RequestError(
                "bad_request",
                f"budgets/levels must be numbers: {exc}") from exc
        if not budgets or not levels:
            raise RequestError("bad_request",
                               "budgets/levels must not be empty")
        return [(b, min(lv, b)) for b in budgets for lv in levels]
    p_max = data.get("p_max", problem.p_max)
    p_min = data.get("p_min", problem.p_min)
    if not all(isinstance(v, (int, float)) and not isinstance(v, bool)
               for v in (p_max, p_min)):
        raise RequestError("bad_request",
                           "p_max/p_min must be numbers")
    return [(float(p_max), min(float(p_min), float(p_max)))]


def solve_request_from_dict(data: Any) -> SolveRequest:
    """Validate and parse a request document (server side).

    Raises :class:`RequestError` — never a bare exception — so the
    server can map every rejection to its documented error code.
    """
    if not isinstance(data, Mapping):
        raise RequestError("bad_request",
                           "request body must be a JSON object")
    if data.get("format") != REQUEST_FORMAT:
        raise RequestError(
            "bad_request",
            f"format must be {REQUEST_FORMAT!r}, "
            f"got {data.get('format')!r}")
    version = data.get("version")
    if not isinstance(version, int) or version < 1:
        raise RequestError("bad_request",
                           f"version must be a positive integer, "
                           f"got {version!r}")
    if version > REQUEST_VERSION:
        raise RequestError(
            "unsupported_version",
            f"request version {version} is newer than this server's "
            f"{REQUEST_VERSION}; re-send as version "
            f"{REQUEST_VERSION}")
    if "problem" not in data:
        raise RequestError("bad_request",
                           "request is missing 'problem'")
    try:
        problem = problem_from_dict(data["problem"])
    except SerializationError as exc:
        raise RequestError("bad_request",
                           f"invalid problem document: {exc}") from exc
    except (TypeError, KeyError, AttributeError) as exc:
        raise RequestError(
            "bad_request",
            f"invalid problem document: {exc!r}") from exc
    points = _point_list(data, problem)
    seed = data.get("seed")
    if seed is not None and (not isinstance(seed, int)
                             or isinstance(seed, bool)):
        raise RequestError("bad_request",
                           f"seed must be an integer, got {seed!r}")
    deadline_ms = data.get("deadline_ms")
    if deadline_ms is not None and (not isinstance(deadline_ms, int)
                                    or isinstance(deadline_ms, bool)
                                    or deadline_ms < 0):
        raise RequestError(
            "bad_request",
            f"deadline_ms must be a non-negative integer, "
            f"got {deadline_ms!r}")
    tags = data.get("tags") or {}
    if not isinstance(tags, Mapping):
        raise RequestError("bad_request", "tags must be an object")
    return SolveRequest(problem=problem, points=points, seed=seed,
                        deadline_ms=deadline_ms, tags=dict(tags))


def response_envelope(status: str, **fields: Any) -> "dict[str, Any]":
    """A ``repro-solve-response`` document skeleton."""
    return {"format": RESPONSE_FORMAT, "version": RESPONSE_VERSION,
            "status": status, **fields}


def error_envelope(error: RequestError) -> "dict[str, Any]":
    """The error form of the response envelope."""
    return response_envelope("error", error=error.to_dict())
