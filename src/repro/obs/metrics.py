"""Metrics registry: counters, gauges, and quantile histograms.

One flat, dot-separated namespace covers every layer::

    engine.run.*      batch-runner bookkeeping (jobs, modes, seconds)
    engine.cache.*    result-cache behaviour (hits/misses/evictions)
    engine.job.*      per-job distributions (histograms)
    sched.stage.*     pipeline stage wall-clock (timing/max_power/...)
    sched.timing.*    Fig. 3 scheduler counters
    sched.maxp.*      Fig. 4 scheduler counters
    sched.minp.*      Fig. 6 scheduler counters
    sched.lp.*        longest-path solver cache behaviour
    exec.*            tick-executor events and violations
    mission.*         mission-simulator iterations
    obs.*             the instrumentation layer's own accounting

The registry absorbs the pre-existing ad-hoc telemetry —
:class:`~repro.scheduling.base.SchedulerStats` counters via
:data:`STATS_METRIC_NAMES` / :func:`absorb_scheduler_stats`, and
:class:`~repro.engine.cache.ResultCache` counters via
:func:`absorb_cache_stats` — behind these stable names, so traces and
exporters never depend on dataclass field spellings.

Histograms keep their raw observations (bounded by
:data:`HISTOGRAM_LIMIT` per metric), which makes cross-process merging
exact: a worker ships ``registry.data()`` and the parent
``merge_data``-s it, so serial and parallel runs of the same batch
report identical totals.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "STATS_METRIC_NAMES", "absorb_scheduler_stats",
           "absorb_cache_stats", "absorb_store_stats", "quantile"]

#: Raw observations kept per histogram; beyond this the histogram keeps
#: exact count/sum/min/max and quantiles become estimates over the
#: retained prefix.
HISTOGRAM_LIMIT = 8192

#: SchedulerStats field -> metric name (the stable naming scheme).
STATS_METRIC_NAMES: "dict[str, str]" = {
    "timing_backtracks": "sched.timing.backtracks",
    "serializations": "sched.timing.serializations",
    "longest_path_runs": "sched.lp.runs",
    "spikes_removed": "sched.maxp.spikes_removed",
    "delays_applied": "sched.maxp.delays_applied",
    "spike_attempts": "sched.maxp.spike_attempts",
    "gap_fill_moves": "sched.minp.gap_fill_moves",
    "gap_fill_rejected": "sched.minp.gap_fill_rejected",
    "scans": "sched.minp.scans",
    "lp_cache_hits": "sched.lp.cache_hits",
    "lp_incremental_runs": "sched.lp.incremental_runs",
    "lp_full_runs": "sched.lp.full_runs",
    "lp_cache_log_evictions": "sched.lp.log_evictions",
    "lp_kernel_runs": "core.kernel.runs",
    "lp_state_restores": "core.kernel.state_restores",
    "lp_warm_hits": "core.kernel.warm_hits",
    "lp_probe_prunes": "core.kernel.probe_prunes",
}


def quantile(sorted_values: "list[float]", q: float) -> float:
    """Nearest-rank quantile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    index = max(0, min(len(sorted_values) - 1,
                       round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


class Counter:
    """Monotonically-increasing integer count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def summary(self) -> "dict[str, Any]":
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (cache size, queue depth, ...)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def summary(self) -> "dict[str, Any]":
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Distribution with exact count/sum and p50/p95/p99 quantiles."""

    __slots__ = ("values", "count", "total", "minimum", "maximum")
    kind = "histogram"

    def __init__(self) -> None:
        self.values: "list[float]" = []
        self.count = 0
        self.total = 0.0
        self.minimum: "float | None" = None
        self.maximum: "float | None" = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None \
            else min(self.minimum, value)
        self.maximum = value if self.maximum is None \
            else max(self.maximum, value)
        if len(self.values) < HISTOGRAM_LIMIT:
            self.values.append(value)

    def summary(self) -> "dict[str, Any]":
        ordered = sorted(self.values)
        return {
            "type": "histogram",
            "count": self.count,
            "sum": round(self.total, 6),
            "min": round(self.minimum or 0.0, 6),
            "max": round(self.maximum or 0.0, 6),
            "p50": round(quantile(ordered, 0.50), 6),
            "p95": round(quantile(ordered, 0.95), 6),
            "p99": round(quantile(ordered, 0.99), 6),
        }


class MetricsRegistry:
    """Named metrics, created on first touch."""

    def __init__(self) -> None:
        self._metrics: "dict[str, Counter | Gauge | Histogram]" = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls()
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a "
                f"{cls.kind}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # -- snapshots -----------------------------------------------------

    def snapshot(self) -> "dict[str, dict[str, Any]]":
        """Export view: ``{name: {"type": ..., ...summary...}}``."""
        return {name: metric.summary()
                for name, metric in sorted(self._metrics.items())}

    def data(self) -> "dict[str, Any]":
        """Lossless view for cross-process shipping (raw histogram
        observations included) — consumed by :meth:`merge_data`."""
        doc: "dict[str, Any]" = {"counters": {}, "gauges": {},
                                 "histograms": {}}
        for name, metric in self._metrics.items():
            if isinstance(metric, Counter):
                doc["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                doc["gauges"][name] = metric.value
            else:
                doc["histograms"][name] = list(metric.values)
        return doc

    def merge_data(self, doc: "Mapping[str, Any]") -> None:
        """Fold another registry's :meth:`data` into this one:
        counters add, gauges overwrite, histograms re-observe."""
        for name, value in doc.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in doc.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, values in doc.get("histograms", {}).items():
            histogram = self.histogram(name)
            for value in values:
                histogram.observe(value)


# ----------------------------------------------------------------------
# absorption of the pre-existing ad-hoc telemetry
# ----------------------------------------------------------------------

def absorb_scheduler_stats(registry: MetricsRegistry,
                           stats: "Mapping[str, Any]") -> None:
    """Fold one job's ``SchedulerStats.as_dict()`` payload in.

    ``stats`` is ``{"counters": {...}, "stage_seconds": {...}}``;
    counters land under the :data:`STATS_METRIC_NAMES` scheme and each
    stage's wall clock is observed in ``sched.stage.<stage>.seconds``.
    """
    for field_name, count in stats.get("counters", {}).items():
        metric_name = STATS_METRIC_NAMES.get(field_name)
        if metric_name is not None and count:
            registry.counter(metric_name).inc(count)
    for stage, seconds in stats.get("stage_seconds", {}).items():
        registry.histogram(f"sched.stage.{stage}.seconds") \
            .observe(seconds)


def absorb_cache_stats(registry: MetricsRegistry,
                       before: "Mapping[str, int]",
                       after: "Mapping[str, int]") -> None:
    """Fold a :class:`~repro.engine.cache.ResultCache` stats delta in.

    ``before``/``after`` are two ``cache.stats()`` snapshots; the
    monotone counters contribute their increase, ``entries`` sets the
    ``engine.cache.entries`` gauge.
    """
    for key in ("hits", "misses", "evictions"):
        delta = after.get(key, 0) - before.get(key, 0)
        if delta:
            registry.counter(f"engine.cache.{key}").inc(delta)
    registry.gauge("engine.cache.entries").set(after.get("entries", 0))


def absorb_store_stats(registry: MetricsRegistry,
                       before: "Mapping[str, int]",
                       after: "Mapping[str, int]") -> None:
    """Fold a schedule-store counters delta into the registry.

    ``before``/``after`` are two
    :meth:`~repro.engine.schedule_store.ScheduleStore.counters`
    snapshots; the monotone counters (range hits, misses, priming
    solves, insertions, dedups) contribute their increase under
    ``engine.store.*`` and ``entries`` sets the ``engine.store.entries``
    gauge — the same before/after discipline as
    :func:`absorb_cache_stats`, so a store shared across runs never
    double-reports.
    """
    for key in ("range_hits", "misses", "primes", "inserted",
                "deduped"):
        delta = after.get(key, 0) - before.get(key, 0)
        if delta:
            registry.counter(f"engine.store.{key}").inc(delta)
    registry.gauge("engine.store.entries").set(after.get("entries", 0))
