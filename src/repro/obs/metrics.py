"""Metrics registry: counters, gauges, and quantile histograms.

One flat, dot-separated namespace covers every layer::

    engine.run.*      batch-runner bookkeeping (jobs, modes, seconds)
    engine.cache.*    result-cache behaviour (hits/misses/evictions)
    engine.job.*      per-job distributions (histograms)
    sched.stage.*     pipeline stage wall-clock (timing/max_power/...)
    sched.timing.*    Fig. 3 scheduler counters
    sched.maxp.*      Fig. 4 scheduler counters
    sched.minp.*      Fig. 6 scheduler counters
    sched.lp.*        longest-path solver cache behaviour
    exec.*            tick-executor events and violations
    mission.*         mission-simulator iterations
    obs.*             the instrumentation layer's own accounting

The registry absorbs the pre-existing ad-hoc telemetry —
:class:`~repro.scheduling.base.SchedulerStats` counters via
:data:`STATS_METRIC_NAMES` / :func:`absorb_scheduler_stats`, and
:class:`~repro.engine.cache.ResultCache` counters via
:func:`absorb_cache_stats` — behind these stable names, so traces and
exporters never depend on dataclass field spellings.

Histograms keep a bounded *reservoir* of raw observations
(:data:`HISTOGRAM_LIMIT` per metric, Algorithm R seeded by the metric
name so runs are reproducible and no global :mod:`random` state is
touched) alongside exact ``count``/``sum``/``min``/``max`` totals.
Cross-process merging folds the exact totals directly and refills the
reservoir from the shipped samples: a worker ships
``registry.data()`` and the parent ``merge_data``-s it, so serial and
sharded runs of the same batch report identical counts and sums, with
quantiles estimated over an unbiased sample of the whole run rather
than its first :data:`HISTOGRAM_LIMIT` observations.
"""

from __future__ import annotations

import random
import zlib
from typing import Any, Mapping

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "STATS_METRIC_NAMES", "absorb_scheduler_stats",
           "absorb_cache_stats", "absorb_store_stats", "quantile"]

#: Raw observations kept per histogram; beyond this the histogram keeps
#: exact count/sum/min/max and quantiles become estimates over a
#: uniform reservoir sample of every observation so far.
HISTOGRAM_LIMIT = 8192

#: SchedulerStats field -> metric name (the stable naming scheme).
STATS_METRIC_NAMES: "dict[str, str]" = {
    "timing_backtracks": "sched.timing.backtracks",
    "serializations": "sched.timing.serializations",
    "longest_path_runs": "sched.lp.runs",
    "spikes_removed": "sched.maxp.spikes_removed",
    "delays_applied": "sched.maxp.delays_applied",
    "spike_attempts": "sched.maxp.spike_attempts",
    "gap_fill_moves": "sched.minp.gap_fill_moves",
    "gap_fill_rejected": "sched.minp.gap_fill_rejected",
    "scans": "sched.minp.scans",
    "lp_cache_hits": "sched.lp.cache_hits",
    "lp_incremental_runs": "sched.lp.incremental_runs",
    "lp_full_runs": "sched.lp.full_runs",
    "lp_cache_log_evictions": "sched.lp.log_evictions",
    "lp_kernel_runs": "core.kernel.runs",
    "lp_state_restores": "core.kernel.state_restores",
    "lp_warm_hits": "core.kernel.warm_hits",
    "lp_probe_prunes": "core.kernel.probe_prunes",
}


def quantile(sorted_values: "list[float]", q: float) -> float:
    """Nearest-rank quantile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    index = max(0, min(len(sorted_values) - 1,
                       round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


class Counter:
    """Monotonically-increasing integer count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def summary(self) -> "dict[str, Any]":
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (cache size, queue depth, ...)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def summary(self) -> "dict[str, Any]":
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Distribution with exact count/sum and p50/p95/p99 quantiles.

    Quantiles are computed over a uniform reservoir sample (Vitter's
    Algorithm R) of every observation, not the first
    :data:`HISTOGRAM_LIMIT` values, so long-run percentiles are not
    biased toward warm-up traffic.  The reservoir's RNG is seeded from
    the metric name: deterministic across runs, and the global
    :mod:`random` state is never touched.  The largest observation that
    arrived with a trace id is kept as an exemplar for the Prometheus
    exporter.
    """

    __slots__ = ("name", "values", "count", "total", "minimum",
                 "maximum", "exemplar", "_rng", "_seen")
    kind = "histogram"

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.values: "list[float]" = []
        self.count = 0
        self.total = 0.0
        self.minimum: "float | None" = None
        self.maximum: "float | None" = None
        self.exemplar: "dict[str, Any] | None" = None
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))
        # Reservoir stream length: how many values _reservoir_add has
        # seen.  Kept separate from ``count`` because merge_data folds
        # remote counts without feeding every remote value through the
        # reservoir.
        self._seen = 0

    def observe(self, value: float,
                trace_id: "str | None" = None) -> None:
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None \
            else min(self.minimum, value)
        self.maximum = value if self.maximum is None \
            else max(self.maximum, value)
        self._reservoir_add(value)
        if trace_id is not None and (
                self.exemplar is None
                or value >= self.exemplar["value"]):
            self.exemplar = {"trace_id": trace_id, "value": value}

    def _reservoir_add(self, value: float) -> None:
        self._seen += 1
        if len(self.values) < HISTOGRAM_LIMIT:
            self.values.append(value)
        else:
            slot = self._rng.randrange(self._seen)
            if slot < HISTOGRAM_LIMIT:
                self.values[slot] = value

    def summary(self) -> "dict[str, Any]":
        ordered = sorted(self.values)
        doc = {
            "type": "histogram",
            "count": self.count,
            "sum": round(self.total, 6),
            "min": round(self.minimum or 0.0, 6),
            "max": round(self.maximum or 0.0, 6),
            "p50": round(quantile(ordered, 0.50), 6),
            "p95": round(quantile(ordered, 0.95), 6),
            "p99": round(quantile(ordered, 0.99), 6),
        }
        if self.exemplar is not None:
            doc["exemplar"] = dict(self.exemplar)
        return doc


class MetricsRegistry:
    """Named metrics, created on first touch."""

    def __init__(self) -> None:
        self._metrics: "dict[str, Counter | Gauge | Histogram]" = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = (
                cls(name) if cls is Histogram else cls())
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a "
                f"{cls.kind}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # -- snapshots -----------------------------------------------------

    def snapshot(self) -> "dict[str, dict[str, Any]]":
        """Export view: ``{name: {"type": ..., ...summary...}}``."""
        return {name: metric.summary()
                for name, metric in sorted(self._metrics.items())}

    def data(self) -> "dict[str, Any]":
        """Exact view for cross-process shipping — consumed by
        :meth:`merge_data`.  Histograms ship their true
        ``count``/``sum``/``min``/``max`` totals plus the reservoir
        samples, so folding stays exact even past
        :data:`HISTOGRAM_LIMIT`."""
        doc: "dict[str, Any]" = {"counters": {}, "gauges": {},
                                 "histograms": {}}
        for name, metric in self._metrics.items():
            if isinstance(metric, Counter):
                doc["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                doc["gauges"][name] = metric.value
            else:
                entry: "dict[str, Any]" = {
                    "samples": list(metric.values),
                    "count": metric.count,
                    "sum": metric.total,
                    "min": metric.minimum,
                    "max": metric.maximum,
                }
                if metric.exemplar is not None:
                    entry["exemplar"] = dict(metric.exemplar)
                doc["histograms"][name] = entry
        return doc

    def merge_data(self, doc: "Mapping[str, Any]") -> None:
        """Fold another registry's :meth:`data` into this one:
        counters add, gauges overwrite, histograms fold their exact
        totals and feed their samples through the reservoir.  A plain
        list (the pre-reservoir wire shape) is still accepted and
        re-observed value by value."""
        for name, value in doc.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in doc.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, entry in doc.get("histograms", {}).items():
            histogram = self.histogram(name)
            if isinstance(entry, Mapping):
                histogram.count += int(entry.get("count", 0))
                histogram.total += float(entry.get("sum", 0.0))
                for bound, pick in (("min", min), ("max", max)):
                    incoming = entry.get(bound)
                    if incoming is None:
                        continue
                    current = getattr(histogram,
                                      "minimum" if bound == "min"
                                      else "maximum")
                    setattr(histogram,
                            "minimum" if bound == "min" else "maximum",
                            incoming if current is None
                            else pick(current, incoming))
                for value in entry.get("samples", []):
                    histogram._reservoir_add(value)
                exemplar = entry.get("exemplar")
                if exemplar is not None and (
                        histogram.exemplar is None
                        or exemplar["value"]
                        >= histogram.exemplar["value"]):
                    histogram.exemplar = dict(exemplar)
            else:
                for value in entry:
                    histogram.observe(value)


# ----------------------------------------------------------------------
# absorption of the pre-existing ad-hoc telemetry
# ----------------------------------------------------------------------

def absorb_scheduler_stats(registry: MetricsRegistry,
                           stats: "Mapping[str, Any]") -> None:
    """Fold one job's ``SchedulerStats.as_dict()`` payload in.

    ``stats`` is ``{"counters": {...}, "stage_seconds": {...}}``;
    counters land under the :data:`STATS_METRIC_NAMES` scheme and each
    stage's wall clock is observed in ``sched.stage.<stage>.seconds``.
    """
    for field_name, count in stats.get("counters", {}).items():
        metric_name = STATS_METRIC_NAMES.get(field_name)
        if metric_name is not None and count:
            registry.counter(metric_name).inc(count)
    for stage, seconds in stats.get("stage_seconds", {}).items():
        registry.histogram(f"sched.stage.{stage}.seconds") \
            .observe(seconds)


def absorb_cache_stats(registry: MetricsRegistry,
                       before: "Mapping[str, int]",
                       after: "Mapping[str, int]") -> None:
    """Fold a :class:`~repro.engine.cache.ResultCache` stats delta in.

    ``before``/``after`` are two ``cache.stats()`` snapshots; the
    monotone counters contribute their increase, ``entries`` sets the
    ``engine.cache.entries`` gauge.
    """
    for key in ("hits", "misses", "evictions"):
        delta = after.get(key, 0) - before.get(key, 0)
        if delta:
            registry.counter(f"engine.cache.{key}").inc(delta)
    registry.gauge("engine.cache.entries").set(after.get("entries", 0))


def absorb_store_stats(registry: MetricsRegistry,
                       before: "Mapping[str, int]",
                       after: "Mapping[str, int]") -> None:
    """Fold a schedule-store counters delta into the registry.

    ``before``/``after`` are two
    :meth:`~repro.engine.schedule_store.ScheduleStore.counters`
    snapshots; the monotone counters (range hits, misses, priming
    solves, insertions, dedups) contribute their increase under
    ``engine.store.*`` and ``entries`` sets the ``engine.store.entries``
    gauge — the same before/after discipline as
    :func:`absorb_cache_stats`, so a store shared across runs never
    double-reports.
    """
    for key in ("range_hits", "misses", "primes", "inserted",
                "deduped"):
        delta = after.get(key, 0) - before.get(key, 0)
        if delta:
            registry.counter(f"engine.store.{key}").inc(delta)
    # A RemoteScheduleStore (shared store service client) extends the
    # counter dict with its remote-protocol tallies; fold any that are
    # present under ``store.*`` so a serve instance's /metrics shows
    # its share of the shared store's traffic.
    for key in ("remote_hits", "remote_misses", "pushed", "pulled",
                "sync_errors"):
        delta = after.get(key, 0) - before.get(key, 0)
        if delta:
            registry.counter(f"store.{key}").inc(delta)
    registry.gauge("engine.store.entries").set(after.get("entries", 0))
