"""Human-readable digests of ``repro-trace`` documents.

``repro-schedule trace summarize PATH`` renders one of these: the run
overview, the top-N slowest jobs and pipeline stages, how effective the
result cache was, and the histogram metrics as a quantile table.
Accepts both trace schema versions (v1 documents simply have no span
tree or metric snapshot to report).
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["summarize_trace"]


def _cache_lines(cache: "Mapping[str, Any]") -> "list[str]":
    hits = cache.get("hits", 0)
    misses = cache.get("misses", 0)
    total = hits + misses
    rate = (100.0 * hits / total) if total else 0.0
    line = (f"cache: {hits} hits / {misses} misses "
            f"({rate:.1f}% hit rate)")
    if "evictions" in cache:
        line += f", {cache['evictions']} evictions"
    if "entries" in cache:
        line += f", {cache['entries']} entries"
    return [line]


def _span_count(spans: "list[dict]") -> int:
    count = 0
    stack = list(spans)
    while stack:
        span = stack.pop()
        count += 1
        stack.extend(span.get("children", []))
    return count


def summarize_trace(doc: "Mapping[str, Any]", top: int = 5) -> str:
    """The full text digest of one trace document."""
    # Imported lazily: repro.analysis transitively imports the
    # schedulers, which import repro.obs — a module-level import here
    # would close that cycle during package initialization.
    from ..analysis.report import format_table
    out: "list[str]" = []
    run = doc.get("run", {})
    version = doc.get("version", "?")
    out.append(
        f"== repro-trace v{version}: {run.get('jobs', 0)} jobs, "
        f"{run.get('unique_solved', 0)} solved, "
        f"mode={run.get('mode', '?')}, "
        f"{run.get('elapsed_s', 0.0):g}s ==")
    out.extend(_cache_lines(doc.get("cache", {})))

    stage_seconds = doc.get("stage_seconds", {})
    if stage_seconds:
        ranked = sorted(stage_seconds.items(), key=lambda kv: -kv[1])
        rows = [{"stage": stage, "total_s": seconds}
                for stage, seconds in ranked[:top]]
        out.append("")
        out.append(format_table(rows, title="-- slowest stages --"))

    jobs = [job for job in doc.get("jobs", []) if not job.get("cached")]
    if jobs:
        jobs.sort(key=lambda job: -job.get("elapsed_s", 0.0))
        rows = []
        for job in jobs[:top]:
            stages = job.get("stage_seconds", {})
            hot = max(stages, key=stages.get) if stages else "-"
            rows.append({
                "position": job.get("position"),
                "key": str(job.get("key", ""))[:12],
                "elapsed_s": job.get("elapsed_s", 0.0),
                "ok": job.get("ok", True),
                "hottest_stage": hot,
            })
        out.append("")
        out.append(format_table(rows, title="-- slowest jobs --"))

    metrics = doc.get("metrics", {})
    histograms = {name: summary for name, summary in metrics.items()
                  if summary.get("type") == "histogram"}
    if histograms:
        rows = [{"metric": name, "count": summary.get("count", 0),
                 "p50": summary.get("p50", 0.0),
                 "p95": summary.get("p95", 0.0),
                 "p99": summary.get("p99", 0.0),
                 "max": summary.get("max", 0.0)}
                for name, summary in sorted(histograms.items())]
        out.append("")
        out.append(format_table(rows, title="-- histograms --"))
    counters = {name: summary["value"]
                for name, summary in metrics.items()
                if summary.get("type") == "counter"}
    if counters:
        rows = [{"metric": name, "value": value}
                for name, value in sorted(counters.items())]
        out.append("")
        out.append(format_table(rows, title="-- counters --"))

    spans = doc.get("spans", [])
    if spans:
        out.append("")
        out.append(f"spans: {_span_count(spans)} recorded "
                   f"({len(spans)} root(s))")
    return "\n".join(out)
