"""Trace exporters: JSON Lines, Chrome trace-event, Prometheus text.

All three operate on the serialized forms — span dicts as produced by
:meth:`repro.obs.spans.Span.to_dict` (what a ``repro-trace`` v2
document stores under ``"spans"``) and metric snapshots as produced by
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` — so a trace file
can be exported long after the run, by tooling that never imports the
scheduler.

* :func:`chrome_trace` emits the Chrome trace-event JSON object
  (``{"traceEvents": [...]}``) that ``chrome://tracing`` and Perfetto
  load directly: complete (``"ph": "X"``) events for spans, instant
  (``"ph": "i"``) events for span events, one thread lane per job so a
  parallel sweep reads as a flamegraph per worker lane.
* :func:`jsonl_lines` flattens spans + metrics into one self-describing
  JSON object per line — the streamable form for log shippers.
* :func:`prometheus_text` renders the metric snapshot in the Prometheus
  text exposition format (histograms as summaries with quantile
  labels).
"""

from __future__ import annotations

import json
from typing import Any, Iterator, Mapping, Sequence

__all__ = ["chrome_trace", "jsonl_lines", "prometheus_text",
           "spans_from_doc", "metrics_from_doc"]


def spans_from_doc(doc: "Mapping[str, Any]") -> "list[dict]":
    """The span forest of a ``repro-trace`` document (v1 -> empty)."""
    return list(doc.get("spans", []))


def metrics_from_doc(doc: "Mapping[str, Any]") -> "dict[str, Any]":
    """The metric snapshot of a ``repro-trace`` document (v1 -> {})."""
    return dict(doc.get("metrics", {}))


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------

def _span_lane(span: "Mapping[str, Any]", inherited: int) -> int:
    """Thread id for a span: jobs get their own lane, children
    inherit."""
    position = span.get("attrs", {}).get("position")
    if isinstance(position, int):
        return position + 1
    return inherited


def _chrome_events(span: "Mapping[str, Any]", lane: int,
                   out: "list[dict]") -> None:
    lane = _span_lane(span, lane)
    start_us = span.get("start", 0.0) * 1e6
    out.append({
        "name": span["name"],
        "ph": "X",
        "ts": round(start_us, 3),
        "dur": round(span.get("duration", 0.0) * 1e6, 3),
        "pid": 1,
        "tid": lane,
        "args": dict(span.get("attrs", {})),
    })
    for evt in span.get("events", []):
        out.append({
            "name": evt["name"],
            "ph": "i",
            "ts": round(evt.get("at", 0.0) * 1e6, 3),
            "pid": 1,
            "tid": lane,
            "s": "t",
            "args": dict(evt.get("attrs", {})),
        })
    for child in span.get("children", []):
        _chrome_events(child, lane, out)


def chrome_trace(spans: "Sequence[Mapping[str, Any]]",
                 metrics: "Mapping[str, Any] | None" = None) \
        -> "dict[str, Any]":
    """The ``chrome://tracing`` / Perfetto JSON object for a span
    forest.  Counter metrics ride along as process metadata."""
    events: "list[dict]" = []
    for span in spans:
        _chrome_events(span, 0, events)
    doc: "dict[str, Any]" = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metrics:
        doc["otherData"] = {
            name: summary.get("value", summary.get("count"))
            for name, summary in sorted(metrics.items())}
    return doc


# ----------------------------------------------------------------------
# JSON Lines event stream
# ----------------------------------------------------------------------

def _jsonl_span(span: "Mapping[str, Any]", parent: "str | None",
                depth: int) -> "Iterator[dict]":
    record = {
        "type": "span",
        "name": span["name"],
        "start": span.get("start", 0.0),
        "duration": span.get("duration", 0.0),
        "depth": depth,
        "parent": parent,
    }
    if span.get("attrs"):
        record["attrs"] = dict(span["attrs"])
    yield record
    for evt in span.get("events", []):
        yield {
            "type": "event",
            "name": evt["name"],
            "at": evt.get("at", 0.0),
            "parent": span["name"],
            **({"attrs": dict(evt["attrs"])}
               if evt.get("attrs") else {}),
        }
    for child in span.get("children", []):
        yield from _jsonl_span(child, span["name"], depth + 1)


def jsonl_lines(spans: "Sequence[Mapping[str, Any]]",
                metrics: "Mapping[str, Any] | None" = None) \
        -> "Iterator[str]":
    """One JSON object per line: spans depth-first, then metrics."""
    for span in spans:
        for record in _jsonl_span(span, None, 0):
            yield json.dumps(record, sort_keys=True)
    for name, summary in sorted((metrics or {}).items()):
        yield json.dumps({"type": "metric", "name": name, **summary},
                         sort_keys=True)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _prom_name(name: str) -> str:
    """``engine.cache.hits`` -> ``repro_engine_cache_hits``."""
    safe = "".join(ch if ch.isalnum() or ch == "_" else "_"
                   for ch in name)
    return f"repro_{safe}"


def prometheus_text(metrics: "Mapping[str, Any]") -> str:
    """Render a metric snapshot in the text exposition format."""
    lines: "list[str]" = []
    for name, summary in sorted(metrics.items()):
        prom = _prom_name(name)
        kind = summary.get("type", "gauge")
        if kind == "histogram":
            lines.append(f"# TYPE {prom} summary")
            for q in ("p50", "p95", "p99"):
                lines.append(
                    f'{prom}{{quantile="0.{q[1:]}"}} '
                    f"{summary.get(q, 0)}")
            lines.append(f"{prom}_sum {summary.get('sum', 0)}")
            lines.append(f"{prom}_count {summary.get('count', 0)}")
            exemplar = summary.get("exemplar")
            if exemplar:
                # Classic text exposition has no exemplar syntax;
                # ship it as a structured comment scrapers can opt
                # into without breaking strict parsers.
                lines.append(
                    f"# EXEMPLAR {prom} "
                    f'trace_id="{exemplar.get("trace_id", "")}" '
                    f"value={exemplar.get('value', 0)}")
        else:
            prom_kind = "counter" if kind == "counter" else "gauge"
            lines.append(f"# TYPE {prom} {prom_kind}")
            lines.append(f"{prom} {summary.get('value', 0)}")
    return "\n".join(lines) + ("\n" if lines else "")
