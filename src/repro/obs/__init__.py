"""Unified instrumentation layer: spans, metrics, exporters.

``repro.obs`` is the observability spine shared by the batch engine
(:mod:`repro.engine`), the scheduling pipeline
(:mod:`repro.scheduling`), the longest-path core, the tick executor
(:mod:`repro.execution`), and the mission simulator — one span tree and
one metric namespace instead of four ad-hoc telemetry schemas.

Off by default, and cheap when off: every instrumentation point guards
on a single attribute of the process-wide :data:`OBS` recorder.  Turn
it on around a region of interest::

    from repro import obs

    obs.enable()
    runner.run(jobs)                       # spans + metrics recorded
    spans = [s.to_dict() for s in obs.collect()]
    snapshot = obs.OBS.metrics.snapshot()
    obs.disable()

The batch runner automates this: ``RunnerConfig(instrument=True)``
records the whole run (worker-process spans shipped back and
re-parented under their job spans) and embeds the result in its
``repro-trace`` v2 document, which ``repro-schedule trace summarize``
and ``trace export --format chrome|prom|jsonl`` consume.
"""

from .export import (chrome_trace, jsonl_lines, metrics_from_doc,
                     prometheus_text, spans_from_doc)
from .log import LOG, LOG_ENV, EventLog, log_event, \
    maybe_enable_from_env
from .metrics import (HISTOGRAM_LIMIT, STATS_METRIC_NAMES, Counter,
                      Gauge, Histogram, MetricsRegistry,
                      absorb_cache_stats, absorb_scheduler_stats,
                      absorb_store_stats, quantile)
from .spans import (OBS, TRACEPARENT_HEADER, Capture, Instrumentation,
                    Span, capture, collect, current_trace_context,
                    disable, enable, enabled, event,
                    format_traceparent, new_span_id, new_trace_id,
                    parse_traceparent, reset, reset_trace_context,
                    set_trace_context, span)
from .summary import summarize_trace

__all__ = [
    "Capture",
    "Counter",
    "EventLog",
    "Gauge",
    "HISTOGRAM_LIMIT",
    "Histogram",
    "Instrumentation",
    "LOG",
    "LOG_ENV",
    "MetricsRegistry",
    "OBS",
    "STATS_METRIC_NAMES",
    "Span",
    "TRACEPARENT_HEADER",
    "absorb_cache_stats",
    "absorb_scheduler_stats",
    "absorb_store_stats",
    "capture",
    "chrome_trace",
    "collect",
    "current_trace_context",
    "disable",
    "enable",
    "enabled",
    "event",
    "format_traceparent",
    "jsonl_lines",
    "log_event",
    "maybe_enable_from_env",
    "metrics_from_doc",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "prometheus_text",
    "quantile",
    "reset",
    "reset_trace_context",
    "set_trace_context",
    "span",
    "spans_from_doc",
    "summarize_trace",
]
