"""Structured JSONL event log with trace/span correlation ids.

One line per event::

    {"ts": 1754650000.123456, "event": "http.access",
     "trace_id": "4bf9...", "span_id": "00f0...",
     "method": "POST", "path": "/v1/sweep", "status": 200,
     "latency_ms": 12.4}

``ts`` is wall-clock seconds, ``event`` a dot-separated name in the
same namespace style as the metrics (``http.access``, ``remote.retry``,
``shard.retry``, ``store.merge``); everything else is event-specific.
``trace_id``/``span_id`` correlate lines with the distributed trace
(:mod:`repro.obs.spans`), which is what lets an operator grep one
request's story out of a multi-process run.

Like the span recorder, the logger is **off by default** and the only
cost at a disabled call site is one attribute check.  Enable it with
:meth:`EventLog.enable` (a path or an open stream), the ``--log-file``
serve flag, or the :data:`LOG_ENV` environment variable.  Emission is
best-effort: a full disk or closed stream drops the line, never the
request.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, IO

__all__ = ["EventLog", "LOG", "LOG_ENV", "log_event",
           "maybe_enable_from_env"]

#: Environment variable naming a JSONL file; when set, the CLI enables
#: the process-wide :data:`LOG` on startup.
LOG_ENV = "REPRO_LOG"


class EventLog:
    """Process-wide JSONL event sink; off by default."""

    def __init__(self) -> None:
        self.enabled = False
        self._stream: "IO[str] | None" = None
        self._owns_stream = False

    def enable(self, path: "str | None" = None,
               stream: "IO[str] | None" = None) -> None:
        """Start logging to ``path`` (append mode) or an open stream."""
        self.disable()
        if stream is not None:
            self._stream = stream
            self._owns_stream = False
        elif path is not None:
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._stream = open(path, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            raise ValueError("EventLog.enable needs a path or a stream")
        self.enabled = True

    def disable(self) -> None:
        """Stop logging; closes the stream if the log opened it."""
        self.enabled = False
        stream, owned = self._stream, self._owns_stream
        self._stream = None
        self._owns_stream = False
        if stream is not None and owned:
            try:
                stream.close()
            except OSError:
                pass

    def emit(self, event: str, *, trace_id: "str | None" = None,
             span_id: "str | None" = None, **fields: Any) -> None:
        """Write one event line (a no-op while disabled)."""
        if not self.enabled:
            return
        line: "dict[str, Any]" = {"ts": round(time.time(), 6),
                                  "event": event}
        if trace_id is not None:
            line["trace_id"] = trace_id
        if span_id is not None:
            line["span_id"] = span_id
        line.update(fields)
        stream = self._stream
        if stream is None:
            return
        try:
            stream.write(json.dumps(line, default=repr) + "\n")
            stream.flush()
        except (OSError, ValueError):
            pass  # best-effort: never let logging fail the caller


#: The process-wide event log every emission point talks to.
LOG = EventLog()


def log_event(event: str, *, trace_id: "str | None" = None,
              span_id: "str | None" = None, **fields: Any) -> None:
    """Emit one event on the process-wide :data:`LOG`."""
    LOG.emit(event, trace_id=trace_id, span_id=span_id, **fields)


def maybe_enable_from_env() -> bool:
    """Enable :data:`LOG` from :data:`LOG_ENV` if set; True if it was."""
    path = os.environ.get(LOG_ENV)
    if not path or LOG.enabled:
        return False
    LOG.enable(path=path)
    return True
